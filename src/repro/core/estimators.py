"""Scikit-learn-style estimators wrapping the bolt-on algorithms.

The functional API (:mod:`repro.core.bolton`) mirrors the paper's
pseudo-code; these classes package it the way a downstream user expects to
consume a classifier: construct with hyper-parameters, ``fit``,
``predict`` / ``score``, introspect fitted attributes.

>>> clf = BoltOnPrivateClassifier(epsilon=0.5, regularization=1e-3)
>>> clf.fit(X_train, y_train, random_state=0)
>>> clf.score(X_test, y_test)

``BoltOnPrivateClassifier`` picks Algorithm 1 or 2 automatically from the
regularization setting; the guarantee (ε or (ε, δ)) follows from ``delta``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.bolton import (
    PrivateTrainingResult,
    private_convex_psgd,
    private_strongly_convex_psgd,
)
from repro.core.mechanisms import PrivacyParameters
from repro.optim.losses import HuberSVMLoss, LogisticLoss, Loss
from repro.utils.rng import RandomState
from repro.utils.validation import (
    check_matrix_labels,
    check_non_negative,
    check_positive,
    check_positive_int,
)


class BoltOnPrivateClassifier:
    """Differentially private linear classifier via bolt-on PSGD.

    Parameters
    ----------
    epsilon, delta:
        The privacy contract. ``delta = 0`` gives pure ε-DP (spherical
        Laplace noise); ``delta > 0`` gives (ε, δ)-DP (Gaussian noise).
    loss:
        ``"logistic"`` (default) or ``"huber"``, or any :class:`Loss`
        instance.
    regularization:
        L2 coefficient λ. ``0`` selects Algorithm 1 (convex, constant
        step); ``> 0`` selects Algorithm 2 (strongly convex,
        ``min(1/beta, 1/(gamma t))`` step, constraint radius ``1/λ``).
    passes, batch_size:
        k and b of Table 1.
    eta:
        Constant step size for the convex case (default ``1/sqrt(m)``).
    average:
        ``None``, ``"uniform"`` or ``"suffix"`` model averaging.

    Fitted attributes (after :meth:`fit`)
    -------------------------------------
    ``coef_`` — the released private model;
    ``privacy_`` — the :class:`PrivacyParameters` actually guaranteed;
    ``sensitivity_`` — the calibrated L2-sensitivity;
    ``noise_norm_`` — the norm of the drawn noise vector;
    ``result_`` — the full :class:`PrivateTrainingResult`.
    """

    def __init__(
        self,
        epsilon: float,
        delta: float = 0.0,
        loss: str | Loss = "logistic",
        regularization: float = 0.0,
        passes: int = 10,
        batch_size: int = 50,
        eta: Optional[float] = None,
        average: Optional[str] = None,
        huber_smoothing: float = 0.1,
    ):
        self.epsilon = check_positive(epsilon, "epsilon")
        self.delta = check_non_negative(delta, "delta")
        self.regularization = check_non_negative(regularization, "regularization")
        self.passes = check_positive_int(passes, "passes")
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.eta = eta
        self.average = average
        self.huber_smoothing = check_positive(huber_smoothing, "huber_smoothing")
        self.loss = self._resolve_loss(loss)
        self.result_: Optional[PrivateTrainingResult] = None

    def _resolve_loss(self, loss: str | Loss) -> Loss:
        if isinstance(loss, Loss):
            if loss.regularization != self.regularization:
                loss = loss.with_regularization(self.regularization)
            return loss
        if loss == "logistic":
            return LogisticLoss(regularization=self.regularization)
        if loss == "huber":
            return HuberSVMLoss(
                smoothing=self.huber_smoothing, regularization=self.regularization
            )
        raise ValueError(
            f"loss must be 'logistic', 'huber' or a Loss instance, got {loss!r}"
        )

    # -- estimator API -----------------------------------------------------------

    def fit(
        self, X: np.ndarray, y: np.ndarray, random_state: RandomState = None
    ) -> "BoltOnPrivateClassifier":
        """Train and privatize; refitting re-spends the privacy budget."""
        X, y = check_matrix_labels(X, y)
        if self.regularization > 0.0:
            self.result_ = private_strongly_convex_psgd(
                X, y, self.loss, self.epsilon,
                delta=self.delta, passes=self.passes, batch_size=self.batch_size,
                average=self.average, random_state=random_state,
            )
        else:
            self.result_ = private_convex_psgd(
                X, y, self.loss, self.epsilon,
                delta=self.delta, passes=self.passes, batch_size=self.batch_size,
                eta=self.eta, average=self.average, random_state=random_state,
            )
        return self

    @property
    def coef_(self) -> np.ndarray:
        """The released differentially private model."""
        return self._fitted().model

    @property
    def privacy_(self) -> PrivacyParameters:
        return self._fitted().privacy

    @property
    def sensitivity_(self) -> float:
        return self._fitted().sensitivity.value

    @property
    def noise_norm_(self) -> float:
        return self._fitted().noise_norm

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Labels in {-1, +1}."""
        return self._fitted().predict(X)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw margins ``<w, x>``."""
        X = np.asarray(X, dtype=np.float64)
        return X @ self.coef_

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy."""
        return self._fitted().accuracy(X, y)

    def _fitted(self) -> PrivateTrainingResult:
        if self.result_ is None:
            raise RuntimeError("classifier is not fitted; call fit(X, y) first")
        return self.result_

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BoltOnPrivateClassifier(epsilon={self.epsilon!r}, "
            f"delta={self.delta!r}, regularization={self.regularization!r}, "
            f"passes={self.passes!r}, batch_size={self.batch_size!r})"
        )


class PrivateLogisticRegression(BoltOnPrivateClassifier):
    """L2-regularized private logistic regression (the paper's main model)."""

    def __init__(self, epsilon: float, delta: float = 0.0,
                 regularization: float = 1e-4, **kwargs):
        super().__init__(
            epsilon, delta=delta, loss="logistic",
            regularization=regularization, **kwargs,
        )


class PrivateHuberSVM(BoltOnPrivateClassifier):
    """Huber-smoothed private SVM (Appendix B's model)."""

    def __init__(self, epsilon: float, delta: float = 0.0,
                 regularization: float = 1e-4, huber_smoothing: float = 0.1,
                 **kwargs):
        super().__init__(
            epsilon, delta=delta, loss="huber",
            regularization=regularization, huber_smoothing=huber_smoothing,
            **kwargs,
        )
