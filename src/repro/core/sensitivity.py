"""L2-sensitivity of PSGD — the paper's central technical contribution.

Every function here is a closed form of the growth-recursion bound
(Lemma 4) specialized to a step-size regime, and each cites the result it
implements:

=====================================  ========================================
Function                               Paper result
=====================================  ========================================
``convex_constant_step``               Corollary 1: ``2 k L eta``
``convex_decreasing_step``             Corollary 2: ``(4L/beta)(1/m^c + ln k / m)``
``convex_square_root_step``            Corollary 3: ``(4L/beta) sum_j 1/(sqrt(jm+1)+m^c)``
``strongly_convex_constant_step``      Lemma 7: ``2 eta L / (1 - (1-eta*gamma)^m)``
``strongly_convex_decreasing_step``    Lemma 8: ``2 L / (gamma m)``
=====================================  ========================================

Mini-batching divides every bound by the batch size b (Section 3.2.3), and
model averaging with non-negative coefficients summing to ``a`` multiplies
the bound by ``a`` because the per-step divergences are non-decreasing
(Lemma 10). Both adjustments are exposed as explicit helpers so call sites
read like the paper.

The property-based test-suite validates each closed form twice over:
against the executable growth recursion (:mod:`repro.optim.growth`) and
against the *measured* divergence of paired PSGD runs on neighbouring
datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.optim.losses import LossProperties
from repro.optim.schedules import (
    CappedInverseTSchedule,
    ConstantSchedule,
    DecreasingSchedule,
    SquareRootSchedule,
    StepSizeSchedule,
    validate_convex_step_size,
    validate_strongly_convex_step_size,
)
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_positive_int,
)


@dataclass(frozen=True)
class SensitivityBound:
    """A computed L2-sensitivity with its provenance.

    ``value`` is the bound Delta_2 itself; ``regime`` names the paper result
    it came from so experiment logs are self-describing.
    """

    value: float
    regime: str
    passes: int
    batch_size: int

    def scaled_by_averaging(self, coefficient_sum: float) -> "SensitivityBound":
        """Apply Lemma 10 for an averaged model with ``sum_t a_t`` given.

        For the standard averages (uniform, suffix) the coefficients sum to
        1 and the bound is unchanged.
        """
        check_positive(coefficient_sum, "coefficient_sum")
        return SensitivityBound(
            value=self.value * coefficient_sum,
            regime=f"{self.regime}+averaging",
            passes=self.passes,
            batch_size=self.batch_size,
        )


def effective_minibatch_divisor(m: int, batch_size: int) -> int:
    """The *safe* divisor for the Section 3.2.3 mini-batch refinement.

    The paper divides the sensitivity by b assuming b | m "for
    simplicity". Our engine keeps the short tail batch when b does not
    divide m, and a mean-gradient update over a tail of ``m mod b``
    examples weights each of them ``1/(m mod b)`` — *more* than ``1/b``.
    The worst case over the differing example's position is therefore
    ``min(b, m mod b)`` (which also handles b > m, where the single batch
    has all m examples). Dividing by anything larger silently
    under-reports sensitivity — a privacy violation, and one the
    empirical divergence tests actually caught.
    """
    check_positive_int(m, "m")
    check_positive_int(batch_size, "batch_size")
    remainder = m % batch_size
    if remainder == 0:
        return batch_size
    return min(batch_size, remainder)


def _finite_lipschitz(properties: LossProperties) -> float:
    lipschitz = properties.lipschitz
    if not np.isfinite(lipschitz):
        raise ValueError(
            "sensitivity requires a finite Lipschitz constant; for regularized "
            "losses derive properties with an explicit radius"
        )
    return lipschitz


def _finite_smoothness(properties: LossProperties) -> float:
    beta = properties.smoothness
    if not np.isfinite(beta):
        raise ValueError(
            "sensitivity requires a finite smoothness constant; the paper's "
            "analysis does not cover non-smooth losses (use HuberSVMLoss "
            "instead of HingeLoss)"
        )
    return beta


def convex_constant_step(
    properties: LossProperties,
    eta: float,
    passes: int,
    batch_size: int = 1,
) -> SensitivityBound:
    """Corollary 1: ``Delta_2 = 2 k L eta`` (divided by b for mini-batches).

    Requires ``eta <= 2/beta`` (the 1-expansiveness regime of Lemma 1.1).
    """
    lipschitz = _finite_lipschitz(properties)
    beta = _finite_smoothness(properties)
    check_positive(eta, "eta")
    check_positive_int(passes, "passes")
    check_positive_int(batch_size, "batch_size")
    if eta > 2.0 / beta * (1.0 + 1e-12):
        raise ValueError(
            f"Corollary 1 requires eta <= 2/beta = {2.0 / beta:.6g}, got {eta:.6g}"
        )
    return SensitivityBound(
        value=2.0 * passes * lipschitz * eta / batch_size,
        regime="convex-constant (Corollary 1)",
        passes=passes,
        batch_size=batch_size,
    )


def convex_decreasing_step(
    properties: LossProperties,
    m: int,
    passes: int,
    c: float = 0.5,
    batch_size: int = 1,
) -> SensitivityBound:
    """Corollary 2 for ``eta_t = 2/(beta (t + m^c))``.

    We return the *exact* positional sum ``2 L sum_j eta_{i*+jm}`` with the
    worst case ``i* = 1`` (earliest position, largest steps), which is
    tighter than and implied by the paper's displayed simplification
    ``(4L/beta)(1/m^c + ln k / m)``; the simplification is also exposed via
    :func:`convex_decreasing_step_simplified` and the tests assert
    exact <= simplified.
    """
    lipschitz = _finite_lipschitz(properties)
    beta = _finite_smoothness(properties)
    check_positive_int(m, "m")
    check_positive_int(passes, "passes")
    check_positive_int(batch_size, "batch_size")
    check_in_range(c, "c", 0.0, 1.0, inclusive_high=False)
    offset = float(m) ** c
    # Worst-case differing position is the first update of each pass
    # (largest step sizes): t = 1 + j*m for pass j, in units of examples.
    steps = np.array(
        [2.0 / (beta * (1.0 + j * m + offset)) for j in range(passes)]
    )
    return SensitivityBound(
        value=2.0 * lipschitz * float(steps.sum()) / batch_size,
        regime="convex-decreasing (Corollary 2)",
        passes=passes,
        batch_size=batch_size,
    )


def convex_decreasing_step_simplified(
    properties: LossProperties, m: int, passes: int, c: float = 0.5
) -> float:
    """The paper's displayed Corollary 2 value ``(4L/beta)(1/m^c + ln k/m)``.

    For ``k = 1`` the ``ln k`` term vanishes and the bound is ``4L/(beta m^c)``.
    """
    lipschitz = _finite_lipschitz(properties)
    beta = _finite_smoothness(properties)
    check_positive_int(m, "m")
    check_positive_int(passes, "passes")
    check_in_range(c, "c", 0.0, 1.0, inclusive_high=False)
    return (4.0 * lipschitz / beta) * (1.0 / m**c + np.log(passes) / m if passes > 1 else 1.0 / m**c)


def convex_square_root_step(
    properties: LossProperties,
    m: int,
    passes: int,
    c: float = 0.5,
    batch_size: int = 1,
) -> SensitivityBound:
    """Corollary 3: ``(4L/beta) sum_{j=0}^{k-1} 1/(sqrt(jm+1) + m^c)``."""
    lipschitz = _finite_lipschitz(properties)
    beta = _finite_smoothness(properties)
    check_positive_int(m, "m")
    check_positive_int(passes, "passes")
    check_positive_int(batch_size, "batch_size")
    check_in_range(c, "c", 0.0, 1.0, inclusive_high=False)
    offset = float(m) ** c
    total = sum(1.0 / (np.sqrt(j * m + 1.0) + offset) for j in range(passes))
    return SensitivityBound(
        value=(4.0 * lipschitz / beta) * total / batch_size,
        regime="convex-square-root (Corollary 3)",
        passes=passes,
        batch_size=batch_size,
    )


def strongly_convex_constant_step(
    properties: LossProperties,
    eta: float,
    m: int,
    passes: int,
    batch_size: int = 1,
) -> SensitivityBound:
    """Lemma 7: ``Delta_2 <= 2 eta L / (1 - (1 - eta gamma)^m)``.

    Requires ``eta <= 1/beta`` (Lemma 2's contraction regime). The bound is
    independent of k — the geometric series over passes telescopes into the
    ``1/(1 - (1-eta*gamma)^m)`` factor.
    """
    lipschitz = _finite_lipschitz(properties)
    beta = _finite_smoothness(properties)
    gamma = properties.strong_convexity
    check_positive(gamma, "strong_convexity (loss must be strongly convex)")
    check_positive(eta, "eta")
    check_positive_int(m, "m")
    check_positive_int(passes, "passes")
    check_positive_int(batch_size, "batch_size")
    if eta > 1.0 / beta * (1.0 + 1e-12):
        raise ValueError(
            f"Lemma 7 requires eta <= 1/beta = {1.0 / beta:.6g}, got {eta:.6g}"
        )
    contraction = 1.0 - eta * gamma
    denominator = 1.0 - contraction**m
    if denominator <= 0.0:
        raise ValueError(
            "degenerate contraction (eta*gamma too small for this m); "
            "increase eta or m"
        )
    return SensitivityBound(
        value=2.0 * eta * lipschitz / denominator / batch_size,
        regime="strongly-convex-constant (Lemma 7)",
        passes=passes,
        batch_size=batch_size,
    )


def strongly_convex_decreasing_step(
    properties: LossProperties,
    m: int,
    passes: int,
    batch_size: int = 1,
) -> SensitivityBound:
    """Lemma 8: ``Delta_2 = 2 L / (gamma m)`` for ``eta_t = min(1/beta, 1/(gamma t))``.

    The headline result: sensitivity independent of the number of passes,
    which is why Algorithm 2 can run SGD to convergence "for free".
    """
    lipschitz = _finite_lipschitz(properties)
    _finite_smoothness(properties)  # the schedule needs beta; validate early
    gamma = properties.strong_convexity
    check_positive(gamma, "strong_convexity (loss must be strongly convex)")
    check_positive_int(m, "m")
    check_positive_int(passes, "passes")
    check_positive_int(batch_size, "batch_size")
    return SensitivityBound(
        value=2.0 * lipschitz / (gamma * m) / batch_size,
        regime="strongly-convex-decreasing (Lemma 8)",
        passes=passes,
        batch_size=batch_size,
    )


def sensitivity_for_schedule(
    properties: LossProperties,
    schedule: StepSizeSchedule,
    m: int,
    passes: int,
    batch_size: int = 1,
) -> SensitivityBound:
    """Dispatch to the right closed form for a known schedule type.

    This is what the high-level training APIs use: the user picks a
    schedule, and the library picks the matching paper result. Unknown
    schedule types raise rather than guessing — a wrong sensitivity is a
    silent privacy violation.

    The mini-batch refinement is applied through
    :func:`effective_minibatch_divisor`: when b does not divide m, the
    engine's short tail batch weights its examples by more than 1/b, so
    the bound divides by the worst-case ``min(b, m mod b)`` instead. The
    returned bound's ``batch_size`` field records the *configured* b (the
    provenance a log reader expects); when the tail divisor kicked in, the
    regime string says so.
    """
    total = passes * int(np.ceil(m / batch_size))
    divisor = effective_minibatch_divisor(m, batch_size)
    bound = _dispatch_closed_form(properties, schedule, m, passes, total, divisor)
    if divisor == batch_size:
        return bound
    return SensitivityBound(
        value=bound.value,
        regime=f"{bound.regime}+tail-batch-divisor-{divisor}",
        passes=bound.passes,
        batch_size=batch_size,
    )


def _dispatch_closed_form(
    properties: LossProperties,
    schedule: StepSizeSchedule,
    m: int,
    passes: int,
    total: int,
    batch_size: int,
) -> SensitivityBound:
    if isinstance(schedule, ConstantSchedule):
        if properties.is_strongly_convex:
            validate_strongly_convex_step_size(schedule, properties.smoothness, total)
            return strongly_convex_constant_step(
                properties, schedule.eta, m, passes, batch_size
            )
        validate_convex_step_size(schedule, properties.smoothness, total)
        return convex_constant_step(properties, schedule.eta, passes, batch_size)
    if isinstance(schedule, CappedInverseTSchedule):
        if not properties.is_strongly_convex:
            raise ValueError(
                "CappedInverseTSchedule is the strongly convex schedule of "
                "Algorithm 2; the loss supplied is not strongly convex"
            )
        return strongly_convex_decreasing_step(properties, m, passes, batch_size)
    if isinstance(schedule, DecreasingSchedule):
        if properties.is_strongly_convex:
            raise ValueError(
                "Corollary 2 covers the convex case only; use "
                "CappedInverseTSchedule for strongly convex losses"
            )
        return convex_decreasing_step(properties, m, passes, schedule.c, batch_size)
    if isinstance(schedule, SquareRootSchedule):
        if properties.is_strongly_convex:
            raise ValueError(
                "Corollary 3 covers the convex case only; use "
                "CappedInverseTSchedule for strongly convex losses"
            )
        return convex_square_root_step(properties, m, passes, schedule.c, batch_size)
    raise TypeError(
        f"no sensitivity result is known for schedule type "
        f"{type(schedule).__name__}; supported: ConstantSchedule, "
        f"CappedInverseTSchedule, DecreasingSchedule, SquareRootSchedule"
    )
