"""The Python client: ``TrainingService``'s verb surface over a socket.

:class:`ServiceClient` speaks ``repro-api/v1`` to a
:class:`~repro.api.server.ServiceApiServer` using nothing but
``urllib`` — the same zero-dependency discipline as the server. Verbs
mirror the in-process service:

>>> client = ServiceClient("http://127.0.0.1:8321", token="alice-token")
>>> view = client.submit("alice", "ratings", LogisticLoss(1e-3),
...                      epsilon=0.1, passes=5, batch_size=50, seed=7)
>>> view = client.wait(view.job_id)       # poll until terminal
>>> client.model(view.job_id)             # bitwise-equal to in-process

Faults come back as the **same exception classes** the in-process verbs
raise: the server serializes each :class:`~repro.service.errors
.ServiceError` to its stable ``code``, and the client rebuilds the
class from the code (``except UnknownJob`` works on either side of the
socket). Transport-level failures — connection refused, timeouts —
retry ``retries`` times with exponential backoff before surfacing as
:class:`ApiUnreachable`; HTTP-level faults are definitive and never
retried (the server *answered*; asking again won't change its mind).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Union

import numpy as np

from repro.api import wire
from repro.obs.trace import JobTrace
from repro.optim.losses import Loss
from repro.service.errors import NotCancellable, ServiceError, error_for_code
from repro.service.jobs import JobStatus
from repro.service.ledger import AccountStatement


class ApiUnreachable(ServiceError):
    """The server could not be reached (after the configured retries)."""

    code = "unreachable"
    http_status = 503


class ServiceClient:
    """A thin, synchronous ``repro-api/v1`` client.

    ``timeout`` is per-request (seconds); ``retries`` counts *additional*
    attempts after a transport failure, spaced ``backoff * 2**attempt``
    seconds apart. Retries are safe here: every endpoint is a read or an
    idempotent-at-the-ledger admission — a submit retried after a
    connection error that actually admitted lands as a second job, which
    the result cache serves for free once the first completes.
    """

    def __init__(
        self,
        base_url: str,
        token: Optional[str] = None,
        *,
        timeout: float = 10.0,
        retries: int = 2,
        backoff: float = 0.05,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.base_url = base_url.rstrip("/")
        self.token = token
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff

    # -- the verb surface --------------------------------------------------------

    def submit(
        self,
        principal: str,
        table: str,
        loss: Loss,
        *,
        epsilon: float,
        delta: float = 0.0,
        passes: int = 1,
        batch_size: int = 50,
        eta: Optional[float] = None,
        radius: Optional[float] = None,
        priority: int = 0,
        seed: int = 0,
    ) -> wire.JobView:
        """``TrainingService.submit`` over the wire; returns the admitted
        job's view immediately (QUEUED, COMPLETED-from-cache, or
        REJECTED — never blocks on a scan)."""
        request = wire.SubmitRequest(
            principal=principal,
            table=table,
            loss=loss,
            epsilon=epsilon,
            delta=delta,
            passes=passes,
            batch_size=batch_size,
            eta=eta,
            radius=radius,
            priority=priority,
            seed=seed,
        )
        payload = self._call("POST", "/v1/jobs", body=request.to_payload())
        return wire.JobView.from_payload(payload["job"])

    def result(self, job_id: str) -> wire.JobView:
        """One job's full record view (live status — a queued job says so)."""
        payload = self._call("GET", f"/v1/jobs/{job_id}")
        return wire.JobView.from_payload(payload["job"])

    def status(self, job_id: str) -> JobStatus:
        return self.result(job_id).status

    def model(self, job_id: str) -> np.ndarray:
        """The released weights, hex-decoded — bitwise-equal to the
        array ``TrainingService.model`` returns in process."""
        payload = self._call("GET", f"/v1/jobs/{job_id}/model")
        return wire.decode_weights(payload["model"])

    def trace(self, job_id: str) -> JobTrace:
        payload = self._call("GET", f"/v1/jobs/{job_id}/trace")
        return JobTrace.from_payload(payload["trace"])

    def cancel(self, job_id: str) -> bool:
        """Same contract as ``TrainingService.cancel``: ``True`` when the
        queued job was cancelled, ``False`` once it is uncancellable
        (the server's 409 ``not_cancellable`` maps back to ``False``)."""
        try:
            payload = self._call("POST", f"/v1/jobs/{job_id}/cancel")
        except NotCancellable:
            return False
        return bool(payload.get("cancelled", False))

    def budgets(self) -> List[AccountStatement]:
        """Every account's statement, as the same ``AccountStatement``
        objects the in-process verb returns."""
        payload = self._call("GET", "/v1/budgets")
        return [
            wire.BudgetView.from_payload(entry).to_statement()
            for entry in payload["budgets"]
        ]

    def health(self) -> Dict[str, object]:
        """``TrainingService.health()``'s dict (``/v1/healthz`` is the
        one unauthenticated endpoint — probes don't carry tokens)."""
        payload = self._call("GET", "/v1/healthz", auth=False)
        return wire.HealthView.from_payload(payload).to_payload()

    def metrics(self, format: str = "prometheus") -> Union[str, dict]:
        """The metrics exposition: Prometheus text or the JSON document."""
        if format not in ("prometheus", "json"):
            raise ValueError(
                f"unknown metrics format {format!r}: use 'prometheus' or 'json'"
            )
        raw = self._call_raw("GET", f"/v1/metrics?format={format}")
        if format == "json":
            return json.loads(raw.decode("utf-8"))
        return raw.decode("utf-8")

    def shutdown(self) -> None:
        """``POST /v1/admin/shutdown`` — requires this client's token to
        be the server's admin token."""
        self._call("POST", "/v1/admin/shutdown")

    # -- polling -----------------------------------------------------------------

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll_seconds: float = 0.02,
    ) -> wire.JobView:
        """Poll until the job is terminal; the remote stand-in for
        ``record.wait()``. Returns the final view; raises
        :class:`TimeoutError` if ``timeout`` expires first."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            view = self.result(job_id)
            if view.done:
                return view
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id!r} still {view.status} after {timeout}s"
                )
            time.sleep(poll_seconds)

    # -- transport ---------------------------------------------------------------

    def _call(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        *,
        auth: bool = True,
    ) -> dict:
        raw = self._call_raw(method, path, body, auth=auth)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(
                f"server returned non-JSON body for {method} {path}: {error}"
            ) from None
        return wire.check_envelope(payload)

    def _call_raw(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        *,
        auth: bool = True,
    ) -> bytes:
        url = self.base_url + path
        data = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        if auth and self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(
                url, data=data, headers=headers, method=method
            )
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    return response.read()
            except urllib.error.HTTPError as error:
                # The server answered: decode its fault envelope into the
                # taxonomy exception it names. Definitive — never retried.
                raise self._decode_fault(error) from None
            except (urllib.error.URLError, ConnectionError, TimeoutError) as error:
                last_error = error
                if attempt < self.retries:
                    time.sleep(self.backoff * (2.0**attempt))
        raise ApiUnreachable(
            f"{method} {url} failed after {self.retries + 1} attempt(s): "
            f"{last_error}"
        ) from last_error

    @staticmethod
    def _decode_fault(error: urllib.error.HTTPError) -> Exception:
        try:
            payload = json.loads(error.read().decode("utf-8"))
            fault = payload["error"]
            return error_for_code(fault["code"], fault["message"])
        except Exception:
            return ServiceError(f"HTTP {error.code}: {error.reason}")
