"""Service observability: lifecycle traces + a metrics registry.

``repro.obs`` is the telemetry substrate for the serving stack:

* :class:`JobTrace`/:class:`Span` — per-job monotonic-clock lifecycle
  spans (``admit`` → ``queued`` → ``claim`` → ``scan`` → ``epilogue``
  → ``commit`` → ``wal_sync``), recorded on each ``JobRecord`` and
  round-tripped through snapshots and the WAL.
* :class:`MetricsRegistry` — thread-safe counters/gauges/histograms
  with Prometheus-text and JSON exposition; :func:`disabled` returns
  the no-op twin used as the overhead benchmark's control arm.
* :mod:`repro.obs.summary` — rendering helpers shared by the
  ``repro serve`` summary and the ``repro trace`` CLI verb.

Telemetry reads clocks and counters only — it never touches the RNG
streams or any float math on the training path, so enabling it cannot
perturb a released model (the bitwise-equivalence gates run with it on).
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    disabled,
)
from repro.obs.trace import SPAN_ORDER, JobTrace, Span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "disabled",
    "JobTrace",
    "Span",
    "SPAN_ORDER",
]
