"""Datasets: synthetic stand-ins, preprocessing, random projection, registry.

The paper's real datasets are unavailable offline; DESIGN.md §3 documents
how each stand-in preserves the behaviour the evaluation depends on.
"""

from repro.data.dataset import Dataset, TrainTestPair
from repro.data.io import load_csv, load_npz, save_csv, save_npz
from repro.data.preprocessing import (
    max_row_norm,
    normalize_dataset,
    normalize_rows,
    project_to_unit_sphere,
)
from repro.data.projection import GaussianRandomProjection, project_dataset
from repro.data.registry import REGISTRY, DatasetSpec, get_spec, load, table3_rows
from repro.data.synthetic import (
    covertype_like,
    gaussian_clusters_multiclass,
    higgs_like,
    kddcup_like,
    linearly_separable_binary,
    mnist_like,
    protein_like,
)

__all__ = [
    "Dataset",
    "TrainTestPair",
    "save_npz",
    "load_npz",
    "save_csv",
    "load_csv",
    "normalize_rows",
    "project_to_unit_sphere",
    "normalize_dataset",
    "max_row_norm",
    "GaussianRandomProjection",
    "project_dataset",
    "REGISTRY",
    "DatasetSpec",
    "get_spec",
    "load",
    "table3_rows",
    "linearly_separable_binary",
    "gaussian_clusters_multiclass",
    "mnist_like",
    "protein_like",
    "covertype_like",
    "higgs_like",
    "kddcup_like",
]
