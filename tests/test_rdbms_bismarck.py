"""Tests for the Bismarck session, cost model, and synthesizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optim.losses import LogisticLoss
from repro.optim.schedules import ConstantSchedule
from repro.rdbms.bismarck import BismarckSession, integration_report
from repro.rdbms.cost_model import CostModel, RuntimeBreakdown, WorkCounters
from repro.rdbms.synthesizer import (
    analytic_counters,
    dataset_size_gb,
    synthesize_heap,
)
from tests.conftest import make_binary_data


def make_session(m=300, d=8, seed=0, pool_pages=1000):
    session = BismarckSession(buffer_pool_pages=pool_pages)
    X, y = make_binary_data(m, d, seed=seed)
    session.load_table("t", X, y)
    return session, X, y


class TestNoiselessTraining:
    def test_learns(self):
        session, X, y = make_session()
        report = session.run_noiseless(
            "t", LogisticLoss(), ConstantSchedule(0.5), epochs=10, batch_size=10,
            random_state=0,
        )
        accuracy = float(np.mean(np.where(X @ report.model >= 0, 1, -1) == y))
        assert accuracy > 0.9
        assert len(report.epochs) == 10
        assert report.noise_draws == 0

    def test_convergence_test_stops_early(self):
        session, X, y = make_session()
        report = session.run_noiseless(
            "t", LogisticLoss(regularization=0.1),
            ConstantSchedule(0.5), epochs=50, batch_size=10,
            convergence_tolerance=1e-3, random_state=0,
        )
        assert report.converged_early
        assert len(report.epochs) < 50

    def test_runtime_accumulates(self):
        session, X, y = make_session()
        report = session.run_noiseless(
            "t", LogisticLoss(), ConstantSchedule(0.1), epochs=4, random_state=0
        )
        assert report.simulated_seconds > 0
        assert report.simulated_seconds == pytest.approx(
            sum(e.runtime.total for e in report.epochs)
        )


class TestBoltOnTraining:
    def test_one_noise_draw(self):
        session, X, y = make_session()
        report = session.run_bolton_private(
            "t", LogisticLoss(), epsilon=1.0, epochs=3, batch_size=10,
            random_state=0,
        )
        assert report.noise_draws == 1

    def test_matches_library_sensitivity(self):
        session, X, y = make_session()
        lam = 0.05
        report = session.run_bolton_private(
            "t", LogisticLoss(regularization=lam), epsilon=1.0, epochs=2,
            batch_size=10, radius=1 / lam, random_state=0,
        )
        assert np.all(np.isfinite(report.model))

    def test_early_stop_requires_strong_convexity(self):
        session, X, y = make_session()
        with pytest.raises(ValueError, match="strongly convex"):
            session.run_bolton_private(
                "t", LogisticLoss(), epsilon=1.0, epochs=5,
                convergence_tolerance=1e-3, random_state=0,
            )

    def test_early_stop_allowed_when_strongly_convex(self):
        session, X, y = make_session()
        report = session.run_bolton_private(
            "t", LogisticLoss(regularization=0.1), epsilon=1.0, epochs=50,
            batch_size=10, radius=10.0, convergence_tolerance=1e-3,
            random_state=0,
        )
        assert report.converged_early


class TestWhiteBoxTraining:
    def test_scs13_noise_per_batch(self):
        session, X, y = make_session(m=300)
        report = session.run_scs13(
            "t", LogisticLoss(), epsilon=1.0, epochs=2, batch_size=10,
            random_state=0,
        )
        assert report.noise_draws == 2 * 30

    def test_bst14_noise_per_batch(self):
        session, X, y = make_session(m=300)
        report = session.run_bst14(
            "t", LogisticLoss(), epsilon=1.0, delta=1e-6, epochs=2, batch_size=10,
            radius=5.0, random_state=0,
        )
        assert report.noise_draws == 2 * 30

    def test_runtime_ordering_matches_paper(self):
        """Figure 5's story: ours ~ noiseless << SCS13/BST14 at small b."""
        session, X, y = make_session(m=500, pool_pages=10_000)
        noiseless = session.run_noiseless(
            "t", LogisticLoss(), ConstantSchedule(0.1), epochs=2, batch_size=1,
            random_state=0,
        ).simulated_seconds
        ours = session.run_bolton_private(
            "t", LogisticLoss(), epsilon=1.0, epochs=2, batch_size=1,
            random_state=0,
        ).simulated_seconds
        scs13 = session.run_scs13(
            "t", LogisticLoss(), epsilon=1.0, epochs=2, batch_size=1,
            random_state=0,
        ).simulated_seconds
        bst14 = session.run_bst14(
            "t", LogisticLoss(), epsilon=1.0, delta=1e-6, epochs=2, batch_size=1,
            radius=5.0, random_state=0,
        ).simulated_seconds
        assert ours <= noiseless * 1.10  # virtually no overhead
        assert scs13 > ours * 1.5
        assert bst14 > ours * 1.5

    def test_overhead_shrinks_with_batch_size(self):
        """Figure 5 row 2: the noise-sampling overhead disappears at large b."""
        session, X, y = make_session(m=2000, pool_pages=10_000)

        def ratio(batch):
            ours = session.run_bolton_private(
                "t", LogisticLoss(), epsilon=1.0, epochs=1, batch_size=batch,
                random_state=0,
            ).simulated_seconds
            scs13 = session.run_scs13(
                "t", LogisticLoss(), epsilon=1.0, epochs=1, batch_size=batch,
                random_state=0,
            ).simulated_seconds
            return scs13 / ours

        assert ratio(1) > ratio(500)
        assert ratio(500) < 1.3


class TestIntegrationReport:
    def test_bolton_is_small(self):
        report = integration_report()
        # The paper: "about 10 lines of code in Python".
        assert report["bolton_integration_loc"] <= 15
        assert report["whitebox_integration_loc"] > report["bolton_integration_loc"]
        assert not report["bolton_touches_engine_internals"]
        assert report["whitebox_touches_engine_internals"]


class TestCostModel:
    def test_zero_work_zero_cost(self):
        assert CostModel().charge(WorkCounters()).total == 0.0

    def test_noise_cost_dominates_at_batch_one(self):
        model = CostModel()
        work = analytic_counters(
            100_000, 50, epochs=1, batch_size=1, algorithm="scs13",
            buffer_pool_pages=10**6,
        )
        breakdown = model.charge(work)
        assert breakdown.noise_seconds > breakdown.gradient_seconds

    def test_breakdown_addition(self):
        a = RuntimeBreakdown(gradient_seconds=1.0, io_seconds=2.0)
        b = RuntimeBreakdown(gradient_seconds=0.5, noise_seconds=1.5)
        total = a + b
        assert total.gradient_seconds == 1.5
        assert total.total == pytest.approx(5.0)
        assert total.cpu_seconds == pytest.approx(3.0)


class TestSynthesizer:
    def test_deterministic_pages(self):
        heap = synthesize_heap(10_000, 20, seed=3)
        a = heap.read_page(5)
        b = heap.read_page(5)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_unit_ball(self):
        heap = synthesize_heap(1_000, 20, seed=3)
        page = heap.read_page(0)
        assert np.linalg.norm(page.features, axis=1).max() <= 1.0 + 1e-9

    def test_labels_binary(self):
        heap = synthesize_heap(1_000, 20, seed=3)
        page = heap.read_page(0)
        assert set(np.unique(page.labels)) <= {-1.0, 1.0}

    def test_paper_sizes(self):
        # Figure 2: 50M x (50 dims) ~ 18.6 GB in the paper; our page layout
        # yields the same order of magnitude.
        assert 10 < dataset_size_gb(50_000_000, 50) < 30
        assert 300 < dataset_size_gb(1_200_000_000, 50) < 600

    def test_learnable(self):
        heap = synthesize_heap(2_000, 10, seed=4, margin_noise=0.1)
        pages = [heap.read_page(i) for i in range(heap.num_pages)]
        X = np.vstack([p.features for p in pages])
        y = np.concatenate([p.labels for p in pages])
        from repro.optim.psgd import run_psgd

        result = run_psgd(
            LogisticLoss(), X, y, ConstantSchedule(0.5), passes=5, batch_size=10,
            random_state=0,
        )
        accuracy = float(np.mean(np.where(X @ result.model >= 0, 1, -1) == y))
        assert accuracy > 0.85


class TestAnalyticCounters:
    def test_matches_executed_run(self):
        """The analytic counters must agree with a real executed run —
        this is what licenses the Figure 2 extrapolation."""
        m, d, epochs, batch = 2000, 10, 2, 5
        session, X, y = make_session(m=m, d=d, pool_pages=10_000)
        report = session.run_scs13(
            "t", LogisticLoss(), epsilon=1.0, epochs=epochs, batch_size=batch,
            random_state=0,
        )
        analytic = analytic_counters(
            m, d, epochs, batch, "scs13", buffer_pool_pages=10_000
        )
        executed_draws = report.noise_draws
        assert executed_draws == analytic.noise_draws
        assert analytic.batch_updates == epochs * -(-m // batch)
        assert analytic.tuples_processed == m * epochs

    def test_memory_vs_disk_miss_pattern(self):
        cold = analytic_counters(
            100_000, 50, epochs=3, batch_size=1, algorithm="noiseless",
            buffer_pool_pages=10**6, warm_cache=False,
        )
        warm = analytic_counters(
            100_000, 50, epochs=3, batch_size=1, algorithm="noiseless",
            buffer_pool_pages=10**6, warm_cache=True,
        )
        disk = analytic_counters(
            100_000, 50, epochs=3, batch_size=1, algorithm="noiseless",
            buffer_pool_pages=10,
        )
        assert warm.page_misses == 0
        assert disk.page_misses == 3 * cold.page_misses

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            analytic_counters(100, 5, 1, 1, "sgdx", buffer_pool_pages=10)

    def test_linear_scaling(self):
        """Figure 2: runtime scales linearly with dataset size."""
        model = CostModel()
        times = []
        for m in (10_000_000, 20_000_000, 40_000_000):
            work = analytic_counters(
                m, 50, 1, 1, "bolton", buffer_pool_pages=8_000_000
            )
            times.append(model.charge(work).total)
        assert times[1] / times[0] == pytest.approx(2.0, rel=0.01)
        assert times[2] / times[0] == pytest.approx(4.0, rel=0.01)
