"""Ablation benches for the design choices DESIGN.md calls out.

1. Extended BST14 (noise recalibrated for km iterations) vs naive BST14
   (original m-pass noise, stopped after k passes) — substantiating the
   Section 4.1 claim that the extension "yields significantly better test
   accuracy".
2. The alternative convex step-size regimes (Corollaries 2–3) vs the
   constant step of Algorithm 1 — their sensitivities shrink with m where
   the constant-step bound depends only on k·η.
3. Model averaging (Lemma 10) — averaging costs nothing in sensitivity.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.bst14 import bst14_train
from repro.core.bolton import private_convex_psgd, private_psgd
from repro.core.sensitivity import (
    convex_constant_step,
    convex_decreasing_step,
    convex_square_root_step,
)
from repro.data.synthetic import linearly_separable_binary
from repro.evaluation.reporting import format_table
from repro.optim.losses import LogisticLoss
from repro.optim.schedules import DecreasingSchedule, SquareRootSchedule

from bench_util import run_once, write_report


def _bst14_extended_vs_naive():
    pair = linearly_separable_binary(
        "abl", 6000, 3000, 10, margin_noise=0.15, flip_fraction=0.01,
        random_state=0,
    )
    rows = []
    for eps in (0.1, 0.5):
        extended, naive = [], []
        for seed in range(3):
            kwargs = dict(
                epsilon=eps, delta=1e-6, passes=5, batch_size=50, radius=10.0,
                random_state=seed,
            )
            extended.append(
                bst14_train(pair.train.features, pair.train.labels,
                            LogisticLoss(), **kwargs)
                .accuracy(pair.test.features, pair.test.labels)
            )
            naive.append(
                bst14_train(pair.train.features, pair.train.labels,
                            LogisticLoss(), naive_noise_for_m_passes=True,
                            **kwargs)
                .accuracy(pair.test.features, pair.test.labels)
            )
        rows.append(
            {
                "epsilon": eps,
                "bst14_extended": float(np.mean(extended)),
                "bst14_naive_m_pass_noise": float(np.mean(naive)),
            }
        )
    return rows


def bench_ablation_bst14_extension(benchmark):
    rows = run_once(benchmark, _bst14_extended_vs_naive)
    write_report("ablation_bst14", format_table(rows))
    for row in rows:
        assert row["bst14_extended"] >= row["bst14_naive_m_pass_noise"] - 0.02


def _schedule_sensitivities():
    props = LogisticLoss().properties()
    rows = []
    for m in (1_000, 100_000):
        eta = 1.0 / np.sqrt(m)
        rows.append(
            {
                "m": m,
                "constant_2kLeta": convex_constant_step(props, eta, passes=10).value,
                "decreasing_cor2": convex_decreasing_step(props, m, passes=10).value,
                "sqrt_cor3": convex_square_root_step(props, m, passes=10).value,
            }
        )
    return rows


def bench_ablation_schedule_sensitivities(benchmark):
    rows = run_once(benchmark, _schedule_sensitivities)
    write_report("ablation_schedules", format_table(rows))
    for row in rows:
        # All alternative regimes shrink with m.
        assert row["decreasing_cor2"] < 1.0
        assert row["sqrt_cor3"] < 1.0
    # Decreasing steps give the smallest sensitivity at large m.
    assert rows[1]["decreasing_cor2"] < rows[1]["constant_2kLeta"]


def _schedule_accuracy():
    pair = linearly_separable_binary(
        "abl2", 8000, 4000, 10, margin_noise=0.15, flip_fraction=0.01,
        random_state=1,
    )
    m = pair.train.size
    props = LogisticLoss().properties()
    eps = 0.2
    rows = []
    for seed in range(3):
        constant = private_convex_psgd(
            pair.train.features, pair.train.labels, LogisticLoss(),
            epsilon=eps, passes=5, batch_size=50, random_state=seed,
        )
        decreasing = private_psgd(
            pair.train.features, pair.train.labels, LogisticLoss(),
            epsilon=eps, schedule=DecreasingSchedule(props.smoothness, m),
            passes=5, batch_size=50, random_state=seed,
        )
        sqrt_sched = private_psgd(
            pair.train.features, pair.train.labels, LogisticLoss(),
            epsilon=eps, schedule=SquareRootSchedule(props.smoothness, m),
            passes=5, batch_size=50, random_state=seed,
        )
        rows.append(
            {
                "seed": seed,
                "constant": constant.accuracy(pair.test.features, pair.test.labels),
                "decreasing": decreasing.accuracy(pair.test.features, pair.test.labels),
                "square_root": sqrt_sched.accuracy(pair.test.features, pair.test.labels),
            }
        )
    return rows


def bench_ablation_schedule_accuracy(benchmark):
    rows = run_once(benchmark, _schedule_accuracy)
    write_report("ablation_schedule_accuracy", format_table(rows))
    # All private variants beat coin flipping on this easy task.
    for row in rows:
        assert max(row["constant"], row["decreasing"], row["square_root"]) > 0.6


def _averaging_effect():
    pair = linearly_separable_binary(
        "abl3", 8000, 4000, 10, margin_noise=0.15, flip_fraction=0.01,
        random_state=2,
    )
    rows = []
    for average in (None, "uniform", "suffix"):
        accs, sens = [], None
        for seed in range(3):
            result = private_convex_psgd(
                pair.train.features, pair.train.labels, LogisticLoss(),
                epsilon=0.5, passes=5, batch_size=50, average=average,
                random_state=seed,
            )
            accs.append(result.accuracy(pair.test.features, pair.test.labels))
            sens = result.sensitivity.value
        rows.append(
            {
                "averaging": str(average),
                "accuracy": float(np.mean(accs)),
                "sensitivity": sens,
            }
        )
    return rows


def bench_ablation_model_averaging(benchmark):
    rows = run_once(benchmark, _averaging_effect)
    write_report("ablation_averaging", format_table(rows))
    # Lemma 10: averaging does not increase the sensitivity.
    values = {row["sensitivity"] for row in rows}
    assert len(values) == 1
