"""Shared utilities: RNG management, validation, and linear-algebra helpers."""

from repro.utils.linalg import clip_to_ball, l2_norm, normalize_rows, random_unit_vector
from repro.utils.rng import (
    RandomState,
    as_generator,
    fixed_permutations,
    permutation_stream,
    spawn_generators,
)
from repro.utils.validation import (
    check_binary_labels,
    check_in_range,
    check_matrix_labels,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
    check_unit_ball,
)

__all__ = [
    "RandomState",
    "as_generator",
    "spawn_generators",
    "permutation_stream",
    "fixed_permutations",
    "l2_norm",
    "clip_to_ball",
    "normalize_rows",
    "random_unit_vector",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_probability",
    "check_positive_int",
    "check_non_negative_int",
    "check_matrix_labels",
    "check_binary_labels",
    "check_unit_ball",
]
