"""Tests for the empirical DP verifier — and, through it, end-to-end
empirical validation of the bolt-on release path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dp_verify import (
    PrivacyLossEstimate,
    estimate_privacy_loss,
    verify_output_perturbation,
)
from repro.core.mechanisms import (
    PrivacyParameters,
    SphericalLaplaceMechanism,
)


class TestEstimate:
    def test_identical_mechanisms_show_no_loss(self):
        mech = lambda rng: rng.normal(0.0, 1.0, size=1)
        estimate = estimate_privacy_loss(mech, mech, trials=4000, random_state=0)
        assert estimate.estimated_epsilon < 0.2

    def test_disjoint_mechanisms_show_large_loss(self):
        a = lambda rng: rng.normal(0.0, 0.05, size=1)
        b = lambda rng: rng.normal(1.0, 0.05, size=1)
        estimate = estimate_privacy_loss(a, b, trials=4000, random_state=0)
        # Supports barely overlap -> huge measured loss.
        assert estimate.estimated_epsilon > 1.0

    def test_within_helper(self):
        estimate = PrivacyLossEstimate(estimated_epsilon=0.5, usable_bins=5, trials=100)
        assert estimate.within(0.5)
        assert estimate.within(0.4, slack=0.15)
        assert not estimate.within(0.4)

    def test_invalid_args(self):
        mech = lambda rng: rng.normal(size=1)
        with pytest.raises(ValueError):
            estimate_privacy_loss(mech, mech, trials=0)


class TestOutputPerturbationVerification:
    def test_correctly_calibrated_laplace_passes(self):
        """The actual bolt-on release at eps=1 must measure <= ~1."""
        epsilon, sensitivity = 1.0, 0.5
        mechanism = SphericalLaplaceMechanism()
        privacy = PrivacyParameters(epsilon)

        def release(w, rng):
            return mechanism.privatize(w, sensitivity, privacy, rng)

        model_a = np.array([0.3, -0.1, 0.2])
        model_b = model_a + np.array([0.5, 0.0, 0.0]) * (sensitivity / 0.5)
        estimate = verify_output_perturbation(
            release, model_a, model_b, epsilon, sensitivity,
            trials=20_000, random_state=1,
        )
        assert estimate.usable_bins > 0
        assert estimate.within(epsilon, slack=0.35)

    def test_undercalibrated_mechanism_flagged(self):
        """Noise scaled for half the true sensitivity must be detected."""
        epsilon, sensitivity = 1.0, 0.5
        mechanism = SphericalLaplaceMechanism()
        privacy = PrivacyParameters(epsilon)

        def broken_release(w, rng):
            # BUG under test: calibrates to sensitivity/4.
            return mechanism.privatize(w, sensitivity / 4, privacy, rng)

        model_a = np.zeros(3)
        model_b = np.array([sensitivity, 0.0, 0.0])
        estimate = verify_output_perturbation(
            broken_release, model_a, model_b, epsilon, sensitivity,
            trials=20_000, random_state=2,
        )
        assert estimate.estimated_epsilon > epsilon + 0.5

    def test_rejects_models_farther_than_sensitivity(self):
        def release(w, rng):
            return w

        with pytest.raises(ValueError, match="does not witness"):
            verify_output_perturbation(
                release, np.zeros(2), np.array([5.0, 0.0]),
                epsilon=1.0, sensitivity=0.5,
            )

    def test_end_to_end_bolton_release(self):
        """Run the real trainer on real neighbouring datasets and verify
        the measured privacy loss of the full pipeline."""
        from repro.core.bolton import private_strongly_convex_psgd
        from repro.optim.losses import LogisticLoss
        from tests.conftest import make_binary_data

        lam, eps = 0.2, 1.0
        loss = LogisticLoss(regularization=lam)
        X, y = make_binary_data(60, 4, seed=31)
        X2, y2 = X.copy(), y.copy()
        X2[7] = -X2[7]
        y2[7] = -y2[7]

        # Train both (same permutation via same seed; the noiseless models
        # differ by at most the calibrated sensitivity, as verified by the
        # sensitivity property tests).
        a = private_strongly_convex_psgd(
            X, y, loss, eps, passes=2, batch_size=5, random_state=3,
        )
        b = private_strongly_convex_psgd(
            X2, y2, loss, eps, passes=2, batch_size=5, random_state=3,
        )
        sensitivity = a.sensitivity.value
        mechanism = SphericalLaplaceMechanism()
        privacy = PrivacyParameters(eps)

        def release(w, rng):
            return mechanism.privatize(w, sensitivity, privacy, rng)

        estimate = verify_output_perturbation(
            release,
            a.unreleased_noiseless_model,
            b.unreleased_noiseless_model,
            eps,
            sensitivity,
            trials=15_000,
            random_state=4,
        )
        assert estimate.within(eps, slack=0.4)
