"""Figure 2 — scalability of the (ε,δ)-DP algorithms in Bismarck.

Panel (a): in-memory datasets, 10–50M examples (3.7–18.6 GB at d = 50).
Panel (b): disk-based datasets, 0.4–1.2B examples (149–447 GB).

Runtimes come from the calibrated cost model applied to the analytically
derived work counters (validated against executed small runs by
``bench_fig2_executed_consistency``). Asserted shapes: linear scaling for
everyone, white-box algorithms ~2–6× slower in memory, and the gap
collapsing in the I/O-bound disk regime.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.figures import figure2_scalability
from repro.evaluation.reporting import format_series
from repro.optim.losses import LogisticLoss
from repro.rdbms.bismarck import BismarckSession
from repro.rdbms.cost_model import CostModel
from repro.rdbms.synthesizer import analytic_counters
from tests.conftest import make_binary_data

from bench_util import run_once, write_report

IN_MEMORY_SIZES = (10_000_000, 20_000_000, 30_000_000, 40_000_000, 50_000_000)
DISK_SIZES = (200_000_000, 400_000_000, 800_000_000, 1_200_000_000)
#: 64 GB of 8 KiB pages — the paper's machine.
MEMORY_PAGES = 8_000_000


def bench_fig2a_in_memory(benchmark):
    fig = run_once(
        benchmark, figure2_scalability,
        sizes=IN_MEMORY_SIZES, buffer_pool_pages=MEMORY_PAGES,
    )
    text = format_series(
        "Figure 2(a): in-memory scalability (simulated minutes/epoch, b=1, d=50)",
        "millions", fig["x"], fig["series"],
    )
    sizes = ", ".join(f"{gb:.1f} GB" for gb in fig["meta"]["sizes_gb"])
    write_report("fig2a_scalability_memory", text + f"\ndataset sizes: {sizes}")

    series = fig["series"]
    assert all(fig["meta"]["in_memory"])
    for values in series.values():
        # linear scaling: 5x data -> ~5x time
        np.testing.assert_allclose(values[-1] / values[0], 5.0, rtol=0.05)
    # ours tracks noiseless; white-box pays 2-6x at b=1
    for i in range(len(fig["x"])):
        assert series["bolton"][i] <= series["noiseless"][i] * 1.05
        assert 1.5 < series["scs13"][i] / series["noiseless"][i] < 8.0
        assert 1.5 < series["bst14"][i] / series["noiseless"][i] < 8.0


def bench_fig2b_disk(benchmark):
    fig = run_once(
        benchmark, figure2_scalability,
        sizes=DISK_SIZES, buffer_pool_pages=MEMORY_PAGES,
    )
    text = format_series(
        "Figure 2(b): disk-based scalability (simulated minutes/epoch, b=1, d=50)",
        "millions", fig["x"], fig["series"],
    )
    sizes = ", ".join(f"{gb:.0f} GB" for gb in fig["meta"]["sizes_gb"])
    write_report("fig2b_scalability_disk", text + f"\ndataset sizes: {sizes}")

    series = fig["series"]
    assert not any(fig["meta"]["in_memory"])
    # Linear in size.
    for values in series.values():
        np.testing.assert_allclose(values[-1] / values[0], 6.0, rtol=0.05)
    # I/O dominates: the white-box overhead ratio is much smaller than in
    # memory (the paper's "I/O costs ... dominate the runtime").
    disk_ratio = series["scs13"][0] / series["noiseless"][0]
    assert disk_ratio < 1.6


def _executed_vs_analytic():
    m, d, epochs, batch = 3000, 10, 2, 1
    pool_pages = 10_000
    X, y = make_binary_data(m, d, seed=0)
    session = BismarckSession(buffer_pool_pages=pool_pages)
    session.load_table("t", X, y)
    report = session.run_scs13(
        "t", LogisticLoss(), epsilon=1.0, epochs=epochs, batch_size=batch,
        random_state=0,
    )
    analytic = analytic_counters(
        m, d, epochs, batch, "scs13", pool_pages, warm_cache=False
    )
    simulated = CostModel().charge(analytic).total
    return report.simulated_seconds, simulated, report.noise_draws, analytic.noise_draws


def bench_fig2_executed_consistency(benchmark):
    """The extrapolated counters agree with an actually-executed run."""
    executed, simulated, draws_exec, draws_analytic = run_once(
        benchmark, _executed_vs_analytic
    )
    write_report(
        "fig2_consistency",
        f"executed simulated-seconds: {executed:.6f}\n"
        f"analytic simulated-seconds: {simulated:.6f}\n"
        f"noise draws executed/analytic: {draws_exec}/{draws_analytic}",
    )
    assert draws_exec == draws_analytic
    assert abs(executed - simulated) / simulated < 0.25
