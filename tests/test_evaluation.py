"""Tests for the evaluation harness: metrics, scenarios, sweeps, figures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import linearly_separable_binary
from repro.evaluation.figures import (
    epsilons_for,
    figure1_integration,
    figure2_scalability,
    load_experiment_dataset,
)
from repro.evaluation.harness import (
    BINARY_EPSILONS,
    MNIST_EPSILONS,
    accuracy_sweep,
    algorithms_for,
    private_tuning_sweep,
    public_tuning_sweep,
)
from repro.evaluation.metrics import (
    classification_accuracy,
    empirical_risk,
    excess_empirical_risk,
    reference_minimum_risk,
    zero_one_errors,
)
from repro.evaluation.reporting import format_series, format_table, series_summary
from repro.evaluation.scenarios import (
    Scenario,
    TrainSettings,
    make_loss,
    paper_delta,
    train,
)
from repro.evaluation.tables import table2_rows, table3, table4_rows
from repro.optim.losses import HuberSVMLoss, LogisticLoss
from repro.tuning.grid import ParameterGrid
from tests.conftest import make_binary_data


@pytest.fixture(scope="module")
def pair():
    return linearly_separable_binary(
        "eval", 1200, 600, 8, margin_noise=0.15, flip_fraction=0.01, random_state=0
    )


class TestMetrics:
    def test_accuracy_and_errors_consistent(self):
        X, y = make_binary_data(200, 5, seed=0)
        w = np.ones(5)
        loss = LogisticLoss()
        acc = classification_accuracy(w, loss, X, y)
        errors = zero_one_errors(w, loss, X, y)
        assert errors == pytest.approx((1 - acc) * 200)

    def test_empirical_risk_matches_loss(self):
        X, y = make_binary_data(50, 4, seed=1)
        w = np.zeros(4)
        assert empirical_risk(w, LogisticLoss(), X, y) == pytest.approx(np.log(2))

    def test_reference_minimum_below_any_candidate(self):
        X, y = make_binary_data(300, 5, seed=2)
        loss = LogisticLoss(regularization=0.1)
        reference = reference_minimum_risk(loss, X, y, passes=30)
        rng = np.random.default_rng(0)
        for _ in range(5):
            w = rng.normal(size=5)
            assert empirical_risk(w, loss, X, y) >= reference - 1e-6

    def test_excess_risk_nonnegative_for_random_models(self):
        X, y = make_binary_data(300, 5, seed=3)
        loss = LogisticLoss(regularization=0.1)
        reference = reference_minimum_risk(loss, X, y, passes=30)
        w = np.random.default_rng(1).normal(size=5) * 3
        assert excess_empirical_risk(w, loss, X, y, reference) > 0


class TestScenarios:
    def test_four_scenarios(self):
        assert len(Scenario) == 4
        assert Scenario.CONVEX_PURE.is_strongly_convex is False
        assert Scenario.STRONGLY_CONVEX_APPROX.is_strongly_convex
        assert Scenario.CONVEX_APPROX.is_approximate_dp

    def test_bst14_support(self):
        assert not Scenario.CONVEX_PURE.supports_bst14
        assert Scenario.CONVEX_APPROX.supports_bst14

    def test_paper_delta(self):
        assert paper_delta(1000) == pytest.approx(1e-6)
        with pytest.raises(ValueError):
            paper_delta(1)

    def test_make_loss_variants(self):
        assert make_loss(Scenario.CONVEX_PURE).regularization == 0.0
        assert make_loss(Scenario.STRONGLY_CONVEX_PURE, 0.01).regularization == 0.01
        assert isinstance(
            make_loss(Scenario.CONVEX_PURE, model="huber"), HuberSVMLoss
        )
        with pytest.raises(ValueError):
            make_loss(Scenario.CONVEX_PURE, model="svm")

    def test_settings_radius(self):
        sc = TrainSettings(Scenario.STRONGLY_CONVEX_PURE, epsilon=1.0,
                           regularization=0.01)
        assert sc.radius == pytest.approx(100.0)
        cv = TrainSettings(Scenario.CONVEX_PURE, epsilon=1.0)
        assert cv.radius == 10.0  # the convex default for BST14

    def test_settings_delta_resolution(self):
        approx = TrainSettings(Scenario.CONVEX_APPROX, epsilon=1.0)
        assert approx.resolve_delta(100) == pytest.approx(1e-4)
        pure = TrainSettings(Scenario.CONVEX_PURE, epsilon=1.0)
        assert pure.resolve_delta(100) == 0.0

    def test_train_dispatch_all_algorithms(self, pair):
        settings = TrainSettings(
            Scenario.STRONGLY_CONVEX_APPROX, epsilon=1.0, passes=2, batch_size=20,
        )
        for algorithm in ("noiseless", "ours", "scs13", "bst14"):
            result = train(
                algorithm, pair.train.features, pair.train.labels, settings,
                random_state=0,
            )
            predictions = result.predict(pair.test.features)
            assert predictions.shape == (600,)

    def test_bst14_rejected_in_pure_scenarios(self, pair):
        settings = TrainSettings(Scenario.CONVEX_PURE, epsilon=1.0, passes=1)
        with pytest.raises(ValueError, match="delta"):
            train("bst14", pair.train.features, pair.train.labels, settings)

    def test_unknown_algorithm(self, pair):
        settings = TrainSettings(Scenario.CONVEX_PURE, epsilon=1.0)
        with pytest.raises(ValueError, match="unknown algorithm"):
            train("dpsgd", pair.train.features, pair.train.labels, settings)


class TestAlgorithmsFor:
    def test_panel_membership(self):
        assert algorithms_for(Scenario.CONVEX_PURE) == [
            "noiseless", "ours", "scs13",
        ]
        assert algorithms_for(Scenario.CONVEX_APPROX) == [
            "noiseless", "ours", "scs13", "bst14",
        ]

    def test_exclude_noiseless(self):
        names = algorithms_for(Scenario.CONVEX_PURE, include_noiseless=False)
        assert "noiseless" not in names


class TestAccuracySweep:
    def test_series_shape(self, pair):
        sweep = accuracy_sweep(
            pair.train, pair.test, Scenario.STRONGLY_CONVEX_APPROX, [0.1, 1.0],
            settings=TrainSettings(
                Scenario.STRONGLY_CONVEX_APPROX, epsilon=1.0, passes=2,
                batch_size=50,
            ),
            random_state=0,
        )
        assert set(sweep.series) == {"noiseless", "ours", "scs13", "bst14"}
        assert all(len(v) == 2 for v in sweep.series.values())
        assert all(0.0 <= a <= 1.0 for v in sweep.series.values() for a in v)

    def test_noiseless_flat_across_epsilon(self, pair):
        sweep = accuracy_sweep(
            pair.train, pair.test, Scenario.CONVEX_PURE, [0.1, 10.0],
            settings=TrainSettings(Scenario.CONVEX_PURE, epsilon=1.0, passes=2,
                                   batch_size=50),
            random_state=0,
        )
        a, b = sweep.series["noiseless"]
        assert a == pytest.approx(b)

    def test_rows_format(self, pair):
        sweep = accuracy_sweep(
            pair.train, pair.test, Scenario.CONVEX_PURE, [0.5],
            algorithms=["ours"],
            settings=TrainSettings(Scenario.CONVEX_PURE, epsilon=1.0, passes=1,
                                   batch_size=50),
            random_state=0,
        )
        rows = sweep.as_rows()
        assert rows[0]["algorithm"] == "ours"
        assert rows[0]["epsilon"] == 0.5

    def test_repeats_average(self, pair):
        sweep = accuracy_sweep(
            pair.train, pair.test, Scenario.CONVEX_PURE, [1.0],
            algorithms=["ours"], repeats=3,
            settings=TrainSettings(Scenario.CONVEX_PURE, epsilon=1.0, passes=1,
                                   batch_size=50),
            random_state=0,
        )
        assert len(sweep.series["ours"]) == 1

    def test_multiclass_budget_split(self):
        from repro.data.synthetic import gaussian_clusters_multiclass

        mc = gaussian_clusters_multiclass("mc", 600, 200, 10, 3,
                                          cluster_spread=1.0, random_state=1)
        sweep = accuracy_sweep(
            mc.train, mc.test, Scenario.CONVEX_PURE, [50.0],
            algorithms=["ours"],
            settings=TrainSettings(Scenario.CONVEX_PURE, epsilon=1.0, passes=2,
                                   batch_size=20),
            random_state=0,
        )
        assert sweep.series["ours"][0] > 0.4  # above 1/3 chance


class TestTuningSweeps:
    def test_private_tuning_sweep(self, pair):
        grid = ParameterGrid({"passes": [1, 2]})
        sweep = private_tuning_sweep(
            pair.train, pair.test, Scenario.STRONGLY_CONVEX_APPROX, [1.0],
            algorithms=["noiseless", "ours"], grid=grid,
            settings=TrainSettings(Scenario.STRONGLY_CONVEX_APPROX, epsilon=1.0,
                                   passes=2, batch_size=50),
            random_state=0,
        )
        assert sweep.tuning_mode == "private"
        assert set(sweep.series) == {"noiseless", "ours"}

    def test_public_tuning_sweep(self, pair):
        public = linearly_separable_binary(
            "public", 600, 1, 8, margin_noise=0.15, flip_fraction=0.01,
            random_state=99,
        ).train
        grid = ParameterGrid({"passes": [1, 2]})
        sweep = public_tuning_sweep(
            pair.train, pair.test, public, Scenario.CONVEX_PURE, [1.0],
            algorithms=["ours"], grid=grid,
            settings=TrainSettings(Scenario.CONVEX_PURE, epsilon=1.0, passes=2,
                                   batch_size=50),
            random_state=0,
        )
        assert sweep.tuning_mode == "public"
        assert len(sweep.series["ours"]) == 1


class TestFigures:
    def test_figure1(self):
        fig = figure1_integration()
        loc = fig["series"]["integration_loc"]
        assert loc[0] < loc[1]

    def test_figure2_linear_and_ordered(self):
        fig = figure2_scalability(sizes=(5_000_000, 10_000_000))
        series = fig["series"]
        # linear scaling
        for values in series.values():
            assert values[1] / values[0] == pytest.approx(2.0, rel=0.05)
        # white-box slower than bolt-on at b=1
        assert series["scs13"][0] > series["bolton"][0]
        assert series["bolton"][0] == pytest.approx(series["noiseless"][0], rel=0.01)

    def test_figure2_disk_regime_io_dominated(self):
        fig = figure2_scalability(
            sizes=(200_000_000,), buffer_pool_pages=1000,
            algorithms=("noiseless", "scs13"),
        )
        assert fig["meta"]["in_memory"] == [False]
        # I/O dominates: algorithms within 2x of each other (Figure 2b).
        noiseless, scs13 = fig["series"]["noiseless"][0], fig["series"]["scs13"][0]
        assert scs13 / noiseless < 2.0

    def test_epsilons_for(self):
        assert tuple(epsilons_for("mnist")) == MNIST_EPSILONS
        assert tuple(epsilons_for("protein")) == BINARY_EPSILONS

    def test_load_experiment_dataset_projects_mnist(self):
        pair = load_experiment_dataset("mnist", scale=0.005, seed=0)
        assert pair.train.dimension == 50
        assert pair.test.dimension == 50

    def test_load_experiment_dataset_binary_passthrough(self):
        pair = load_experiment_dataset("protein", scale=0.005, seed=0)
        assert pair.train.dimension == 74


class TestTables:
    def test_table2_advantages_grow_with_m(self):
        rows = table2_rows(sizes=(1000, 1_000_000))
        assert rows[1]["convex_advantage"] > rows[0]["convex_advantage"]
        assert rows[1]["sc_advantage"] > rows[0]["sc_advantage"]
        for row in rows:
            assert row["convex_advantage"] == pytest.approx(
                row["expected_convex_advantage"]
            )

    def test_table3_has_paper_values(self):
        rows = table3()
        assert {r["dataset"] for r in rows} == {"MNIST", "Protein", "Forest"}

    def test_table4_rows(self):
        props = LogisticLoss(regularization=0.01).properties(radius=100.0)
        rows = table4_rows(10000, props)
        assert len(rows) == 4
        assert "min(1/beta" in rows[2]["ours"]
        convex_only = table4_rows(10000, LogisticLoss().properties())
        assert len(convex_only) == 2


class TestReporting:
    def test_format_table(self):
        text = format_table([{"a": 1, "b": 0.5}, {"a": 2, "b": 0.25}])
        assert "a" in text and "0.5000" in text

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_series(self):
        text = format_series("demo", "eps", [0.1, 0.2], {"ours": [0.9, 0.95]})
        assert "== demo ==" in text
        assert "ours" in text

    def test_series_summary(self):
        summary = series_summary({"a": [0.0, 1.0]})
        assert summary["a"] == 0.5
