"""Micro-benchmarks of the library's hot loops (real wall-clock).

The figure benches report *simulated* engine seconds; these benchmark the
actual Python implementation with repeated timed rounds so regressions in
the optimizer or the mechanisms show up directly:

* one PSGD epoch on each execution path — "vectorized" (block mini-batch
  matrices, the default) vs "scalar" (the per-example reference the
  equivalence suite pins the fast path to),
* one mini-batch gradient,
* one spherical-Laplace draw vs one epoch's worth of per-batch Gaussian
  draws — the bolt-on-vs-white-box runtime story at its smallest scale.

Run directly as ``python benchmarks/bench_hotloops.py --compare-paths`` to
time scalar vs vectorized epochs at the standard shape (m=5000, d=50,
b=50), print the measured speedup, and **exit 1 if the vectorized path
falls below 3x** — the CI gate that keeps per-example loops from creeping
back into the hot path.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

# Direct script execution (`python benchmarks/bench_hotloops.py`) puts only
# benchmarks/ on sys.path; make the package and tests.conftest importable
# the same way conftest.py does for pytest runs.
_here = pathlib.Path(__file__).resolve().parent
for _path in (str(_here.parent / "src"), str(_here.parent)):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import numpy as np

from repro.core.mechanisms import (
    GaussianMechanism,
    PrivacyParameters,
    SphericalLaplaceMechanism,
)
from repro.optim.losses import LogisticLoss
from repro.optim.psgd import run_psgd
from repro.optim.schedules import ConstantSchedule
from tests.conftest import make_binary_data

M, D, BATCH = 5000, 50, 50
X, Y = make_binary_data(M, D, seed=77)
LOSS = LogisticLoss()

#: --compare-paths fails below this vectorized-over-scalar speedup.
SPEEDUP_FLOOR = 3.0


def _run_epoch(execution: str):
    return run_psgd(
        LOSS, X, Y, ConstantSchedule(0.01), passes=1, batch_size=BATCH,
        random_state=0, execution=execution,
    )


def bench_psgd_epoch(benchmark):
    result = benchmark(lambda: _run_epoch("vectorized"))
    assert result.updates == M // BATCH


def bench_psgd_epoch_scalar(benchmark):
    result = benchmark(lambda: _run_epoch("scalar"))
    assert result.updates == M // BATCH


def bench_minibatch_gradient(benchmark):
    w = np.zeros(D)
    gradient = benchmark(lambda: LOSS.batch_gradient(w, X[:BATCH], Y[:BATCH]))
    assert gradient.shape == (D,)


def bench_bolton_noise_total(benchmark):
    """Everything the bolt-on approach adds at runtime: ONE draw."""
    mechanism = SphericalLaplaceMechanism()
    privacy = PrivacyParameters(0.1)
    rng = np.random.default_rng(0)
    noise = benchmark(lambda: mechanism.sample(D, 1e-3, privacy, rng))
    assert noise.shape == (D,)


def bench_whitebox_noise_total(benchmark):
    """What SCS13/BST14 add per epoch: one Gaussian draw per mini-batch."""
    mechanism = GaussianMechanism()
    privacy = PrivacyParameters(0.1, 1e-8)
    rng = np.random.default_rng(0)
    draws_per_epoch = M // BATCH

    def per_epoch():
        return [
            mechanism.sample(D, 1e-3, privacy, rng)
            for _ in range(draws_per_epoch)
        ]

    draws = benchmark(per_epoch)
    assert len(draws) == draws_per_epoch


# -- the scalar-vs-vectorized CI gate ----------------------------------------


def _best_of(fn, rounds: int = 3, warmup: int = 1) -> float:
    """Minimum wall-clock seconds of ``fn`` over ``rounds`` timed runs."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def compare_paths(rounds: int = 3) -> float:
    """Time one PSGD epoch per execution path and report the speedup.

    Also asserts the two paths agree on the model they produce — a timing
    comparison of divergent computations would be meaningless.
    """
    vectorized = _run_epoch("vectorized")
    scalar = _run_epoch("scalar")
    max_diff = float(np.abs(vectorized.model - scalar.model).max())
    assert max_diff <= 1e-12, f"paths diverged: max |dw| = {max_diff:.3e}"

    scalar_s = _best_of(lambda: _run_epoch("scalar"), rounds)
    vectorized_s = _best_of(lambda: _run_epoch("vectorized"), rounds)
    speedup = scalar_s / vectorized_s
    print(f"hot-loop shape: m={M}, d={D}, b={BATCH} (one epoch, best of {rounds})")
    print(f"scalar epoch:     {scalar_s * 1e3:8.2f} ms")
    print(f"vectorized epoch: {vectorized_s * 1e3:8.2f} ms")
    print(f"speedup:          {speedup:8.2f}x  (gate: >= {SPEEDUP_FLOOR}x)")
    print(f"path agreement:   max |dw| = {max_diff:.3e} (<= 1e-12)")
    return speedup


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--compare-paths",
        action="store_true",
        help="time scalar vs vectorized PSGD epochs and fail (exit 1) if "
        f"the vectorized path is below {SPEEDUP_FLOOR}x",
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="timed rounds per path (default 3)"
    )
    args = parser.parse_args(argv)
    if args.rounds < 1:
        parser.error(f"--rounds must be a positive integer, got {args.rounds}")
    if not args.compare_paths:
        parser.print_help()
        return 0
    speedup = compare_paths(args.rounds)
    if speedup < SPEEDUP_FLOOR:
        print(f"FAIL: vectorized path regressed below {SPEEDUP_FLOOR}x")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
