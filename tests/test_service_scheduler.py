"""Tests for the shared-scan scheduler and the training service.

Two contracts carry the subsystem:

* **Determinism / fusion-invisibility** — a job's released weights are a
  pure function of (table, table scan seed, candidate, job seed). The
  same submitted job set must produce *bitwise-identical* per-job
  weights whether jobs run fused, sequentially (``fuse=False``), or in a
  different arrival order — ``np.array_equal``, atol=0, no tolerance.
* **Shared-scan accounting** — a window of K compatible jobs charges
  ~one job's page requests (the acceptance bound: <= 1.1x a single
  job's pages for 32 jobs).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.optim.losses import HingeLoss, HuberSVMLoss, LogisticLoss
from repro.service import JobStatus, TrainingService
from tests.conftest import make_binary_data

M, D = 300, 8
EPS = 0.05


def make_service(fuse: bool = True, window: int = 32) -> TrainingService:
    X, y = make_binary_data(M, D, seed=21)
    service = TrainingService(fuse=fuse, scan_seed=5, batching_window=window)
    service.register_table("t", X, y)
    service.open_budget("alice", "t", 10.0)
    service.open_budget("bob", "t", 10.0)
    return service


def mixed_jobs():
    """8 fusion-compatible jobs: two tenants, three losses, mixed lambdas."""
    jobs = []
    for j in range(8):
        loss = (
            HuberSVMLoss(0.1, regularization=1e-3)
            if j % 4 == 3
            else LogisticLoss(regularization=[1e-4, 1e-3, 1e-2][j % 3])
        )
        jobs.append(
            dict(
                principal="alice" if j % 2 == 0 else "bob",
                loss=loss,
                epsilon=EPS,
                passes=2,
                batch_size=25,
                seed=900 + j,
            )
        )
    return jobs


def run_workload(service: TrainingService, jobs) -> dict:
    """Submit ``jobs``, drain, return {seed: weights} (seed ids a job)."""
    records = [
        service.submit(job["principal"], "t", job["loss"], epsilon=job["epsilon"],
                       passes=job["passes"], batch_size=job["batch_size"],
                       seed=job["seed"])
        for job in jobs
    ]
    service.drain()
    assert all(record.status is JobStatus.COMPLETED for record in records)
    return {record.job.seed: record.model for record in records}


class TestBitwiseDeterminism:
    def test_fused_equals_sequential_equals_reordered(self):
        jobs = mixed_jobs()
        fused = run_workload(make_service(fuse=True), jobs)
        sequential = run_workload(make_service(fuse=False), jobs)
        reordered = run_workload(
            make_service(fuse=True), [jobs[i] for i in (5, 2, 7, 0, 3, 6, 1, 4)]
        )
        for seed, weights in fused.items():
            assert np.array_equal(weights, sequential[seed])
            assert np.array_equal(weights, reordered[seed])

    def test_job_alone_matches_its_fused_self(self):
        jobs = mixed_jobs()
        fused = run_workload(make_service(fuse=True), jobs)
        for job in (jobs[0], jobs[3]):
            alone = run_workload(make_service(fuse=True), [job])
            assert np.array_equal(alone[job["seed"]], fused[job["seed"]])

    def test_priorities_reorder_dispatch_not_weights(self):
        jobs = mixed_jobs()
        baseline = run_workload(make_service(), jobs)
        prioritized_service = make_service()
        records = []
        for j, job in enumerate(jobs):
            records.append(
                prioritized_service.submit(
                    job["principal"], "t", job["loss"], epsilon=job["epsilon"],
                    passes=job["passes"], batch_size=job["batch_size"],
                    seed=job["seed"], priority=j % 3,
                )
            )
        prioritized_service.drain()
        for record in records:
            assert np.array_equal(record.model, baseline[record.job.seed])

    def test_batching_window_splits_are_invisible(self):
        """window=3 forces three scan groups — same bits, more pages."""
        jobs = mixed_jobs()
        baseline = run_workload(make_service(), jobs)
        windowed = run_workload(make_service(window=3), jobs)
        for seed, weights in baseline.items():
            assert np.array_equal(weights, windowed[seed])

    def test_resubmission_reproduces_the_release(self):
        jobs = mixed_jobs()
        first = run_workload(make_service(), jobs)
        second = run_workload(make_service(), jobs)
        for seed, weights in first.items():
            assert np.array_equal(weights, second[seed])


class TestSharedScanAccounting:
    def test_32_jobs_cost_one_scan(self):
        """The acceptance criterion: <= 1.1x a single job's pages."""
        service = make_service()
        lambdas = np.logspace(-4, -1, 8)
        records = [
            service.submit("alice" if j % 2 else "bob", "t",
                           LogisticLoss(regularization=float(lambdas[j % 8])),
                           epsilon=0.01, passes=2, batch_size=25, seed=j)
            for j in range(32)
        ]
        service.drain()
        group_pages = service.page_reads
        assert all(record.status is JobStatus.COMPLETED for record in records)
        assert all(record.dispatch == "fused" for record in records)
        assert all(record.group_size == 32 for record in records)

        solo = make_service()
        record = solo.submit("alice", "t", LogisticLoss(regularization=1e-4),
                             epsilon=0.01, passes=2, batch_size=25, seed=0)
        solo.drain()
        single_pages = solo.page_reads
        assert record.status is JobStatus.COMPLETED
        assert group_pages <= 1.1 * single_pages
        # In fact the scan is shared exactly: same page requests as one job.
        assert group_pages == single_pages == 2 * M

    def test_sequential_dispatch_pays_k_scans(self):
        service = make_service(fuse=False)
        for j in range(4):
            service.submit("alice", "t", LogisticLoss(1e-3), epsilon=0.01,
                           passes=2, batch_size=25, seed=j)
        service.drain()
        assert service.page_reads == 4 * 2 * M

    def test_incompatible_jobs_form_separate_groups(self):
        """Different batch sizes / passes cannot share a scan lockstep."""
        service = make_service()
        a = service.submit("alice", "t", LogisticLoss(1e-3), epsilon=EPS,
                           passes=2, batch_size=25, seed=1)
        b = service.submit("bob", "t", LogisticLoss(1e-3), epsilon=EPS,
                           passes=2, batch_size=50, seed=2)
        c = service.submit("alice", "t", LogisticLoss(1e-3), epsilon=EPS,
                           passes=3, batch_size=25, seed=3)
        d = service.submit("bob", "t", LogisticLoss(1e-2), epsilon=EPS,
                           passes=2, batch_size=25, seed=4)
        service.drain()
        # a+d fuse (same key); b and c fall back to sequential dispatch.
        assert service.result(a.job_id).dispatch == "fused"
        assert service.result(d.job_id).dispatch == "fused"
        assert service.result(a.job_id).group_size == 2
        assert service.result(b.job_id).dispatch == "sequential"
        assert service.result(c.job_id).dispatch == "sequential"
        assert len(service.scheduler.dispatch_log) == 3

    def test_failed_group_member_does_not_poison_the_scan(self):
        service = make_service()
        good = [
            service.submit("alice", "t", LogisticLoss(1e-3), epsilon=EPS,
                           passes=2, batch_size=25, seed=j)
            for j in range(3)
        ]
        bad = service.submit("bob", "t", HingeLoss(), epsilon=EPS,
                             passes=2, batch_size=25, seed=99)
        service.drain()
        assert service.status(bad.job_id) is JobStatus.FAILED
        assert "smooth" in service.result(bad.job_id).error.lower() or (
            service.result(bad.job_id).error
        )
        for record in good:
            assert record.status is JobStatus.COMPLETED
            assert record.group_size == 3
        # bob's reservation came back.
        bob = [s for s in service.budgets() if s.principal == "bob"][0]
        assert bob.spent == (0, 0)
        assert bob.reserved == (0.0, 0.0)


class TestRegistryQueries:
    def test_filters_and_model_access(self):
        service = make_service()
        run_workload(service, mixed_jobs())
        assert len(service.jobs(principal="alice")) == 4
        assert len(service.jobs(status=JobStatus.COMPLETED)) == 8
        assert len(service.jobs(principal="alice", status=JobStatus.FAILED)) == 0
        job_id = service.jobs(principal="alice")[0].job_id
        assert service.model(job_id).shape == (D,)
        with pytest.raises(KeyError):
            service.result("job-99999")
        counts = service.registry.counts()
        assert counts["completed"] == 8

    def test_model_refused_for_non_completed(self):
        service = make_service()
        record = service.submit("alice", "t", HingeLoss(), epsilon=EPS,
                                passes=1, seed=1)
        service.drain()
        with pytest.raises(ValueError, match="no released model"):
            service.model(record.job_id)

    def test_receipts_travel_with_records(self):
        service = make_service()
        run_workload(service, mixed_jobs())
        for record in service.jobs(status=JobStatus.COMPLETED):
            assert record.receipt is not None
            assert record.receipt.job_id == record.job_id
            assert record.receipt.parameters.epsilon == EPS
            assert record.sensitivity > 0
            assert record.noise_norm > 0

    def test_unknown_table_raises_at_submit(self):
        service = make_service()
        with pytest.raises(KeyError):
            service.submit("alice", "ghost", LogisticLoss(1e-3), epsilon=EPS)


class TestServiceValidation:
    def test_unstamped_job_rejected_by_scheduler(self):
        from repro.core.bolton import BoltOnCandidate
        from repro.service import TrainingJob

        service = make_service()
        job = TrainingJob(principal="alice", table="t",
                          candidate=BoltOnCandidate(LogisticLoss(1e-3)),
                          epsilon=EPS)
        with pytest.raises(ValueError, match="stamped"):
            service.scheduler.submit(job)

    def test_job_validation(self):
        from repro.core.bolton import BoltOnCandidate
        from repro.service import TrainingJob

        candidate = BoltOnCandidate(LogisticLoss(1e-3))
        with pytest.raises(ValueError, match="principal"):
            TrainingJob(principal="", table="t", candidate=candidate, epsilon=0.1)
        with pytest.raises(ValueError, match="epsilon"):
            TrainingJob(principal="a", table="t", candidate=candidate, epsilon=0.0)

    def test_fusion_key_contents(self):
        from repro.core.bolton import BoltOnCandidate
        from repro.service import TrainingJob

        job = TrainingJob(
            principal="alice", table="t",
            candidate=BoltOnCandidate(LogisticLoss(1e-3), passes=4, batch_size=10),
            epsilon=0.1,
        )
        assert job.fusion_key() == ("t", 10, 4, False)


class TestReviewRegressions:
    def test_averaging_candidates_refused_before_any_budget_moves(self):
        from repro.core.bolton import BoltOnCandidate
        from repro.service import TrainingJob

        service = make_service()
        job = TrainingJob(
            principal="alice", table="t",
            candidate=BoltOnCandidate(LogisticLoss(1e-3), average="uniform"),
            epsilon=EPS,
        )
        with pytest.raises(ValueError, match="averaging"):
            service.submit_job(job)
        statement = [s for s in service.budgets() if s.principal == "alice"][0]
        assert statement.reserved == (0.0, 0.0)
        assert statement.spent == (0, 0)

    def test_concurrent_submitters_get_unique_ids_and_no_leaked_holds(self):
        import threading

        service = make_service()
        records, errors = [], []
        lock = threading.Lock()

        def submit(thread_id: int) -> None:
            for j in range(10):
                try:
                    record = service.submit(
                        "alice", "t", LogisticLoss(1e-3), epsilon=0.01,
                        passes=1, batch_size=25, seed=thread_id * 100 + j,
                    )
                    with lock:
                        records.append(record)
                except Exception as error:  # pragma: no cover - the bug
                    with lock:
                        errors.append(error)

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        job_ids = [record.job_id for record in records]
        assert len(set(job_ids)) == 60
        service.drain()
        statement = [s for s in service.budgets() if s.principal == "alice"][0]
        assert statement.reserved == (0.0, 0.0)
        assert statement.spent[0] == pytest.approx(0.01 * 60)

    def test_mutating_ovr_models_is_reflected_in_scores(self):
        from repro.core.mechanisms import PrivacyParameters
        from repro.multiclass.ovr import OneVsRestResult

        rng = np.random.default_rng(2)
        result = OneVsRestResult(
            models=[rng.normal(size=4) for _ in range(3)],
            classes=[0, 1, 2],
            privacy=PrivacyParameters(1.0),
            per_model_privacy=PrivacyParameters(0.5),
        )
        X = rng.normal(size=(10, 4))
        before = result.decision_scores(X).copy()
        result.models[1] = rng.normal(size=4)
        after = result.decision_scores(X)
        assert not np.array_equal(before[:, 1], after[:, 1])
        np.testing.assert_array_equal(before[:, 0], after[:, 0])
