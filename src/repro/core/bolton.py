"""The bolt-on private PSGD algorithms (Algorithms 1 and 2).

The algorithms are *instantiations of output perturbation*: run unmodified
PSGD (the black box, :class:`repro.optim.PSGD`), compute the L2-sensitivity
from the paper's analysis (:mod:`repro.core.sensitivity`), sample one noise
vector (:mod:`repro.core.mechanisms`), and release ``w + kappa``.

* :func:`private_convex_psgd` — Algorithm 1. Constant step ``eta <= 2/beta``
  (default ``1/sqrt(m)``), ``Delta_2 = 2 k L eta / b``. ε-DP via spherical
  Laplace noise (Theorem 4) or (ε,δ)-DP via Gaussian noise (Theorem 6).
* :func:`private_strongly_convex_psgd` — Algorithm 2. Step
  ``min(1/beta, 1/(gamma t))``, ``Delta_2 = 2 L / (gamma m b)`` —
  independent of the number of passes (Theorems 5 and 7).
* :func:`private_psgd` — the generic entry point covering the additional
  step-size regimes of Corollaries 2–3.

All three return a :class:`PrivateTrainingResult` whose ``model`` is the
differentially private release. The noiseless model is retained on the
result under a deliberately loud name (``unreleased_noiseless_model``)
because the experiment harness needs it for utility accounting — releasing
it would void the guarantee, and the docstring says so.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.mechanisms import (
    NoiseMechanism,
    PrivacyParameters,
    mechanism_for,
)
from repro.core.sensitivity import SensitivityBound, sensitivity_for_schedule
from repro.optim.losses import Loss, LossProperties
from repro.optim.projection import IdentityProjection, L2BallProjection, Projection
from repro.optim.psgd import (
    PSGD,
    ModelSpec,
    MultiModelPSGD,
    PSGDConfig,
    PSGDResult,
)
from repro.optim.schedules import (
    CappedInverseTSchedule,
    ConstantSchedule,
    StepSizeSchedule,
)
from repro.utils.rng import RandomState, as_generator, spawn_generators
from repro.utils.validation import (
    check_matrix_labels,
    check_positive,
    check_positive_int,
    check_unit_ball,
)


@dataclass
class PrivateTrainingResult:
    """The outcome of one bolt-on private training run.

    ``model`` is the (ε, δ)-differentially private vector that may be
    published. ``unreleased_noiseless_model`` is the pre-noise iterate kept
    for experiment accounting only — **publishing it breaks the privacy
    guarantee**.
    """

    model: np.ndarray
    privacy: PrivacyParameters
    sensitivity: SensitivityBound
    noise_norm: float
    unreleased_noiseless_model: np.ndarray
    psgd: PSGDResult = field(repr=False)
    loss: Loss = field(repr=False)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Sign predictions of the *private* model."""
        return self.loss.predict(self.model, X)

    def accuracy(self, X: np.ndarray, y: np.ndarray) -> float:
        """Test accuracy of the private model."""
        X, y = check_matrix_labels(X, y)
        return float(np.mean(self.predict(X) == y))

    def noiseless_accuracy(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy of the unreleased noiseless model (diagnostics only)."""
        X, y = check_matrix_labels(X, y)
        return float(np.mean(self.loss.predict(self.unreleased_noiseless_model, X) == y))


def _prepare(
    X: np.ndarray,
    y: np.ndarray,
    require_unit_ball: bool,
) -> tuple[np.ndarray, np.ndarray, int, int]:
    X, y = check_matrix_labels(X, y)
    if require_unit_ball:
        check_unit_ball(X)
    m, d = X.shape
    return X, y, m, d


def _finish(
    loss: Loss,
    psgd_result: PSGDResult,
    sensitivity: SensitivityBound,
    privacy: PrivacyParameters,
    mechanism: Optional[NoiseMechanism],
    noise_rng: np.random.Generator,
) -> PrivateTrainingResult:
    """The output-perturbation step shared by every algorithm variant."""
    mech = mechanism if mechanism is not None else mechanism_for(privacy)
    noiseless = psgd_result.model
    noise = mech.sample(noiseless.shape[0], sensitivity.value, privacy, noise_rng)
    return PrivateTrainingResult(
        model=noiseless + noise,
        privacy=privacy,
        sensitivity=sensitivity,
        noise_norm=float(np.linalg.norm(noise)),
        unreleased_noiseless_model=noiseless,
        psgd=psgd_result,
        loss=loss,
    )


def private_convex_psgd(
    X: np.ndarray,
    y: np.ndarray,
    loss: Loss,
    epsilon: float,
    *,
    delta: float = 0.0,
    passes: int = 1,
    eta: Optional[float] = None,
    batch_size: int = 1,
    projection: Optional[Projection] = None,
    average: Optional[str] = None,
    fresh_permutation_each_pass: bool = False,
    mechanism: Optional[NoiseMechanism] = None,
    random_state: RandomState = None,
    permutation: Optional[Sequence[int]] = None,
) -> PrivateTrainingResult:
    """Algorithm 1 — Private Convex Permutation-based SGD.

    Requires a convex (not strongly convex) loss whose derived properties
    give ``gamma = 0``, and a constant step ``eta <= 2/beta``; the default
    ``eta = 1/sqrt(m)`` matches Table 4. The release is ε-DP when
    ``delta == 0`` (Theorem 4) and (ε,δ)-DP otherwise (Theorem 6).

    Parameters mirror the paper's Table 1; ``projection`` defaults to
    unconstrained optimization (the paper's convex experiments).
    ``fresh_permutation_each_pass`` re-shuffles every pass — the paper's
    analysis "extends verbatim" to this variant (Section 3.2.3), so the
    sensitivity is unchanged.
    """
    X, y, m, d = _prepare(X, y, require_unit_ball=True)
    check_positive(epsilon, "epsilon")
    check_positive_int(passes, "passes")
    privacy = PrivacyParameters(epsilon, delta)
    proj = projection if projection is not None else IdentityProjection()

    properties = loss.properties(
        radius=proj.radius if np.isfinite(proj.radius) else None
    )
    if properties.is_strongly_convex:
        raise ValueError(
            "private_convex_psgd is Algorithm 1 (convex case); the supplied "
            "loss is strongly convex — use private_strongly_convex_psgd "
            "(Algorithm 2), whose sensitivity is smaller"
        )
    step = eta if eta is not None else 1.0 / np.sqrt(m)
    schedule = ConstantSchedule(step)

    sensitivity = sensitivity_for_schedule(
        properties, schedule, m, passes, batch_size
    )
    perm_rng, noise_rng = spawn_generators(random_state, 2)
    config = PSGDConfig(
        schedule=schedule,
        passes=passes,
        batch_size=batch_size,
        projection=proj,
        average=average,
        fresh_permutation_each_pass=fresh_permutation_each_pass,
    )
    result = PSGD(loss, config).run(
        X, y, random_state=perm_rng, permutation=permutation
    )
    return _finish(loss, result, sensitivity, privacy, mechanism, noise_rng)


def private_strongly_convex_psgd(
    X: np.ndarray,
    y: np.ndarray,
    loss: Loss,
    epsilon: float,
    *,
    delta: float = 0.0,
    passes: int = 1,
    batch_size: int = 1,
    radius: Optional[float] = None,
    average: Optional[str] = None,
    fresh_permutation_each_pass: bool = False,
    convergence_tolerance: Optional[float] = None,
    mechanism: Optional[NoiseMechanism] = None,
    random_state: RandomState = None,
    permutation: Optional[Sequence[int]] = None,
) -> PrivateTrainingResult:
    """Algorithm 2 — Private Strongly Convex Permutation-based SGD.

    Uses the schedule ``eta_t = min(1/beta, 1/(gamma t))`` and the
    pass-independent sensitivity ``2L/(gamma m b)`` (Lemma 8). ε-DP when
    ``delta == 0`` (Theorem 5), (ε,δ)-DP otherwise (Theorem 7).

    ``radius`` bounds the hypothesis space (projection onto the L2 ball of
    that radius); following the paper's practice we default to
    ``R = 1/lambda`` where lambda is the loss's regularization constant.

    ``convergence_tolerance`` enables the "k is oblivious" strategy of
    Section 4.3: because the noise does not depend on k, PSGD may stop as
    soon as the training loss plateaus, with ``passes`` acting as the cap K.
    """
    X, y, m, d = _prepare(X, y, require_unit_ball=True)
    check_positive(epsilon, "epsilon")
    check_positive_int(passes, "passes")
    privacy = PrivacyParameters(epsilon, delta)

    if radius is None:
        if loss.regularization <= 0.0:
            raise ValueError(
                "a strongly convex loss requires regularization > 0; supply a "
                "regularized loss or an explicit radius"
            )
        radius = 1.0 / loss.regularization
    check_positive(radius, "radius")
    proj = L2BallProjection(radius)

    properties = loss.properties(radius=radius)
    if not properties.is_strongly_convex:
        raise ValueError(
            "private_strongly_convex_psgd is Algorithm 2 (strongly convex "
            "case); the supplied loss has gamma = 0 — use private_convex_psgd"
        )
    schedule = CappedInverseTSchedule(
        beta=properties.smoothness, gamma=properties.strong_convexity
    )
    sensitivity = sensitivity_for_schedule(
        properties, schedule, m, passes, batch_size
    )
    perm_rng, noise_rng = spawn_generators(random_state, 2)
    config = PSGDConfig(
        schedule=schedule,
        passes=passes,
        batch_size=batch_size,
        projection=proj,
        average=average,
        fresh_permutation_each_pass=fresh_permutation_each_pass,
        convergence_tolerance=convergence_tolerance,
    )
    result = PSGD(loss, config).run(
        X, y, random_state=perm_rng, permutation=permutation
    )
    return _finish(loss, result, sensitivity, privacy, mechanism, noise_rng)


def private_psgd(
    X: np.ndarray,
    y: np.ndarray,
    loss: Loss,
    epsilon: float,
    schedule: StepSizeSchedule,
    *,
    delta: float = 0.0,
    passes: int = 1,
    batch_size: int = 1,
    projection: Optional[Projection] = None,
    average: Optional[str] = None,
    mechanism: Optional[NoiseMechanism] = None,
    random_state: RandomState = None,
    permutation: Optional[Sequence[int]] = None,
) -> PrivateTrainingResult:
    """Generic bolt-on private PSGD for any analysed step-size schedule.

    Covers the decreasing (Corollary 2) and square-root (Corollary 3)
    regimes in addition to the two main algorithms. The sensitivity is
    resolved by :func:`repro.core.sensitivity.sensitivity_for_schedule`,
    which refuses schedules without a known bound.
    """
    X, y, m, d = _prepare(X, y, require_unit_ball=True)
    check_positive(epsilon, "epsilon")
    check_positive_int(passes, "passes")
    privacy = PrivacyParameters(epsilon, delta)
    proj = projection if projection is not None else IdentityProjection()

    properties = loss.properties(
        radius=proj.radius if np.isfinite(proj.radius) else None
    )
    sensitivity = sensitivity_for_schedule(properties, schedule, m, passes, batch_size)
    perm_rng, noise_rng = spawn_generators(random_state, 2)
    config = PSGDConfig(
        schedule=schedule,
        passes=passes,
        batch_size=batch_size,
        projection=proj,
        average=average,
    )
    result = PSGD(loss, config).run(
        X, y, random_state=perm_rng, permutation=permutation
    )
    return _finish(loss, result, sensitivity, privacy, mechanism, noise_rng)


def noiseless_psgd(
    X: np.ndarray,
    y: np.ndarray,
    loss: Loss,
    schedule: StepSizeSchedule,
    *,
    passes: int = 1,
    batch_size: int = 1,
    projection: Optional[Projection] = None,
    average: Optional[str] = None,
    random_state: RandomState = None,
) -> PSGDResult:
    """The non-private baseline used throughout the evaluation section."""
    X, y = check_matrix_labels(X, y)
    config = PSGDConfig(
        schedule=schedule,
        passes=passes,
        batch_size=batch_size,
        projection=projection if projection is not None else IdentityProjection(),
        average=average,
    )
    return PSGD(loss, config).run(X, y, random_state=random_state)


# -- fused multi-model bolt-on training ---------------------------------------


@dataclass
class BoltOnCandidate:
    """Structural description of one bolt-on private PSGD training run.

    The opaque-callable trainer contract (`trainer(X, y, epsilon=...,
    ...)`) cannot be fused — the engine must see *inside* a candidate to
    share its data scan with the others. This dataclass is that view: the
    per-candidate knobs of Algorithms 1/2, with the same defaulting rules
    (strongly convex losses get the capped 1/(gamma t) schedule and
    ``R = 1/lambda``; convex losses get the constant ``eta = 1/sqrt(m)``
    step). It is accepted directly by :func:`train_bolt_on` (sequential
    reference), :func:`private_psgd_fleet` (fused), and the fused paths of
    the tuning and one-vs-rest consumers.
    """

    loss: Loss
    passes: int = 1
    batch_size: int = 1
    eta: Optional[float] = None
    radius: Optional[float] = None
    average: Optional[str] = None

    def resolve(self, m: int) -> tuple[StepSizeSchedule, Projection, LossProperties]:
        """Algorithm 1/2 parameter resolution for a dataset of m rows."""
        if self.radius is not None:
            radius: Optional[float] = self.radius
        elif self.loss.regularization > 0.0:
            # Algorithm 2's convention: R = 1/lambda.
            radius = 1.0 / self.loss.regularization
        else:
            radius = None
        if radius is not None:
            projection: Projection = L2BallProjection(radius)
            properties = self.loss.properties(radius=radius)
        else:
            projection = IdentityProjection()
            properties = self.loss.properties()
        if properties.is_strongly_convex:
            schedule: StepSizeSchedule = CappedInverseTSchedule(
                properties.smoothness, properties.strong_convexity
            )
        else:
            step = self.eta if self.eta is not None else 1.0 / np.sqrt(m)
            schedule = ConstantSchedule(step)
        return schedule, projection, properties


def train_bolt_on(
    X: np.ndarray,
    y: np.ndarray,
    candidate: BoltOnCandidate,
    epsilon: float,
    *,
    delta: float = 0.0,
    random_state: RandomState = None,
    permutation: Optional[Sequence[int]] = None,
) -> PrivateTrainingResult:
    """Train one :class:`BoltOnCandidate` sequentially (the reference path).

    Dispatches to Algorithm 2 when the candidate's loss is regularized
    (strongly convex) and Algorithm 1 otherwise — the same resolution the
    fused fleet applies, so a candidate means the same thing on both
    paths.
    """
    if candidate.loss.regularization > 0.0:
        return private_strongly_convex_psgd(
            X, y, candidate.loss, epsilon, delta=delta,
            passes=candidate.passes, batch_size=candidate.batch_size,
            radius=candidate.radius, average=candidate.average,
            random_state=random_state, permutation=permutation,
        )
    projection = (
        L2BallProjection(candidate.radius) if candidate.radius is not None else None
    )
    return private_convex_psgd(
        X, y, candidate.loss, epsilon, delta=delta,
        passes=candidate.passes, eta=candidate.eta,
        batch_size=candidate.batch_size, projection=projection,
        average=candidate.average, random_state=random_state,
        permutation=permutation,
    )


def private_psgd_fleet(
    X: np.ndarray,
    y: np.ndarray,
    candidates: Sequence[BoltOnCandidate],
    epsilon,
    *,
    delta=0.0,
    random_states: Optional[Sequence[RandomState]] = None,
    scan_random_state: RandomState = None,
    permutation: Optional[np.ndarray] = None,
) -> List[PrivateTrainingResult]:
    """Train K bolt-on private models in **one data scan** (per batch size).

    The fused form of K :func:`train_bolt_on` calls. Two data layouts:

    * shared — ``X`` is ``(m, d)``; every candidate reads the same rows
      (``y`` may be a ``(K, m)`` per-candidate label matrix — one-vs-rest).
      Candidates sharing a batch size ride one
      :class:`~repro.optim.psgd.MultiModelPSGD` scan under one shared
      permutation drawn from ``scan_random_state``.
    * stacked — ``X`` is ``(K, m, d)`` with ``y`` ``(K, m)``: per-candidate
      datasets (disjoint tuning partitions). Permutations are then
      per-candidate, drawn exactly as each candidate's standalone run
      would have drawn them, so the fused results match sequential
      training to the engines' 1e-12 equivalence bound.

    ``epsilon``/``delta`` may be scalars (every candidate gets the full
    budget — parallel composition over disjoint data, or a shared public
    set) or per-candidate sequences (the one-vs-rest budget split).
    ``random_states`` supplies one stream per candidate; each is consumed
    exactly as :func:`train_bolt_on` would (spawn permutation stream, then
    noise stream), so per-candidate noise draws are bit-identical to the
    standalone trainers'.

    The PSGD phase is unchanged-black-box; everything privacy-specific is
    still the bolt-on epilogue: one sensitivity bound and one mechanism
    draw per candidate.
    """
    candidates = list(candidates)
    K = len(candidates)
    if K == 0:
        raise ValueError("at least one candidate is required")
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    stacked = X.ndim == 3
    # The same fail-loud preconditions every sequential trainer applies:
    # valid shapes, finite values, and rows inside the unit ball.
    if stacked:
        if X.shape[0] != K or y.shape != X.shape[:2]:
            raise ValueError(
                f"stacked fleet data must be X ({K}, m, d) with y ({K}, m); "
                f"got {X.shape} and {y.shape}"
            )
        for Xk, yk in zip(X, y):
            check_matrix_labels(Xk, yk)
            check_unit_ball(Xk)
    else:
        if y.ndim == 2:
            if X.ndim != 2 or y.shape != (K, X.shape[0]):
                raise ValueError(
                    f"per-candidate labels must have shape ({K}, m); "
                    f"got X {X.shape} and y {y.shape}"
                )
            for yk in y:
                check_matrix_labels(X, yk)
        else:
            X, y = check_matrix_labels(X, y)
        check_unit_ball(X)
    m = X.shape[1] if stacked else X.shape[0]
    d = X.shape[-1]

    epsilons = list(epsilon) if np.ndim(epsilon) else [float(epsilon)] * K
    deltas = list(delta) if np.ndim(delta) else [float(delta)] * K
    if len(epsilons) != K or len(deltas) != K:
        raise ValueError("per-candidate epsilon/delta lists must have K entries")
    privacies = [PrivacyParameters(e, dl) for e, dl in zip(epsilons, deltas)]

    master = as_generator(scan_random_state)
    if random_states is None:
        random_states = spawn_generators(master, K)
    elif len(random_states) != K:
        raise ValueError(f"random_states must have {K} entries, got {len(random_states)}")
    # Consume each candidate's stream exactly as train_bolt_on would:
    # (permutation stream, noise stream).
    perm_rngs = []
    noise_rngs = []
    for state in random_states:
        perm_rng, noise_rng = spawn_generators(state, 2)
        perm_rngs.append(perm_rng)
        noise_rngs.append(noise_rng)

    resolved = [candidate.resolve(m) for candidate in candidates]
    sensitivities = [
        sensitivity_for_schedule(
            properties, schedule, m, candidates[k].passes, candidates[k].batch_size
        )
        for k, (schedule, projection, properties) in enumerate(resolved)
    ]

    # One fused engine run per distinct batch size (batch boundaries define
    # the shared scan; a homogeneous grid is a single run).
    by_batch: Dict[int, List[int]] = {}
    for k, candidate in enumerate(candidates):
        by_batch.setdefault(candidate.batch_size, []).append(k)

    results: List[Optional[PrivateTrainingResult]] = [None] * K
    for batch_size, indices in by_batch.items():
        specs = [
            ModelSpec(
                loss=candidates[k].loss,
                schedule=resolved[k][0],
                projection=resolved[k][1],
                passes=candidates[k].passes,
                average=candidates[k].average,
            )
            for k in indices
        ]
        engine = MultiModelPSGD(specs, batch_size=batch_size)
        if stacked:
            group_X = X[indices]
            group_y = y[indices]
            group_perm = (
                np.stack([perm_rngs[k].permutation(m) for k in indices])
                if permutation is None
                else np.asarray(permutation)[indices]
            )
        else:
            group_X = X
            group_y = y if y.ndim == 1 else y[indices]
            group_perm = master.permutation(m) if permutation is None else permutation
        fused = engine.run(group_X, group_y, permutation=group_perm)
        for position, k in enumerate(indices):
            noiseless = fused.models[position]
            privacy = privacies[k]
            mechanism = mechanism_for(privacy)
            noise = mechanism.sample(d, sensitivities[k].value, privacy, noise_rngs[k])
            psgd_view = PSGDResult(
                model=noiseless,
                final_iterate=fused.final_iterates[position],
                updates=int(fused.updates_per_model[position]),
                passes_completed=candidates[k].passes,
            )
            results[k] = PrivateTrainingResult(
                model=noiseless + noise,
                privacy=privacy,
                sensitivity=sensitivities[k],
                noise_norm=float(np.linalg.norm(noise)),
                unreleased_noiseless_model=noiseless,
                psgd=psgd_view,
                loss=candidates[k].loss,
            )
    assert all(result is not None for result in results)
    return results


class BoltOnTrainerFactory:
    """A ``TrainerFactory`` whose candidates the fused engine can fuse.

    Calling the factory with a grid point returns the classic sequential
    trainer closure (so it drops into any code expecting the opaque
    contract), while :meth:`candidate` exposes the structural
    :class:`BoltOnCandidate` the fused tuning paths consume. Grid keys
    ``passes``, ``regularization`` (via ``loss_builder``), ``batch_size``
    and ``eta`` are honoured; everything else is fixed at construction.

    >>> factory = BoltOnTrainerFactory(
    ...     lambda theta: LogisticLoss(theta.get("regularization", 0.0)))
    """

    def __init__(
        self,
        loss_builder: Callable[[Dict], Loss],
        *,
        batch_size: int = 50,
        default_passes: int = 1,
        eta: Optional[float] = None,
        radius: Optional[float] = None,
        average: Optional[str] = None,
    ):
        self.loss_builder = loss_builder
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.default_passes = check_positive_int(default_passes, "default_passes")
        self.eta = eta
        self.radius = radius
        self.average = average

    def candidate(self, theta: Dict) -> BoltOnCandidate:
        """The structural description of one grid point."""
        return BoltOnCandidate(
            loss=self.loss_builder(theta),
            passes=check_positive_int(
                theta.get("passes", self.default_passes), "passes"
            ),
            batch_size=check_positive_int(
                theta.get("batch_size", self.batch_size), "batch_size"
            ),
            eta=theta.get("eta", self.eta),
            radius=self.radius,
            average=self.average,
        )

    def __call__(self, theta: Dict) -> Callable[..., PrivateTrainingResult]:
        candidate = self.candidate(theta)

        def trainer(
            X: np.ndarray,
            y: np.ndarray,
            epsilon: float,
            delta: float = 0.0,
            random_state: RandomState = None,
        ) -> PrivateTrainingResult:
            return train_bolt_on(
                X, y, candidate, epsilon, delta=delta, random_state=random_state
            )

        return trainer
