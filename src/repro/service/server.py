"""The training service façade — the paper's engine as a multi-tenant server.

:class:`TrainingService` wires five service components around one
:class:`~repro.rdbms.bismarck.BismarckSession`:

* a **job model + queue** (:mod:`repro.service.jobs`),
* the **privacy-budget ledger** (:mod:`repro.service.ledger`),
* the **shared-scan scheduler** + cross-drain **result cache**
  (:mod:`repro.service.scheduler`),
* the **model registry / results store** (:mod:`repro.service.registry`),
* the **background dispatch loop** (:mod:`repro.service.worker`),

and exposes the tenant-facing verbs: register a table, grant a budget,
submit jobs, await results, query records. It is deliberately an
in-process server (no sockets): the contribution is the scheduling and
accounting discipline, and an RPC front-end can wrap these verbs without
touching them.

Async by default
----------------

``submit()`` returns immediately with a live
:class:`~repro.service.registry.JobRecord`; with the dispatch loop
running (:meth:`start`, or any CLI ``serve --workers N``), background
workers train the queue continuously and tenants block on
``record.wait()``. :meth:`drain` remains as the synchronous
compatibility wrapper — it starts the loop if needed, blocks until the
service is quiescent, stops what it started, and returns the records
that finished.

Workers overlap scans on *different* tables (per-table engine domains;
``parallel_scans=False`` restores the single global engine lock), so a
multi-table server parallelizes I/O, not just epilogues —
:attr:`peak_scan_overlap` reports how much overlap a workload actually
achieved. Scans of the same table still serialize, keeping every
dispatch's page accounting exact.

Durability
----------

Construct with ``state_dir=`` and the service keeps a crash-safe
**append-only write-ahead log** (:mod:`repro.service.wal`) there: every
admission, terminal record, and budget grant is logged, and the
per-window autosave merely fsyncs the log's tail — O(events this
window), never O(history). Every ``wal_compact_records`` log records,
the autosave **compacts**: it writes the full base snapshot
(``registry.json`` + ``accounts.json``, both atomic renames) and starts
a fresh log. A restarted service calls :meth:`load_state` (implicit in
``__init__`` when the files exist is deliberately avoided — tables must
be registered first) to resume by *snapshot + log replay*: prior
records, budgets reconciled by replaying committed receipts, the result
cache re-armed so resubmitted jobs cost 0 pages and 0 ε. A torn final
log record (the kill -9 signature) is truncated away; corruption
anywhere earlier refuses to load
(:class:`~repro.service.wal.WalCorruption`, fail-closed). If the state
directory turns out not to be writable, the service warns once and
degrades to in-memory serving instead of killing the dispatch loop.

>>> service = TrainingService(workers=4)
>>> service.register_table("ratings", X, y)
>>> service.open_budget("alice", "ratings", epsilon=1.0)
>>> service.start()
>>> record = service.submit("alice", "ratings", LogisticLoss(1e-3),
...                         epsilon=0.1, passes=5, batch_size=50, seed=7)
>>> record.wait()          # never blocks other submitters
>>> service.model(record.job_id)  # the differentially private release
>>> service.stop()
"""

from __future__ import annotations

import json
import pathlib
import threading
import warnings
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.bolton import BoltOnCandidate
from repro.optim.losses import Loss
from repro.rdbms.bismarck import BismarckSession
from repro.rdbms.catalog import TableInfo
from repro.rdbms.cost_model import CostModel
from repro.service.jobs import JobStatus, TrainingJob
from repro.service.ledger import AccountStatement, PrivacyBudgetLedger
from repro.service.registry import (
    TERMINAL_STATUS_VALUES,
    JobRecord,
    ModelRegistry,
    record_from_payload,
    snapshot_payloads,
)
from repro.service.scheduler import SharedScanScheduler
from repro.service.wal import WalCorruption, WriteAheadLog
from repro.service.worker import DispatchLoop

#: File names inside ``state_dir``.
REGISTRY_STATE = "registry.json"
ACCOUNTS_STATE = "accounts.json"
WAL_STATE = "receipts.wal"


class TrainingService:
    """An in-process, multi-tenant private-SGD training service."""

    def __init__(
        self,
        *,
        buffer_pool_pages: int = 65536,
        batching_window: int = 32,
        chunk_size: int = 256,
        fuse: bool = True,
        scan_seed: int = 0,
        workers: int = 1,
        parallel_scans: bool = True,
        elevator: bool = False,
        cache_size: Optional[int] = None,
        state_dir: Optional[Union[str, pathlib.Path]] = None,
        wal_compact_records: int = 256,
        scan_retries: int = 2,
        cost_model: Optional[CostModel] = None,
        session: Optional[BismarckSession] = None,
    ) -> None:
        self.session = (
            session
            if session is not None
            else BismarckSession(buffer_pool_pages, cost_model)
        )
        self.ledger = PrivacyBudgetLedger()
        self.registry = ModelRegistry()
        self.scheduler = SharedScanScheduler(
            self.session,
            self.ledger,
            self.registry,
            batching_window=batching_window,
            chunk_size=chunk_size,
            fuse=fuse,
            scan_seed=scan_seed,
            parallel_scans=parallel_scans,
            elevator=elevator,
            cache_size=cache_size,
            scan_retries=scan_retries,
        )
        self.state_dir = None if state_dir is None else pathlib.Path(state_dir)
        if wal_compact_records < 1:
            raise ValueError(
                f"wal_compact_records must be positive, got {wal_compact_records}"
            )
        self.wal_compact_records = int(wal_compact_records)
        #: The append-only receipt log (None without a state_dir). Event
        #: hooks are wired immediately — appends only buffer in memory —
        #: but the log touches disk no earlier than the first autosave.
        self.wal: Optional[WriteAheadLog] = None
        self._wal_ready = False
        self._state_loaded = False
        self._durability_degraded = False
        self._durability_error = ""
        if self.state_dir is not None:
            self.wal = WriteAheadLog(self.state_dir / WAL_STATE)
            self.registry.journal = self.wal.append
            self.ledger.on_grant = self._journal_grant
        self.loop = DispatchLoop(
            self.scheduler,
            workers=workers,
            autosave=self._autosave_window if self.state_dir is not None else None,
        )
        self._submissions = 0
        self._stamp_lock = threading.Lock()
        self._save_lock = threading.Lock()
        # Serializes whole drain() calls: concurrent drains would race
        # each other's loop start/stop (the first finisher stopping the
        # loop could strand the second in wait_quiescent forever).
        self._drain_lock = threading.Lock()
        self._drain_offset = 0

    # -- data & budget administration -------------------------------------------

    def register_table(
        self, name: str, features: np.ndarray, labels: np.ndarray
    ) -> TableInfo:
        """CREATE TABLE + COPY a dataset tenants may train against."""
        info = self.session.load_table(name, features, labels)
        self._arm_cache(name)
        return info

    def register_heap(self, name: str, heap) -> TableInfo:
        """Register an existing heap file (e.g. a synthesized virtual one)."""
        info = self.session.register_table(name, heap)
        self._arm_cache(name)
        return info

    def open_budget(
        self, principal: str, table: str, epsilon: float, delta: float = 0.0
    ) -> None:
        """Grant ``principal`` an (ε, δ) cap on ``table``."""
        self.ledger.open_account(principal, table, epsilon, delta)

    def budgets(self) -> List[AccountStatement]:
        """Every account's cap/spent/reserved snapshot."""
        return self.ledger.statements()

    def invalidate_fingerprint(self, table_name: str) -> None:
        """Tell the service a registered heap's *contents* changed.

        The scheduler memoizes each table's content fingerprint (the
        "same data" half of every result-cache key). Re-registration
        invalidates automatically, and drop-and-recreate is caught by
        the memo's heap-identity check — but a caller mutating a
        registered heap's arrays **in place** must call this, or cached
        weights trained on the old contents could be served for the new
        ones. The next submit/release re-hashes the table.
        """
        self.scheduler.invalidate_fingerprint(table_name)

    # -- the tenant verbs --------------------------------------------------------

    def submit(
        self,
        principal: str,
        table: str,
        loss: Loss,
        *,
        epsilon: float,
        delta: float = 0.0,
        passes: int = 1,
        batch_size: int = 50,
        eta: Optional[float] = None,
        radius: Optional[float] = None,
        priority: int = 0,
        seed: int = 0,
    ) -> JobRecord:
        """Build, stamp, and admit one job; returns its (live) record.

        The returned record already reflects admission: status QUEUED
        with the budget reserved, COMPLETED instantly when the result
        cache recognizes the job (dispatch ``"cached"``, 0 pages, 0 ε),
        or REJECTED (over budget / no account) with nothing charged and
        no data touched. Never blocks on a scan — await training with
        ``record.wait()`` or :meth:`drain`. (Iterate averaging is not
        offered: the in-RDBMS dispatch releases the final iterate, and
        the scheduler refuses candidates that ask otherwise.)
        """
        candidate = BoltOnCandidate(
            loss=loss,
            passes=passes,
            batch_size=batch_size,
            eta=eta,
            radius=radius,
        )
        return self.submit_job(
            TrainingJob(
                principal=principal,
                table=table,
                candidate=candidate,
                epsilon=epsilon,
                delta=delta,
                priority=priority,
                seed=seed,
            )
        )

    def submit_job(self, job: TrainingJob) -> JobRecord:
        """Stamp (job id + arrival tick) and admit a prebuilt job."""
        with self._stamp_lock:
            self._submissions += 1
            job.job_id = job.job_id or f"job-{self._submissions:05d}"
            job.arrival = self._submissions
        record = self.scheduler.submit(job)
        if self.loop.running:
            self.loop.wake()
        return record

    def start(self) -> "TrainingService":
        """Start the background dispatch loop (the long-lived server mode)."""
        self.loop.start()
        return self

    def stop(self) -> None:
        """Stop the dispatch loop. Queued jobs stay queued for the next
        start/drain within this process; they are NOT durable across a
        restart (a loaded snapshot marks them FAILED/interrupted)."""
        self.loop.stop()

    def drain(self, timeout: Optional[float] = None) -> List[JobRecord]:
        """Run every queued job to a terminal state; returns them.

        Compatibility wrapper over the dispatch loop: starts it if it is
        not already running, blocks until the service is quiescent (no
        queued jobs, no window in flight), stops what it started, and
        returns the records that reached a terminal state since the
        previous drain — the same contract the synchronous PR 3 drain
        had, now backed by worker threads.

        ``timeout`` bounds the *quiescence wait* only: on expiry a
        TimeoutError is raised, but if this call started the loop, the
        stop in its cleanup still joins the workers — i.e. an in-flight
        scan runs to completion before the error reaches the caller
        (scans are not cancellable mid-epoch).
        """
        with self._drain_lock:
            started_here = not self.loop.running
            if started_here:
                self.loop.start()
            self.loop.wake()
            try:
                if not self.loop.wait_quiescent(timeout):
                    if self.loop.stopping or not self.loop.running:
                        raise RuntimeError(
                            "drain interrupted: the dispatch loop was "
                            "stopped while jobs were still pending"
                        )
                    raise TimeoutError(f"drain did not quiesce within {timeout}s")
            finally:
                if started_here:
                    self.loop.stop()
            finished = self.loop.finished[self._drain_offset:]
            # Advance by what was actually returned — a worker may append
            # between the slice and this line (continuous mode), and those
            # records belong to the NEXT drain, not the void.
            self._drain_offset += len(finished)
        return list(finished)

    def cancel(self, job_id: str) -> bool:
        """Cancel a job that is still QUEUED (or aboard a not-yet-admitted
        elevator flight): its reservation is refunded in full and the
        record goes terminal CANCELLED with zero pages and zero ε spent.
        Returns ``False`` once a worker has claimed the job — a running
        scan is not cancellable mid-epoch (the page reads and the budget
        commit happen atomically at window end; killing it halfway would
        forfeit determinism for no refund). Raises ``KeyError`` for an
        unknown job id."""
        return self.scheduler.cancel(job_id)

    # -- durability --------------------------------------------------------------

    def save_state(
        self, directory: Optional[Union[str, pathlib.Path]] = None
    ) -> pathlib.Path:
        """Write a full base snapshot of registry + account caps into
        ``directory`` (defaults to the service's ``state_dir``). When the
        target is the service's own state directory, the write-ahead log
        is reset to a fresh generation in the same breath — the snapshot
        *is* the compaction of everything logged so far. The per-window
        autosave calls this only at compaction points; between them it
        appends to the log (O(1) per window)."""
        directory = pathlib.Path(directory) if directory else self.state_dir
        if directory is None:
            raise ValueError("no state directory: pass one or set state_dir=")
        with self._save_lock:
            self._write_snapshot(directory)
            if (
                self.wal is not None
                and not self._durability_degraded
                and directory == self.state_dir
            ):
                self.wal.reset()
                self._wal_ready = True
        return directory

    def _write_snapshot(self, directory: pathlib.Path) -> None:
        """The base snapshot files (caller holds ``_save_lock``)."""
        directory.mkdir(parents=True, exist_ok=True)
        # Accounts first: each file replaces atomically, but a crash
        # *between* the two must leave a loadable pair. New caps with
        # an older registry is harmless (grants without receipts); a
        # new registry whose receipts name accounts the caps file has
        # not heard of would make reconcile refuse the whole restore.
        accounts_path = directory / ACCOUNTS_STATE
        tmp = accounts_path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(self.ledger.caps_payload(), indent=1, sort_keys=True)
            + "\n"
        )
        tmp.replace(accounts_path)
        self.registry.snapshot(directory / REGISTRY_STATE)

    def _autosave_window(self) -> None:
        """The dispatch loop's per-window durability hook.

        Steady state is an O(1) log sync: flush + fsync the events the
        window appended. Every ``wal_compact_records`` records the log
        is folded into the base snapshot and restarted. The very first
        disk contact decides the mode: a directory this service
        ``load_state``-ed from appends to its existing log; any other
        pre-existing state is *replaced* (snapshot + fresh log — the
        overwrite semantics ``save_state`` always had, so a foreign
        log's history is never merged into this service's). A write
        failure degrades to in-memory serving instead of killing the
        loop.
        """
        if self.state_dir is None or self.wal is None or self._durability_degraded:
            return
        try:
            with self._save_lock:
                if not self._wal_ready:
                    self.state_dir.mkdir(parents=True, exist_ok=True)
                    if self._state_loaded:
                        self.wal.open()
                    else:
                        self._write_snapshot(self.state_dir)
                        self.wal.reset()
                    self._wal_ready = True
                elif self.wal.records_since_reset >= self.wal_compact_records:
                    self._write_snapshot(self.state_dir)
                    self.wal.reset()
                else:
                    self.wal.sync()
        except OSError as error:
            self._degrade_durability(error)

    def _journal_grant(
        self, principal: str, table: str, epsilon: float, delta: float
    ) -> None:
        """The ledger's grant observer → one WAL event per new account."""
        if self.wal is not None:
            self.wal.append(
                {
                    "event": "grant",
                    "principal": principal,
                    "table": table,
                    "epsilon": epsilon,
                    "delta": delta,
                }
            )

    def _degrade_durability(self, error: OSError) -> None:
        """State_dir is not writable: warn once, detach the event hooks,
        and keep serving from memory — a durability failure must never
        take the dispatch loop down with it."""
        self._durability_degraded = True
        self._durability_error = f"{type(error).__name__}: {error}"
        self.registry.journal = None
        self.ledger.on_grant = None
        if self.wal is not None:
            try:
                self.wal.close()
            except Exception:
                pass
        warnings.warn(
            f"state_dir {self.state_dir} is not writable ({error}); the "
            "service continues in-memory only — results and budgets will "
            "NOT survive a restart",
            RuntimeWarning,
            stacklevel=2,
        )

    @property
    def durability(self) -> Dict[str, object]:
        """Operator-facing durability status: the serving mode plus the
        write-ahead log's append/sync/compaction counters."""
        if self.state_dir is None:
            return {"mode": "in-memory"}
        status: Dict[str, object] = {
            "mode": "degraded" if self._durability_degraded else "wal",
            "state_dir": str(self.state_dir),
            "wal_records": self.wal.records_since_reset if self.wal else 0,
            "wal_appends": self.wal.appends if self.wal else 0,
            "wal_syncs": self.wal.syncs if self.wal else 0,
            "compactions": self.wal.resets if self.wal else 0,
        }
        if self._durability_degraded:
            status["error"] = self._durability_error
        return status

    def load_state(
        self, directory: Optional[Union[str, pathlib.Path]] = None
    ) -> int:
        """Resume from a snapshot + write-ahead log replay: prior
        records, reconciled budgets, armed result cache. Returns the
        number of records loaded.

        The base snapshot (when one exists — a service killed before its
        first compaction leaves only the log) is merged with the log's
        events: an ``admit`` event introduces a job the snapshot never
        saw (it loads FAILED/interrupted — in-flight work is not durable
        and is never charged), a ``record`` event carries a job's final
        payload and *overrides* a snapshot entry that still shows the job
        in flight (the completion landed after the snapshot was cut), and
        ``grant`` events re-open accounts the caps file missed. Committed
        receipts then replay through the accountant's own validation
        (idempotently — an event logged both before and after a
        compaction applies once), so the restored service enforces
        ``spent + reserved <= cap`` exactly where the original would
        have. A torn final log record is truncated; mid-log corruption
        or an unknown event kind refuses to load (fail-closed).

        Table registration and ``load_state()`` may happen in either
        order: cache entries are keyed by each record's stored data
        fingerprint, so they only ever match a table whose registered
        contents are the ones the weights were trained on.
        """
        directory = pathlib.Path(directory) if directory else self.state_dir
        if directory is None:
            raise ValueError("no state directory: pass one or set state_dir=")
        registry_path = directory / REGISTRY_STATE
        wal_path = directory / WAL_STATE
        base_payloads = (
            snapshot_payloads(registry_path) if registry_path.exists() else []
        )
        events = WriteAheadLog.replay(wal_path)
        accounts_path = directory / ACCOUNTS_STATE
        caps = (
            json.loads(accounts_path.read_text()) if accounts_path.exists() else []
        )
        payloads: Dict[str, dict] = {}
        order: List[str] = []
        for payload in base_payloads:
            job_id = payload["job"]["job_id"]
            payloads[job_id] = payload
            order.append(job_id)
        grant_caps: List[dict] = []
        for event in events:
            kind = event.get("event")
            if kind in ("admit", "record"):
                payload = event["record"]
                job_id = payload["job"]["job_id"]
                existing = payloads.get(job_id)
                if existing is None:
                    payloads[job_id] = payload
                    order.append(job_id)
                elif (
                    kind == "record"
                    and existing["status"] not in TERMINAL_STATUS_VALUES
                ):
                    # The snapshot caught the job mid-flight; its logged
                    # terminal payload is the truth. (A terminal snapshot
                    # entry is never overridden — stale tail events from
                    # a crash between snapshot and log reset replay as
                    # no-ops.)
                    payloads[job_id] = payload
            elif kind == "grant":
                grant_caps.append(
                    {
                        "principal": event["principal"],
                        "table": event["table"],
                        "epsilon": event["epsilon"],
                        "delta": event["delta"],
                    }
                )
            else:
                raise WalCorruption(
                    f"{wal_path} carries an event of unknown kind {kind!r}; "
                    "refusing to load a log this service version cannot replay"
                )
        if not payloads and not caps and not grant_caps:
            return 0
        records = [record_from_payload(payloads[job_id]) for job_id in order]
        # Validate before mutating anything: loading a snapshot over a
        # registry that already holds any of its jobs must fail whole,
        # not halfway through with the ledger already replayed.
        duplicates = [
            record.job_id for record in records if record.job_id in self.registry
        ]
        if duplicates:
            raise ValueError(
                f"cannot load {registry_path}: jobs already live in this "
                f"service's registry (first: {duplicates[0]!r}); load "
                "snapshots into a fresh service"
            )
        if caps:
            self.ledger.restore_caps(caps)
        if grant_caps:
            self.ledger.restore_caps(grant_caps)
        self.ledger.reconcile(
            [record.receipt for record in records if record.receipt is not None]
        )
        for record in records:
            self.registry.add(record)
        with self._stamp_lock:
            self._submissions = max(self._submissions, self.registry.max_stamp())
        # Re-arm the cache. Keys come from each record's stored
        # provenance (table fingerprint + scan seed), so this needs no
        # table registration and can never serve since-changed data:
        # an entry only matches once a table with the same fingerprint
        # is registered and submitted against.
        for record in records:
            self.scheduler.prime_cache(record)
        if directory == self.state_dir:
            self._state_loaded = True
        return len(records)

    def _arm_cache(self, table_name: str) -> None:
        """Pay the one-off table fingerprint scan here, at registration —
        never inside a tenant's ``submit()`` — and prime the result cache
        from any completed records on ``table_name`` (a no-op unless a
        snapshot was loaded before the table existed). Registration is a
        content-mutation surface (the name may have carried different
        data before), so the fingerprint memo is invalidated first."""
        self.scheduler.invalidate_fingerprint(table_name)
        self.scheduler.fingerprint_table(table_name)
        for record in self.registry.jobs(
            table=table_name, status=JobStatus.COMPLETED
        ):
            self.scheduler.prime_cache(record)

    # -- queries -----------------------------------------------------------------

    def status(self, job_id: str) -> JobStatus:
        return self.registry.status(job_id)

    def result(self, job_id: str) -> JobRecord:
        return self.registry.get(job_id)

    def model(self, job_id: str) -> np.ndarray:
        """The differentially private weights of a completed job."""
        return self.registry.model(job_id)

    def jobs(self, **filters) -> List[JobRecord]:
        """Registry query passthrough (principal= / table= / status=)."""
        return self.registry.jobs(**filters)

    @property
    def page_reads(self) -> int:
        """Total page requests the service has made (all scans)."""
        return self.session.pool.stats.page_reads

    @property
    def peak_scan_overlap(self) -> int:
        """The most scans on *distinct* tables ever in flight at once
        (1 = fully serialized; capped by min(workers, tables))."""
        return self.scheduler.peak_overlap

    def table_scan_counts(self) -> dict:
        """Scans dispatched per table (one fused group = one scan)."""
        return dict(self.scheduler.table_scans)
