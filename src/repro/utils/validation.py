"""Argument validation helpers shared across the library.

These raise ``ValueError`` (or ``TypeError``) with messages that name the
offending parameter, which keeps the public API's error behaviour uniform.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0``."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return float(value)


def check_non_negative(value: float, name: str) -> float:
    """Require ``value >= 0``."""
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a non-negative finite number, got {value!r}")
    return float(value)


def check_in_range(
    value: float,
    name: str,
    low: float,
    high: float,
    inclusive_low: bool = True,
    inclusive_high: bool = True,
) -> float:
    """Require ``value`` to lie in the given interval."""
    ok_low = value >= low if inclusive_low else value > low
    ok_high = value <= high if inclusive_high else value < high
    if not (np.isfinite(value) and ok_low and ok_high):
        lo = "[" if inclusive_low else "("
        hi = "]" if inclusive_high else ")"
        raise ValueError(f"{name} must be in {lo}{low}, {high}{hi}, got {value!r}")
    return float(value)


def check_probability(value: float, name: str) -> float:
    """Require ``0 <= value <= 1``."""
    return check_in_range(value, name, 0.0, 1.0)


def check_positive_int(value: int, name: str) -> int:
    """Require an integer strictly greater than zero."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_non_negative_int(value: int, name: str) -> int:
    """Require an integer greater than or equal to zero."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return int(value)


def check_matrix_labels(
    features: np.ndarray, labels: np.ndarray, name: str = "dataset"
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and canonicalize an ``(X, y)`` pair.

    ``X`` becomes a 2-D float64 array, ``y`` a 1-D float64 array with one
    entry per row of ``X``.
    """
    X = np.asarray(features, dtype=np.float64)
    y = np.asarray(labels, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"{name}: features must be 2-D, got shape {X.shape}")
    if y.ndim != 1:
        raise ValueError(f"{name}: labels must be 1-D, got shape {y.shape}")
    if X.shape[0] != y.shape[0]:
        raise ValueError(
            f"{name}: features and labels disagree on sample count "
            f"({X.shape[0]} vs {y.shape[0]})"
        )
    if X.shape[0] == 0:
        raise ValueError(f"{name}: at least one example is required")
    if not np.all(np.isfinite(X)):
        raise ValueError(f"{name}: features contain non-finite values")
    if not np.all(np.isfinite(y)):
        raise ValueError(f"{name}: labels contain non-finite values")
    return X, y


def check_binary_labels(labels: np.ndarray, name: str = "labels") -> np.ndarray:
    """Require labels in {-1, +1} (the convention used throughout the paper)."""
    y = np.asarray(labels, dtype=np.float64)
    values = np.unique(y)
    if not np.all(np.isin(values, (-1.0, 1.0))):
        raise ValueError(f"{name} must take values in {{-1, +1}}, got {values}")
    return y


def check_unit_ball(features: np.ndarray, name: str = "features", atol: float = 1e-9) -> None:
    """Require every row of ``features`` to satisfy ``||x|| <= 1``.

    The sensitivity analysis assumes normalized inputs (Section 2); the
    public training APIs call this so a violated precondition fails loudly
    instead of silently producing a wrong privacy guarantee.
    """
    norms = np.linalg.norm(np.asarray(features, dtype=np.float64), axis=1)
    worst = float(norms.max(initial=0.0))
    if worst > 1.0 + atol:
        raise ValueError(
            f"{name} must be normalized to the unit L2 ball for the privacy "
            f"guarantee to hold (max norm {worst:.6f} > 1). "
            "Use repro.data.preprocessing.normalize_rows first."
        )
