"""Query execution: sequential scan, shuffle, and aggregate evaluation.

Bismarck drives each SGD epoch with an SQL query of the form::

    SELECT sgd_agg(features, label) FROM dataset ORDER BY RANDOM();

This module provides the corresponding physical operators:

* :class:`SeqScan` — page-at-a-time scan through the buffer pool;
* :class:`Shuffle` — the ``ORDER BY RANDOM()`` stage: materializes a random
  permutation of tuple ids and re-reads tuples in that order (every page
  touched once per resident window; with a too-small pool this produces
  the random-I/O penalty real shuffles pay);
* :func:`run_aggregate` — feed an operator's tuple stream through a UDA.

Operators expose the counters the cost model charges: tuples produced,
pages requested, comparison work for the shuffle.

Two execution paths
-------------------

Every operator can deliver its tuples two ways:

* **per-tuple** (``__iter__``) — the classic Volcano-style
  ``(features_row, label)`` stream that feeds ``UDA.transition``;
* **chunked** (``scan_chunks(chunk_size)``) — ``(X_block, y_block)`` array
  pairs of up to ``chunk_size`` rows that feed ``UDA.transition_batch``,
  letting the SGD UDA take NumPy-speed mini-batch steps.

**Determinism contract**: both paths visit tuples in exactly the same
order (storage order for :class:`SeqScan`, the drawn permutation for the
shuffles) and request pages through the buffer pool at exactly the same
points, so ``OperatorStats`` — including ``pages_requested`` — and the
resulting model are path-independent; the golden tests in
``tests/test_rdbms_engine.py`` lock both invariants in.

Storage-agnostic by construction
--------------------------------

Operators never touch a heap directly: every page arrives via
``BufferPool.get_page``, and every heap speaks the same ``HeapFile``
protocol with the same :func:`tuples_per_page` page grid. That is what
lets a :class:`~repro.rdbms.storage.SQLiteHeapFile` (real pages on real
disk, WAL-mode reads) slot under these operators unchanged: the scan
order, the chunk grid, the page-request counters, and therefore the
released weights are all bitwise-identical to an in-memory heap holding
the same tuples. Pages read from real storage may be backed by
read-only buffers — operators copy rows into fresh blocks and never
write through a page, so the distinction is invisible here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.rdbms.catalog import TableInfo
from repro.rdbms.storage import BufferPool, tuples_per_page
from repro.rdbms.uda import UDA
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int

#: A tuple stream item: (features row, label).
TupleItem = Tuple[np.ndarray, float]

#: A chunk stream item: (features block, labels block), up to chunk_size rows.
ChunkItem = Tuple[np.ndarray, np.ndarray]


@dataclass
class OperatorStats:
    """Work counters for one operator execution."""

    tuples_produced: int = 0
    pages_requested: int = 0
    shuffle_sorted_tuples: int = 0


class SeqScan:
    """Sequential scan in storage order."""

    def __init__(self, table: TableInfo, pool: BufferPool):
        self.table = table
        self.pool = pool
        self.stats = OperatorStats()

    def __iter__(self) -> Iterator[TupleItem]:
        for page in self.pool.scan(self.table.heap):
            self.stats.pages_requested += 1
            for row in range(page.tuple_count):
                self.stats.tuples_produced += 1
                yield page.features[row], float(page.labels[row])

    def scan_chunks(self, chunk_size: int) -> Iterator[ChunkItem]:
        """Storage-order scan emitting ``(X_block, y_block)`` arrays.

        Pages are requested exactly as in the per-tuple path (once each,
        through the buffer pool); chunks simply re-slice page contents, so
        they may span page boundaries.
        """
        check_positive_int(chunk_size, "chunk_size")
        d = self.table.dimension
        X_block = np.empty((chunk_size, d), dtype=np.float64)
        y_block = np.empty(chunk_size, dtype=np.float64)
        fill = 0
        for page in self.pool.scan(self.table.heap):
            self.stats.pages_requested += 1
            self.stats.tuples_produced += page.tuple_count
            start = 0
            while start < page.tuple_count:
                take = min(chunk_size - fill, page.tuple_count - start)
                X_block[fill : fill + take] = page.features[start : start + take]
                y_block[fill : fill + take] = page.labels[start : start + take]
                fill += take
                start += take
                if fill == chunk_size:
                    yield X_block, y_block
                    X_block = np.empty((chunk_size, d), dtype=np.float64)
                    y_block = np.empty(chunk_size, dtype=np.float64)
                    fill = 0
        if fill > 0:
            yield X_block[:fill], y_block[:fill]


class Shuffle:
    """``ORDER BY RANDOM()``: yield tuples in a fresh random order.

    The permutation is over global tuple ids; tuples are fetched through
    the buffer pool page by page, so a pool smaller than the table makes
    shuffled access expensive — exactly why Bismarck shuffles *once* and
    then scans sequentially each epoch. :class:`ShuffleOnce` implements
    that optimization.
    """

    def __init__(
        self,
        table: TableInfo,
        pool: BufferPool,
        random_state: RandomState = None,
    ):
        self.table = table
        self.pool = pool
        self.rng = as_generator(random_state)
        self.stats = OperatorStats()

    def permutation(self) -> np.ndarray:
        perm = self.rng.permutation(self.table.num_tuples)
        self.stats.shuffle_sorted_tuples += self.table.num_tuples
        return perm

    def __iter__(self) -> Iterator[TupleItem]:
        per_page = tuples_per_page(self.table.dimension)
        for tuple_id in self.permutation():
            page_id, row = divmod(int(tuple_id), per_page)
            page = self.pool.get_page(self.table.heap, page_id)
            self.stats.pages_requested += 1
            self.stats.tuples_produced += 1
            yield page.features[row], float(page.labels[row])

    def scan_chunks(self, chunk_size: int) -> Iterator[ChunkItem]:
        """Permuted scan emitting ``(X_block, y_block)`` arrays.

        Draws a fresh permutation (like ``__iter__``) and gathers each run
        of ``chunk_size`` permuted tuples into a block; every tuple still
        costs one page request, matching the per-tuple path's counters.
        """
        yield from _gather_permuted_chunks(
            self.table, self.pool, self.stats, self.permutation(), chunk_size
        )


class ShuffleOnce:
    """Bismarck's strategy: permute tuple ids once, then replay that order
    every epoch with page-clustered access.

    Tuple ids are permuted, then visited grouped by page so each page is
    fetched once per epoch (the behaviour of Bismarck's shuffled-copy of
    the table). This preserves permutation semantics for SGD while keeping
    sequential-like I/O, which is what lets the paper's disk-based runs
    stay I/O-bound rather than seek-bound.
    """

    def __init__(
        self,
        table: TableInfo,
        pool: BufferPool,
        random_state: RandomState = None,
    ):
        self.table = table
        self.pool = pool
        self.rng = as_generator(random_state)
        self.stats = OperatorStats()
        self._permutation: Optional[np.ndarray] = None
        self._cursors: dict = {}

    @property
    def permutation(self) -> np.ndarray:
        if self._permutation is None:
            self._permutation = self.rng.permutation(self.table.num_tuples)
            self.stats.shuffle_sorted_tuples += self.table.num_tuples
        return self._permutation

    def reshuffle(self) -> None:
        """Draw a fresh permutation (the fresh-permutation-per-pass mode)."""
        self._permutation = None

    def __iter__(self) -> Iterator[TupleItem]:
        # Group the permuted tuple ids by their page in permutation order:
        # within a page-visit we respect the permutation's relative order.
        per_page = tuples_per_page(self.table.dimension)
        perm = self.permutation
        page_ids, rows = np.divmod(perm, per_page)
        # Stable grouping: iterate the permutation, batching consecutive
        # runs that share a page (good locality for nearly-sorted perms)
        # while preserving the exact permutation order for correctness.
        for tuple_index in range(len(perm)):
            page = self.pool.get_page(self.table.heap, int(page_ids[tuple_index]))
            self.stats.pages_requested += 1
            self.stats.tuples_produced += 1
            row = int(rows[tuple_index])
            yield page.features[row], float(page.labels[row])

    def scan_chunks(self, chunk_size: int, start_offset: int = 0) -> Iterator[ChunkItem]:
        """Replay the stored permutation as ``(X_block, y_block)`` arrays.

        Same order and same one-page-request-per-tuple accounting as the
        per-tuple replay, so epochs are path-independent.

        ``start_offset`` rotates the delivery: the epoch starts at that
        permutation position and wraps around, visiting every tuple
        exactly once. The offset must sit on the *canonical chunk grid*
        (a multiple of ``chunk_size``) so the chunks delivered are the
        same blocks an offset-0 scan would produce, merely reordered —
        the property that makes a mid-scan boarder's ride bitwise equal
        to its solo run (see :class:`ScanCursor`).
        """
        perm = self.permutation
        for start in _chunk_starts(len(perm), chunk_size, start_offset):
            yield _gather_chunk(
                self.table,
                self.pool,
                self.stats,
                perm[start : start + chunk_size],
            )

    def cursor(self, chunk_size: int) -> "ScanCursor":
        """The table's persistent elevator cursor for this chunk size
        (get-or-create): a resumable position on the canonical chunk grid
        that survives across scan loops, so a dispatcher can park it and
        later resume — see :class:`ScanCursor`.
        """
        check_positive_int(chunk_size, "chunk_size")
        cursor = self._cursors.get(chunk_size)
        if cursor is None:
            cursor = ScanCursor(self, chunk_size)
            self._cursors[chunk_size] = cursor
        return cursor


#: Average tuples per distinct page above which a chunk is "dense" enough
#: for the grouped per-page row gather to beat scalar row copies (below
#: it, per-group NumPy call overhead exceeds the copies it replaces).
_DENSE_GATHER_THRESHOLD = 4


def _gather_permuted_chunks(
    table: TableInfo,
    pool: BufferPool,
    stats: OperatorStats,
    permutation: np.ndarray,
    chunk_size: int,
) -> Iterator[ChunkItem]:
    """Gather permuted tuples into blocks with page-grouped row copies.

    Shared by the two shuffle operators. Every tuple still pins its page
    through the buffer pool in visit order — one ``get_page`` per tuple —
    so ``OperatorStats``, the pool's hit/miss/eviction counters, and the
    LRU recency state are *exactly* the per-tuple path's in every regime,
    resident or thrashing (the golden tests in
    ``tests/test_rdbms_engine.py`` and the eviction-regime test in
    ``tests/test_multimodel_equivalence.py`` lock this in).

    The speedup comes from the row copies: ``divmod`` is vectorized for
    the whole chunk, and when the chunk is *dense* — at least
    ``_DENSE_GATHER_THRESHOLD`` tuples per distinct page on average
    (clustered permutations, or chunks spanning a small table, e.g. every
    golden-test and Bismarck-example configuration) — each page's rows
    land in the block via one fancy-indexed gather instead of scalar
    copies. Sparse chunks (a random permutation over a many-page table)
    keep the scalar copy per tuple, which measures faster there than any
    grouped form: with ~1 tuple per page there is nothing to batch.

    Pool misses materialize through a per-chunk memo
    (``BufferPool.get_page``'s ``reader`` hook): within one chunk each
    distinct page is read from the heap **at most once**, even when an
    actively evicting pool misses the same page several times. For a
    :class:`~repro.rdbms.storage.VirtualHeapFile` that means each page is
    *synthesized* once per chunk instead of once per miss — the cost that
    dominated the Figure 2 scale sweeps under shuffled access — while the
    pool's hit/miss/eviction counters and LRU state stay exactly the
    per-tuple path's (page content is deterministic per page id, so the
    memo changes which bytes get recomputed, never what they are).
    """
    check_positive_int(chunk_size, "chunk_size")
    m = len(permutation)
    for start in range(0, m, chunk_size):
        yield _gather_chunk(
            table, pool, stats, permutation[start : start + chunk_size]
        )


def _gather_chunk(
    table: TableInfo,
    pool: BufferPool,
    stats: OperatorStats,
    ids: np.ndarray,
) -> ChunkItem:
    """Gather one run of permuted tuple ids into an ``(X, y)`` block.

    The single-chunk core of :func:`_gather_permuted_chunks` — also the
    unit a :class:`ScanCursor` delivers, so a boarded ride and a rotated
    solo replay materialize byte-identical blocks from identical page
    requests.
    """
    per_page = tuples_per_page(table.dimension)
    d = table.dimension
    heap = table.heap
    get_page = pool.get_page
    read_page = heap.read_page
    ids = np.asarray(ids, dtype=np.int64)
    n = len(ids)
    page_ids, rows = np.divmod(ids, per_page)
    X_block = np.empty((n, d), dtype=np.float64)
    y_block = np.empty(n, dtype=np.float64)

    materialized: dict = {}

    def chunk_reader(page_id: int, _memo=materialized):
        page = _memo.get(page_id)
        if page is None:
            page = read_page(page_id)
            _memo[page_id] = page
        return page

    # Stable sort groups equal pages while preserving visit order
    # inside each group; group starts are the boundaries.
    order = np.argsort(page_ids, kind="stable")
    sorted_pages = page_ids[order]
    boundaries = np.flatnonzero(
        np.r_[True, sorted_pages[1:] != sorted_pages[:-1]]
    )
    boundaries = np.r_[boundaries, n]
    distinct = len(boundaries) - 1

    if n >= _DENSE_GATHER_THRESHOLD * distinct:
        pages = {}
        for page_id in page_ids.tolist():
            pages[page_id] = get_page(heap, page_id, reader=chunk_reader)
        for group in range(distinct):
            members = order[boundaries[group] : boundaries[group + 1]]
            page = pages[int(sorted_pages[boundaries[group]])]
            page_rows = rows[members]
            X_block[members] = page.features[page_rows]
            y_block[members] = page.labels[page_rows]
    else:
        row_list = rows.tolist()
        for j, page_id in enumerate(page_ids.tolist()):
            page = get_page(heap, page_id, reader=chunk_reader)
            row = row_list[j]
            X_block[j] = page.features[row]
            y_block[j] = page.labels[row]
    stats.pages_requested += n
    stats.tuples_produced += n
    return X_block, y_block


def _chunk_starts(num_tuples: int, chunk_size: int, start_offset: int = 0) -> list:
    """The canonical chunk-grid start positions for one full epoch,
    rotated to begin at ``start_offset``.

    The canonical grid is fixed by ``chunk_size`` alone — chunk *j*
    covers permutation positions ``[j*chunk_size, min((j+1)*chunk_size,
    m))`` — so every rider of a shared cursor sees the *same* blocks
    regardless of where it boarded; only the visit order rotates.
    ``start_offset`` must therefore sit on the grid.
    """
    check_positive_int(chunk_size, "chunk_size")
    if start_offset and (
        start_offset % chunk_size != 0
        or not 0 <= start_offset < num_tuples
    ):
        raise ValueError(
            f"start_offset {start_offset} is not on the canonical chunk grid "
            f"(multiples of {chunk_size} below {num_tuples})"
        )
    starts = list(range(0, num_tuples, chunk_size))
    pivot = start_offset // chunk_size
    return starts[pivot:] + starts[:pivot]


class ScanCursor:
    """A resumable position on a :class:`ShuffleOnce`'s canonical chunk
    grid — the *elevator* of the shared-cursor design.

    The paper's shared-scan economy is strongest when a table runs **one
    continuous scan loop** that late-arriving jobs board at the cursor's
    current position, ride through the wrap-around, and exit where they
    got on — page cost then scales with concurrent scan loops, not with
    batching windows. The cursor is the mechanism: :meth:`next_chunk`
    delivers the canonical chunk at :attr:`position` (identical block,
    identical page requests, identical pool/LRU effects as an offset-0
    ``scan_chunks`` delivering that chunk) and advances, wrapping to
    position 0 at the end of the permutation.

    Two invariants make boarding bitwise-safe:

    * chunks are always the canonical grid's blocks — boarding rotates
      the order a rider sees them, never their contents or boundaries;
    * boarding happens only *between* chunks, so a rider's boarding
      offset is a grid position and each of its epochs spans exactly
      ``num_tuples`` tuples, ending back at its boarding chunk.

    ``park()`` rewinds to position 0 when a scan loop drains: an
    uncontended workload then behaves exactly like window batching
    (every job boards at 0) and its releases stay cache-eligible.
    """

    def __init__(self, shuffle: ShuffleOnce, chunk_size: int):
        self.shuffle = shuffle
        self.chunk_size = check_positive_int(chunk_size, "chunk_size")
        #: Permutation position of the next chunk's start — always on
        #: the canonical grid.
        self.position = 0
        #: Completed wrap-arounds over the cursor's lifetime.
        self.loops = 0

    @property
    def num_tuples(self) -> int:
        return self.shuffle.table.num_tuples

    def next_chunk(self) -> ChunkItem:
        """Deliver the canonical chunk at :attr:`position` and advance
        (wrapping). Page accounting matches ``scan_chunks`` exactly."""
        perm = self.shuffle.permutation
        m = len(perm)
        start = self.position
        end = min(start + self.chunk_size, m)
        chunk = _gather_chunk(
            self.shuffle.table,
            self.shuffle.pool,
            self.shuffle.stats,
            perm[start:end],
        )
        if end >= m:
            self.position = 0
            self.loops += 1
        else:
            self.position = end
        return chunk

    def park(self) -> None:
        """Rewind to position 0 (called when the scan loop drains)."""
        self.position = 0


class OffsetScanView:
    """A shuffle operator viewed with its epoch rotated to ``start_offset``.

    The *solo-reference twin* of a boarded elevator ride: feeding this
    view through :func:`run_aggregate` delivers the underlying
    :class:`ShuffleOnce`'s canonical chunks starting at the boarding
    offset and wrapping — exactly the stream a rider that boarded a
    :class:`ScanCursor` at that position consumed. Chunked delivery only
    (boarding offsets are positions on a chunk grid; there is no
    per-tuple boarding).
    """

    def __init__(self, source: ShuffleOnce, start_offset: int):
        self.source = source
        self.start_offset = int(start_offset)

    @property
    def stats(self) -> OperatorStats:
        return self.source.stats

    def __iter__(self) -> Iterator[TupleItem]:
        raise TypeError(
            "OffsetScanView is chunked-only: boarding offsets live on a "
            "chunk grid, so pass a chunk_size when running from an offset"
        )

    def scan_chunks(self, chunk_size: int) -> Iterator[ChunkItem]:
        yield from self.source.scan_chunks(
            chunk_size, start_offset=self.start_offset
        )


def run_aggregate(
    source, uda: UDA, *, chunk_size: Optional[int] = None, **initialize_kwargs: Any
) -> Any:
    """Evaluate ``SELECT uda(...) FROM source``: the aggregate pipeline.

    ``chunk_size=None`` streams per-tuple through ``UDA.transition``;
    a positive ``chunk_size`` streams ``source.scan_chunks(chunk_size)``
    blocks through ``UDA.transition_batch`` — same tuples, same order,
    same result, vectorized.
    """
    state = uda.initialize(**initialize_kwargs)
    if chunk_size is None:
        for features, label in source:
            state = uda.transition(state, features, label)
    else:
        for features, labels in source.scan_chunks(chunk_size):
            state = uda.transition_batch(state, features, labels)
    return uda.terminate(state)


def run_aggregates(
    source,
    udas: Sequence[UDA],
    *,
    chunk_size: Optional[int] = None,
    initialize_kwargs: Optional[Any] = None,
) -> list:
    """Evaluate ``SELECT uda_1(...), ..., uda_K(...) FROM source``.

    The Bismarck shared-scan form: K aggregates fold the *same* tuple
    stream, so the scan — and every page request it makes — is paid once
    instead of K times. ``initialize_kwargs`` is either one dict shared by
    every UDA or a sequence of K per-UDA dicts. Returns the K terminate
    values in UDA order.

    (A :class:`repro.rdbms.uda.MultiSGDUDA` additionally fuses the models'
    arithmetic into one state; this function is the generic form that
    shares the scan across arbitrary independent aggregates.)
    """
    udas = list(udas)
    if len(udas) == 0:
        raise ValueError("at least one UDA is required")
    if initialize_kwargs is None:
        kwargs_list = [{} for _ in udas]
    elif isinstance(initialize_kwargs, dict):
        kwargs_list = [initialize_kwargs for _ in udas]
    else:
        kwargs_list = list(initialize_kwargs)
        if len(kwargs_list) != len(udas):
            raise ValueError(
                f"initialize_kwargs must match the {len(udas)} UDAs, "
                f"got {len(kwargs_list)} entries"
            )
    states = [uda.initialize(**kwargs) for uda, kwargs in zip(udas, kwargs_list)]
    if chunk_size is None:
        for features, label in source:
            for i, uda in enumerate(udas):
                states[i] = uda.transition(states[i], features, label)
    else:
        for features, labels in source.scan_chunks(chunk_size):
            for i, uda in enumerate(udas):
                states[i] = uda.transition_batch(states[i], features, labels)
    return [uda.terminate(state) for uda, state in zip(udas, states)]
