"""Closed-form convergence (excess empirical risk) bounds.

Implements the utility side of the paper's analysis:

* Theorem 10 — convex, constant step ``eta = R/(L sqrt(m))``, 1-pass,
  averaged, ε-DP: ``E[L_S(w~) - L*] <= (L + 2(12 + sqrt(L))) R / sqrt(m)
  + 2 d L R / (eps sqrt(m))``.
* Theorem 12 — strongly convex, ``eta_t = 1/(gamma t)``, 1-pass, averaged,
  ε-DP: ``c ((L + beta R)^2 + G^2) log m / (gamma m) + 2 d G^2 / (eps gamma m)``.
* Table 2 — the (ε,δ)-DP asymptotic rates of ours vs BST14 for a constant
  number of passes, used by the Table 2 bench to show the crossover
  behaviour analytically and to check the empirical scaling.
* Lemma 11 — ``L_S(w) - L_S(w + kappa) <= L ||kappa||`` — as an executable
  check used by tests.

These are *upper bounds*; benches compare their scaling shape (slope in m,
gap between ours and BST14) with measured excess risk.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.optim.losses import Loss
from repro.utils.validation import check_positive, check_positive_int


def zinkevich_regret(radius: float, lipschitz: float, steps: int, eta: float) -> float:
    """Theorem 8 (Zinkevich): ``R(T) <= R^2/(2 eta) + L^2 T eta / 2``."""
    check_positive(radius, "radius")
    check_positive(lipschitz, "lipschitz")
    check_positive_int(steps, "steps")
    check_positive(eta, "eta")
    return radius**2 / (2.0 * eta) + lipschitz**2 * steps * eta / 2.0


def privacy_risk_bound(lipschitz: float, noise_norm: float) -> float:
    """Lemma 11: the risk increase from output perturbation is ``L ||kappa||``."""
    check_positive(lipschitz, "lipschitz")
    if noise_norm < 0:
        raise ValueError("noise_norm must be non-negative")
    return lipschitz * noise_norm


def check_privacy_risk(
    loss: Loss,
    X: np.ndarray,
    y: np.ndarray,
    w: np.ndarray,
    kappa: np.ndarray,
    lipschitz: float,
) -> bool:
    """Executable Lemma 11: verify ``L_S(w + kappa) - L_S(w) <= L ||kappa||``."""
    before = loss.batch_value(np.asarray(w, dtype=np.float64), X, y)
    after = loss.batch_value(np.asarray(w, dtype=np.float64) + kappa, X, y)
    return after - before <= lipschitz * float(np.linalg.norm(kappa)) + 1e-9


@dataclass(frozen=True)
class ConvexRiskBound:
    """Theorem 10's two terms, kept separate for reporting."""

    optimization_term: float
    privacy_term: float

    @property
    def total(self) -> float:
        return self.optimization_term + self.privacy_term


def convex_excess_risk_bound(
    lipschitz: float, radius: float, m: int, dimension: int, epsilon: float
) -> ConvexRiskBound:
    """Theorem 10 (convex, constant step, 1 pass, ε-DP).

    ``(L + 2(12 + sqrt(L))) R / sqrt(m)  +  2 d L R / (eps sqrt(m))``.
    """
    check_positive(lipschitz, "lipschitz")
    check_positive(radius, "radius")
    check_positive_int(m, "m")
    check_positive_int(dimension, "dimension")
    check_positive(epsilon, "epsilon")
    optimization = (lipschitz + 2.0 * (12.0 + math.sqrt(lipschitz))) * radius / math.sqrt(m)
    privacy = 2.0 * dimension * lipschitz * radius / (epsilon * math.sqrt(m))
    return ConvexRiskBound(optimization_term=optimization, privacy_term=privacy)


def strongly_convex_excess_risk_bound(
    lipschitz: float,
    smoothness: float,
    strong_convexity: float,
    radius: float,
    gradient_bound: float,
    m: int,
    dimension: int,
    epsilon: float,
    universal_constant: float = 1.0,
) -> ConvexRiskBound:
    """Theorem 12 (strongly convex, 1/(gamma t) step, 1 pass, ε-DP).

    ``c ((L + beta R)^2 + G^2) log m / (gamma m)  +  2 d G^2 / (eps gamma m)``.
    The universal constant c of Shamir's Theorem 3 is not specified by the
    paper; callers may scale it.
    """
    check_positive(lipschitz, "lipschitz")
    check_positive(smoothness, "smoothness")
    check_positive(strong_convexity, "strong_convexity")
    check_positive(radius, "radius")
    check_positive(gradient_bound, "gradient_bound")
    check_positive_int(m, "m")
    check_positive_int(dimension, "dimension")
    check_positive(epsilon, "epsilon")
    optimization = (
        universal_constant
        * ((lipschitz + smoothness * radius) ** 2 + gradient_bound**2)
        * math.log(m)
        / (strong_convexity * m)
    )
    privacy = 2.0 * dimension * gradient_bound**2 / (epsilon * strong_convexity * m)
    return ConvexRiskBound(optimization_term=optimization, privacy_term=privacy)


# ---------------------------------------------------------------------------
# Table 2: (eps, delta)-DP rates for a constant number of passes.
# ---------------------------------------------------------------------------


def table2_rate_ours_convex(m: int, dimension: int) -> float:
    """Ours, convex: ``O(sqrt(d) / sqrt(m))``."""
    check_positive_int(m, "m")
    check_positive_int(dimension, "dimension")
    return math.sqrt(dimension) / math.sqrt(m)


def table2_rate_bst14_convex(m: int, dimension: int) -> float:
    """BST14, convex: ``O(sqrt(d) log^{3/2} m / sqrt(m))``."""
    check_positive_int(m, "m")
    check_positive_int(dimension, "dimension")
    return math.sqrt(dimension) * math.log(max(m, 2)) ** 1.5 / math.sqrt(m)


def table2_rate_ours_strongly_convex(m: int, dimension: int) -> float:
    """Ours, strongly convex: ``O(sqrt(d) log m / m)``."""
    check_positive_int(m, "m")
    check_positive_int(dimension, "dimension")
    return math.sqrt(dimension) * math.log(max(m, 2)) / m


def table2_rate_bst14_strongly_convex(m: int, dimension: int) -> float:
    """BST14, strongly convex: ``O(d log^2 m / m)``."""
    check_positive_int(m, "m")
    check_positive_int(dimension, "dimension")
    return dimension * math.log(max(m, 2)) ** 2 / m


def table2_advantage(m: int, dimension: int) -> dict[str, float]:
    """The two advantage factors the paper derives from Table 2.

    Convex: ours better by ``log^{3/2} m``; strongly convex: ours better by
    ``sqrt(d) log m``. Returned as measured ratios of the rate functions so
    the bench can print paper-vs-computed side by side.
    """
    return {
        "convex_ratio": table2_rate_bst14_convex(m, dimension)
        / table2_rate_ours_convex(m, dimension),
        "convex_ratio_expected": math.log(max(m, 2)) ** 1.5,
        "strongly_convex_ratio": table2_rate_bst14_strongly_convex(m, dimension)
        / table2_rate_ours_strongly_convex(m, dimension),
        "strongly_convex_ratio_expected": math.sqrt(dimension) * math.log(max(m, 2)),
    }
