"""Figure 3 — test accuracy vs ε with fixed (publicly tuned) parameters.

Three dataset rows (MNIST-like, Protein-like, Covertype-like), four test
panels each (convex/strongly-convex × ε-DP/(ε,δ)-DP), b = 50, 10 passes,
λ = 1e-4 where applicable — the caption's setting.

Stand-in scales are laptop-fast (DESIGN.md §3): the asserted shape is the
paper's — ours dominates SCS13/BST14 at every ε and approaches the
noiseless line as ε grows.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.figures import accuracy_figure_row, epsilons_for
from repro.evaluation.reporting import format_series
from repro.evaluation.scenarios import Scenario

from bench_util import run_once, write_report

SCENARIOS = tuple(Scenario)


def _assert_paper_shape(results, slack=0.03, ours_wins_at=-1):
    """Ours >= baselines (small slack for noise), and ours approaches
    noiseless at the largest epsilon of the grid."""
    for sweep in results:
        ours = sweep.series["ours"]
        for baseline in ("scs13", "bst14"):
            if baseline in sweep.series:
                base = sweep.series[baseline]
                assert ours[ours_wins_at] >= base[ours_wins_at] - slack, (
                    f"{sweep.scenario.name}: ours={ours} vs {baseline}={base}"
                )
        mean_ours = float(np.mean(ours))
        mean_scs = float(np.mean(sweep.series["scs13"]))
        assert mean_ours >= mean_scs - slack


def _row(dataset, scale, passes=10, regularization=1e-3):
    return accuracy_figure_row(
        dataset,
        tuning="fixed",
        scale=scale,
        scenarios=SCENARIOS,
        passes=passes,
        batch_size=50,
        regularization=regularization,
        seed=0,
    )


def _write_row(name, dataset, results):
    blocks = [
        format_series(
            f"Figure 3 [{dataset}] {sweep.scenario.value}",
            "epsilon", sweep.epsilons, sweep.series,
        )
        for sweep in results
    ]
    write_report(name, "\n\n".join(blocks))


def bench_fig3_mnist(benchmark):
    results = run_once(benchmark, _row, "mnist", 0.05)
    _write_row("fig3_mnist", "mnist-like", results)
    _assert_paper_shape(results)
    assert results[0].epsilons == list(epsilons_for("mnist"))


def bench_fig3_protein(benchmark):
    results = run_once(benchmark, _row, "protein", 0.1)
    _write_row("fig3_protein", "protein-like", results)
    _assert_paper_shape(results)
    # Protein: logistic regression fits well; noiseless accuracy is high.
    assert results[0].series["noiseless"][0] > 0.85


def bench_fig3_covertype(benchmark):
    results = run_once(benchmark, _row, "covertype", 0.05)
    _write_row("fig3_covertype", "covertype-like", results)
    _assert_paper_shape(results)
