"""Step-size (learning-rate) schedules.

Table 4 of the paper fixes one schedule per (algorithm, scenario) cell; the
classes here implement every schedule that appears there plus the two
additional regimes analysed in Corollaries 2 and 3:

================================  =============================================
Schedule                          Where the paper uses it
================================  =============================================
``ConstantSchedule(1/sqrt(m))``   Non-private & ours, convex tests
``InverseTSchedule(gamma)``       Non-private, strongly convex (``1/(gamma t)``)
``CappedInverseTSchedule``        Ours, strongly convex (``min(1/beta, 1/(gamma t))``)
``InverseSqrtTSchedule``          SCS13 in every scenario (``1/sqrt(t)``)
``DecreasingSchedule``            Corollary 2 (``2 / (beta (t + m^c))``)
``SquareRootSchedule``            Corollary 3 (``2 / (beta (sqrt(t) + m^c))``)
``BST14Schedule``                 Algorithm 4 (``2R / (G sqrt(t))``)
================================  =============================================

Schedules are 1-indexed: ``rate(t)`` expects ``t >= 1``, matching the
paper's iteration numbering ``t = 1, ..., T``.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.validation import check_in_range, check_non_negative, check_positive


class StepSizeSchedule(abc.ABC):
    """Maps an iteration index (1-based) to a learning rate eta_t."""

    @abc.abstractmethod
    def rate(self, t: int) -> float:
        """Learning rate at iteration ``t`` (``t >= 1``)."""

    def rates(self, total: int) -> np.ndarray:
        """Vector of the first ``total`` rates.

        Used by the sensitivity sums and, since the hot loops stopped
        calling ``rate(t)`` per step, cached once per run/epoch by the PSGD
        engine and the SGD UDA. Overrides must satisfy
        ``rates(n)[t - 1] == rate(t)`` *exactly* (same floating-point
        values, not just close) — the schedule property tests enforce this,
        and the engines' equivalence guarantees rely on it. Every built-in
        schedule overrides this with a vectorized closed form whose
        element-wise operations are identical to the scalar path.
        """
        if total < 0:
            raise ValueError(f"total must be non-negative, got {total}")
        return np.array([self.rate(t) for t in range(1, total + 1)], dtype=np.float64)

    @staticmethod
    def _indices(total: int) -> np.ndarray:
        """The 1-based iteration indices ``[1, ..., total]`` as float64."""
        if total < 0:
            raise ValueError(f"total must be non-negative, got {total}")
        return np.arange(1, total + 1, dtype=np.float64)

    def max_rate(self, total: int) -> float:
        """Largest rate over the first ``total`` iterations."""
        if total <= 0:
            return 0.0
        return float(self.rates(total).max())

    def _check_t(self, t: int) -> int:
        if t < 1:
            raise ValueError(f"iterations are 1-based; got t={t}")
        return t


class ConstantSchedule(StepSizeSchedule):
    """``eta_t = eta`` for all t.

    The paper's convex experiments use ``eta = 1/sqrt(m)`` (Table 4); note
    the remark in Section 3.2.1 that a "constant" step may still depend on
    the training-set size m.
    """

    def __init__(self, eta: float):
        self.eta = check_positive(eta, "eta")

    def rate(self, t: int) -> float:
        self._check_t(t)
        return self.eta

    def rates(self, total: int) -> np.ndarray:
        if total < 0:
            raise ValueError(f"total must be non-negative, got {total}")
        return np.full(total, self.eta, dtype=np.float64)

    @classmethod
    def for_dataset(cls, m: int) -> "ConstantSchedule":
        """The paper's default convex setting ``eta = 1/sqrt(m)``."""
        check_positive(m, "m")
        return cls(1.0 / np.sqrt(m))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantSchedule(eta={self.eta!r})"


class InverseTSchedule(StepSizeSchedule):
    """``eta_t = 1 / (gamma t)`` — the classic strongly convex schedule."""

    def __init__(self, gamma: float):
        self.gamma = check_positive(gamma, "gamma")

    def rate(self, t: int) -> float:
        self._check_t(t)
        return 1.0 / (self.gamma * t)

    def rates(self, total: int) -> np.ndarray:
        return 1.0 / (self.gamma * self._indices(total))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InverseTSchedule(gamma={self.gamma!r})"


class CappedInverseTSchedule(StepSizeSchedule):
    """``eta_t = min(1/beta, 1/(gamma t))`` — Algorithm 2's schedule.

    The cap at ``1/beta`` keeps every update inside the expansiveness
    regime of Lemma 2, which is what makes the pass-independent sensitivity
    ``2L/(gamma m)`` of Lemma 8 go through.
    """

    def __init__(self, beta: float, gamma: float):
        self.beta = check_positive(beta, "beta")
        self.gamma = check_positive(gamma, "gamma")

    def rate(self, t: int) -> float:
        self._check_t(t)
        return min(1.0 / self.beta, 1.0 / (self.gamma * t))

    def rates(self, total: int) -> np.ndarray:
        return np.minimum(1.0 / self.beta, 1.0 / (self.gamma * self._indices(total)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CappedInverseTSchedule(beta={self.beta!r}, gamma={self.gamma!r})"


class InverseSqrtTSchedule(StepSizeSchedule):
    """``eta_t = eta0 / sqrt(t)`` — SCS13's schedule (Table 4, all rows)."""

    def __init__(self, eta0: float = 1.0):
        self.eta0 = check_positive(eta0, "eta0")

    def rate(self, t: int) -> float:
        self._check_t(t)
        return self.eta0 / np.sqrt(t)

    def rates(self, total: int) -> np.ndarray:
        return self.eta0 / np.sqrt(self._indices(total))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InverseSqrtTSchedule(eta0={self.eta0!r})"


class DecreasingSchedule(StepSizeSchedule):
    """``eta_t = 2 / (beta (t + m^c))`` for some ``c in [0, 1)`` — Corollary 2."""

    def __init__(self, beta: float, m: int, c: float = 0.5):
        self.beta = check_positive(beta, "beta")
        self.m = int(check_positive(m, "m"))
        self.c = check_in_range(c, "c", 0.0, 1.0, inclusive_high=False)

    @property
    def offset(self) -> float:
        """The ``m^c`` shift in the denominator."""
        return float(self.m**self.c)

    def rate(self, t: int) -> float:
        self._check_t(t)
        return 2.0 / (self.beta * (t + self.offset))

    def rates(self, total: int) -> np.ndarray:
        return 2.0 / (self.beta * (self._indices(total) + self.offset))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DecreasingSchedule(beta={self.beta!r}, m={self.m!r}, c={self.c!r})"


class SquareRootSchedule(StepSizeSchedule):
    """``eta_t = 2 / (beta (sqrt(t) + m^c))`` — Corollary 3."""

    def __init__(self, beta: float, m: int, c: float = 0.5):
        self.beta = check_positive(beta, "beta")
        self.m = int(check_positive(m, "m"))
        self.c = check_in_range(c, "c", 0.0, 1.0, inclusive_high=False)

    @property
    def offset(self) -> float:
        return float(self.m**self.c)

    def rate(self, t: int) -> float:
        self._check_t(t)
        return 2.0 / (self.beta * (np.sqrt(t) + self.offset))

    def rates(self, total: int) -> np.ndarray:
        return 2.0 / (self.beta * (np.sqrt(self._indices(total)) + self.offset))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SquareRootSchedule(beta={self.beta!r}, m={self.m!r}, c={self.c!r})"


class BST14Schedule(StepSizeSchedule):
    """``eta_t = 2R / (G sqrt(t))`` — line 12 of Algorithm 4.

    ``G = sqrt(d sigma^2 + b^2 L^2)`` bounds the expected squared norm of
    the *noisy* gradient, hence depends on the calibrated noise scale.
    """

    def __init__(self, radius: float, gradient_bound: float):
        self.radius = check_positive(radius, "radius")
        self.gradient_bound = check_positive(gradient_bound, "gradient_bound")

    def rate(self, t: int) -> float:
        self._check_t(t)
        return 2.0 * self.radius / (self.gradient_bound * np.sqrt(t))

    def rates(self, total: int) -> np.ndarray:
        return 2.0 * self.radius / (self.gradient_bound * np.sqrt(self._indices(total)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BST14Schedule(radius={self.radius!r}, "
            f"gradient_bound={self.gradient_bound!r})"
        )


def validate_convex_step_size(schedule: StepSizeSchedule, beta: float, total: int) -> None:
    """Require ``eta_t <= 2/beta`` for all t — the premise of Lemma 1.1.

    Called by the convex sensitivity calculators so that a schedule outside
    the 1-expansiveness regime fails loudly rather than producing an invalid
    privacy guarantee.
    """
    check_positive(beta, "beta")
    check_non_negative(total, "total")
    limit = 2.0 / beta
    worst = schedule.max_rate(total)
    if worst > limit * (1.0 + 1e-12):
        raise ValueError(
            f"step sizes must satisfy eta_t <= 2/beta = {limit:.6g} for the "
            f"convex sensitivity bound to hold; schedule reaches {worst:.6g}"
        )


def validate_strongly_convex_step_size(
    schedule: StepSizeSchedule, beta: float, total: int
) -> None:
    """Require ``eta_t <= 1/beta`` for all t — the premise of Lemma 2."""
    check_positive(beta, "beta")
    check_non_negative(total, "total")
    limit = 1.0 / beta
    worst = schedule.max_rate(total)
    if worst > limit * (1.0 + 1e-12):
        raise ValueError(
            f"step sizes must satisfy eta_t <= 1/beta = {limit:.6g} for the "
            f"strongly convex sensitivity bound to hold; schedule reaches {worst:.6g}"
        )
