"""Table 2 — (ε,δ)-DP convergence rates, ours vs BST14.

Regenerates the table's rate expressions at concrete (m, d) and verifies
empirically that the *measured* excess empirical risk of the bolt-on
algorithm shrinks with m at the predicted polynomial order while BST14's
excess risk stays strictly worse at the same (m, ε, δ).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.bst14 import bst14_train
from repro.core.bolton import private_strongly_convex_psgd
from repro.evaluation.metrics import empirical_risk, reference_minimum_risk
from repro.evaluation.reporting import format_table
from repro.evaluation.tables import table2_rows
from repro.optim.losses import LogisticLoss
from tests.conftest import make_binary_data

from bench_util import run_once, write_report


def bench_table2_rate_expressions(benchmark):
    rows = run_once(benchmark, table2_rows, sizes=(1_000, 10_000, 100_000, 1_000_000))
    text = format_table(
        rows,
        ["m", "d", "ours_convex", "bst14_convex", "convex_advantage",
         "ours_sc", "bst14_sc", "sc_advantage"],
    )
    write_report("table2_rates", text)
    # Paper: ours better by log^{3/2} m (convex) and sqrt(d) log m (SC).
    for row in rows:
        assert row["ours_convex"] < row["bst14_convex"]
        assert row["ours_sc"] < row["bst14_sc"]
        assert row["convex_advantage"] == np.log(row["m"]) ** 1.5
    assert rows[-1]["sc_advantage"] > rows[0]["sc_advantage"]


def _measure_excess_risks():
    lam, eps, delta = 0.05, 1.0, 1e-6
    loss = LogisticLoss(regularization=lam)
    rows = []
    for m in (500, 2000, 8000):
        X, y = make_binary_data(m, 10, seed=21)
        reference = reference_minimum_risk(loss, X, y, passes=25, batch_size=10)
        ours_runs, bst_runs = [], []
        for seed in range(3):
            ours = private_strongly_convex_psgd(
                X, y, loss, eps, delta=delta, passes=2, batch_size=10,
                random_state=seed,
            )
            ours_runs.append(empirical_risk(ours.model, loss, X, y) - reference)
            bst = bst14_train(
                X, y, loss, eps, delta, passes=2, batch_size=10,
                radius=1 / lam, random_state=seed,
            )
            bst_runs.append(empirical_risk(bst.model, loss, X, y) - reference)
        rows.append(
            {
                "m": m,
                "ours_excess_risk": float(np.mean(ours_runs)),
                "bst14_excess_risk": float(np.mean(bst_runs)),
            }
        )
    return rows


def bench_table2_empirical_excess_risk(benchmark):
    rows = run_once(benchmark, _measure_excess_risks)
    write_report(
        "table2_empirical",
        format_table(rows, ["m", "ours_excess_risk", "bst14_excess_risk"]),
    )
    # Shape: ours' excess risk decreases in m and stays below BST14's.
    ours = [r["ours_excess_risk"] for r in rows]
    bst = [r["bst14_excess_risk"] for r in rows]
    assert ours[-1] < ours[0]
    for o, b in zip(ours, bst):
        assert o < b
