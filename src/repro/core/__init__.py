"""The paper's contribution: bolt-on differentially private PSGD.

Public API
----------
:func:`private_convex_psgd`
    Algorithm 1 (convex losses, constant step size).
:func:`private_strongly_convex_psgd`
    Algorithm 2 (strongly convex losses, ``min(1/beta, 1/(gamma t))`` step).
:func:`private_psgd`
    Generic entry point for the additional analysed schedules
    (Corollaries 2–3).
:mod:`repro.core.sensitivity`
    Every L2-sensitivity closed form.
:mod:`repro.core.mechanisms`
    Spherical-Laplace (ε-DP) and Gaussian ((ε,δ)-DP) output perturbation.
:mod:`repro.core.accountant`
    Sequential / parallel composition bookkeeping.
:mod:`repro.core.convergence`
    Utility bounds (Theorems 10 & 12, Table 2 rates).
"""

from repro.core.accountant import (
    PrivacyAccountant,
    PrivacyBudgetExceeded,
    PrivacySpend,
    split_evenly,
)
from repro.core.bolton import (
    BoltOnCandidate,
    BoltOnTrainerFactory,
    PrivateTrainingResult,
    noiseless_psgd,
    private_convex_psgd,
    private_psgd,
    private_psgd_fleet,
    private_strongly_convex_psgd,
    train_bolt_on,
)
from repro.core.estimators import (
    BoltOnPrivateClassifier,
    PrivateHuberSVM,
    PrivateLogisticRegression,
)
from repro.core.convergence import (
    ConvexRiskBound,
    check_privacy_risk,
    convex_excess_risk_bound,
    privacy_risk_bound,
    strongly_convex_excess_risk_bound,
    table2_advantage,
    table2_rate_bst14_convex,
    table2_rate_bst14_strongly_convex,
    table2_rate_ours_convex,
    table2_rate_ours_strongly_convex,
    zinkevich_regret,
)
from repro.core.mechanisms import (
    GaussianMechanism,
    NoiseMechanism,
    PrivacyParameters,
    SphericalLaplaceMechanism,
    mechanism_for,
)
from repro.core.sensitivity import (
    SensitivityBound,
    convex_constant_step,
    convex_decreasing_step,
    convex_decreasing_step_simplified,
    convex_square_root_step,
    sensitivity_for_schedule,
    strongly_convex_constant_step,
    strongly_convex_decreasing_step,
)

__all__ = [
    "BoltOnPrivateClassifier",
    "PrivateLogisticRegression",
    "PrivateHuberSVM",
    "PrivateTrainingResult",
    "private_convex_psgd",
    "private_strongly_convex_psgd",
    "private_psgd",
    "noiseless_psgd",
    "BoltOnCandidate",
    "BoltOnTrainerFactory",
    "private_psgd_fleet",
    "train_bolt_on",
    "PrivacyParameters",
    "NoiseMechanism",
    "SphericalLaplaceMechanism",
    "GaussianMechanism",
    "mechanism_for",
    "SensitivityBound",
    "convex_constant_step",
    "convex_decreasing_step",
    "convex_decreasing_step_simplified",
    "convex_square_root_step",
    "strongly_convex_constant_step",
    "strongly_convex_decreasing_step",
    "sensitivity_for_schedule",
    "PrivacyAccountant",
    "PrivacyBudgetExceeded",
    "PrivacySpend",
    "split_evenly",
    "ConvexRiskBound",
    "convex_excess_risk_bound",
    "strongly_convex_excess_risk_bound",
    "privacy_risk_bound",
    "check_privacy_risk",
    "zinkevich_regret",
    "table2_rate_ours_convex",
    "table2_rate_bst14_convex",
    "table2_rate_ours_strongly_convex",
    "table2_rate_bst14_strongly_convex",
    "table2_advantage",
]
