"""Crash-safety tests for the append-only receipt WAL.

Three contracts carry the durability rewrite:

* **Log soundness** — every event appended comes back on replay, in
  order; *any* byte-truncation of the file (the kill -9 / power-cut
  signature) replays a clean prefix and never raises; a flipped byte
  anywhere before the tail — or a record that passes its checksum but
  is not the service's JSON — refuses to load (fail-closed).
* **O(1) autosave** — after the bootstrap snapshot, a dispatched window
  appends + fsyncs its own events only; the base snapshot is rewritten
  solely at compaction points (``wal_compact_records``) — never per
  window.
* **kill -9 recovery** — a service SIGKILLed mid-scan restarts with
  every committed receipt replayed (``spent + reserved <= cap`` holds
  exactly), the interrupted job FAILED with 0 ε charged, and the result
  cache re-armed from the log.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim.losses import LogisticLoss
from repro.service import JobStatus, TrainingService, WalCorruption, WriteAheadLog
from repro.service.server import ACCOUNTS_STATE, REGISTRY_STATE, WAL_STATE
from repro.service.wal import _frame, _header_frame
from tests.conftest import make_binary_data

M, D = 300, 8
EPS = 0.05
X, Y = make_binary_data(M, D, seed=21)


def make_service(workers: int = 1, cap: float = 10.0, **kwargs) -> TrainingService:
    service = TrainingService(scan_seed=5, workers=workers, **kwargs)
    service.register_table("t", X, Y)
    service.open_budget("alice", "t", cap)
    return service


def submit_n(service: TrainingService, n: int, base_seed: int = 400):
    return [
        service.submit("alice", "t", LogisticLoss(1e-3), epsilon=EPS,
                       passes=1, batch_size=25, seed=base_seed + j)
        for j in range(n)
    ]


SAMPLE_EVENTS = [
    {"event": "grant", "principal": "alice", "table": "t",
     "epsilon": 1.0, "delta": 0.0},
    {"event": "admit", "record": {"job": {"job_id": "job-00001"}}},
    {"event": "record", "record": {"job": {"job_id": "job-00001"},
                                   "status": "completed"}},
]


def sample_log_bytes() -> bytes:
    """The exact bytes WriteAheadLog produces for SAMPLE_EVENTS (framing
    helpers are deterministic, so no filesystem round-trip needed)."""
    return _header_frame() + b"".join(_frame(event) for event in SAMPLE_EVENTS)


class TestWalFraming:
    def test_append_sync_replay_roundtrip(self, tmp_path):
        path = tmp_path / "log.wal"
        wal = WriteAheadLog(path)
        for event in SAMPLE_EVENTS:
            wal.append(event)
        wal.sync()
        wal.close()
        assert WriteAheadLog.replay(path) == SAMPLE_EVENTS
        # Reopen-and-append continues the same log.
        wal2 = WriteAheadLog(path)
        wal2.append({"event": "grant", "principal": "bob", "table": "t",
                     "epsilon": 2.0, "delta": 0.0})
        wal2.sync()
        wal2.close()
        events = WriteAheadLog.replay(path)
        assert events[:3] == SAMPLE_EVENTS
        assert events[3]["principal"] == "bob"

    def test_missing_file_is_an_empty_log(self, tmp_path):
        assert WriteAheadLog.replay(tmp_path / "never-written.wal") == []

    def test_append_is_buffered_sync_makes_durable(self, tmp_path):
        path = tmp_path / "log.wal"
        wal = WriteAheadLog(path)
        wal.append(SAMPLE_EVENTS[0])
        assert not path.exists()  # no I/O before the first sync
        wal.sync()
        assert WriteAheadLog.replay(path) == SAMPLE_EVENTS[:1]
        wal.close()

    @settings(max_examples=60, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=4096))
    def test_any_truncation_replays_a_clean_prefix(self, cut):
        """For every possible crash point (byte offset) the torn log
        replays some prefix of the appended events — never an exception,
        never a phantom event."""
        data = sample_log_bytes()
        cut = min(cut, len(data))
        events = WriteAheadLog.replay_bytes(data[:cut])
        assert events == SAMPLE_EVENTS[: len(events)]
        # The full log replays everything, so prefixes converge to it.
        assert WriteAheadLog.replay_bytes(data) == SAMPLE_EVENTS

    def test_truncated_file_recovers_and_appends(self, tmp_path):
        path = tmp_path / "log.wal"
        wal = WriteAheadLog(path, fsync=False)
        for event in SAMPLE_EVENTS:
            wal.append(event)
        wal.sync()
        wal.close()
        data = path.read_bytes()
        path.write_bytes(data[:-5])  # tear the final record
        wal2 = WriteAheadLog(path)
        wal2.append(SAMPLE_EVENTS[0])
        wal2.sync()
        wal2.close()
        events = WriteAheadLog.replay(path)
        assert events == SAMPLE_EVENTS[:2] + SAMPLE_EVENTS[:1]

    def test_zero_filled_tail_is_torn_not_corrupt(self):
        """A filesystem that allocated blocks for an append that never
        landed zero-fills them — an all-zero tail is a crash signature
        (it even frames as a zero-length record whose CRC vacuously
        passes), not tampering."""
        boundary = len(
            _header_frame() + _frame(SAMPLE_EVENTS[0]) + _frame(SAMPLE_EVENTS[1])
        )
        torn = sample_log_bytes()[:boundary] + b"\x00" * 64
        assert WriteAheadLog.replay_bytes(torn) == SAMPLE_EVENTS[:2]

    def test_partial_record_before_zero_fill_still_fails_closed(self):
        """Real payload bytes followed by zeros is NOT the pure zero-fill
        signature — it stays on the conservative side of the line."""
        data = sample_log_bytes()
        with pytest.raises(WalCorruption):
            WriteAheadLog.replay_bytes(data[: len(data) - 10] + b"\x00" * 64)

    def test_midlog_bitflip_fails_closed(self):
        data = bytearray(sample_log_bytes())
        # Flip a payload byte of the FIRST appended event (well before
        # the tail): checksum mismatch with valid data following.
        offset = len(_header_frame()) + 12
        data[offset] ^= 0xFF
        with pytest.raises(WalCorruption, match="mid-log corruption"):
            WriteAheadLog.replay_bytes(bytes(data))

    def test_checksum_valid_garbage_fails_closed(self):
        """Tampering that recomputes the CRC still cannot smuggle a
        non-JSON record past replay."""
        import struct
        import zlib

        garbage = b"\x80\x81not json"
        frame = struct.pack("<II", len(garbage), zlib.crc32(garbage)) + garbage
        with pytest.raises(WalCorruption, match="does not decode"):
            WriteAheadLog.replay_bytes(sample_log_bytes() + frame)

    def test_non_object_record_fails_closed(self):
        import json
        import struct
        import zlib

        payload = json.dumps([1, 2, 3]).encode()
        frame = struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
        with pytest.raises(WalCorruption, match="not an event object"):
            WriteAheadLog.replay_bytes(sample_log_bytes() + frame)

    def test_foreign_file_refused(self, tmp_path):
        path = tmp_path / "bogus.wal"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(WalCorruption, match="not a repro-wal/v1"):
            WriteAheadLog.replay(path)

    def test_reset_carries_buffered_events(self, tmp_path):
        """Events appended after the compaction snapshot was cut must
        survive the log reset — a lost receipt is unrecoverable."""
        path = tmp_path / "log.wal"
        wal = WriteAheadLog(path, fsync=False)
        wal.append(SAMPLE_EVENTS[0])
        wal.sync()
        wal.append(SAMPLE_EVENTS[2])  # buffered, not yet synced
        wal.reset()
        wal.close()
        assert WriteAheadLog.replay(path) == [SAMPLE_EVENTS[2]]
        assert wal.resets == 1


class TestIncrementalAutosave:
    def test_steady_state_never_rewrites_the_snapshot(self, tmp_path):
        """Window 1 bootstraps (base snapshot + fresh log); every later
        window appends to the log only — the O(1) contract."""
        service = make_service(state_dir=tmp_path)
        submit_n(service, 2)
        service.drain()
        registry_path = tmp_path / REGISTRY_STATE
        assert registry_path.exists()
        assert (tmp_path / WAL_STATE).exists()
        baseline = registry_path.stat().st_mtime_ns
        compactions = service.durability["compactions"]
        for round_index in range(3):
            submit_n(service, 2, base_seed=500 + 10 * round_index)
            service.drain()
        assert registry_path.stat().st_mtime_ns == baseline, (
            "a steady-state window rewrote the base snapshot"
        )
        assert service.durability["compactions"] == compactions
        assert service.durability["mode"] == "wal"
        assert service.durability["wal_syncs"] > 0

    def test_restart_replays_log_events_past_the_snapshot(self, tmp_path):
        """Jobs that completed after the bootstrap snapshot exist only in
        the log; the restart must still serve their models and charge
        their receipts."""
        service = make_service(state_dir=tmp_path, cap=10.0)
        first = submit_n(service, 2)
        service.drain()  # bootstrap: snapshot holds these two
        later = submit_n(service, 3, base_seed=600)
        service.drain()  # log-only events
        restarted = make_service(state_dir=tmp_path)
        assert restarted.load_state() == 5
        for record in first + later:
            assert np.array_equal(restarted.model(record.job_id), record.model)
        statement = restarted.budgets()[0]
        assert statement.spent[0] == pytest.approx(5 * EPS)
        assert statement.reserved == (0.0, 0.0)

    def test_log_only_recovery_without_any_snapshot(self, tmp_path):
        """A service that dies before its first compaction may leave a
        log and nothing else — records, budgets, and cache all rebuild
        from events alone."""
        service = make_service(state_dir=tmp_path, cap=1.0)
        records = submit_n(service, 2)
        service.drain()
        (tmp_path / REGISTRY_STATE).unlink()
        (tmp_path / ACCOUNTS_STATE).unlink()
        restarted = make_service(state_dir=tmp_path, cap=1.0)
        assert restarted.load_state() == 2
        for record in records:
            assert np.array_equal(restarted.model(record.job_id), record.model)
        # Budgets came back through grant events + receipt replay.
        statement = restarted.budgets()[0]
        assert statement.spent[0] == pytest.approx(2 * EPS)
        # The cache re-armed from log payloads: resubmission is free.
        hit = restarted.submit("alice", "t", LogisticLoss(1e-3), epsilon=EPS,
                               passes=1, batch_size=25, seed=400)
        assert hit.dispatch == "cached"

    def test_compaction_folds_the_log_into_the_snapshot(self, tmp_path):
        service = make_service(state_dir=tmp_path, wal_compact_records=1)
        submit_n(service, 2)
        service.drain()
        submit_n(service, 2, base_seed=700)
        service.drain()
        assert service.durability["compactions"] >= 2
        # Post-compaction the log holds at most the events that raced
        # the final snapshot — replay is snapshot + small delta.
        events = WriteAheadLog.replay(tmp_path / WAL_STATE)
        assert len(events) <= 4
        restarted = make_service(state_dir=tmp_path)
        assert restarted.load_state() == 4
        statement = restarted.budgets()[0]
        assert statement.spent[0] == pytest.approx(4 * EPS)

    def test_terminal_log_event_overrides_inflight_snapshot_entry(self, tmp_path):
        """Snapshot says QUEUED, log says COMPLETED (the job finished
        after the snapshot was cut): the logged terminal record wins —
        the model is served and the receipt charged."""
        service = make_service(state_dir=tmp_path)
        record = submit_n(service, 1)[0]
        service.save_state()  # snapshot with the job still QUEUED
        service.drain()  # completes; the record event lands in the log
        restarted = make_service(state_dir=tmp_path)
        restarted.load_state()
        twin = restarted.result(record.job_id)
        assert twin.status is JobStatus.COMPLETED
        assert np.array_equal(twin.model, record.model)
        assert restarted.budgets()[0].spent[0] == pytest.approx(EPS)

    def test_tampered_log_refuses_to_load(self, tmp_path):
        service = make_service(state_dir=tmp_path)
        submit_n(service, 3)
        service.drain()
        wal_path = tmp_path / WAL_STATE
        data = bytearray(wal_path.read_bytes())
        data[len(_header_frame()) + 20] ^= 0x01  # one flipped bit, mid-log
        wal_path.write_bytes(bytes(data))
        restarted = make_service(state_dir=tmp_path)
        with pytest.raises(WalCorruption):
            restarted.load_state()

    def test_unknown_event_kind_refuses_to_load(self, tmp_path):
        service = make_service(state_dir=tmp_path)
        submit_n(service, 1)
        service.drain()
        wal = WriteAheadLog(tmp_path / WAL_STATE)
        wal.append({"event": "from-the-future", "payload": 1})
        wal.sync()
        wal.close()
        restarted = make_service(state_dir=tmp_path)
        with pytest.raises(WalCorruption, match="unknown kind"):
            restarted.load_state()

    def test_torn_service_log_tail_recovers(self, tmp_path):
        service = make_service(state_dir=tmp_path)
        records = submit_n(service, 2)
        service.drain()
        wal_path = tmp_path / WAL_STATE
        data = wal_path.read_bytes()
        wal_path.write_bytes(data[:-7])  # kill -9 signature
        restarted = make_service(state_dir=tmp_path)
        assert restarted.load_state() >= 2  # snapshot still carries both
        for record in records:
            assert restarted.result(record.job_id).job_id == record.job_id

    def test_save_state_to_a_foreign_directory_keeps_the_log(self, tmp_path):
        """An explicit export snapshot must not reset the live log."""
        service = make_service(state_dir=tmp_path / "live")
        submit_n(service, 2)
        service.drain()
        resets = service.wal.resets
        service.save_state(tmp_path / "export")
        assert (tmp_path / "export" / REGISTRY_STATE).exists()
        assert service.wal.resets == resets


class TestCancel:
    def test_cancel_refunds_and_terminates(self):
        service = make_service()  # loop not running: stays QUEUED
        record = submit_n(service, 1)[0]
        statement = service.budgets()[0]
        assert statement.reserved[0] == pytest.approx(EPS)
        assert service.cancel(record.job_id) is True
        assert record.status is JobStatus.CANCELLED
        assert record.done  # waiters released immediately
        assert record.model is None
        assert record.receipt is None
        assert "cancelled" in record.error
        statement = service.budgets()[0]
        assert statement.reserved == (0.0, 0.0)
        assert statement.spent == (0, 0)
        service.drain()  # nothing left to run

    def test_cancel_is_refused_once_claimed(self):
        service = make_service()
        record = submit_n(service, 1)[0]
        window = service.scheduler.claim_window()
        assert [job.job_id for job in window] == [record.job_id]
        assert service.cancel(record.job_id) is False
        service.scheduler.dispatch_window(window)
        assert record.status is JobStatus.COMPLETED

    def test_cancel_terminal_and_unknown(self):
        service = make_service()
        record = submit_n(service, 1)[0]
        service.drain()
        assert service.cancel(record.job_id) is False  # already COMPLETED
        with pytest.raises(KeyError):
            service.cancel("job-nope")

    def test_cancelled_budget_is_immediately_reusable(self):
        service = make_service(cap=EPS)  # room for exactly one job
        first = submit_n(service, 1)[0]
        blocked = service.submit("alice", "t", LogisticLoss(1e-3), epsilon=EPS,
                                 passes=1, batch_size=25, seed=999)
        assert blocked.status is JobStatus.REJECTED  # cap fully reserved
        assert service.cancel(first.job_id)
        retry = service.submit("alice", "t", LogisticLoss(1e-3), epsilon=EPS,
                               passes=1, batch_size=25, seed=999)
        assert retry.status is JobStatus.QUEUED
        service.drain()
        assert retry.status is JobStatus.COMPLETED

    def test_cancelled_status_survives_a_restart(self, tmp_path):
        service = make_service(state_dir=tmp_path)
        keep = submit_n(service, 1)[0]
        victim = submit_n(service, 1, base_seed=800)[0]
        assert service.cancel(victim.job_id)
        service.drain()
        restarted = make_service(state_dir=tmp_path)
        restarted.load_state()
        assert restarted.result(victim.job_id).status is JobStatus.CANCELLED
        assert restarted.result(keep.job_id).status is JobStatus.COMPLETED
        assert restarted.budgets()[0].spent[0] == pytest.approx(EPS)


CHILD_SCRIPT = textwrap.dedent(
    """
    import pathlib
    import sys
    import time

    import numpy as np

    from repro.optim.losses import LogisticLoss
    from repro.rdbms.storage import MaterializedHeapFile
    from repro.service import TrainingService
    from tests.conftest import make_binary_data

    state_dir, signal_path = sys.argv[1], pathlib.Path(sys.argv[2])
    X, Y = make_binary_data(300, 8, seed=21)

    class StallingHeap(MaterializedHeapFile):
        def content_fingerprint(self):
            # Keeps registration-time fingerprinting off read_page —
            # only the dispatch scan must hit the stall below.
            return "stalling-heap"

        def read_page(self, page_id):
            signal_path.touch()
            time.sleep(120.0)  # parent SIGKILLs long before this returns
            return super().read_page(page_id)

    service = TrainingService(scan_seed=5, workers=1, state_dir=state_dir)
    service.register_table("t", X, Y)
    service.register_table("slow", heap=StallingHeap(X, Y))
    service.open_budget("alice", "t", 10.0)
    service.open_budget("alice", "slow", 10.0)
    for j in range(3):
        service.submit("alice", "t", LogisticLoss(1e-3), epsilon=0.05,
                       passes=1, batch_size=25, seed=400 + j)
    service.submit("alice", "slow", LogisticLoss(1e-3), epsilon=0.05,
                   passes=1, batch_size=25, seed=500)
    service.start()
    time.sleep(300.0)  # killed mid-scan; never reached
    """
)


class TestKillNineRecovery:
    def test_sigkill_midscan_recovers_committed_receipts(self, tmp_path):
        """The real thing: a SIGKILLed server restarts with committed
        receipts replayed, the interrupted job FAILED at 0 ε, budgets
        exact, and the cache re-armed."""
        state_dir = tmp_path / "state"
        signal_path = tmp_path / "scan-started"
        script = tmp_path / "child.py"
        script.write_text(CHILD_SCRIPT)
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(root, "src"), root, env.get("PYTHONPATH", "")]
        )
        child = subprocess.Popen(
            [sys.executable, str(script), str(state_dir), str(signal_path)],
            env=env, cwd=root,
        )
        try:
            deadline = time.monotonic() + 120.0
            while not signal_path.exists():
                assert child.poll() is None, "child died before the slow scan"
                assert time.monotonic() < deadline, "slow scan never started"
                time.sleep(0.02)
            # Window 1 (the three fast jobs) is durable; window 2 is
            # mid-read. Pull the trigger.
            child.send_signal(signal.SIGKILL)
        finally:
            child.wait(timeout=30.0)

        restarted = make_service(state_dir=state_dir)
        loaded = restarted.load_state()
        assert loaded == 4
        fast = [r for r in restarted.jobs(table="t")]
        assert len(fast) == 3
        for record in fast:
            assert record.status is JobStatus.COMPLETED
            assert record.model is not None
            assert record.receipt is not None
        (slow,) = restarted.jobs(table="slow")
        assert slow.status is JobStatus.FAILED
        assert "interrupted" in slow.error
        assert slow.receipt is None
        # Budgets: exactly the three committed receipts, nothing held.
        for statement in restarted.budgets():
            assert statement.spent[0] + statement.reserved[0] <= statement.cap.epsilon
            assert statement.reserved == (0.0, 0.0)
        t_statement = [s for s in restarted.budgets() if s.table == "t"][0]
        assert t_statement.spent[0] == pytest.approx(3 * EPS)
        slow_statement = [s for s in restarted.budgets() if s.table == "slow"][0]
        assert slow_statement.spent == (0, 0)
        # The cache re-armed: resubmitting a committed job is free.
        hit = restarted.submit("alice", "t", LogisticLoss(1e-3), epsilon=EPS,
                               passes=1, batch_size=25, seed=400)
        assert hit.dispatch == "cached"
        assert np.array_equal(
            hit.model, [r for r in fast if r.job.seed == 400][0].model
        )
