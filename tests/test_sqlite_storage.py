"""The SQLite-WAL storage backend: real pages, same bits.

Three contracts, each locked in here:

* **Round trip** — ``bulk_load`` writes the same page grid every other
  heap uses (:func:`tuples_per_page` rows per page, short tail page),
  and reading the database back yields byte-identical pages.
* **Backend invariance** — a job trained against the SQLite copy of a
  table releases weights bitwise-equal (atol=0) to the same job on the
  in-memory heap, with per-heap buffer-pool counters identical, and the
  content fingerprint (the result-cache key) the same across backends.
* **Fault taxonomy** — sqlite's failure modes surface as the engine's
  own fault classes: lock/busy contention is a retryable
  :class:`TransientPageFault` (and a retried scan releases the same
  bits); a missing, corrupted, or truncated database is a permanent
  :class:`PageFaultError` that fails the job fast with the reservation
  refunded.
"""

from __future__ import annotations

import sqlite3
import threading

import numpy as np
import pytest

from repro.optim.losses import LogisticLoss
from repro.rdbms.storage import (
    MaterializedHeapFile,
    PageFaultError,
    SQLiteHeapFile,
    TransientPageFault,
    _map_sqlite_error,
    tuples_per_page,
)
from repro.service import JobStatus, TrainingService
from tests.conftest import make_binary_data

M, D = 300, 8
EPS = 0.05
X, Y = make_binary_data(M, D, seed=21)


@pytest.fixture
def heap_path(tmp_path):
    return tmp_path / "table.db"


@pytest.fixture
def sqlite_heap(heap_path):
    heap = SQLiteHeapFile.bulk_load(heap_path, X, Y)
    yield heap
    heap.close()


def submit_one(service, table, seed=300):
    return service.submit("alice", table, LogisticLoss(1e-3), epsilon=EPS,
                          passes=1, batch_size=25, seed=seed)


class TestRoundTrip:
    def test_every_page_matches_the_materialized_twin(self, sqlite_heap):
        twin = MaterializedHeapFile(X, Y)
        assert sqlite_heap.dimension == twin.dimension
        assert sqlite_heap.num_tuples == twin.num_tuples
        assert sqlite_heap.num_pages == twin.num_pages
        for page_id in range(twin.num_pages):
            ours, theirs = sqlite_heap.read_page(page_id), twin.read_page(page_id)
            assert np.array_equal(ours.features, theirs.features)
            assert np.array_equal(ours.labels, theirs.labels)

    def test_tail_page_is_short(self, sqlite_heap):
        per_page = tuples_per_page(D)
        assert M % per_page != 0, "shape must exercise a short tail page"
        tail = sqlite_heap.read_page(sqlite_heap.num_pages - 1)
        assert tail.tuple_count == M % per_page

    def test_reopen_reads_the_same_heap(self, heap_path, sqlite_heap):
        reopened = SQLiteHeapFile(heap_path)
        page = reopened.read_page(0)
        assert np.array_equal(page.features, sqlite_heap.read_page(0).features)
        assert reopened.num_tuples == M
        reopened.close()

    def test_bulk_load_accepts_a_dataset_object(self, heap_path):
        class Bundle:
            features, labels = X, Y

        heap = SQLiteHeapFile.bulk_load(heap_path, Bundle())
        assert heap.num_tuples == M
        heap.close()

    def test_bulk_load_replaces_a_stale_database(self, heap_path):
        SQLiteHeapFile.bulk_load(heap_path, X[:100], Y[:100]).close()
        heap = SQLiteHeapFile.bulk_load(heap_path, X, Y)
        assert heap.num_tuples == M
        heap.close()

    def test_bulk_load_rejects_bad_shapes(self, heap_path):
        with pytest.raises(ValueError, match="row counts disagree"):
            SQLiteHeapFile.bulk_load(heap_path, X, Y[:-1])
        with pytest.raises(ValueError, match="at least one tuple"):
            SQLiteHeapFile.bulk_load(heap_path, X[:0], Y[:0])

    def test_wal_mode_and_read_only_discipline(self, heap_path, sqlite_heap):
        probe = sqlite3.connect(heap_path)
        mode = probe.execute("PRAGMA journal_mode").fetchone()[0]
        probe.close()
        assert mode == "wal"
        # Reader connections are query_only: a write through one raises
        # instead of mutating tenant data.
        with pytest.raises(sqlite3.OperationalError):
            sqlite_heap._connection().execute("DELETE FROM pages")

    def test_out_of_range_page(self, sqlite_heap):
        with pytest.raises(IndexError):
            sqlite_heap.read_page(sqlite_heap.num_pages)
        with pytest.raises(IndexError):
            sqlite_heap.read_page(-1)

    def test_concurrent_readers_see_identical_pages(self, sqlite_heap):
        expected = [sqlite_heap.read_page(p) for p in range(sqlite_heap.num_pages)]
        failures = []

        def worker():
            try:
                for page_id, want in enumerate(expected):
                    got = sqlite_heap.read_page(page_id)
                    assert np.array_equal(got.features, want.features)
                    assert np.array_equal(got.labels, want.labels)
            except Exception as error:  # pragma: no cover - failure path
                failures.append(error)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert failures == []

    def test_fingerprint_matches_the_materialized_hash(self, sqlite_heap):
        from repro.rdbms.catalog import TableInfo
        from repro.service.scheduler import table_fingerprint

        memory = table_fingerprint(TableInfo(name="t", heap=MaterializedHeapFile(X, Y)))
        sqlite_fp = table_fingerprint(TableInfo(name="t", heap=sqlite_heap))
        assert memory == sqlite_fp


class TestBackendInvariance:
    @staticmethod
    def _run(backend, path=None):
        service = TrainingService(scan_seed=5, workers=1)
        if backend == "memory":
            service.register_table("t", X, Y)
        else:
            service.register_table("t", X, Y, backend="sqlite", path=path)
        service.open_budget("alice", "t", 10.0)
        record = submit_one(service, "t")
        service.drain()
        heap = service.session.catalog.get("t").heap
        stats = service.session.pool.stats_for(heap)
        counters = (stats.page_reads, stats.cache_hits,
                    stats.cache_misses, stats.evictions)
        return record, counters

    def test_bitwise_release_and_path_invariant_counters(self, heap_path):
        memory_record, memory_counters = self._run("memory")
        sqlite_record, sqlite_counters = self._run("sqlite", heap_path)
        assert memory_record.status is JobStatus.COMPLETED
        assert sqlite_record.status is JobStatus.COMPLETED
        assert np.array_equal(memory_record.model, sqlite_record.model)
        assert memory_counters == sqlite_counters

    def test_register_existing_database_without_arrays(self, heap_path):
        SQLiteHeapFile.bulk_load(heap_path, X, Y).close()
        service = TrainingService(scan_seed=5, workers=1)
        info = service.register_table("t", backend="sqlite", path=heap_path)
        assert info.num_tuples == M
        service.open_budget("alice", "t", 10.0)
        record = submit_one(service, "t")
        service.drain()
        assert record.status is JobStatus.COMPLETED, record.error

    def test_cache_key_is_backend_invariant(self, heap_path):
        """Swapping a table's storage backend under the same name and
        data hits the result cache: the content-fingerprint half of the
        key is backend-invariant, so the cached release is served
        without a scan."""
        service = TrainingService(scan_seed=5, workers=1)
        service.register_table("t", X, Y)
        service.open_budget("alice", "t", 10.0)
        first = submit_one(service, "t")
        service.drain()
        assert first.status is JobStatus.COMPLETED

        service.session.catalog.drop_table("t")
        service.register_table("t", X, Y, backend="sqlite", path=heap_path)
        replay = submit_one(service, "t")
        service.drain()
        assert replay.status is JobStatus.COMPLETED, replay.error
        assert replay.cache_source == first.job_id
        assert np.array_equal(replay.model, first.model)

    def test_register_table_argument_validation(self, heap_path):
        service = TrainingService()
        with pytest.raises(ValueError, match="requires path"):
            service.register_table("t", X, Y, backend="sqlite")
        with pytest.raises(ValueError, match="both features and labels"):
            service.register_table("t", X, backend="sqlite", path=heap_path)
        with pytest.raises(ValueError, match="unknown table backend"):
            service.register_table("t", X, Y, backend="parquet")
        with pytest.raises(ValueError, match="requires features and labels"):
            service.register_table("t")


class TestFaultMapping:
    def test_error_mapping_taxonomy(self, tmp_path):
        path = tmp_path / "x.db"
        locked = _map_sqlite_error(
            sqlite3.OperationalError("database is locked"), path)
        busy = _map_sqlite_error(
            sqlite3.OperationalError("database table is busy"), path)
        missing = _map_sqlite_error(
            sqlite3.OperationalError("unable to open database file"), path)
        corrupt = _map_sqlite_error(
            sqlite3.DatabaseError("file is not a database"), path)
        assert isinstance(locked, TransientPageFault)
        assert isinstance(busy, TransientPageFault)
        assert isinstance(missing, PageFaultError)
        assert not isinstance(missing, TransientPageFault)
        assert isinstance(corrupt, PageFaultError)
        assert not isinstance(corrupt, TransientPageFault)

    def test_opening_a_missing_file_is_a_permanent_fault(self, tmp_path):
        with pytest.raises(PageFaultError, match="no such database"):
            SQLiteHeapFile(tmp_path / "never-written.db")

    def test_opening_a_corrupted_file_is_a_permanent_fault(self, tmp_path):
        path = tmp_path / "garbage.db"
        path.write_bytes(b"this is not a sqlite database, not even close")
        with pytest.raises(PageFaultError):
            SQLiteHeapFile(path)

    def test_foreign_format_is_refused(self, tmp_path):
        path = tmp_path / "other.db"
        connection = sqlite3.connect(path)
        with connection:
            connection.execute("CREATE TABLE meta(key TEXT PRIMARY KEY, value TEXT)")
            connection.execute(
                "INSERT INTO meta VALUES ('format', 'someone-elses/v9')")
        connection.close()
        with pytest.raises(PageFaultError, match="format"):
            SQLiteHeapFile(path)

    def test_missing_page_row_is_a_permanent_fault(self, heap_path, sqlite_heap):
        surgeon = sqlite3.connect(heap_path)
        with surgeon:
            surgeon.execute("DELETE FROM pages WHERE page_no = 1")
        surgeon.close()
        fresh = SQLiteHeapFile(heap_path)
        with pytest.raises(PageFaultError, match="missing from the pages table"):
            fresh.read_page(1)
        fresh.close()

    def test_truncated_blob_is_a_permanent_fault(self, heap_path, sqlite_heap):
        surgeon = sqlite3.connect(heap_path)
        with surgeon:
            surgeon.execute(
                "UPDATE pages SET labels = ? WHERE page_no = 0", (b"\x00" * 8,))
        surgeon.close()
        fresh = SQLiteHeapFile(heap_path)
        with pytest.raises(PageFaultError, match="blob sizes disagree"):
            fresh.read_page(0)
        fresh.close()

    # -- through the service: retry containment on real storage --------------

    @staticmethod
    def _service_on(heap):
        service = TrainingService(scan_seed=5, workers=1)
        service.register_table("f", heap=heap)
        service.open_budget("alice", "f", 10.0)
        service.scheduler.retry_backoff_seconds = 0.0
        return service

    def test_locked_database_retries_to_the_same_bits(self, heap_path):
        """One 'database is locked' mid-scan: the scheduler retries and
        the release is bitwise-identical to an undisturbed in-memory
        run — backend invariance and retry determinism in one assert."""
        clean = TrainingService(scan_seed=5, workers=1)
        clean.register_table("f", heap=MaterializedHeapFile(X, Y))
        clean.open_budget("alice", "f", 10.0)
        reference = submit_one(clean, "f")
        clean.drain()
        assert reference.status is JobStatus.COMPLETED

        heap = SQLiteHeapFile.bulk_load(heap_path, X, Y)
        # Register first: the fingerprint scan at registration must read
        # clean (as it would in production, where the heap is healthy at
        # CREATE TABLE time); the contention arrives mid-training-scan.
        service = self._service_on(heap)
        real_fetch = heap._fetch_page_row
        faults = []

        def contended(page_id):
            if not faults:
                faults.append(page_id)
                raise sqlite3.OperationalError("database is locked")
            return real_fetch(page_id)

        heap._fetch_page_row = contended
        record = submit_one(service, "f")
        service.drain()
        assert record.status is JobStatus.COMPLETED, record.error
        assert service.scheduler.scan_retries_used == 1
        assert np.array_equal(record.model, reference.model)
        statement = service.budgets()[0]
        assert statement.spent[0] == pytest.approx(EPS)
        assert statement.reserved == (0.0, 0.0)

    def test_lock_contention_that_never_clears_fails_with_refund(self, heap_path):
        heap = SQLiteHeapFile.bulk_load(heap_path, X, Y)
        service = self._service_on(heap)

        def always_locked(page_id):
            raise sqlite3.OperationalError("database is locked")

        heap._fetch_page_row = always_locked
        service.scheduler.scan_retries = 2
        record = submit_one(service, "f")
        service.drain()
        assert record.status is JobStatus.FAILED
        assert "locked" in record.error
        assert service.scheduler.scan_retries_used == 2
        statement = service.budgets()[0]
        assert statement.spent == (0, 0)
        assert statement.reserved == (0.0, 0.0)

    def test_deleted_database_fails_fast_with_refund(self, heap_path):
        """Deleting the file under a registered heap is permanent: the
        worker thread's fresh connection cannot open it, the job FAILS
        without burning retries, and the reservation comes back."""
        heap = SQLiteHeapFile.bulk_load(heap_path, X, Y)
        service = self._service_on(heap)
        heap_path.unlink()
        for sibling in (heap_path.with_name(heap_path.name + "-wal"),
                        heap_path.with_name(heap_path.name + "-shm")):
            if sibling.exists():
                sibling.unlink()
        record = submit_one(service, "f")
        service.drain()
        assert record.status is JobStatus.FAILED
        assert "sqlite heap" in record.error
        assert service.scheduler.scan_retries_used == 0
        statement = service.budgets()[0]
        assert statement.spent == (0, 0)
        assert statement.reserved == (0.0, 0.0)
        assert list(service.loop.dispatch_errors) == []
