"""Tests for the storage layer: pages, heap files, buffer pool."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rdbms.storage import (
    PAGE_SIZE_BYTES,
    BufferPool,
    MaterializedHeapFile,
    VirtualHeapFile,
    tuple_width_bytes,
    tuples_per_page,
)


class TestTupleLayout:
    def test_width(self):
        # d floats + 1 label, 8 bytes each
        assert tuple_width_bytes(50) == 51 * 8

    def test_per_page(self):
        per = tuples_per_page(50)
        assert per == (PAGE_SIZE_BYTES - 16) // (51 * 8)
        assert per >= 1

    def test_too_wide_rejected(self):
        with pytest.raises(ValueError, match="too wide"):
            tuples_per_page(5000)


class TestMaterializedHeapFile:
    def make(self, m=100, d=10, seed=0):
        rng = np.random.default_rng(seed)
        return MaterializedHeapFile(
            rng.normal(size=(m, d)), np.where(rng.random(m) > 0.5, 1.0, -1.0)
        )

    def test_counts(self):
        heap = self.make(m=100, d=10)
        assert heap.num_tuples == 100
        assert heap.dimension == 10
        per = tuples_per_page(10)
        assert heap.num_pages == -(-100 // per)

    def test_pages_partition_rows(self):
        heap = self.make(m=250, d=30)
        seen = 0
        for page_id in range(heap.num_pages):
            page = heap.read_page(page_id)
            seen += page.tuple_count
        assert seen == 250

    def test_roundtrip_content(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(40, 6))
        y = np.ones(40)
        heap = MaterializedHeapFile(X, y)
        per = tuples_per_page(6)
        page = heap.read_page(0)
        np.testing.assert_array_equal(page.features, X[:per])

    def test_out_of_range_page(self):
        heap = self.make()
        with pytest.raises(IndexError):
            heap.read_page(heap.num_pages)
        with pytest.raises(IndexError):
            heap.read_page(-1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MaterializedHeapFile(np.zeros((0, 3)), np.zeros(0))

    def test_mismatched_rejected(self):
        with pytest.raises(ValueError):
            MaterializedHeapFile(np.zeros((5, 3)), np.zeros(4))

    def test_size_bytes(self):
        heap = self.make(m=1000, d=50)
        assert heap.size_bytes == heap.num_pages * PAGE_SIZE_BYTES


class TestVirtualHeapFile:
    def make(self, m=1000, d=10):
        def generate(page_id, count, dim):
            rng = np.random.default_rng(page_id)
            return rng.normal(size=(count, dim)), np.ones(count)

        return VirtualHeapFile(m, d, generate)

    def test_deterministic_pages(self):
        heap = self.make()
        a = heap.read_page(3)
        b = heap.read_page(3)
        np.testing.assert_array_equal(a.features, b.features)

    def test_tail_page_short(self):
        heap = self.make(m=1000, d=10)
        per = tuples_per_page(10)
        last = heap.read_page(heap.num_pages - 1)
        assert last.tuple_count == 1000 - per * (heap.num_pages - 1)

    def test_bad_generator_shapes_detected(self):
        def bad(page_id, count, dim):
            return np.zeros((count + 1, dim)), np.zeros(count)

        heap = VirtualHeapFile(100, 5, bad)
        with pytest.raises(ValueError, match="wrong shapes"):
            heap.read_page(0)

    def test_large_virtual_table_is_cheap(self):
        # A "447 GB" table should not allocate anything until read.
        heap = self.make(m=1_200_000_000, d=50)
        assert heap.size_bytes > 4e11
        page = heap.read_page(heap.num_pages // 2)
        assert page.tuple_count == tuples_per_page(50)


class TestBufferPool:
    def make_heap(self, m=500, d=10):
        rng = np.random.default_rng(2)
        return MaterializedHeapFile(rng.normal(size=(m, d)), np.ones(m))

    def test_cold_scan_all_misses(self):
        heap = self.make_heap()
        pool = BufferPool(capacity_pages=100)
        list(pool.scan(heap))
        assert pool.stats.cache_misses == heap.num_pages
        assert pool.stats.cache_hits == 0

    def test_warm_scan_all_hits(self):
        heap = self.make_heap()
        pool = BufferPool(capacity_pages=100)
        list(pool.scan(heap))
        pool.stats.reset()
        list(pool.scan(heap))
        assert pool.stats.cache_hits == heap.num_pages
        assert pool.stats.cache_misses == 0

    def test_undersized_pool_thrashes_on_repeat_scans(self):
        # The disk-based regime of Figure 2(b): table larger than memory,
        # every sequential scan misses every page.
        heap = self.make_heap(m=2000)
        assert heap.num_pages > 3
        pool = BufferPool(capacity_pages=2)
        list(pool.scan(heap))
        pool.stats.reset()
        list(pool.scan(heap))
        assert pool.stats.cache_misses == heap.num_pages

    def test_lru_eviction_order(self):
        heap = self.make_heap(m=2000)
        pool = BufferPool(capacity_pages=2)
        pool.get_page(heap, 0)
        pool.get_page(heap, 1)
        pool.get_page(heap, 0)  # touch 0 -> 1 becomes LRU
        pool.get_page(heap, 2)  # evicts 1
        pool.stats.reset()
        pool.get_page(heap, 0)
        assert pool.stats.cache_hits == 1
        pool.get_page(heap, 1)
        assert pool.stats.cache_misses == 1

    def test_eviction_counter(self):
        heap = self.make_heap(m=2000)
        pool = BufferPool(capacity_pages=1)
        list(pool.scan(heap))
        assert pool.stats.evictions == heap.num_pages - 1

    def test_hit_rate(self):
        heap = self.make_heap()
        pool = BufferPool(capacity_pages=100)
        list(pool.scan(heap))
        list(pool.scan(heap))
        assert pool.stats.hit_rate == pytest.approx(0.5)

    def test_clear(self):
        heap = self.make_heap()
        pool = BufferPool(capacity_pages=100)
        list(pool.scan(heap))
        pool.clear()
        assert pool.resident_pages == 0

    def test_distinct_heaps_do_not_collide(self):
        heap_a = self.make_heap(m=100)
        heap_b = self.make_heap(m=100)
        pool = BufferPool(capacity_pages=10)
        page_a = pool.get_page(heap_a, 0)
        page_b = pool.get_page(heap_b, 0)
        assert pool.stats.cache_misses == 2
        assert page_a is not page_b
