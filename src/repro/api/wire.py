"""The ``repro-api/v1`` wire schema — typed payloads, exact round-trips.

Every request and response body the HTTP front-end speaks is one of the
dataclasses here, each with ``to_payload()`` / ``from_payload()`` that
round-trip **exactly**: scalars ride JSON's shortest-repr floats (which
reconstruct every float64 bit-for-bit), and released weights are
hex-encoded (``float.hex()`` — the same discipline as the WAL/snapshot
layer, minus any dependence on the JSON writer), so a model fetched over
the wire is ``np.array_equal`` to the in-process release it came from.

Top-level bodies are wrapped in an **envelope** carrying the protocol
tag::

    {"api": "repro-api/v1", "job": {...}}            # success
    {"api": "repro-api/v1", "error": {"code": "unknown_job",
                                      "message": "..."}}  # fault

A reader that sees a foreign ``api`` tag refuses the payload early
(:func:`check_envelope`) instead of misparsing it — the versioning
contract every later process-sharding PR builds on.

:class:`JobView` is the documented payload form of a job record: the
same object whether it came from ``TrainingService.result()`` in
process (:meth:`JobView.from_record`) or off the wire
(:meth:`JobView.from_payload`). Unlike the durability layer's
``record_from_payload`` — which forces in-flight records to
FAILED/interrupted, the honest *restart* semantics — the wire view
reports live statuses honestly: an HTTP poll of a QUEUED job says
``queued``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.mechanisms import PrivacyParameters
from repro.obs.trace import JobTrace
from repro.optim.losses import Loss
from repro.service.jobs import JobStatus
from repro.service.ledger import AccountStatement, BudgetReceipt
from repro.service.registry import JobRecord, _loss_from_payload, _loss_payload

#: The protocol tag every envelope carries (reject foreign bodies early).
WIRE_FORMAT = "repro-api/v1"


# -- envelopes --------------------------------------------------------------------


def envelope(body: dict) -> dict:
    """Wrap a response body with the protocol tag."""
    return {"api": WIRE_FORMAT, **body}


def error_envelope(code: str, message: str) -> dict:
    """The fault envelope: ``{"api": ..., "error": {"code", "message"}}``."""
    return {"api": WIRE_FORMAT, "error": {"code": code, "message": message}}


def check_envelope(payload: dict) -> dict:
    """Validate the protocol tag; returns ``payload`` for chaining."""
    if not isinstance(payload, dict) or payload.get("api") != WIRE_FORMAT:
        tag = payload.get("api") if isinstance(payload, dict) else type(payload).__name__
        raise ValueError(
            f"not a {WIRE_FORMAT} payload (api: {tag!r}); "
            "client and server speak different protocol versions"
        )
    return payload


# -- exact float transport --------------------------------------------------------


def encode_weights(model: Optional[np.ndarray]) -> Optional[List[str]]:
    """Weights as ``float.hex()`` strings — bit-exact by construction,
    independent of any JSON writer's float formatting."""
    if model is None:
        return None
    return [float(value).hex() for value in np.asarray(model, dtype=np.float64)]


def decode_weights(payload: Optional[List[str]]) -> Optional[np.ndarray]:
    if payload is None:
        return None
    return np.array([float.fromhex(value) for value in payload], dtype=np.float64)


# -- requests ---------------------------------------------------------------------


@dataclass
class SubmitRequest:
    """``POST /v1/jobs``: the same parameters as ``TrainingService.submit``."""

    principal: str
    table: str
    loss: Loss
    epsilon: float
    delta: float = 0.0
    passes: int = 1
    batch_size: int = 50
    eta: Optional[float] = None
    radius: Optional[float] = None
    priority: int = 0
    seed: int = 0

    def to_payload(self) -> dict:
        return {
            "principal": self.principal,
            "table": self.table,
            "loss": _loss_payload(self.loss),
            "epsilon": self.epsilon,
            "delta": self.delta,
            "passes": self.passes,
            "batch_size": self.batch_size,
            "eta": self.eta,
            "radius": self.radius,
            "priority": self.priority,
            "seed": self.seed,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SubmitRequest":
        return cls(
            principal=payload["principal"],
            table=payload["table"],
            loss=_loss_from_payload(payload["loss"]),
            epsilon=payload["epsilon"],
            delta=payload.get("delta", 0.0),
            passes=payload.get("passes", 1),
            batch_size=payload.get("batch_size", 50),
            eta=payload.get("eta"),
            radius=payload.get("radius"),
            priority=payload.get("priority", 0),
            seed=payload.get("seed", 0),
        )


# -- responses --------------------------------------------------------------------


def _receipt_payload(receipt: Optional[BudgetReceipt]) -> Optional[dict]:
    if receipt is None:
        return None
    return {
        "principal": receipt.principal,
        "table": receipt.table,
        "job_id": receipt.job_id,
        "epsilon": receipt.parameters.epsilon,
        "delta": receipt.parameters.delta,
        "sequence": receipt.sequence,
    }


def _receipt_from_payload(payload: Optional[dict]) -> Optional[BudgetReceipt]:
    if payload is None:
        return None
    return BudgetReceipt(
        principal=payload["principal"],
        table=payload["table"],
        job_id=payload["job_id"],
        parameters=PrivacyParameters(payload["epsilon"], payload["delta"]),
        sequence=payload["sequence"],
    )


@dataclass(eq=False)
class JobView:
    """One job record as the wire sees it — attribute-compatible with
    :class:`~repro.service.registry.JobRecord` for every field the verb
    surface documents, so code written against ``service.result()``
    reads a client's answer unchanged."""

    job_id: str
    principal: str
    table: str
    status: JobStatus
    epsilon: float
    delta: float = 0.0
    priority: int = 0
    seed: int = 0
    arrival: int = -1
    loss: Optional[Loss] = None
    passes: int = 1
    batch_size: int = 50
    eta: Optional[float] = None
    radius: Optional[float] = None
    model: Optional[np.ndarray] = None
    receipt: Optional[BudgetReceipt] = None
    sensitivity: Optional[float] = None
    noise_norm: Optional[float] = None
    dispatch: str = ""
    group_size: int = 0
    group_pages: int = 0
    epochs: int = 0
    boarding_offset: int = 0
    epochs_ridden: int = 0
    cache_source: str = ""
    table_fingerprint: str = ""
    scan_seed: Optional[int] = None
    error: str = ""
    submitted_at: int = -1
    finished_at: int = -1
    weights_evicted: bool = False
    trace: JobTrace = field(default_factory=JobTrace, repr=False)

    #: The terminal statuses (mirrors the registry's — a view is "done"
    #: when polling would never change it again).
    _TERMINAL = frozenset(
        (
            JobStatus.COMPLETED,
            JobStatus.FAILED,
            JobStatus.REJECTED,
            JobStatus.CANCELLED,
        )
    )

    @property
    def done(self) -> bool:
        return self.status in self._TERMINAL

    @property
    def job(self) -> "JobView":
        # JobRecord nests identity under record.job; the view is flat.
        # Returning self lets record-shaped readers (e.g. the trace
        # pretty-printer's record.job.principal) work on either.
        return self

    @classmethod
    def from_record(cls, record: JobRecord) -> "JobView":
        job = record.job
        candidate = job.candidate
        # A racing worker writes result fields before flipping status
        # COMPLETED and only then marks done; capture doneness FIRST so
        # a mid-release view reports in-flight without a half-written
        # model/receipt (same discipline as the snapshot layer).
        done = record.done
        status = record.status if done else (
            record.status
            if record.status in (JobStatus.QUEUED, JobStatus.RUNNING)
            else JobStatus.RUNNING
        )
        return cls(
            job_id=job.job_id,
            principal=job.principal,
            table=job.table,
            status=status,
            epsilon=job.epsilon,
            delta=job.delta,
            priority=job.priority,
            seed=job.seed,
            arrival=job.arrival,
            loss=candidate.loss,
            passes=candidate.passes,
            batch_size=candidate.batch_size,
            eta=candidate.eta,
            radius=candidate.radius,
            model=None if not done or record.model is None else record.model.copy(),
            receipt=record.receipt if done else None,
            sensitivity=record.sensitivity if done else None,
            noise_norm=record.noise_norm if done else None,
            dispatch=record.dispatch,
            group_size=record.group_size,
            group_pages=record.group_pages,
            epochs=record.epochs,
            boarding_offset=record.boarding_offset,
            epochs_ridden=record.epochs_ridden,
            cache_source=record.cache_source,
            table_fingerprint=record.table_fingerprint,
            scan_seed=record.scan_seed,
            error=record.error,
            submitted_at=record.submitted_at,
            finished_at=record.finished_at,
            weights_evicted=record.weights_evicted,
            trace=JobTrace.from_payload(record.trace.payload()),
        )

    def to_payload(self) -> dict:
        return {
            "job_id": self.job_id,
            "principal": self.principal,
            "table": self.table,
            "status": self.status.value,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "priority": self.priority,
            "seed": self.seed,
            "arrival": self.arrival,
            "loss": None if self.loss is None else _loss_payload(self.loss),
            "passes": self.passes,
            "batch_size": self.batch_size,
            "eta": self.eta,
            "radius": self.radius,
            "model": encode_weights(self.model),
            "receipt": _receipt_payload(self.receipt),
            "sensitivity": self.sensitivity,
            "noise_norm": self.noise_norm,
            "dispatch": self.dispatch,
            "group_size": self.group_size,
            "group_pages": self.group_pages,
            "epochs": self.epochs,
            "boarding_offset": self.boarding_offset,
            "epochs_ridden": self.epochs_ridden,
            "cache_source": self.cache_source,
            "table_fingerprint": self.table_fingerprint,
            "scan_seed": self.scan_seed,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "weights_evicted": self.weights_evicted,
            "trace": self.trace.payload(),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "JobView":
        loss = payload.get("loss")
        return cls(
            job_id=payload["job_id"],
            principal=payload["principal"],
            table=payload["table"],
            status=JobStatus(payload["status"]),
            epsilon=payload["epsilon"],
            delta=payload["delta"],
            priority=payload["priority"],
            seed=payload["seed"],
            arrival=payload["arrival"],
            loss=None if loss is None else _loss_from_payload(loss),
            passes=payload["passes"],
            batch_size=payload["batch_size"],
            eta=payload["eta"],
            radius=payload["radius"],
            model=decode_weights(payload["model"]),
            receipt=_receipt_from_payload(payload["receipt"]),
            sensitivity=payload["sensitivity"],
            noise_norm=payload["noise_norm"],
            dispatch=payload["dispatch"],
            group_size=payload["group_size"],
            group_pages=payload["group_pages"],
            epochs=payload["epochs"],
            boarding_offset=payload["boarding_offset"],
            epochs_ridden=payload["epochs_ridden"],
            cache_source=payload["cache_source"],
            table_fingerprint=payload["table_fingerprint"],
            scan_seed=payload["scan_seed"],
            error=payload["error"],
            submitted_at=payload["submitted_at"],
            finished_at=payload["finished_at"],
            weights_evicted=payload["weights_evicted"],
            trace=JobTrace.from_payload(payload.get("trace", {})),
        )


@dataclass(frozen=True)
class BudgetView:
    """One account statement (``GET /v1/budgets``) — convertible to the
    in-process :class:`~repro.service.ledger.AccountStatement` exactly."""

    principal: str
    table: str
    epsilon_cap: float
    delta_cap: float
    epsilon_spent: float
    delta_spent: float
    epsilon_reserved: float
    delta_reserved: float

    @classmethod
    def from_statement(cls, statement: AccountStatement) -> "BudgetView":
        return cls(
            principal=statement.principal,
            table=statement.table,
            epsilon_cap=statement.cap.epsilon,
            delta_cap=statement.cap.delta,
            epsilon_spent=statement.spent[0],
            delta_spent=statement.spent[1],
            epsilon_reserved=statement.reserved[0],
            delta_reserved=statement.reserved[1],
        )

    def to_statement(self) -> AccountStatement:
        return AccountStatement(
            principal=self.principal,
            table=self.table,
            cap=PrivacyParameters(self.epsilon_cap, self.delta_cap),
            spent=(self.epsilon_spent, self.delta_spent),
            reserved=(self.epsilon_reserved, self.delta_reserved),
        )

    def to_payload(self) -> dict:
        return {
            "principal": self.principal,
            "table": self.table,
            "epsilon_cap": self.epsilon_cap,
            "delta_cap": self.delta_cap,
            "epsilon_spent": self.epsilon_spent,
            "delta_spent": self.delta_spent,
            "epsilon_reserved": self.epsilon_reserved,
            "delta_reserved": self.delta_reserved,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "BudgetView":
        return cls(**payload)


@dataclass
class HealthView:
    """``GET /v1/healthz``: the ``TrainingService.health()`` snapshot."""

    status: str
    durability: Dict[str, object]
    queue_depth: int
    queue_depths: Dict[str, int]
    workers: int
    dispatch_running: bool
    jobs: Dict[str, int]

    @classmethod
    def from_health(cls, health: Dict[str, object]) -> "HealthView":
        return cls(**health)

    def to_payload(self) -> dict:
        return {
            "status": self.status,
            "durability": dict(self.durability),
            "queue_depth": self.queue_depth,
            "queue_depths": dict(self.queue_depths),
            "workers": self.workers,
            "dispatch_running": self.dispatch_running,
            "jobs": dict(self.jobs),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "HealthView":
        return cls(
            status=payload["status"],
            durability=payload["durability"],
            queue_depth=payload["queue_depth"],
            queue_depths=payload["queue_depths"],
            workers=payload["workers"],
            dispatch_running=payload["dispatch_running"],
            jobs=payload["jobs"],
        )
