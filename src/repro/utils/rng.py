"""Random-number-generator management.

Every stochastic component in this library accepts either a seed (``int``),
an existing :class:`numpy.random.Generator`, or ``None``. The helpers here
normalize those inputs and support deterministic *spawning* of independent
child generators, which the experiment harness uses so that, for example,
the permutation stream of SGD and the noise stream of the privacy mechanism
never interact.

Determinism matters doubly here: the paper's sensitivity analysis
(Section 3.2) is stated *per randomness sequence* — the privacy proof
compares two runs that share the same permutation. Our property-based tests
rely on being able to replay exactly the same randomness against
neighbouring datasets, which these helpers make explicit.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

import numpy as np

#: Anything accepted where a source of randomness is expected.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(random_state: RandomState = None) -> np.random.Generator:
    """Normalize ``random_state`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    random_state:
        ``None`` for OS entropy, an ``int`` seed, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged so that callers can share
        a stream deliberately).
    """
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, np.random.SeedSequence):
        return np.random.default_rng(random_state)
    return np.random.default_rng(random_state)


def spawn_generators(random_state: RandomState, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    When ``random_state`` is an ``int`` or ``SeedSequence`` the children are
    reproducible. When it is an existing ``Generator`` we derive children
    from its bit stream (reproducible given the generator's state).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(random_state, np.random.Generator):
        seeds = random_state.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    if isinstance(random_state, np.random.SeedSequence):
        return [np.random.default_rng(s) for s in random_state.spawn(count)]
    seq = np.random.SeedSequence(random_state)
    return [np.random.default_rng(s) for s in seq.spawn(count)]


def permutation_stream(
    size: int, passes: int, rng: np.random.Generator, fresh_each_pass: bool = False
) -> Iterator[np.ndarray]:
    """Yield one permutation of ``range(size)`` per pass.

    By default the classic PSGD behaviour is used: a single permutation is
    sampled once and reused for every pass. With ``fresh_each_pass=True`` a
    new permutation is drawn each pass — the paper notes (Section 3.2.3)
    that the sensitivity analysis extends verbatim to this variant.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    if passes < 0:
        raise ValueError(f"passes must be non-negative, got {passes}")
    first = rng.permutation(size)
    for pass_index in range(passes):
        if fresh_each_pass and pass_index > 0:
            yield rng.permutation(size)
        else:
            yield first


def fixed_permutations(permutation: Sequence[int], passes: int) -> Iterator[np.ndarray]:
    """Replay a caller-supplied permutation for every pass.

    Used by the sensitivity verification tests, which must run PSGD on two
    neighbouring datasets with *identical* randomness.
    """
    arr = np.asarray(permutation, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError("permutation must be one-dimensional")
    if sorted(arr.tolist()) != list(range(len(arr))):
        raise ValueError("permutation must be a rearrangement of range(n)")
    for _ in range(passes):
        yield arr


def optional_seed(rng: Optional[np.random.Generator]) -> np.random.Generator:
    """Return ``rng`` or a fresh OS-seeded generator if ``None``."""
    return rng if rng is not None else np.random.default_rng()
