"""Output-perturbation noise mechanisms.

Two mechanisms, exactly the two the paper uses:

* :class:`SphericalLaplaceMechanism` — the ε-DP mechanism of Theorem 1,
  sampling from the density ``p(kappa) ∝ exp(-eps ||kappa|| / Delta)``.
  Appendix E gives the sampling recipe we follow: draw a uniform direction
  on the unit sphere and a magnitude from ``Gamma(d, Delta/eps)``.
* :class:`GaussianMechanism` — the (ε,δ)-DP mechanism of Theorem 3, adding
  i.i.d. ``N(0, sigma^2)`` noise per coordinate with
  ``sigma = Delta sqrt(2 ln(1.25/delta)) / eps``.

Both also expose the tail/expectation facts the paper's utility analysis
relies on (Theorem 2 for Gamma, the sqrt(d) scaling for Gaussian), which
the statistical tests verify.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from repro.utils.linalg import random_unit_vector
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import (
    check_in_range,
    check_non_negative_int,
    check_positive,
    check_positive_int,
)


@dataclass(frozen=True)
class PrivacyParameters:
    """An (ε, δ) pair; δ = 0 means pure ε-differential privacy."""

    epsilon: float
    delta: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.epsilon, "epsilon")
        check_in_range(self.delta, "delta", 0.0, 1.0, inclusive_high=False)

    @property
    def is_pure(self) -> bool:
        return self.delta == 0.0

    def split(self, parts: int) -> "PrivacyParameters":
        """Evenly split the budget across ``parts`` sub-computations.

        Basic sequential composition ([17] in the paper): running ``parts``
        mechanisms each with (ε/parts, δ/parts) is (ε, δ)-DP overall. This
        is what the MNIST one-vs-rest experiment does (Section 4.3).
        """
        check_positive_int(parts, "parts")
        return PrivacyParameters(self.epsilon / parts, self.delta / parts)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_pure:
            return f"{self.epsilon:g}-DP"
        return f"({self.epsilon:g}, {self.delta:g})-DP"


class NoiseMechanism(abc.ABC):
    """A mechanism that privatizes a vector given its L2-sensitivity."""

    @abc.abstractmethod
    def sample(
        self,
        dimension: int,
        sensitivity: float,
        privacy: PrivacyParameters,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Draw one noise vector kappa."""

    def sample_batch(
        self,
        count: int,
        dimension: int,
        sensitivity: float,
        privacy: PrivacyParameters,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Draw ``count`` noise vectors at once; returns ``(count, d)``.

        **Contract**: row ``i`` equals the ``i``-th of ``count`` successive
        :meth:`sample` calls on the same generator — the batch form must
        consume the RNG stream identically to the per-step path, so the
        white-box baselines can pre-draw an epoch's noise without changing
        a single released model (the mechanism regression tests pin this).

        Default: a loop over :meth:`sample` (identical by construction).
        :class:`GaussianMechanism` overrides it with one vectorized draw —
        NumPy fills a ``(n, d)`` normal block from the same bit stream as
        ``n`` size-``d`` calls. The spherical Laplace mechanism keeps the
        loop: each of its samples interleaves a direction block with a
        magnitude draw, and no blocked request can replay that
        interleaving, so a vectorized form would (silently) change every
        seeded run.
        """
        check_non_negative_int(count, "count")
        if count == 0:
            return np.empty((0, dimension), dtype=np.float64)
        return np.stack(
            [self.sample(dimension, sensitivity, privacy, rng) for _ in range(count)]
        )

    @abc.abstractmethod
    def expected_norm(
        self, dimension: int, sensitivity: float, privacy: PrivacyParameters
    ) -> float:
        """``E ||kappa||`` — drives the utility terms of Theorems 10/12."""

    @abc.abstractmethod
    def supports(self, privacy: PrivacyParameters) -> bool:
        """Whether this mechanism can deliver the requested guarantee."""

    def privatize(
        self,
        vector: np.ndarray,
        sensitivity: float,
        privacy: PrivacyParameters,
        random_state: RandomState = None,
    ) -> np.ndarray:
        """Return ``vector + kappa`` (the output-perturbation step)."""
        v = np.asarray(vector, dtype=np.float64)
        rng = as_generator(random_state)
        if not self.supports(privacy):
            raise ValueError(
                f"{type(self).__name__} cannot provide {privacy}; "
                "pick the matching mechanism (Laplace for delta=0, Gaussian "
                "for delta>0)"
            )
        return v + self.sample(v.shape[0], sensitivity, privacy, rng)


class SphericalLaplaceMechanism(NoiseMechanism):
    """ε-DP noise with density ``∝ exp(-eps ||kappa|| / Delta)`` (Theorem 1).

    Sampling (Appendix E): ``kappa = l * v`` with ``v`` uniform on the unit
    sphere and ``l ~ Gamma(shape=d, scale=Delta/eps)``. The norm then has
    the Gamma distribution the tail bound of Theorem 2 describes:
    ``P[||kappa|| > d ln(d/g) Delta/eps] <= g``.
    """

    def supports(self, privacy: PrivacyParameters) -> bool:
        return privacy.is_pure

    def sample(
        self,
        dimension: int,
        sensitivity: float,
        privacy: PrivacyParameters,
        rng: np.random.Generator,
    ) -> np.ndarray:
        check_positive_int(dimension, "dimension")
        check_positive(sensitivity, "sensitivity")
        if not self.supports(privacy):
            raise ValueError("SphericalLaplaceMechanism provides pure eps-DP only")
        direction = random_unit_vector(dimension, rng)
        magnitude = rng.gamma(shape=dimension, scale=sensitivity / privacy.epsilon)
        return magnitude * direction

    def expected_norm(
        self, dimension: int, sensitivity: float, privacy: PrivacyParameters
    ) -> float:
        """``E ||kappa|| = d * Delta / eps`` (mean of the Gamma magnitude)."""
        check_positive_int(dimension, "dimension")
        check_positive(sensitivity, "sensitivity")
        return dimension * sensitivity / privacy.epsilon

    @staticmethod
    def norm_tail_bound(dimension: int, sensitivity: float, epsilon: float, gamma: float) -> float:
        """Theorem 2's radius: with prob >= 1-gamma, ``||kappa||`` is below this."""
        check_positive_int(dimension, "dimension")
        check_positive(sensitivity, "sensitivity")
        check_positive(epsilon, "epsilon")
        check_in_range(gamma, "gamma", 0.0, 1.0, inclusive_low=False, inclusive_high=False)
        return dimension * math.log(dimension / gamma) * sensitivity / epsilon


class GaussianMechanism(NoiseMechanism):
    """(ε,δ)-DP Gaussian noise (Theorem 3).

    Per-coordinate ``N(0, sigma^2)`` with
    ``sigma = Delta * sqrt(2 ln(1.25/delta)) / eps``. Theorem 3 is stated
    for ``eps in (0, 1)``; the paper's experiments nevertheless sweep ε up
    to 4 with the same formula, and we follow the paper (``strict=True``
    restores the theorem's precondition).
    """

    def __init__(self, strict: bool = False):
        self.strict = bool(strict)

    def supports(self, privacy: PrivacyParameters) -> bool:
        if privacy.delta <= 0.0:
            return False
        if self.strict and privacy.epsilon >= 1.0:
            return False
        return True

    def noise_scale(self, sensitivity: float, privacy: PrivacyParameters) -> float:
        """The calibrated per-coordinate standard deviation sigma."""
        check_positive(sensitivity, "sensitivity")
        if privacy.delta <= 0.0:
            raise ValueError("GaussianMechanism requires delta > 0")
        if self.strict and privacy.epsilon >= 1.0:
            raise ValueError(
                "Theorem 3 requires epsilon in (0, 1); construct "
                "GaussianMechanism(strict=False) to follow the paper's "
                "experimental usage for larger epsilon"
            )
        c = math.sqrt(2.0 * math.log(1.25 / privacy.delta))
        return c * sensitivity / privacy.epsilon

    def sample(
        self,
        dimension: int,
        sensitivity: float,
        privacy: PrivacyParameters,
        rng: np.random.Generator,
    ) -> np.ndarray:
        check_positive_int(dimension, "dimension")
        sigma = self.noise_scale(sensitivity, privacy)
        return rng.normal(0.0, sigma, size=dimension)

    def sample_batch(
        self,
        count: int,
        dimension: int,
        sensitivity: float,
        privacy: PrivacyParameters,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """All ``count`` draws in one RNG call.

        ``Generator.normal`` consumes the bit stream element-by-element,
        so a ``(count, d)`` request yields exactly the same floats as
        ``count`` successive ``(d,)`` requests — this is the batched form
        the white-box baselines use to amortize per-step draw overhead
        without perturbing any seeded result.
        """
        check_non_negative_int(count, "count")
        check_positive_int(dimension, "dimension")
        sigma = self.noise_scale(sensitivity, privacy)
        return rng.normal(0.0, sigma, size=(count, dimension))

    def expected_norm(
        self, dimension: int, sensitivity: float, privacy: PrivacyParameters
    ) -> float:
        """``E ||kappa|| = sigma * sqrt(2) * G((d+1)/2) / G(d/2)`` (chi law).

        The exact mean of a chi-distributed norm; ~ ``sigma * sqrt(d)`` for
        large d, which is the paper's "sqrt(d) instead of d ln d" remark.
        """
        check_positive_int(dimension, "dimension")
        sigma = self.noise_scale(sensitivity, privacy)
        log_ratio = math.lgamma((dimension + 1) / 2.0) - math.lgamma(dimension / 2.0)
        return sigma * math.sqrt(2.0) * math.exp(log_ratio)


def mechanism_for(privacy: PrivacyParameters) -> NoiseMechanism:
    """The paper's pairing: Laplace for δ=0, Gaussian otherwise."""
    if privacy.is_pure:
        return SphericalLaplaceMechanism()
    return GaussianMechanism()
