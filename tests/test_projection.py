"""Tests for the projection operators, centred on non-expansiveness."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim.projection import BoxProjection, IdentityProjection, L2BallProjection

vec = st.lists(st.floats(-20.0, 20.0), min_size=3, max_size=3).map(np.asarray)


class TestIdentityProjection:
    def test_passthrough(self):
        w = np.array([3.0, -4.0])
        np.testing.assert_array_equal(IdentityProjection()(w), w)

    def test_contains_everything(self):
        assert IdentityProjection().contains(np.array([1e9, -1e9]))

    def test_infinite_radius(self):
        assert IdentityProjection().radius == float("inf")


class TestL2BallProjection:
    def test_inside_untouched(self):
        proj = L2BallProjection(5.0)
        w = np.array([3.0, 0.0])
        np.testing.assert_array_equal(proj(w), w)

    def test_outside_scaled_to_boundary(self):
        proj = L2BallProjection(5.0)
        w = np.array([30.0, 40.0])  # norm 50
        result = proj(w)
        assert np.linalg.norm(result) == pytest.approx(5.0)
        # Direction preserved
        np.testing.assert_allclose(result / 5.0, w / 50.0)

    def test_contains(self):
        proj = L2BallProjection(1.0)
        assert proj.contains(np.array([0.6, 0.8]))
        assert not proj.contains(np.array([1.0, 1.0]))

    def test_radius_property(self):
        assert L2BallProjection(2.5).radius == 2.5

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            L2BallProjection(0.0)

    @given(u=vec, v=vec, radius=st.floats(0.1, 10.0))
    @settings(max_examples=100, deadline=None)
    def test_nonexpansive(self, u, v, radius):
        # ||Pi(u) - Pi(v)|| <= ||u - v|| — the property the paper's
        # constrained-optimization extension rests on (Section 3.2.3).
        proj = L2BallProjection(radius)
        assert np.linalg.norm(proj(u) - proj(v)) <= np.linalg.norm(u - v) + 1e-9

    @given(w=vec, radius=st.floats(0.1, 10.0))
    @settings(max_examples=100, deadline=None)
    def test_idempotent(self, w, radius):
        proj = L2BallProjection(radius)
        once = proj(w)
        np.testing.assert_allclose(proj(once), once, atol=1e-12)


class TestBoxProjection:
    def test_clipping(self):
        proj = BoxProjection(-1.0, 1.0)
        np.testing.assert_array_equal(
            proj(np.array([2.0, -3.0, 0.5])), np.array([1.0, -1.0, 0.5])
        )

    def test_contains(self):
        proj = BoxProjection(0.0, 1.0)
        assert proj.contains(np.array([0.5, 1.0]))
        assert not proj.contains(np.array([-0.1, 0.5]))

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            BoxProjection(1.0, 1.0)

    @given(u=vec, v=vec)
    @settings(max_examples=100, deadline=None)
    def test_nonexpansive(self, u, v):
        proj = BoxProjection(-2.0, 3.0)
        assert np.linalg.norm(proj(u) - proj(v)) <= np.linalg.norm(u - v) + 1e-9

    @given(w=vec)
    @settings(max_examples=50, deadline=None)
    def test_idempotent(self, w):
        proj = BoxProjection(-1.5, 1.5)
        once = proj(w)
        np.testing.assert_allclose(proj(once), once)
