"""A calibrated cost model turning execution counters into seconds.

The paper's runtime results (Figures 2 and 5) are wall-clock measurements
of C UDAs inside PostgreSQL on a 48-core Xeon; our substrate is Python, so
absolute times are meaningless. What the figures actually demonstrate is
*relative* behaviour, all of which is a function of operation counts:

* noiseless and bolt-on runs do the same per-tuple work; the bolt-on run
  adds exactly one noise draw at the very end (≈ free);
* SCS13/BST14 add one noise draw per mini-batch — at b=1 that is one draw
  per tuple ("up to 6X slower"), and the overhead shrinks as b grows until
  it "practically disappears" at b=500;
* runtimes scale linearly in the number of examples;
* on larger-than-memory data, per-page I/O dominates and the algorithms
  converge to the same I/O-bound runtime (Figure 2(b)).

The constants below are calibrated to the paper's hardware narrative:
gradient work a few hundred ns/tuple/50-dims, a noise draw from a
sophisticated distribution several microseconds (the paper attributes the
overhead to "expensive random sampling code"), sequential page reads at
~200 MB/s effective disk bandwidth. The *tests* assert only ordering and
ratio properties, never absolute values, so recalibration cannot break
correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostConstants:
    """Per-operation costs in seconds. See module docstring for rationale."""

    #: Per-tuple gradient compute+accumulate, per feature dimension.
    cpu_gradient_per_dim: float = 4e-9
    #: Applying one accumulated mini-batch update, per dimension.
    cpu_update_per_dim: float = 2e-9
    #: One draw from a "sophisticated distribution" (gamma / multivariate
    #: normal), per dimension — the white-box algorithms pay this per batch.
    cpu_noise_per_dim: float = 10e-9
    #: Fixed overhead per noise draw (RNG state, allocation, C call).
    cpu_noise_fixed: float = 4e-7
    #: Per-tuple executor overhead (advance scan, call transition).
    cpu_per_tuple: float = 25e-9
    #: Shuffle comparison cost per tuple (the ORDER BY RANDOM() sort).
    cpu_shuffle_per_tuple: float = 50e-9
    #: Buffer-pool hit (memory) per page.
    io_hit_per_page: float = 1e-7
    #: Miss serviced from disk, sequential pattern (8 KiB / ~200 MB/s).
    io_miss_per_page: float = 4e-5


@dataclass
class RuntimeBreakdown:
    """Simulated seconds split by resource; ``total`` is their sum."""

    gradient_seconds: float = 0.0
    update_seconds: float = 0.0
    noise_seconds: float = 0.0
    executor_seconds: float = 0.0
    shuffle_seconds: float = 0.0
    io_seconds: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.gradient_seconds
            + self.update_seconds
            + self.noise_seconds
            + self.executor_seconds
            + self.shuffle_seconds
            + self.io_seconds
        )

    @property
    def cpu_seconds(self) -> float:
        return self.total - self.io_seconds

    def __add__(self, other: "RuntimeBreakdown") -> "RuntimeBreakdown":
        return RuntimeBreakdown(
            gradient_seconds=self.gradient_seconds + other.gradient_seconds,
            update_seconds=self.update_seconds + other.update_seconds,
            noise_seconds=self.noise_seconds + other.noise_seconds,
            executor_seconds=self.executor_seconds + other.executor_seconds,
            shuffle_seconds=self.shuffle_seconds + other.shuffle_seconds,
            io_seconds=self.io_seconds + other.io_seconds,
        )


@dataclass
class WorkCounters:
    """What an execution did — the cost model's input.

    Populated by the Bismarck controller from operator/UDA/buffer-pool
    counters, or synthesized analytically for the large-scale sweeps
    (:func:`repro.rdbms.synthesizer.analytic_counters`).
    """

    tuples_processed: int = 0
    gradient_evaluations: int = 0
    batch_updates: int = 0
    noise_draws: int = 0
    shuffled_tuples: int = 0
    page_hits: int = 0
    page_misses: int = 0
    dimension: int = 1


@dataclass
class CostModel:
    """Applies :class:`CostConstants` to :class:`WorkCounters`."""

    constants: CostConstants = field(default_factory=CostConstants)

    def charge(self, work: WorkCounters) -> RuntimeBreakdown:
        c = self.constants
        d = max(1, work.dimension)
        return RuntimeBreakdown(
            gradient_seconds=work.gradient_evaluations * c.cpu_gradient_per_dim * d,
            update_seconds=work.batch_updates * c.cpu_update_per_dim * d,
            noise_seconds=work.noise_draws * (c.cpu_noise_fixed + c.cpu_noise_per_dim * d),
            executor_seconds=work.tuples_processed * c.cpu_per_tuple,
            shuffle_seconds=work.shuffled_tuples * c.cpu_shuffle_per_tuple,
            io_seconds=(
                work.page_hits * c.io_hit_per_page
                + work.page_misses * c.io_miss_per_page
            ),
        )
