"""The network API: ``repro-api/v1`` over HTTP, plus the Python client.

The service subsystem (:mod:`repro.service`) is deliberately an
in-process server; this package is the process boundary. Three modules:

* :mod:`repro.api.wire` — the versioned JSON wire schema: typed payload
  dataclasses with exact (``float.hex``-disciplined) round-trips.
* :mod:`repro.api.server` — :class:`ServiceApiServer`, a stdlib
  ``ThreadingHTTPServer`` front-end over the service verbs with
  bearer-token auth mapped to principals at the edge.
* :mod:`repro.api.client` — :class:`ServiceClient`, the same verb
  surface over ``urllib``, raising the same
  :mod:`repro.service.errors` taxonomy the in-process verbs raise.

The contract the tests enforce: a job submitted through
``ServiceClient`` over a real socket releases weights bitwise-equal to
the same job submitted in process, and every fault carries the same
machine-readable code through both transports.
"""

from repro.api.client import ApiUnreachable, ServiceClient
from repro.api.server import ServiceApiServer
from repro.api.wire import WIRE_FORMAT

__all__ = [
    "ApiUnreachable",
    "ServiceApiServer",
    "ServiceClient",
    "WIRE_FORMAT",
]
