"""Tests for the SQL front-end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optim.losses import LogisticLoss
from repro.optim.schedules import ConstantSchedule
from repro.rdbms.catalog import Catalog
from repro.rdbms.sql import (
    CreateTable,
    DropTable,
    SelectAggregate,
    SQLError,
    SQLSession,
    parse,
    tokenize,
)
from repro.rdbms.storage import BufferPool
from repro.rdbms.uda import SGDUDA
from tests.conftest import make_binary_data


class TestTokenizer:
    def test_basic(self):
        tokens = tokenize("SELECT avg(label) FROM t;")
        kinds = [t.kind for t in tokens]
        assert kinds == [
            "keyword", "ident", "punct", "ident", "punct", "keyword",
            "ident", "punct",
        ]

    def test_keywords_case_insensitive(self):
        assert tokenize("select")[0].kind == "keyword"
        assert tokenize("SeLeCt")[0].kind == "keyword"

    def test_bad_character(self):
        with pytest.raises(SQLError, match="unexpected character"):
            tokenize("SELECT @ FROM t")


class TestParser:
    def test_simple_select(self):
        statement = parse("SELECT avg(label) FROM data")
        assert isinstance(statement, SelectAggregate)
        assert statement.aggregate == "avg"
        assert statement.arguments == ["label"]
        assert statement.table == "data"
        assert not statement.shuffled

    def test_order_by_random(self):
        statement = parse(
            "SELECT sgd_agg(features, label) FROM data ORDER BY RANDOM()"
        )
        assert statement.shuffled
        assert statement.arguments == ["features", "label"]

    def test_star_argument(self):
        statement = parse("SELECT count(*) FROM t")
        assert statement.arguments == ["*"]

    def test_no_arguments(self):
        statement = parse("SELECT f() FROM t")
        assert statement.arguments == []

    def test_semicolon_optional(self):
        parse("SELECT avg(x) FROM t")
        parse("SELECT avg(x) FROM t;")

    def test_drop_table(self):
        statement = parse("DROP TABLE old;")
        assert isinstance(statement, DropTable)
        assert statement.table == "old"

    def test_create_table_parses(self):
        assert isinstance(parse("CREATE TABLE t"), CreateTable)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "SELECT FROM t",
            "SELECT avg(label) t",
            "SELECT avg(label FROM t",
            "SELECT avg(label) FROM t ORDER RANDOM()",
            "SELECT avg(label) FROM t ORDER BY random",
            "SELECT avg(label) FROM t extra",
            "UPDATE t SET x = 1",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(SQLError):
            parse(bad)


class TestSession:
    def make_session(self, m=120, d=5, seed=0):
        catalog = Catalog()
        X, y = make_binary_data(m, d, seed=seed)
        catalog.create_table_from_arrays("data", X, y)
        return SQLSession(catalog, BufferPool(100), random_state=0), X, y

    def test_avg_matches_numpy(self):
        session, X, y = self.make_session()
        result = session.execute("SELECT avg(label) FROM data")
        assert result == pytest.approx(float(np.mean(y)))

    def test_unknown_table(self):
        session, _, _ = self.make_session()
        with pytest.raises(SQLError, match="no such table"):
            session.execute("SELECT avg(label) FROM ghost")

    def test_unknown_aggregate(self):
        session, _, _ = self.make_session()
        with pytest.raises(SQLError, match="unknown aggregate"):
            session.execute("SELECT median(label) FROM data")

    def test_drop_table(self):
        session, _, _ = self.make_session()
        session.execute("DROP TABLE data")
        with pytest.raises(SQLError):
            session.execute("SELECT avg(label) FROM data")

    def test_create_table_directs_to_api(self):
        session, _, _ = self.make_session()
        with pytest.raises(SQLError, match="load_table"):
            session.execute("CREATE TABLE other")

    def test_sgd_epoch_via_sql(self):
        """The paper's epoch query: SELECT sgd(...) FROM t ORDER BY RANDOM()."""
        session, X, y = self.make_session(m=200, d=5)
        uda = SGDUDA(LogisticLoss(), ConstantSchedule(0.3), batch_size=10)
        session.register_aggregate("sgd_epoch", uda, dimension=5)
        model = session.execute(
            "SELECT sgd_epoch(features, label) FROM data ORDER BY RANDOM()"
        )
        assert model.shape == (5,)
        # One epoch over separable data should already beat chance.
        accuracy = float(np.mean(np.where(X @ model >= 0, 1, -1) == y))
        assert accuracy > 0.7

    def test_registered_aggregate_name_validated(self):
        session, _, _ = self.make_session()
        uda = SGDUDA(LogisticLoss(), ConstantSchedule(0.1))
        with pytest.raises(SQLError, match="invalid aggregate name"):
            session.register_aggregate("bad name", uda)

    def test_shuffled_vs_sequential_differ(self):
        session, X, y = self.make_session(m=200, d=5)
        uda = SGDUDA(LogisticLoss(), ConstantSchedule(0.3), batch_size=10)
        session.register_aggregate("sgd_epoch", uda, dimension=5)
        shuffled = session.execute(
            "SELECT sgd_epoch(features, label) FROM data ORDER BY RANDOM()"
        )
        sequential = session.execute("SELECT sgd_epoch(features, label) FROM data")
        assert not np.array_equal(shuffled, sequential)
