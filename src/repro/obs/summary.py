"""Rendering helpers over the telemetry layer.

Two consumers share these:

* ``repro serve`` — its end-of-run summary used to be ad-hoc reads of
  scattered attributes (``peak_scan_overlap``, ``cache.hits``, the
  ``durability`` dict). :func:`serve_summary_lines` renders the same
  lines from the metrics registry's JSON dump instead, so the summary
  and the exported metrics can never disagree.
* ``repro trace JOB`` — :func:`trace_lines` pretty-prints a job's
  lifecycle spans with offsets/durations in milliseconds.

The ``*_note`` parameters carry workload knowledge the telemetry layer
cannot have (how many tables *could* have overlapped, what one job
alone would have paid in pages); the numbers themselves always come
from the registry.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "metric_samples",
    "metric_value",
    "serve_summary_lines",
    "trace_lines",
]


def metric_samples(dump: dict, name: str) -> List[dict]:
    """The sample list for metric ``name`` in a JSON dump ([] if absent)."""
    for metric in dump.get("metrics", ()):
        if metric.get("name") == name:
            return list(metric.get("samples", ()))
    return []


def metric_value(dump: dict, name: str, default: float = 0.0,
                 **labels: str) -> float:
    """A single sample's value, matched by exact label set."""
    wanted = {key: str(value) for key, value in labels.items()}
    for sample in metric_samples(dump, name):
        if sample.get("labels", {}) == wanted:
            return float(sample["value"])
    return default


def _labelled(dump: dict, name: str) -> Dict[Tuple[str, ...], float]:
    """Samples keyed by their label values in labelname order."""
    out: Dict[Tuple[str, ...], float] = {}
    for metric in dump.get("metrics", ()):
        if metric.get("name") != name:
            continue
        order = metric.get("labelnames", [])
        for sample in metric.get("samples", ()):
            labels = sample.get("labels", {})
            out[tuple(labels.get(label, "") for label in order)] = float(
                sample["value"]
            )
    return out


def serve_summary_lines(
    service,
    *,
    table_names: Sequence[str] = (),
    overlap_note: str = "",
    pages_note: str = "",
    state_dir: Optional[str] = None,
) -> List[str]:
    """The telemetry-backed portion of the ``repro serve`` summary.

    Every number comes from ``service.metrics(format="json")`` — the
    registry's collectors sample the live ground truth (registry counts,
    ledger statements, WAL counters) at render time, so these lines are
    a view over the same data a scrape would export.
    """
    dump = service.metrics(format="json")
    lines: List[str] = []

    counts = {
        sample["labels"]["status"]: int(sample["value"])
        for sample in metric_samples(dump, "repro_registry_jobs")
    }
    lines.append("job statuses    : " + ", ".join(
        f"{name}={count}" for name, count in sorted(counts.items()) if count
    ))

    peak = int(metric_value(dump, "repro_scan_overlap_peak"))
    lines.append(f"scan overlap    : peak {peak}{overlap_note}")

    scans = {
        key[0]: int(value)
        for key, value in _labelled(dump, "repro_table_scans_total").items()
    }
    names = list(table_names) if table_names else sorted(scans)
    lines.append("scans per table : " + ", ".join(
        f"{name}={scans.get(name, 0)}" for name in names
    ))

    lines.append(
        f"scan groups     : {int(metric_value(dump, 'repro_scan_groups_total'))}"
    )

    executed = int(sum(
        value for value in _labelled(dump, "repro_scan_pages_total").values()
    ))
    completed = max(counts.get("completed", 0), 1)
    lines.append(
        f"page requests   : {executed} total, {executed / completed:.1f} per "
        f"completed job{pages_note}"
    )

    hits = int(metric_value(dump, "repro_cache_hits_total"))
    if hits:
        lines.append(f"cache           : {hits} hits (0 pages, 0 eps each)")

    spent = _labelled(dump, "repro_ledger_epsilon_spent")
    caps = _labelled(dump, "repro_ledger_epsilon_cap")
    for principal, table in sorted(spent):
        lines.append(
            f"  {principal:>10} @ {table}: "
            f"spent eps {spent[(principal, table)]:.3f} "
            f"of {caps.get((principal, table), 0.0):.3f}"
        )

    if state_dir is not None:
        durability = service.durability
        if durability["mode"] == "degraded":
            lines.append(
                f"durability      : DEGRADED (in-memory only) — "
                f"{durability.get('error', 'state_dir not writable')}"
            )
        else:
            syncs = int(metric_value(dump, "repro_wal_syncs_total"))
            compactions = int(metric_value(dump, "repro_wal_compactions_total"))
            lines.append(
                f"state saved     : {state_dir} "
                f"({syncs} log syncs, {compactions} compactions)"
            )
    return lines


def trace_lines(record) -> List[str]:
    """Pretty-print one job's lifecycle trace (the ``repro trace`` body)."""
    lines = [
        f"job             : {record.job_id} "
        f"({record.job.principal} on {record.job.table})",
        f"status          : {record.status}",
    ]
    if record.error:
        lines.append(f"reason          : {record.error}")
    trace = record.trace
    spans = trace.spans() if trace is not None else []
    if not spans:
        lines.append("trace           : (no spans recorded)")
        return lines
    lines.append(
        f"trace           : {len(spans)} spans, "
        f"{trace.duration * 1e3:.2f} ms {spans[0].name} -> {spans[-1].name}"
    )
    origin = spans[0].start
    for span in spans:
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(span.attrs.items())
        )
        lines.append(
            f"  {span.name:<9} +{(span.start - origin) * 1e3:9.3f} ms  "
            f"{span.duration * 1e3:9.3f} ms" + (f"  {attrs}" if attrs else "")
        )
    return lines
