"""Table catalog — name resolution for the miniature engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.rdbms.storage import HeapFile, MaterializedHeapFile


@dataclass
class TableInfo:
    """Catalog entry: a named heap file plus basic statistics."""

    name: str
    heap: HeapFile

    @property
    def num_tuples(self) -> int:
        return self.heap.num_tuples

    @property
    def dimension(self) -> int:
        return self.heap.dimension

    @property
    def size_bytes(self) -> int:
        return self.heap.size_bytes


class Catalog:
    """A flat namespace of tables."""

    def __init__(self) -> None:
        self._tables: Dict[str, TableInfo] = {}

    def create_table(self, name: str, heap: HeapFile) -> TableInfo:
        """Register a heap file under ``name`` (names are unique)."""
        if not name or not name.replace("_", "").isalnum():
            raise ValueError(f"invalid table name {name!r}")
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        info = TableInfo(name=name, heap=heap)
        self._tables[name] = info
        return info

    def create_table_from_arrays(
        self, name: str, features: np.ndarray, labels: np.ndarray
    ) -> TableInfo:
        """Convenience: materialize arrays into a new table."""
        return self.create_table(name, MaterializedHeapFile(features, labels))

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise KeyError(f"no such table {name!r}")
        del self._tables[name]

    def get(self, name: str) -> TableInfo:
        if name not in self._tables:
            raise KeyError(f"no such table {name!r}; known: {sorted(self._tables)}")
        return self._tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)
