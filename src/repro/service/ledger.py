"""The privacy-budget ledger: per-(principal, table) ε/δ accounts.

:class:`~repro.core.accountant.PrivacyAccountant` answers "how much has
this computation spent against one budget"; a multi-tenant service needs
more: many accounts (one per principal × dataset), and a *two-phase*
spend so that money and data move atomically:

* :meth:`PrivacyBudgetLedger.reserve` — at admission, set the job's
  (ε, δ) aside. Denied reservations raise :class:`BudgetDenied` **before
  the job ever touches data** — the scheduler turns that into a
  rejection with zero pages charged.
* :meth:`PrivacyBudgetLedger.commit` — after the model is trained and
  noised, convert the reservation into a recorded spend on the wrapped
  accountant and hand back a :class:`BudgetReceipt`.
* :meth:`PrivacyBudgetLedger.refund` — if training fails, return the
  reservation untouched: failed jobs don't burn budget.

Invariant (the property tests hammer every interleaving): for each
account, ``spent + reserved <= cap`` at all times, under the same
tolerance rule the accountant itself applies
(:func:`repro.core.accountant.would_overflow`), and every mutation
happens under one lock so concurrent submitters cannot double-spend.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.accountant import (
    PrivacyAccountant,
    PrivacyBudgetExceeded,
    would_overflow,
)
from repro.core.mechanisms import PrivacyParameters


class BudgetDenied(PrivacyBudgetExceeded):
    """An admission-time denial: the reservation would overflow the cap
    (or the account does not exist — no budget means no spend)."""


@dataclass(frozen=True)
class BudgetReceipt:
    """Proof of one committed spend, stored with the job's results."""

    principal: str
    table: str
    job_id: str
    parameters: PrivacyParameters
    #: Account-local commit sequence number (audit ordering).
    sequence: int


@dataclass
class BudgetReservation:
    """A pending hold on an account; exactly one of commit/refund may
    consume it (the ledger enforces the state machine)."""

    principal: str
    table: str
    job_id: str
    parameters: PrivacyParameters
    state: str = "reserved"  # -> "committed" | "refunded"


@dataclass
class _Account:
    """One (principal, table) budget account."""

    accountant: PrivacyAccountant
    reserved_epsilon: float = 0.0
    reserved_delta: float = 0.0
    commits: int = 0
    open_reservations: int = 0


@dataclass(frozen=True)
class AccountStatement:
    """A read-only snapshot of one account (for status displays)."""

    principal: str
    table: str
    cap: PrivacyParameters
    spent: Tuple[float, float]
    reserved: Tuple[float, float]

    @property
    def available_epsilon(self) -> float:
        return max(self.cap.epsilon - self.spent[0] - self.reserved[0], 0.0)

    @property
    def available_delta(self) -> float:
        return max(self.cap.delta - self.spent[1] - self.reserved[1], 0.0)


class PrivacyBudgetLedger:
    """Thread-safe two-phase budget accounting over many accounts."""

    def __init__(self) -> None:
        self._accounts: Dict[Tuple[str, str], _Account] = {}
        self._lock = threading.RLock()

    # -- account management ------------------------------------------------------

    def open_account(
        self, principal: str, table: str, epsilon: float, delta: float = 0.0
    ) -> None:
        """Grant ``principal`` a fresh (ε, δ) cap against ``table``."""
        key = (principal, table)
        with self._lock:
            if key in self._accounts:
                raise ValueError(
                    f"account {key} already exists; budgets are immutable "
                    "once granted (open a differently-named dataset view "
                    "to extend a tenant's allowance)"
                )
            self._accounts[key] = _Account(
                accountant=PrivacyAccountant(PrivacyParameters(epsilon, delta))
            )

    def has_account(self, principal: str, table: str) -> bool:
        with self._lock:
            return (principal, table) in self._accounts

    def statement(self, principal: str, table: str) -> AccountStatement:
        with self._lock:
            account = self._require(principal, table)
            return AccountStatement(
                principal=principal,
                table=table,
                cap=account.accountant.budget,
                spent=account.accountant.total(),
                reserved=(account.reserved_epsilon, account.reserved_delta),
            )

    def statements(self) -> List[AccountStatement]:
        with self._lock:
            return [
                self.statement(principal, table)
                for (principal, table) in sorted(self._accounts)
            ]

    # -- the two-phase spend ----------------------------------------------------

    def reserve(
        self,
        principal: str,
        table: str,
        parameters: PrivacyParameters,
        job_id: str = "",
    ) -> BudgetReservation:
        """Atomically hold ``parameters`` against the account or deny.

        Denial — unknown account, or ``spent + reserved + request``
        overflowing the cap — raises :class:`BudgetDenied` and changes
        nothing.
        """
        with self._lock:
            key = (principal, table)
            account = self._accounts.get(key)
            if account is None:
                raise BudgetDenied(
                    f"no budget account for principal {principal!r} on "
                    f"table {table!r}; open one before submitting jobs"
                )
            spent_eps, spent_delta = account.accountant.total()
            if would_overflow(
                account.accountant.budget,
                spent_eps + account.reserved_epsilon + parameters.epsilon,
                spent_delta + account.reserved_delta + parameters.delta,
            ):
                raise BudgetDenied(
                    f"reserving {parameters} for job {job_id!r} would "
                    f"overflow {principal!r}'s budget on {table!r}: cap "
                    f"{account.accountant.budget}, spent ({spent_eps:g}, "
                    f"{spent_delta:g}), already reserved "
                    f"({account.reserved_epsilon:g}, {account.reserved_delta:g})"
                )
            account.reserved_epsilon += parameters.epsilon
            account.reserved_delta += parameters.delta
            account.open_reservations += 1
            return BudgetReservation(
                principal=principal,
                table=table,
                job_id=job_id,
                parameters=parameters,
            )

    def commit(self, reservation: BudgetReservation) -> BudgetReceipt:
        """Convert a reservation into a recorded spend (a receipt)."""
        with self._lock:
            account = self._consume(reservation, "committed")
            # The hold comes off before the spend goes on, so the
            # accountant's own cap check sees exactly spent + this job.
            account.accountant.spend(
                reservation.parameters,
                label=f"job:{reservation.job_id} principal:{reservation.principal}",
            )
            account.commits += 1
            return BudgetReceipt(
                principal=reservation.principal,
                table=reservation.table,
                job_id=reservation.job_id,
                parameters=reservation.parameters,
                sequence=account.commits,
            )

    def refund(self, reservation: BudgetReservation) -> None:
        """Release a reservation without spending (failed/cancelled job)."""
        with self._lock:
            self._consume(reservation, "refunded")

    # -- internals ---------------------------------------------------------------

    def _require(self, principal: str, table: str) -> _Account:
        account = self._accounts.get((principal, table))
        if account is None:
            raise KeyError(f"no budget account for ({principal!r}, {table!r})")
        return account

    def _consume(self, reservation: BudgetReservation, new_state: str) -> _Account:
        """Transition a reservation out of 'reserved', releasing its hold."""
        if reservation.state != "reserved":
            raise ValueError(
                f"reservation for job {reservation.job_id!r} is already "
                f"{reservation.state}; commit/refund may be called once"
            )
        account = self._require(reservation.principal, reservation.table)
        account.reserved_epsilon -= reservation.parameters.epsilon
        account.reserved_delta -= reservation.parameters.delta
        account.open_reservations -= 1
        # Clamp rounding dust so long-lived accounts cannot drift below 0.
        if account.open_reservations == 0:
            account.reserved_epsilon = 0.0
            account.reserved_delta = 0.0
        reservation.state = new_state
        return account
