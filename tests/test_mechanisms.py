"""Tests for the noise mechanisms (Theorems 1–3 and Appendix E)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.mechanisms import (
    GaussianMechanism,
    PrivacyParameters,
    SphericalLaplaceMechanism,
    mechanism_for,
)


class TestPrivacyParameters:
    def test_pure(self):
        p = PrivacyParameters(1.0)
        assert p.is_pure
        assert p.delta == 0.0

    def test_approximate(self):
        p = PrivacyParameters(0.5, 1e-6)
        assert not p.is_pure

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            PrivacyParameters(0.0)
        with pytest.raises(ValueError):
            PrivacyParameters(-1.0)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            PrivacyParameters(1.0, 1.0)
        with pytest.raises(ValueError):
            PrivacyParameters(1.0, -0.1)

    def test_split(self):
        p = PrivacyParameters(1.0, 1e-4).split(10)
        assert p.epsilon == pytest.approx(0.1)
        assert p.delta == pytest.approx(1e-5)

    def test_str(self):
        assert str(PrivacyParameters(0.5)) == "0.5-DP"
        assert "1e-06" in str(PrivacyParameters(0.5, 1e-6))


class TestSphericalLaplace:
    def test_supports_pure_only(self):
        mech = SphericalLaplaceMechanism()
        assert mech.supports(PrivacyParameters(1.0))
        assert not mech.supports(PrivacyParameters(1.0, 1e-6))

    def test_sample_shape(self, rng):
        mech = SphericalLaplaceMechanism()
        noise = mech.sample(7, 0.5, PrivacyParameters(1.0), rng)
        assert noise.shape == (7,)

    def test_norm_is_gamma_distributed(self, rng):
        # ||kappa|| ~ Gamma(d, Delta/eps): check mean and variance.
        d, sens, eps = 5, 0.2, 2.0
        mech = SphericalLaplaceMechanism()
        privacy = PrivacyParameters(eps)
        norms = np.array(
            [np.linalg.norm(mech.sample(d, sens, privacy, rng)) for _ in range(4000)]
        )
        scale = sens / eps
        assert norms.mean() == pytest.approx(d * scale, rel=0.05)
        assert norms.var() == pytest.approx(d * scale**2, rel=0.15)

    def test_direction_is_uniform(self, rng):
        # Mean direction of many draws should vanish.
        mech = SphericalLaplaceMechanism()
        privacy = PrivacyParameters(1.0)
        samples = np.array(
            [mech.sample(3, 1.0, privacy, rng) for _ in range(4000)]
        )
        directions = samples / np.linalg.norm(samples, axis=1, keepdims=True)
        assert np.linalg.norm(directions.mean(axis=0)) < 0.06

    def test_expected_norm_formula(self):
        mech = SphericalLaplaceMechanism()
        assert mech.expected_norm(10, 0.5, PrivacyParameters(2.0)) == pytest.approx(
            10 * 0.5 / 2.0
        )

    def test_theorem2_tail_bound(self, rng):
        # With prob >= 1 - gamma, ||kappa|| <= d ln(d/gamma) Delta/eps.
        d, sens, eps, gamma = 4, 1.0, 1.0, 0.05
        mech = SphericalLaplaceMechanism()
        radius = mech.norm_tail_bound(d, sens, eps, gamma)
        privacy = PrivacyParameters(eps)
        norms = np.array(
            [np.linalg.norm(mech.sample(d, sens, privacy, rng)) for _ in range(2000)]
        )
        violations = float(np.mean(norms > radius))
        assert violations <= gamma  # the bound is loose; violations ~ 0

    def test_noise_scales_with_sensitivity(self, rng):
        mech = SphericalLaplaceMechanism()
        privacy = PrivacyParameters(1.0)
        small = np.mean(
            [np.linalg.norm(mech.sample(5, 0.1, privacy, rng)) for _ in range(500)]
        )
        large = np.mean(
            [np.linalg.norm(mech.sample(5, 1.0, privacy, rng)) for _ in range(500)]
        )
        assert large / small == pytest.approx(10.0, rel=0.2)

    def test_privatize_adds_noise(self, rng):
        mech = SphericalLaplaceMechanism()
        vector = np.ones(4)
        out = mech.privatize(vector, 0.5, PrivacyParameters(1.0), rng)
        assert out.shape == (4,)
        assert not np.array_equal(out, vector)

    def test_privatize_wrong_mechanism_raises(self, rng):
        mech = SphericalLaplaceMechanism()
        with pytest.raises(ValueError, match="cannot provide"):
            mech.privatize(np.ones(3), 0.5, PrivacyParameters(1.0, 1e-6), rng)


class TestGaussianMechanism:
    def test_supports_approximate_only(self):
        mech = GaussianMechanism()
        assert mech.supports(PrivacyParameters(0.5, 1e-6))
        assert not mech.supports(PrivacyParameters(0.5))

    def test_strict_mode_enforces_theorem3(self):
        strict = GaussianMechanism(strict=True)
        assert strict.supports(PrivacyParameters(0.5, 1e-6))
        assert not strict.supports(PrivacyParameters(2.0, 1e-6))
        with pytest.raises(ValueError, match="epsilon in \\(0, 1\\)"):
            strict.noise_scale(1.0, PrivacyParameters(2.0, 1e-6))

    def test_sigma_calibration(self):
        # sigma = Delta sqrt(2 ln(1.25/delta)) / eps
        mech = GaussianMechanism()
        sens, eps, delta = 0.5, 0.2, 1e-5
        expected = sens * math.sqrt(2 * math.log(1.25 / delta)) / eps
        assert mech.noise_scale(sens, PrivacyParameters(eps, delta)) == pytest.approx(
            expected
        )

    def test_sample_statistics(self, rng):
        mech = GaussianMechanism()
        privacy = PrivacyParameters(0.5, 1e-5)
        sigma = mech.noise_scale(1.0, privacy)
        samples = np.concatenate(
            [mech.sample(10, 1.0, privacy, rng) for _ in range(400)]
        )
        assert samples.std() == pytest.approx(sigma, rel=0.05)
        assert abs(samples.mean()) < 3 * sigma / math.sqrt(len(samples)) * 2

    def test_expected_norm_close_to_sqrt_d(self, rng):
        mech = GaussianMechanism()
        privacy = PrivacyParameters(0.5, 1e-5)
        d = 50
        expected = mech.expected_norm(d, 1.0, privacy)
        sigma = mech.noise_scale(1.0, privacy)
        # chi mean ~ sigma sqrt(d) for large d
        assert expected == pytest.approx(sigma * math.sqrt(d), rel=0.02)
        norms = np.array(
            [np.linalg.norm(mech.sample(d, 1.0, privacy, rng)) for _ in range(500)]
        )
        assert norms.mean() == pytest.approx(expected, rel=0.05)

    def test_requires_delta(self):
        mech = GaussianMechanism()
        with pytest.raises(ValueError, match="delta > 0"):
            mech.noise_scale(1.0, PrivacyParameters(1.0))

    def test_dimension_advantage_over_laplace(self):
        # The paper's remark: Gaussian noise scales as sqrt(d) vs d ln d.
        d = 100
        laplace = SphericalLaplaceMechanism().expected_norm(
            d, 1.0, PrivacyParameters(1.0)
        )
        gaussian = GaussianMechanism().expected_norm(
            d, 1.0, PrivacyParameters(1.0, 1e-6)
        )
        assert gaussian < laplace


class TestMechanismFor:
    def test_pure_gets_laplace(self):
        assert isinstance(
            mechanism_for(PrivacyParameters(1.0)), SphericalLaplaceMechanism
        )

    def test_approx_gets_gaussian(self):
        assert isinstance(
            mechanism_for(PrivacyParameters(1.0, 1e-6)), GaussianMechanism
        )


class TestSampleBatch:
    """The blocked-draw contract: ``sample_batch(n)`` == n ``sample`` calls.

    This is what lets the white-box baselines pre-draw an epoch's noise
    without changing any seeded run: row i of the batch must be exactly
    the i-th per-step draw from the same generator state.
    """

    def test_gaussian_batch_matches_per_step_stream(self):
        mech = GaussianMechanism()
        privacy = PrivacyParameters(0.7, 1e-6)
        batch = mech.sample_batch(23, 9, 0.31, privacy, np.random.default_rng(42))
        rng = np.random.default_rng(42)
        singles = np.stack([mech.sample(9, 0.31, privacy, rng) for _ in range(23)])
        assert batch.shape == (23, 9)
        np.testing.assert_array_equal(batch, singles)

    def test_spherical_laplace_batch_matches_per_step_stream(self):
        mech = SphericalLaplaceMechanism()
        privacy = PrivacyParameters(0.9)
        batch = mech.sample_batch(17, 6, 0.05, privacy, np.random.default_rng(7))
        rng = np.random.default_rng(7)
        singles = np.stack([mech.sample(6, 0.05, privacy, rng) for _ in range(17)])
        np.testing.assert_array_equal(batch, singles)

    def test_zero_count(self):
        mech = GaussianMechanism()
        privacy = PrivacyParameters(1.0, 1e-6)
        assert mech.sample_batch(0, 4, 1.0, privacy, np.random.default_rng(0)).shape == (0, 4)

    def test_negative_count_rejected(self):
        mech = SphericalLaplaceMechanism()
        with pytest.raises(ValueError, match="non-negative"):
            mech.sample_batch(-1, 4, 1.0, PrivacyParameters(1.0), np.random.default_rng(0))
