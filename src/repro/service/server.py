"""The training service façade — the paper's engine as a multi-tenant server.

:class:`TrainingService` wires the four service components around one
:class:`~repro.rdbms.bismarck.BismarckSession`:

* a **job model + queue** (:mod:`repro.service.jobs`),
* the **privacy-budget ledger** (:mod:`repro.service.ledger`),
* the **shared-scan scheduler** (:mod:`repro.service.scheduler`),
* the **model registry / results store** (:mod:`repro.service.registry`),

and exposes the tenant-facing verbs: register a table, grant a budget,
submit jobs, drain the queue, query results. It is deliberately an
in-process server (no sockets): the contribution is the scheduling and
accounting discipline, and an RPC front-end can wrap these verbs without
touching them.

>>> service = TrainingService()
>>> service.register_table("ratings", X, y)
>>> service.open_budget("alice", "ratings", epsilon=1.0)
>>> record = service.submit("alice", "ratings", LogisticLoss(1e-3),
...                         epsilon=0.1, passes=5, batch_size=50, seed=7)
>>> service.drain()
>>> service.model(record.job_id)  # the differentially private release
"""

from __future__ import annotations

import threading
from typing import List, Optional

import numpy as np

from repro.core.bolton import BoltOnCandidate
from repro.optim.losses import Loss
from repro.rdbms.bismarck import BismarckSession
from repro.rdbms.catalog import TableInfo
from repro.rdbms.cost_model import CostModel
from repro.service.jobs import JobStatus, TrainingJob
from repro.service.ledger import AccountStatement, PrivacyBudgetLedger
from repro.service.registry import JobRecord, ModelRegistry
from repro.service.scheduler import SharedScanScheduler


class TrainingService:
    """An in-process, multi-tenant private-SGD training service."""

    def __init__(
        self,
        *,
        buffer_pool_pages: int = 65536,
        batching_window: int = 32,
        chunk_size: int = 256,
        fuse: bool = True,
        scan_seed: int = 0,
        cost_model: Optional[CostModel] = None,
        session: Optional[BismarckSession] = None,
    ) -> None:
        self.session = (
            session
            if session is not None
            else BismarckSession(buffer_pool_pages, cost_model)
        )
        self.ledger = PrivacyBudgetLedger()
        self.registry = ModelRegistry()
        self.scheduler = SharedScanScheduler(
            self.session,
            self.ledger,
            self.registry,
            batching_window=batching_window,
            chunk_size=chunk_size,
            fuse=fuse,
            scan_seed=scan_seed,
        )
        self._submissions = 0
        self._stamp_lock = threading.Lock()

    # -- data & budget administration -------------------------------------------

    def register_table(
        self, name: str, features: np.ndarray, labels: np.ndarray
    ) -> TableInfo:
        """CREATE TABLE + COPY a dataset tenants may train against."""
        return self.session.load_table(name, features, labels)

    def register_heap(self, name: str, heap) -> TableInfo:
        """Register an existing heap file (e.g. a synthesized virtual one)."""
        return self.session.register_table(name, heap)

    def open_budget(
        self, principal: str, table: str, epsilon: float, delta: float = 0.0
    ) -> None:
        """Grant ``principal`` an (ε, δ) cap on ``table``."""
        self.ledger.open_account(principal, table, epsilon, delta)

    def budgets(self) -> List[AccountStatement]:
        """Every account's cap/spent/reserved snapshot."""
        return self.ledger.statements()

    # -- the tenant verbs --------------------------------------------------------

    def submit(
        self,
        principal: str,
        table: str,
        loss: Loss,
        *,
        epsilon: float,
        delta: float = 0.0,
        passes: int = 1,
        batch_size: int = 50,
        eta: Optional[float] = None,
        radius: Optional[float] = None,
        priority: int = 0,
        seed: int = 0,
    ) -> JobRecord:
        """Build, stamp, and admit one job; returns its (live) record.

        The returned record already reflects admission: status QUEUED with
        the budget reserved, or REJECTED (over budget / no account) with
        nothing charged and no data touched. (Iterate averaging is not
        offered: the in-RDBMS dispatch releases the final iterate, and the
        scheduler refuses candidates that ask otherwise.)
        """
        candidate = BoltOnCandidate(
            loss=loss,
            passes=passes,
            batch_size=batch_size,
            eta=eta,
            radius=radius,
        )
        return self.submit_job(
            TrainingJob(
                principal=principal,
                table=table,
                candidate=candidate,
                epsilon=epsilon,
                delta=delta,
                priority=priority,
                seed=seed,
            )
        )

    def submit_job(self, job: TrainingJob) -> JobRecord:
        """Stamp (job id + arrival tick) and admit a prebuilt job."""
        with self._stamp_lock:
            self._submissions += 1
            job.job_id = job.job_id or f"job-{self._submissions:05d}"
            job.arrival = self._submissions
        return self.scheduler.submit(job)

    def drain(self) -> List[JobRecord]:
        """Run every queued job to a terminal state; returns them."""
        return self.scheduler.run_pending()

    # -- queries -----------------------------------------------------------------

    def status(self, job_id: str) -> JobStatus:
        return self.registry.status(job_id)

    def result(self, job_id: str) -> JobRecord:
        return self.registry.get(job_id)

    def model(self, job_id: str) -> np.ndarray:
        """The differentially private weights of a completed job."""
        return self.registry.model(job_id)

    def jobs(self, **filters) -> List[JobRecord]:
        """Registry query passthrough (principal= / table= / status=)."""
        return self.registry.jobs(**filters)

    @property
    def page_reads(self) -> int:
        """Total page requests the service has made (all scans)."""
        return self.session.pool.stats.page_reads
