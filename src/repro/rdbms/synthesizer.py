"""The data synthesizer used for the scalability study (Figure 2).

"For this experiment, we use the data synthesizer available in Bismarck for
binary classification. We produce two sets of datasets for scalability:
in-memory and disk-based." — Section 4.4.

:func:`synthesize_heap` creates a :class:`~repro.rdbms.storage.
VirtualHeapFile` whose pages are generated deterministically from the page
id, so tables of hundreds of gigabytes *exist* (scannable, with exact page
counts for the cost model) without ever being resident.

:func:`analytic_counters` produces the :class:`~repro.rdbms.cost_model.
WorkCounters` a full training run over such a table *would* generate —
this is how the Figure 2 bench sweeps to 1.2 billion examples in
milliseconds while remaining consistent with what small-scale executed
runs actually measure (the consistency is asserted by an integration
test).
"""

from __future__ import annotations

import numpy as np

from repro.rdbms.cost_model import WorkCounters
from repro.rdbms.storage import (
    PAGE_SIZE_BYTES,
    VirtualHeapFile,
    tuples_per_page,
)
from repro.utils.validation import check_positive_int


def synthesize_heap(
    num_tuples: int,
    dimension: int,
    seed: int = 0,
    margin_noise: float = 0.3,
) -> VirtualHeapFile:
    """A deterministic virtual table of unit-ball binary examples.

    Page ``p`` is generated from ``default_rng((seed, p))``, so any page can
    be re-read bit-identically in any order — the property the buffer pool
    relies on.
    """
    check_positive_int(num_tuples, "num_tuples")
    check_positive_int(dimension, "dimension")

    direction_rng = np.random.default_rng((seed, 0xD1EC7))
    direction = direction_rng.standard_normal(dimension)
    direction /= np.linalg.norm(direction)

    def generate(page_id: int, count: int, dim: int) -> tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng((seed, page_id))
        X = rng.standard_normal((count, dim)) / np.sqrt(dim)
        norms = np.linalg.norm(X, axis=1, keepdims=True)
        X = X / np.maximum(norms, 1.0)
        scores = X @ direction
        spread = float(np.std(scores)) or 1.0
        y = np.where(
            scores + margin_noise * spread * rng.standard_normal(count) >= 0.0, 1.0, -1.0
        )
        return X, y

    return VirtualHeapFile(num_tuples, dimension, generate)


def dataset_size_bytes(num_tuples: int, dimension: int) -> int:
    """On-disk size of a synthesized table (page-granular)."""
    pages = -(-num_tuples // tuples_per_page(dimension))
    return pages * PAGE_SIZE_BYTES


def dataset_size_gb(num_tuples: int, dimension: int) -> float:
    """Size in GB, matching the figures the paper quotes (3.7–447 GB)."""
    return dataset_size_bytes(num_tuples, dimension) / 1e9


def analytic_counters(
    num_tuples: int,
    dimension: int,
    epochs: int,
    batch_size: int,
    algorithm: str,
    buffer_pool_pages: int,
    include_shuffle: bool = True,
    warm_cache: bool = True,
) -> WorkCounters:
    """The work a training run over a synthesized table performs.

    ``algorithm`` is ``"noiseless"``, ``"bolton"``, ``"scs13"`` or
    ``"bst14"``; the only differences are the noise draws (0, 1, or one per
    mini-batch — the entire Figure 2/5 story). Page misses follow the LRU
    model for repeated sequential scans: all pages miss on every epoch when
    the table exceeds the pool; when it fits, a warm cache (the paper's
    Figure 2(a)/5 methodology — "warm-cache runs, all datasets fit in the
    buffer cache") misses nothing, a cold one misses each page once.
    """
    check_positive_int(num_tuples, "num_tuples")
    check_positive_int(epochs, "epochs")
    check_positive_int(batch_size, "batch_size")
    algorithm = algorithm.lower()
    if algorithm not in ("noiseless", "bolton", "scs13", "bst14"):
        raise ValueError(f"unknown algorithm {algorithm!r}")

    pages = -(-num_tuples // tuples_per_page(dimension))
    batches_per_epoch = -(-num_tuples // batch_size)
    fits_in_memory = pages <= buffer_pool_pages
    if fits_in_memory:
        misses = 0 if warm_cache else pages
    else:
        misses = pages * epochs  # every epoch re-reads from disk
    # Each tuple access goes through the pool; everything that is not a
    # miss is a (cheap) buffer hit.
    total_page_requests = num_tuples * epochs
    hits = total_page_requests - misses

    if algorithm in ("noiseless",):
        noise_draws = 0
    elif algorithm == "bolton":
        noise_draws = 1
    else:
        noise_draws = batches_per_epoch * epochs

    return WorkCounters(
        tuples_processed=num_tuples * epochs,
        gradient_evaluations=num_tuples * epochs,
        batch_updates=batches_per_epoch * epochs,
        noise_draws=noise_draws,
        shuffled_tuples=num_tuples if include_shuffle else 0,
        page_hits=hits,
        page_misses=misses,
        dimension=dimension,
    )
