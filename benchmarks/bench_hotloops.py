"""Micro-benchmarks of the library's hot loops (real wall-clock).

The figure benches report *simulated* engine seconds; these benchmark the
actual Python implementation with repeated timed rounds so regressions in
the optimizer or the mechanisms show up directly:

* one PSGD epoch on each execution path — "vectorized" (block mini-batch
  matrices, the default) vs "scalar" (the per-example reference the
  equivalence suite pins the fast path to),
* one mini-batch gradient,
* one spherical-Laplace draw vs one epoch's worth of per-batch Gaussian
  draws — the bolt-on-vs-white-box runtime story at its smallest scale.

Two CLI modes gate the perf story in CI:

* ``--compare-paths`` times scalar vs vectorized epochs at the standard
  shape (m=5000, d=50, b=50) and **exits 1 below 3x** — per-example loops
  must not creep back into the hot path;
* ``--multi-model`` times fused K-model grid training
  (:class:`repro.optim.MultiModelPSGD`) against K sequential vectorized
  runs at K in {4, 16, 64} and **exits 1 if fused falls below 3x at
  K=16** — the second multiplicative speedup stacked on vectorization.

Both modes write every timing to ``BENCH_hotloops.json`` next to the repo
root (scalar / vectorized / fused), so future PRs inherit a
machine-readable perf trajectory.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

# Direct script execution (`python benchmarks/bench_hotloops.py`) puts only
# benchmarks/ on sys.path; make the package and tests.conftest importable
# the same way conftest.py does for pytest runs.
_here = pathlib.Path(__file__).resolve().parent
for _path in (str(_here.parent / "src"), str(_here.parent)):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import numpy as np

from repro.core.mechanisms import (
    GaussianMechanism,
    PrivacyParameters,
    SphericalLaplaceMechanism,
)
from repro.optim.losses import LogisticLoss
from repro.optim.psgd import ModelSpec, MultiModelPSGD, PSGD, PSGDConfig, run_psgd
from repro.optim.schedules import ConstantSchedule
from tests.conftest import make_binary_data

M, D, BATCH = 5000, 50, 50
X, Y = make_binary_data(M, D, seed=77)
LOSS = LogisticLoss()

#: --smoke shape: small enough for a CI runner's minute budget, big
#: enough that the >= 3x gates still hold with margin (the speedups are
#: structural — vectorization and scan fusion — not cache artefacts).
SMOKE_M, SMOKE_D = 1200, 30


def _set_shape(m: int, d: int) -> None:
    """Swap the benchmark dataset (used by --smoke; batch size stays)."""
    global M, D, X, Y
    M, D = m, d
    X, Y = make_binary_data(M, D, seed=77)

#: --compare-paths fails below this vectorized-over-scalar speedup.
SPEEDUP_FLOOR = 3.0

#: --multi-model fails below this fused-over-sequential speedup at K=16.
FUSED_SPEEDUP_FLOOR = 3.0
FUSED_GATE_K = 16
MULTI_MODEL_KS = (4, 16, 64)

#: Machine-readable perf trajectory, written by both CLI modes.
RESULTS_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_hotloops.json"


def _run_epoch(execution: str):
    return run_psgd(
        LOSS, X, Y, ConstantSchedule(0.01), passes=1, batch_size=BATCH,
        random_state=0, execution=execution,
    )


def bench_psgd_epoch(benchmark):
    result = benchmark(lambda: _run_epoch("vectorized"))
    assert result.updates == M // BATCH


def bench_psgd_epoch_scalar(benchmark):
    result = benchmark(lambda: _run_epoch("scalar"))
    assert result.updates == M // BATCH


def bench_minibatch_gradient(benchmark):
    w = np.zeros(D)
    gradient = benchmark(lambda: LOSS.batch_gradient(w, X[:BATCH], Y[:BATCH]))
    assert gradient.shape == (D,)


def bench_bolton_noise_total(benchmark):
    """Everything the bolt-on approach adds at runtime: ONE draw."""
    mechanism = SphericalLaplaceMechanism()
    privacy = PrivacyParameters(0.1)
    rng = np.random.default_rng(0)
    noise = benchmark(lambda: mechanism.sample(D, 1e-3, privacy, rng))
    assert noise.shape == (D,)


def bench_whitebox_noise_total(benchmark):
    """What SCS13/BST14 add per epoch: one Gaussian draw per mini-batch."""
    mechanism = GaussianMechanism()
    privacy = PrivacyParameters(0.1, 1e-8)
    rng = np.random.default_rng(0)
    draws_per_epoch = M // BATCH

    def per_epoch():
        return [
            mechanism.sample(D, 1e-3, privacy, rng)
            for _ in range(draws_per_epoch)
        ]

    draws = benchmark(per_epoch)
    assert len(draws) == draws_per_epoch


# -- the scalar-vs-vectorized CI gate ----------------------------------------


def _best_of(fn, rounds: int = 3, warmup: int = 1) -> float:
    """Minimum wall-clock seconds of ``fn`` over ``rounds`` timed runs."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def compare_paths(rounds: int = 3, write: bool = True) -> float:
    """Time one PSGD epoch per execution path and report the speedup.

    Also asserts the two paths agree on the model they produce — a timing
    comparison of divergent computations would be meaningless.
    """
    vectorized = _run_epoch("vectorized")
    scalar = _run_epoch("scalar")
    max_diff = float(np.abs(vectorized.model - scalar.model).max())
    assert max_diff <= 1e-12, f"paths diverged: max |dw| = {max_diff:.3e}"

    scalar_s = _best_of(lambda: _run_epoch("scalar"), rounds)
    vectorized_s = _best_of(lambda: _run_epoch("vectorized"), rounds)
    speedup = scalar_s / vectorized_s
    print(f"hot-loop shape: m={M}, d={D}, b={BATCH} (one epoch, best of {rounds})")
    print(f"scalar epoch:     {scalar_s * 1e3:8.2f} ms")
    print(f"vectorized epoch: {vectorized_s * 1e3:8.2f} ms")
    print(f"speedup:          {speedup:8.2f}x  (gate: >= {SPEEDUP_FLOOR}x)")
    print(f"path agreement:   max |dw| = {max_diff:.3e} (<= 1e-12)")
    if write:
        _write_results(
            scalar_epoch_s=scalar_s,
            vectorized_epoch_s=vectorized_s,
            vectorized_speedup=speedup,
        )
    return speedup


# -- the fused-vs-sequential multi-model gate ---------------------------------


def _grid_specs(k: int) -> list:
    """K grid candidates: a regularization sweep at the standard shape."""
    lambdas = np.logspace(-4, -1, k)
    return [
        ModelSpec(LogisticLoss(regularization=float(lam)), ConstantSchedule(0.01))
        for lam in lambdas
    ]


def _run_sequential_grid(specs, perm):
    results = []
    for spec in specs:
        config = PSGDConfig(schedule=spec.schedule, passes=1, batch_size=BATCH)
        results.append(PSGD(spec.loss, config).run(X, Y, permutation=perm))
    return results


def _run_fused_grid(specs, perm):
    return MultiModelPSGD(specs, passes=1, batch_size=BATCH).run(X, Y, permutation=perm)


def multi_model(rounds: int = 3, ks=MULTI_MODEL_KS, write: bool = True) -> float:
    """Time fused K-model grid training against K sequential runs.

    Returns the fused speedup at the gate size K=16. Both paths train the
    same candidates over the same permutation, and their models are
    checked to agree at 1e-12 first — the fused path must be the same
    algorithm, only faster.
    """
    perm = np.random.default_rng(7).permutation(M)
    print(f"multi-model shape: m={M}, d={D}, b={BATCH} (one epoch, best of {rounds})")
    gate_speedup = float("nan")
    table = {}
    for k in ks:
        specs = _grid_specs(k)
        fused = _run_fused_grid(specs, perm)
        sequential = _run_sequential_grid(specs, perm)
        max_diff = max(
            float(np.abs(fused.models[i] - sequential[i].model).max())
            for i in range(k)
        )
        assert max_diff <= 1e-12, f"fused diverged at K={k}: {max_diff:.3e}"

        sequential_s = _best_of(lambda: _run_sequential_grid(specs, perm), rounds)
        fused_s = _best_of(lambda: _run_fused_grid(specs, perm), rounds)
        speedup = sequential_s / fused_s
        table[k] = {
            "sequential_s": sequential_s,
            "fused_s": fused_s,
            "speedup": speedup,
            "max_model_diff": max_diff,
        }
        gate = f"  (gate: >= {FUSED_SPEEDUP_FLOOR}x)" if k == FUSED_GATE_K else ""
        print(
            f"K={k:3d}: sequential {sequential_s * 1e3:8.2f} ms"
            f"   fused {fused_s * 1e3:8.2f} ms"
            f"   speedup {speedup:6.2f}x{gate}"
        )
        if k == FUSED_GATE_K:
            gate_speedup = speedup
    if write:
        _write_results(multi_model=table)
    return gate_speedup


def _write_results(**updates) -> None:
    """Merge timings into the BENCH_hotloops.json perf trajectory."""
    payload = {}
    if RESULTS_PATH.exists():
        try:
            payload = json.loads(RESULTS_PATH.read_text())
        except json.JSONDecodeError:
            payload = {}
    payload.setdefault("shape", {"m": M, "d": D, "batch_size": BATCH})
    for key, value in updates.items():
        if isinstance(value, dict):
            merged = payload.get(key, {})
            merged.update({str(inner): item for inner, item in value.items()})
            payload[key] = merged
        else:
            payload[key] = value
    RESULTS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {RESULTS_PATH.name}")


def write_report(path, **gates) -> None:
    """Merge per-gate summaries into the CI report file at ``path``.

    Unlike :func:`_write_results` (the full-shape perf trajectory under
    version control), the report is written at *any* shape — it is what
    CI uploads as a workflow artifact and renders into the job's step
    summary (``benchmarks/report_summary.py``), so a smoke run's gate
    ratios are readable from the Checks tab without digging through logs.
    Each gate entry carries at least ``value``/``floor``/``passed``.
    """
    path = pathlib.Path(path)
    payload = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError:
            payload = {}
    gates_payload = payload.setdefault("gates", {})
    for name, entry in gates.items():
        gates_payload[name] = entry
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote report {path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--compare-paths",
        action="store_true",
        help="time scalar vs vectorized PSGD epochs and fail (exit 1) if "
        f"the vectorized path is below {SPEEDUP_FLOOR}x",
    )
    parser.add_argument(
        "--multi-model",
        action="store_true",
        help="time fused vs sequential K-model grid training at K in "
        f"{MULTI_MODEL_KS} and fail (exit 1) if fused is below "
        f"{FUSED_SPEEDUP_FLOOR}x at K={FUSED_GATE_K}",
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="timed rounds per path (default 3)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI-sized run: shrink the shape to m={SMOKE_M}, d={SMOKE_D} "
        "(and skip K=64) while still enforcing the >= 3x gates and the "
        "path-agreement asserts; results are NOT written to "
        "BENCH_hotloops.json",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="also merge per-gate summaries (value/floor/passed) into this "
        "JSON file — written at any shape, for CI artifacts + step summary",
    )
    args = parser.parse_args(argv)
    if args.rounds < 1:
        parser.error(f"--rounds must be a positive integer, got {args.rounds}")
    if not args.compare_paths and not args.multi_model:
        parser.print_help()
        return 0
    if args.smoke:
        _set_shape(SMOKE_M, SMOKE_D)
        print(f"SMOKE mode: m={M}, d={D} (gates unchanged)")
    failed = False
    if args.compare_paths:
        speedup = compare_paths(args.rounds, write=not args.smoke)
        if speedup < SPEEDUP_FLOOR:
            print(f"FAIL: vectorized path regressed below {SPEEDUP_FLOOR}x")
            failed = True
        if args.report:
            write_report(
                args.report,
                vectorized_vs_scalar={
                    "metric": "wall-clock speedup, vectorized over scalar epoch",
                    "value": speedup,
                    "floor": SPEEDUP_FLOOR,
                    "passed": speedup >= SPEEDUP_FLOOR,
                    "shape": {"m": M, "d": D, "batch_size": BATCH},
                },
            )
    if args.multi_model:
        ks = tuple(k for k in MULTI_MODEL_KS if k <= 16) if args.smoke else MULTI_MODEL_KS
        fused_speedup = multi_model(args.rounds, ks=ks, write=not args.smoke)
        if fused_speedup < FUSED_SPEEDUP_FLOOR:
            print(
                f"FAIL: fused multi-model path below {FUSED_SPEEDUP_FLOOR}x "
                f"at K={FUSED_GATE_K}"
            )
            failed = True
        if args.report:
            write_report(
                args.report,
                fused_multi_model={
                    "metric": f"fused over sequential speedup at K={FUSED_GATE_K}",
                    "value": fused_speedup,
                    "floor": FUSED_SPEEDUP_FLOOR,
                    "passed": fused_speedup >= FUSED_SPEEDUP_FLOOR,
                    "shape": {"m": M, "d": D, "batch_size": BATCH},
                },
            )
    if failed:
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
