"""Tests for the convergence-bound closed forms (Theorems 10/12, Table 2)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.convergence import (
    check_privacy_risk,
    convex_excess_risk_bound,
    privacy_risk_bound,
    strongly_convex_excess_risk_bound,
    table2_advantage,
    table2_rate_bst14_convex,
    table2_rate_bst14_strongly_convex,
    table2_rate_ours_convex,
    table2_rate_ours_strongly_convex,
    zinkevich_regret,
)
from repro.optim.losses import LogisticLoss
from tests.conftest import make_binary_data


class TestZinkevichRegret:
    def test_formula(self):
        # R^2/(2 eta) + L^2 T eta / 2
        assert zinkevich_regret(2.0, 1.0, 100, 0.1) == pytest.approx(
            4.0 / 0.2 + 100 * 0.1 / 2
        )

    def test_optimal_eta_balances_terms(self):
        # eta = R/(L sqrt(T)) equalizes the two terms.
        R, L, T = 1.0, 1.0, 400
        eta = R / (L * math.sqrt(T))
        total = zinkevich_regret(R, L, T, eta)
        assert total == pytest.approx(R * L * math.sqrt(T))


class TestLemma11:
    def test_bound_formula(self):
        assert privacy_risk_bound(2.0, 0.5) == 1.0

    def test_holds_on_real_loss(self, rng):
        # L_S(w + kappa) - L_S(w) <= L ||kappa|| for the logistic loss.
        X, y = make_binary_data(100, 6, seed=3)
        loss = LogisticLoss()
        for _ in range(20):
            w = rng.normal(size=6)
            kappa = rng.normal(size=6) * rng.uniform(0, 2)
            assert check_privacy_risk(loss, X, y, w, kappa, lipschitz=1.0)

    def test_negative_noise_norm_rejected(self):
        with pytest.raises(ValueError):
            privacy_risk_bound(1.0, -0.5)


class TestTheorem10:
    def test_terms(self):
        bound = convex_excess_risk_bound(
            lipschitz=1.0, radius=2.0, m=10000, dimension=10, epsilon=1.0
        )
        expected_opt = (1.0 + 2 * (12 + 1.0)) * 2.0 / 100.0
        expected_priv = 2 * 10 * 1.0 * 2.0 / (1.0 * 100.0)
        assert bound.optimization_term == pytest.approx(expected_opt)
        assert bound.privacy_term == pytest.approx(expected_priv)
        assert bound.total == pytest.approx(expected_opt + expected_priv)

    def test_shrinks_with_m(self):
        small = convex_excess_risk_bound(1.0, 1.0, 100, 10, 1.0).total
        large = convex_excess_risk_bound(1.0, 1.0, 10000, 10, 1.0).total
        assert large == pytest.approx(small / 10)

    def test_privacy_term_scales_inverse_epsilon(self):
        tight = convex_excess_risk_bound(1.0, 1.0, 100, 10, 0.1).privacy_term
        loose = convex_excess_risk_bound(1.0, 1.0, 100, 10, 1.0).privacy_term
        assert tight == pytest.approx(10 * loose)


class TestTheorem12:
    def test_scales_log_m_over_m(self):
        kwargs = dict(
            lipschitz=1.0, smoothness=1.01, strong_convexity=0.01, radius=100.0,
            gradient_bound=2.0, dimension=10, epsilon=1.0,
        )
        b1 = strongly_convex_excess_risk_bound(m=1000, **kwargs)
        b2 = strongly_convex_excess_risk_bound(m=100_000, **kwargs)
        ratio = b2.optimization_term / b1.optimization_term
        expected = (math.log(100_000) / 100_000) / (math.log(1000) / 1000)
        assert ratio == pytest.approx(expected)

    def test_privacy_term_formula(self):
        bound = strongly_convex_excess_risk_bound(
            lipschitz=1.0, smoothness=1.0, strong_convexity=0.5, radius=2.0,
            gradient_bound=3.0, m=100, dimension=4, epsilon=2.0,
        )
        assert bound.privacy_term == pytest.approx(2 * 4 * 9 / (2.0 * 0.5 * 100))


class TestTable2:
    def test_ours_beats_bst14_convex(self):
        for m in (100, 10_000, 1_000_000):
            assert table2_rate_ours_convex(m, 50) < table2_rate_bst14_convex(m, 50)

    def test_ours_beats_bst14_strongly_convex(self):
        for m in (100, 10_000, 1_000_000):
            assert table2_rate_ours_strongly_convex(m, 50) < (
                table2_rate_bst14_strongly_convex(m, 50)
            )

    def test_convex_advantage_is_log_three_halves(self):
        adv = table2_advantage(10_000, 50)
        assert adv["convex_ratio"] == pytest.approx(adv["convex_ratio_expected"])

    def test_strongly_convex_advantage_is_sqrtd_logm(self):
        adv = table2_advantage(10_000, 50)
        assert adv["strongly_convex_ratio"] == pytest.approx(
            adv["strongly_convex_ratio_expected"]
        )

    def test_strongly_convex_rates_faster_than_convex(self):
        # 1/m vs 1/sqrt(m)
        m, d = 1_000_000, 10
        assert table2_rate_ours_strongly_convex(m, d) < table2_rate_ours_convex(m, d)

    def test_empirical_excess_risk_tracks_rate(self):
        """Measured excess risk of the private model shrinks with m at
        roughly the predicted polynomial order (the Table 2 shape)."""
        from repro.core.bolton import private_strongly_convex_psgd
        from repro.evaluation.metrics import empirical_risk, reference_minimum_risk

        lam = 0.1
        loss = LogisticLoss(regularization=lam)
        excesses = []
        for m in (200, 3200):
            X, y = make_binary_data(m, 5, seed=9)
            reference = reference_minimum_risk(
                loss, X, y, passes=30, batch_size=10
            )
            runs = []
            for s in range(5):
                result = private_strongly_convex_psgd(
                    X, y, loss, epsilon=1.0, delta=1e-6, passes=3, batch_size=10,
                    random_state=s,
                )
                runs.append(empirical_risk(result.model, loss, X, y) - reference)
            excesses.append(max(np.mean(runs), 1e-8))
        # 16x more data should reduce the excess risk substantially
        # (theory predicts ~16x; allow a generous factor-3 for variance).
        assert excesses[1] < excesses[0] / 3
