"""Preprocessing: the unit-ball normalization the privacy analysis assumes.

Section 2 of the paper: "We assume some preprocessing that normalizes each
feature vector, i.e., each ||x|| <= 1 (this assumption is common for
analyzing private optimization)". Table 3's caption states "all data points
are normalized to the unit sphere".

Two modes are provided:

* :func:`normalize_rows` — scale each row independently so ``||x|| <= 1``
  (rows already inside the ball are untouched);
* :func:`project_to_unit_sphere` — scale each row onto the sphere
  (``||x|| = 1``), the literal reading of the Table 3 caption, guarding the
  zero vector.

Both are *per-row* operations, so applying them to neighbouring datasets
yields neighbouring datasets — they do not interact with the privacy
analysis.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.linalg import normalize_rows as _normalize_rows


def normalize_rows(features: np.ndarray, max_norm: float = 1.0) -> np.ndarray:
    """Scale rows with ``||x|| > max_norm`` down onto the ball boundary."""
    return _normalize_rows(features, max_norm)


def project_to_unit_sphere(features: np.ndarray) -> np.ndarray:
    """Scale every non-zero row to exactly unit norm."""
    X = np.asarray(features, dtype=np.float64)
    norms = np.linalg.norm(X, axis=1, keepdims=True)
    safe = np.where(norms > 1e-12, norms, 1.0)
    return X / safe


def normalize_dataset(dataset: Dataset, on_sphere: bool = False) -> Dataset:
    """Return a copy of ``dataset`` with normalized features."""
    transform = project_to_unit_sphere if on_sphere else normalize_rows
    return Dataset(
        name=dataset.name,
        features=transform(dataset.features),
        labels=dataset.labels,
        num_classes=dataset.num_classes,
    )


def max_row_norm(features: np.ndarray) -> float:
    """Largest row norm — used by tests and input validation."""
    X = np.asarray(features, dtype=np.float64)
    return float(np.linalg.norm(X, axis=1).max(initial=0.0))
