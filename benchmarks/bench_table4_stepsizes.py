"""Table 4 — step sizes per (algorithm, scenario) cell.

Regenerates the table with concrete values for a Protein-sized problem and
asserts the schedule semantics the analysis depends on.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.reporting import format_table
from repro.evaluation.tables import table4_rows
from repro.optim.losses import LogisticLoss
from repro.optim.schedules import (
    CappedInverseTSchedule,
    ConstantSchedule,
    InverseSqrtTSchedule,
)

from bench_util import run_once, write_report


def bench_table4(benchmark):
    m, lam = 72876, 1e-4
    props = LogisticLoss(regularization=lam).properties(radius=1 / lam)
    rows = run_once(benchmark, table4_rows, m, props)
    write_report("table4_stepsizes", format_table(rows))
    assert len(rows) == 4
    assert "x (unsupported)" in rows[0]["bst14"]  # BST14 has no eps-DP row
    assert "min(1/beta" in rows[2]["ours"]


def bench_table4_schedule_semantics(benchmark):
    def check():
        m = 72876
        ours_convex = ConstantSchedule.for_dataset(m)
        scs13 = InverseSqrtTSchedule()
        props = LogisticLoss(regularization=1e-4).properties(radius=1e4)
        ours_sc = CappedInverseTSchedule(props.smoothness, props.strong_convexity)
        return {
            "ours_convex_eta": ours_convex.rate(1),
            "scs13_eta_t100": scs13.rate(100),
            "ours_sc_eta_t1": ours_sc.rate(1),
            "ours_sc_eta_late": ours_sc.rate(10 * m),
        }

    values = run_once(benchmark, check)
    write_report(
        "table4_semantics",
        "\n".join(f"{k} = {v:.6g}" for k, v in values.items()),
    )
    assert values["ours_convex_eta"] == 1.0 / np.sqrt(72876)
    assert values["scs13_eta_t100"] == 0.1
    # Ours SC: capped at 1/beta early, 1/(gamma t) late.
    assert values["ours_sc_eta_t1"] <= 1.0
    assert values["ours_sc_eta_late"] < values["ours_sc_eta_t1"]
