"""Tests for the EXPERIMENTS.md collector."""

from __future__ import annotations

import pathlib

from repro.evaluation.experiments import EXPERIMENT_INDEX, collect, main


class TestCollect:
    def test_includes_every_experiment(self, tmp_path):
        text = collect(tmp_path)
        for title, _, _, _ in EXPERIMENT_INDEX:
            assert title in text

    def test_missing_panels_noted(self, tmp_path):
        text = collect(tmp_path)
        assert "not yet generated" in text

    def test_present_panels_embedded(self, tmp_path):
        (tmp_path / "table3_datasets.txt").write_text("DATASET ROWS HERE\n")
        text = collect(tmp_path)
        assert "DATASET ROWS HERE" in text
        assert "<details><summary>table3_datasets</summary>" in text

    def test_deviations_section(self, tmp_path):
        assert "## Deviations and caveats" in collect(tmp_path)

    def test_index_covers_all_tables_and_figures(self):
        titles = " ".join(title for title, _, _, _ in EXPERIMENT_INDEX)
        for artefact in ("Table 2", "Table 3", "Table 4", "Figure 1",
                         "Figure 2", "Figure 3", "Figure 4", "Figure 5",
                         "Figure 6", "Figure 7", "Figures 8", "Figure 10"):
            assert artefact in titles

    def test_main_writes_file(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        output = tmp_path / "EXPERIMENTS.md"
        assert main([str(results), str(output)]) == 0
        assert output.exists()
        assert "paper vs. measured" in output.read_text()

    def test_real_results_dir_panels_referenced(self):
        """Every file the index references should be producible by some
        bench — cross-check against the bench sources."""
        bench_dir = pathlib.Path(__file__).parent.parent / "benchmarks"
        sources = "\n".join(
            p.read_text() for p in bench_dir.glob("bench_*.py")
        )
        for _, files, _, _ in EXPERIMENT_INDEX:
            for name in files:
                assert f'"{name}"' in sources, f"no bench writes {name}"
