"""Tests for the shared utilities (rng, validation, linalg)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.linalg import clip_to_ball, l2_norm, normalize_rows, random_unit_vector
from repro.utils.rng import (
    as_generator,
    fixed_permutations,
    permutation_stream,
    spawn_generators,
)
from repro.utils.validation import (
    check_binary_labels,
    check_in_range,
    check_matrix_labels,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
    check_unit_ball,
)


class TestRNG:
    def test_as_generator_seed_reproducible(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_as_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_as_generator_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)

    def test_spawn_independent_children(self):
        children = spawn_generators(0, 3)
        draws = [c.random(4).tolist() for c in children]
        assert draws[0] != draws[1] != draws[2]

    def test_spawn_reproducible_from_seed(self):
        a = [g.random(3).tolist() for g in spawn_generators(5, 2)]
        b = [g.random(3).tolist() for g in spawn_generators(5, 2)]
        assert a == b

    def test_spawn_negative_count(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_permutation_stream_default_reuses(self):
        rng = np.random.default_rng(0)
        perms = list(permutation_stream(10, 3, rng))
        np.testing.assert_array_equal(perms[0], perms[1])
        np.testing.assert_array_equal(perms[0], perms[2])

    def test_permutation_stream_fresh(self):
        rng = np.random.default_rng(0)
        perms = list(permutation_stream(30, 3, rng, fresh_each_pass=True))
        assert not np.array_equal(perms[0], perms[1])

    def test_fixed_permutations_validation(self):
        with pytest.raises(ValueError, match="rearrangement"):
            list(fixed_permutations([0, 0, 1], 1))

    def test_fixed_permutations_replay(self):
        perms = list(fixed_permutations([2, 0, 1], 2))
        assert len(perms) == 2
        np.testing.assert_array_equal(perms[0], [2, 0, 1])


class TestLinalg:
    def test_l2_norm(self):
        assert l2_norm([3.0, 4.0]) == pytest.approx(5.0)

    def test_clip_inside(self):
        v = np.array([0.1, 0.2])
        np.testing.assert_array_equal(clip_to_ball(v, 1.0), v)

    def test_clip_outside(self):
        v = clip_to_ball(np.array([3.0, 4.0]), 1.0)
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_clip_invalid_radius(self):
        with pytest.raises(ValueError):
            clip_to_ball(np.ones(2), 0.0)

    def test_normalize_rows(self):
        X = np.array([[3.0, 4.0], [0.3, 0.4]])
        out = normalize_rows(X)
        assert np.linalg.norm(out[0]) == pytest.approx(1.0)
        np.testing.assert_array_equal(out[1], X[1])

    @given(d=st.integers(1, 20))
    @settings(max_examples=20, deadline=None)
    def test_random_unit_vector_norm(self, d):
        v = random_unit_vector(d, np.random.default_rng(0))
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_random_unit_vector_invalid_dim(self):
        with pytest.raises(ValueError):
            random_unit_vector(0, np.random.default_rng(0))


class TestValidation:
    def test_check_positive(self):
        assert check_positive(1.5, "x") == 1.5
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError, match="x"):
                check_positive(bad, "x")

    def test_check_non_negative(self):
        assert check_non_negative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")

    def test_check_in_range(self):
        assert check_in_range(0.5, "x", 0.0, 1.0) == 0.5
        with pytest.raises(ValueError):
            check_in_range(1.5, "x", 0.0, 1.0)
        with pytest.raises(ValueError):
            check_in_range(0.0, "x", 0.0, 1.0, inclusive_low=False)

    def test_check_probability(self):
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            check_probability(1.01, "p")

    def test_check_positive_int(self):
        assert check_positive_int(3, "n") == 3
        with pytest.raises(ValueError):
            check_positive_int(0, "n")
        with pytest.raises(TypeError):
            check_positive_int(1.5, "n")
        with pytest.raises(TypeError):
            check_positive_int(True, "n")

    def test_check_non_negative_int(self):
        assert check_non_negative_int(0, "n") == 0
        with pytest.raises(ValueError):
            check_non_negative_int(-1, "n")

    def test_check_matrix_labels(self):
        X, y = check_matrix_labels([[1.0, 2.0]], [1.0])
        assert X.shape == (1, 2)
        with pytest.raises(ValueError, match="2-D"):
            check_matrix_labels([1.0, 2.0], [1.0])
        with pytest.raises(ValueError, match="disagree"):
            check_matrix_labels([[1.0]], [1.0, 2.0])
        with pytest.raises(ValueError, match="non-finite"):
            check_matrix_labels([[np.inf]], [1.0])

    def test_check_binary_labels(self):
        check_binary_labels(np.array([1.0, -1.0]))
        with pytest.raises(ValueError, match="\\{-1, \\+1\\}"):
            check_binary_labels(np.array([0.0, 1.0]))

    def test_check_unit_ball(self):
        check_unit_ball(np.array([[0.6, 0.8]]))
        with pytest.raises(ValueError, match="unit L2 ball"):
            check_unit_ball(np.array([[3.0, 4.0]]))
