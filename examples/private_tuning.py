#!/usr/bin/env python
"""Private hyper-parameter tuning with Algorithm 3 — on the fused engine.

Tunes (passes, lambda) over the paper's grid with the exponential-
mechanism tuner, then contrasts the private selection with the selection a
public validation set would have made.

Both tuning variants are many-model workloads, so they run on the fused
multi-model engine by default: the factory below is *structural*
(``BoltOnTrainerFactory`` exposes each grid point as a ``BoltOnCandidate``),
which lets Algorithm 3 train all partitions' models in stacked fused runs
and the public grid search train every candidate in ONE scan of the public
split. Pass ``fused=False`` to either tuner to replay the sequential
reference path — same models to 1e-12.

Run:  python examples/private_tuning.py
"""

from __future__ import annotations

from repro import BoltOnTrainerFactory, LogisticLoss
from repro.data import protein_like
from repro.tuning import paper_grid, privately_tuned_sgd, tune_on_public_data

#: Grid points carry "passes" and "regularization"; the batch size is the
#: paper's fixed b = 50. The factory is both a classic TrainerFactory
#: (callable -> sequential trainer) and a fused-candidate source.
trainer_factory = BoltOnTrainerFactory(
    lambda theta: LogisticLoss(regularization=theta["regularization"]),
    batch_size=50,
)


def main() -> None:
    train, test = protein_like(scale=0.1, seed=0)
    public_train, public_val = protein_like(scale=0.05, seed=99).train.split(
        test_fraction=0.3, random_state=1
    )
    epsilon, delta = 0.2, 1.0 / train.size**2
    grid = paper_grid()  # k in {5, 10}, lambda in {1e-4, 1e-3, 1e-2}

    print(f"grid: {grid.candidates()}\n")

    outcome = privately_tuned_sgd(
        train.features, train.labels, trainer_factory, grid, epsilon,
        delta=delta, random_state=0,  # fused by default: partitions train stacked
    )
    print("== private tuning (Algorithm 3, fused) ==")
    print(f"chosen parameters : {outcome.chosen_parameters}")
    print(f"error counts      : {outcome.unreleased_error_counts} (diagnostic)")
    print(f"selection probs   : {[round(float(p), 3) for p in outcome.unreleased_probabilities]}")
    print(f"test accuracy     : {outcome.accuracy(test.features, test.labels):.4f}\n")

    public = tune_on_public_data(
        public_train.features, public_train.labels,
        public_val.features, public_val.labels,
        trainer_factory, grid, epsilon, delta=delta, random_state=0,
        # fused by default: the whole grid trains in one scan of the
        # public split (6 candidates, 1 data pass per epoch-slot).
    )
    print("== tuning on public data (fused grid, one scan) ==")
    print(f"best parameters   : {public.best_parameters}")
    final = trainer_factory(public.best_parameters)(
        train.features, train.labels, epsilon=epsilon, delta=delta,
        random_state=0,
    )
    print(f"test accuracy     : {final.accuracy(test.features, test.labels):.4f}")


if __name__ == "__main__":
    main()
