"""Tests for the service error taxonomy and the normalized verb surface.

The taxonomy contract: every fault a service verb raises is a
:class:`ServiceError` subclass with a stable machine-readable ``code``
(what the HTTP front-end serializes), while still inheriting the bare
exception type (``KeyError``/``ValueError``/``BudgetDenied``) that
pre-taxonomy callers catch — nobody's ``except KeyError`` breaks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accountant import PrivacyBudgetExceeded
from repro.core.bolton import BoltOnCandidate
from repro.optim.losses import LogisticLoss
from repro.rdbms.storage import MaterializedHeapFile
from repro.service import (
    BudgetRejected,
    InvalidCandidate,
    JobStatus,
    NotCancellable,
    ServiceError,
    TrainingService,
    UnknownJob,
    UnknownTable,
)
from repro.service.errors import ERROR_CODES, BudgetDenied, error_for_code
from repro.service.jobs import TrainingJob
from tests.conftest import make_binary_data

M, D = 200, 6
X, Y = make_binary_data(M, D, seed=31)


def make_service(cap: float = 10.0) -> TrainingService:
    service = TrainingService(scan_seed=5, workers=1)
    service.register_table("t", X, Y)
    service.open_budget("alice", "t", cap)
    return service


class TestTaxonomyShape:
    """Static contracts: inheritance, codes, statuses."""

    def test_every_error_is_a_service_error_with_a_stable_code(self):
        for code, cls in ERROR_CODES.items():
            assert issubclass(cls, ServiceError)
            assert cls.code == code
            assert isinstance(cls.http_status, int)

    def test_legacy_exception_types_still_catch(self):
        # The dual-inheritance guarantee, one assert per verb family.
        assert issubclass(UnknownJob, KeyError)
        assert issubclass(UnknownTable, KeyError)
        assert issubclass(InvalidCandidate, ValueError)
        assert issubclass(NotCancellable, ValueError)
        assert issubclass(BudgetRejected, BudgetDenied)
        assert issubclass(BudgetRejected, PrivacyBudgetExceeded)

    def test_str_is_not_keyerror_quoted(self):
        # KeyError.__str__ repr-quotes its message; the taxonomy must not.
        assert str(UnknownJob("unknown job 'j-1'")) == "unknown job 'j-1'"

    def test_error_for_code_round_trips_the_taxonomy(self):
        for code, cls in ERROR_CODES.items():
            rebuilt = error_for_code(code, "msg")
            assert type(rebuilt) is cls
            assert str(rebuilt) == "msg"

    def test_error_for_code_maps_generic_fallbacks(self):
        assert isinstance(error_for_code("not_found", "m"), KeyError)
        assert isinstance(error_for_code("invalid_request", "m"), ValueError)
        unknown = error_for_code("weird_new_code", "m")
        assert isinstance(unknown, ServiceError)
        assert unknown.code == "weird_new_code"


class TestVerbsRaiseTheTaxonomy:
    """Dynamic contracts: the verbs raise the new classes."""

    def test_unknown_job_from_every_lookup_verb(self):
        service = make_service()
        for verb in (service.result, service.status, service.model,
                     service.trace, service.cancel):
            with pytest.raises(UnknownJob) as excinfo:
                verb("job-99999")
            assert excinfo.value.code == "unknown_job"
        # And the legacy catch still works.
        with pytest.raises(KeyError):
            service.result("job-99999")

    def test_unknown_table_on_submit(self):
        service = make_service()
        with pytest.raises(UnknownTable) as excinfo:
            service.submit("alice", "nope", LogisticLoss(1e-2), epsilon=0.05)
        assert excinfo.value.code == "unknown_table"

    def test_invalid_candidate_refuses_iterate_averaging(self):
        service = make_service()
        job = TrainingJob(
            principal="alice",
            table="t",
            candidate=BoltOnCandidate(
                loss=LogisticLoss(1e-2), batch_size=50, average="suffix"
            ),
            epsilon=0.05,
        )
        with pytest.raises(InvalidCandidate) as excinfo:
            service.submit_job(job)
        assert excinfo.value.code == "invalid_candidate"

    def test_budget_rejected_is_catchable_as_budget_denied(self):
        service = make_service(cap=10.0)
        from repro.core.accountant import PrivacyParameters

        with pytest.raises(BudgetDenied) as excinfo:
            service.ledger.reserve(
                "mallory", "t", PrivacyParameters(0.05, 0.0), job_id="job-x"
            )
        assert isinstance(excinfo.value, BudgetRejected)
        assert excinfo.value.code == "budget_rejected"

    def test_over_budget_submit_still_returns_a_rejected_record(self):
        # The scheduler swallows BudgetDenied into a REJECTED record —
        # the taxonomy must not have changed that admission contract.
        service = make_service(cap=0.01)
        record = service.submit("alice", "t", LogisticLoss(1e-2), epsilon=0.05)
        assert record.status is JobStatus.REJECTED
        assert record.error


class TestVerbNormalization:
    """register_table(heap=) folds register_heap in; health() exists."""

    def test_register_table_accepts_a_heap(self):
        service = TrainingService(scan_seed=5, workers=1)
        info = service.register_table("h", heap=MaterializedHeapFile(X, Y))
        service.open_budget("alice", "h", 1.0)
        record = service.submit("alice", "h", LogisticLoss(1e-2),
                                epsilon=0.05, batch_size=50)
        service.drain()
        assert record.status is JobStatus.COMPLETED
        assert info.name == "h"

    def test_register_heap_is_a_deprecated_alias(self):
        service = TrainingService(scan_seed=5, workers=1)
        with pytest.warns(DeprecationWarning, match="register_table"):
            service.register_heap("h", MaterializedHeapFile(X, Y))
        # Same registration as the keyword form: bitwise-equal release.
        direct = TrainingService(scan_seed=5, workers=1)
        direct.register_table("h", heap=MaterializedHeapFile(X, Y))
        for s in (service, direct):
            s.open_budget("alice", "h", 1.0)
            s.submit("alice", "h", LogisticLoss(1e-2), epsilon=0.05,
                     batch_size=50)
            s.drain()
        assert np.array_equal(service.model("job-00001"),
                              direct.model("job-00001"))

    def test_register_table_rejects_heap_plus_arrays(self):
        service = TrainingService(scan_seed=5, workers=1)
        with pytest.raises(ValueError):
            service.register_table("h", X, Y, heap=MaterializedHeapFile(X, Y))

    def test_health_reports_the_service_shape(self):
        service = make_service()
        health = service.health()
        assert health["status"] == "ok"
        assert health["durability"]["mode"] == "in-memory"
        assert health["queue_depth"] == 0
        assert health["workers"] == 1
        assert health["dispatch_running"] is False
        assert isinstance(health["jobs"], dict)
        service.submit("alice", "t", LogisticLoss(1e-2), epsilon=0.05)
        assert service.health()["queue_depth"] == 1
