"""Privacy budget accounting.

The paper uses only the *basic* (sequential) composition theorem of Dwork
and Roth [17] — e.g. splitting the budget evenly across the ten one-vs-rest
sub-models of the MNIST experiment (Section 4.3), and across the l
candidate models plus the exponential-mechanism selection inside the
private tuning algorithm (Algorithm 3 trains each candidate on a *disjoint*
partition, so parallel composition applies there instead).

:class:`PrivacyAccountant` tracks spends and enforces a global budget;
:func:`split_evenly` is the convenience used by the multiclass trainer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

from repro.core.mechanisms import PrivacyParameters
from repro.utils.validation import check_positive_int


class PrivacyBudgetExceeded(RuntimeError):
    """Raised when a requested spend would exceed the remaining budget."""


def would_overflow(budget: PrivacyParameters, epsilon: float, delta: float) -> bool:
    """Would a cumulative spend of ``(epsilon, delta)`` exceed ``budget``?

    The single source of truth for the accountant's tolerance rule: a
    relative 1e-12 slack on both coordinates so that splitting a budget
    into floating-point shares (``split_evenly``) and spending them all
    back never trips on rounding, plus an absolute 1e-18 slack on delta
    when the budget is pure (``delta == 0`` would otherwise make *any*
    rounding dust a violation). The budget ledger of the training service
    applies the same rule to ``spent + reserved`` so admission control and
    commit-time accounting can never disagree.
    """
    return epsilon > budget.epsilon * (1 + 1e-12) or delta > (
        budget.delta * (1 + 1e-12) + (1e-18 if budget.delta == 0 else 0)
    )


@dataclass
class PrivacySpend:
    """A recorded expenditure with a human-readable label."""

    label: str
    parameters: PrivacyParameters


@dataclass
class PrivacyAccountant:
    """Sequential-composition accountant with a hard budget.

    Composition rule (basic): total epsilon is the sum of spent epsilons,
    total delta the sum of spent deltas. ``parallel`` spends — mechanisms
    run on *disjoint* data partitions — cost only their maximum, which is
    how Algorithm 3's per-candidate training is accounted.
    """

    budget: PrivacyParameters
    spends: List[PrivacySpend] = field(default_factory=list)
    _parallel_groups: dict = field(default_factory=dict)

    def can_spend(self, parameters: PrivacyParameters) -> bool:
        """Would :meth:`spend` of ``parameters`` succeed right now?"""
        eps, delta = self.total()
        return not would_overflow(
            self.budget, eps + parameters.epsilon, delta + parameters.delta
        )

    def spend(self, parameters: PrivacyParameters, label: str = "") -> None:
        """Record a sequential spend, raising if the budget would overflow."""
        eps, delta = self.total()
        new_eps = eps + parameters.epsilon
        new_delta = delta + parameters.delta
        if would_overflow(self.budget, new_eps, new_delta):
            raise PrivacyBudgetExceeded(
                f"spend {parameters} (label={label!r}) would exceed the "
                f"budget {self.budget}; already spent ({eps:g}, {delta:g})"
            )
        self.spends.append(PrivacySpend(label=label, parameters=parameters))

    def spend_parallel(
        self, parameters: PrivacyParameters, group: str, label: str = ""
    ) -> None:
        """Record a spend on a disjoint partition within ``group``.

        Parallel composition: all spends in the same group cost only the
        group's maximum epsilon/delta. Each call still validates the
        would-be total.
        """
        current = self._parallel_groups.get(group)
        new_eps = max(parameters.epsilon, current.epsilon if current else 0.0)
        new_delta = max(parameters.delta, current.delta if current else 0.0)
        eps, delta = self.total()
        if current is not None:
            eps -= current.epsilon
            delta -= current.delta
        if would_overflow(self.budget, eps + new_eps, delta + new_delta):
            raise PrivacyBudgetExceeded(
                f"parallel spend {parameters} in group {group!r} would exceed "
                f"the budget {self.budget}"
            )
        if current is None:
            self.spends.append(
                PrivacySpend(label=f"[parallel:{group}] {label}", parameters=parameters)
            )
            self._parallel_groups[group] = PrivacyParameters(new_eps, new_delta or 0.0)
        else:
            self._parallel_groups[group] = PrivacyParameters(new_eps, new_delta or 0.0)
            # Update the recorded group spend to the new maximum.
            for idx in range(len(self.spends) - 1, -1, -1):
                if self.spends[idx].label.startswith(f"[parallel:{group}]"):
                    self.spends[idx] = PrivacySpend(
                        label=self.spends[idx].label,
                        parameters=self._parallel_groups[group],
                    )
                    break

    def replay(self, spends: Iterable[PrivacySpend]) -> None:
        """Re-record a committed spend history, in order, with full checks.

        Snapshot restore uses this: a restarted training service rebuilds
        each account's accountant from the budget *cap* plus the receipts
        of committed jobs, and replaying them through the same
        :meth:`spend` validation proves the loaded history obeys the cap
        — a tampered or impossible snapshot raises
        :class:`PrivacyBudgetExceeded` instead of silently granting a
        tenant more (or less) budget than they really have.
        """
        for spend in spends:
            self.spend(spend.parameters, label=spend.label)

    def total(self) -> tuple[float, float]:
        """Total (epsilon, delta) spent so far under basic composition."""
        eps = sum(s.parameters.epsilon for s in self.spends)
        delta = sum(s.parameters.delta for s in self.spends)
        return eps, delta

    def remaining(self) -> PrivacyParameters:
        """Remaining budget (epsilon floor at a tiny positive value)."""
        eps, delta = self.total()
        rem_eps = max(self.budget.epsilon - eps, 0.0)
        rem_delta = max(self.budget.delta - delta, 0.0)
        if rem_eps <= 0.0:
            raise PrivacyBudgetExceeded("privacy budget fully spent")
        return PrivacyParameters(rem_eps, rem_delta)


def split_evenly(privacy: PrivacyParameters, parts: int) -> List[PrivacyParameters]:
    """Divide a budget into ``parts`` equal sequential shares.

    The MNIST one-vs-rest experiment "used the simplest composition theorem
    and divided the privacy budget evenly" (Section 4.3) — ten shares of
    (ε/10, δ/10).
    """
    check_positive_int(parts, "parts")
    share = privacy.split(parts)
    return [share] * parts
