"""Algorithm 3 — private hyper-parameter tuning.

From Chaudhuri, Monteleoni and Sarwate [13], as adopted by the paper:

1. split the training set into ``l + 1`` equal disjoint portions
   ``S_1 ... S_{l+1}``;
2. train candidate ``i`` on ``S_i`` with parameters ``theta_i`` (any of the
   private trainers — each sees a disjoint slice, so training composes in
   parallel and costs ε once, not l times);
3. count the classification errors ``chi_i`` of candidate ``i`` on the
   held-out slice ``S_{l+1}``;
4. release candidate ``i`` with probability ``∝ exp(-eps * chi_i / 2)``
   (the exponential mechanism; the error count has sensitivity 1, so this
   selection is ε-DP).

The overall guarantee is (ε, δ)-DP: ε from training (parallel) plus... the
paper follows [13] in reporting the *same* ε for the end-to-end procedure
(training on disjoint data and selecting with the same ε each account for
ε under parallel/sequential composition of the two stages; we surface both
stages' spends through the optional accountant so users can apply their
preferred bookkeeping).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.accountant import PrivacyAccountant
from repro.core.mechanisms import PrivacyParameters
from repro.optim.losses import Loss
from repro.tuning.grid import ParameterGrid
from repro.utils.rng import RandomState, as_generator, spawn_generators
from repro.utils.validation import check_matrix_labels, check_positive

#: A trainer factory: parameters dict -> callable(X, y, epsilon, delta, rng)
#: returning an object with ``predict(X)``.
TrainerFactory = Callable[[Dict], Callable[..., object]]


def resolve_fused(trainer_factory: TrainerFactory, fused: Optional[bool]) -> bool:
    """Shared fused-path dispatch for the two tuning entry points.

    ``fused=None`` fuses exactly when the factory is *structural* (exposes
    ``candidate(theta)`` — the :class:`repro.core.bolton.
    BoltOnTrainerFactory` contract); forcing ``fused=True`` on an opaque
    factory raises, since the engine cannot see inside a trainer closure.
    """
    fusable = hasattr(trainer_factory, "candidate")
    if fused is None:
        return fusable
    if fused and not fusable:
        raise ValueError(
            "fused tuning needs a structural factory exposing "
            "candidate(theta) — e.g. repro.core.bolton.BoltOnTrainerFactory; "
            "pass fused=False to train opaque trainers sequentially"
        )
    return fused


@dataclass
class TuningOutcome:
    """The released model plus full (private-safe) diagnostics."""

    model_result: object
    chosen_parameters: Dict
    chosen_index: int
    privacy: PrivacyParameters
    #: Error counts chi_i on the validation slice (diagnostic; releasing
    #: them verbatim is NOT covered by the guarantee).
    unreleased_error_counts: List[int] = field(default_factory=list)
    #: Selection probabilities of the exponential mechanism (diagnostic).
    unreleased_probabilities: np.ndarray = field(default_factory=lambda: np.empty(0))
    candidates: List[Dict] = field(default_factory=list)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.model_result.predict(X)

    def accuracy(self, X: np.ndarray, y: np.ndarray) -> float:
        X, y = check_matrix_labels(X, y)
        return float(np.mean(self.predict(X) == y))


def exponential_mechanism_probabilities(
    error_counts: Sequence[int], epsilon: float
) -> np.ndarray:
    """``p_i = exp(-eps chi_i / 2) / sum_j exp(-eps chi_j / 2)`` (line 5).

    Computed with the max-shift trick for numerical stability.
    """
    check_positive(epsilon, "epsilon")
    chi = np.asarray(error_counts, dtype=np.float64)
    if chi.ndim != 1 or chi.size == 0:
        raise ValueError("error_counts must be a non-empty 1-D sequence")
    if np.any(chi < 0):
        raise ValueError("error counts must be non-negative")
    logits = -epsilon * chi / 2.0
    logits -= logits.max()
    weights = np.exp(logits)
    return weights / weights.sum()


def batched_error_counts(
    results: Sequence[object], X_val: np.ndarray, y_val: np.ndarray
) -> Optional[List[int]]:
    """Line 3's ``chi_i`` for all candidates in one margin matrix, or None.

    When every candidate result exposes a linear ``model`` whose loss uses
    the standard sign-margin predictor, the l per-candidate prediction
    loops collapse into one ``(n, l)`` score GEMM against the stacked
    weight matrix — the same batching the fused training engine applies on
    the way *in*. Candidates with bespoke predictors return ``None`` and
    keep the generic per-result path.
    """
    models = []
    for result in results:
        model = getattr(result, "model", None)
        loss = getattr(result, "loss", None)
        if (
            model is None
            or loss is None
            or type(loss).predict is not Loss.predict
            or np.ndim(model) != 1
        ):
            return None
        models.append(np.asarray(model, dtype=np.float64))
    scores = np.asarray(X_val, dtype=np.float64) @ np.stack(models).T
    predictions = np.where(scores >= 0.0, 1.0, -1.0)
    mismatches = predictions != np.asarray(y_val, dtype=np.float64)[:, None]
    return [int(count) for count in np.sum(mismatches, axis=0)]


def partition_dataset(
    X: np.ndarray, y: np.ndarray, parts: int, rng: np.random.Generator
) -> List[tuple[np.ndarray, np.ndarray]]:
    """Split (X, y) into ``parts`` disjoint near-equal random portions."""
    X, y = check_matrix_labels(X, y)
    if parts < 2:
        raise ValueError(f"need at least 2 portions, got {parts}")
    m = X.shape[0]
    if m < parts:
        raise ValueError(f"cannot split {m} examples into {parts} portions")
    order = rng.permutation(m)
    chunks = np.array_split(order, parts)
    return [(X[idx], y[idx]) for idx in chunks]


def privately_tuned_sgd(
    X: np.ndarray,
    y: np.ndarray,
    trainer_factory: TrainerFactory,
    grid: ParameterGrid,
    epsilon: float,
    *,
    delta: float = 0.0,
    random_state: RandomState = None,
    accountant: Optional[PrivacyAccountant] = None,
    fused: Optional[bool] = None,
) -> TuningOutcome:
    """Run Algorithm 3 end to end.

    ``trainer_factory(theta)`` must return a trainer callable with signature
    ``trainer(X_i, y_i, epsilon=..., delta=..., random_state=...)`` whose
    result exposes ``predict``. Each candidate trains on its own disjoint
    slice with the full (ε, δ) (parallel composition); selection uses the
    exponential mechanism at ε.

    ``fused=None`` (default) trains all partitions' models through the
    fused engine whenever the factory is structural (exposes
    ``candidate(theta)``): the near-equal partitions are stacked into
    ``(K, m_i, d)`` tensors (one fused run per distinct partition size —
    ``array_split`` produces at most two) and every candidate keeps its
    own permutation and noise streams, so the fused result matches the
    sequential path to the engines' 1e-12 equivalence bound. Opaque
    trainers keep the sequential reference path.
    """
    X, y = check_matrix_labels(X, y)
    privacy = PrivacyParameters(epsilon, delta)
    candidates = grid.candidates()
    l = len(candidates)
    master = as_generator(random_state)
    trainer_rngs = spawn_generators(master, l)
    selection_rng = as_generator(master)

    portions = partition_dataset(X, y, l + 1, master)
    X_val, y_val = portions[-1]

    fused = resolve_fused(trainer_factory, fused)
    if fused:
        from repro.core.bolton import private_psgd_fleet

        specs = [trainer_factory.candidate(theta) for theta in candidates]
        by_size: dict[int, List[int]] = {}
        for index, (X_i, _) in enumerate(portions[:-1]):
            by_size.setdefault(X_i.shape[0], []).append(index)
        results: List = [None] * l
        for indices in by_size.values():
            fleet = private_psgd_fleet(
                np.stack([portions[i][0] for i in indices]),
                np.stack([portions[i][1] for i in indices]),
                [specs[i] for i in indices],
                epsilon,
                delta=delta,
                random_states=[trainer_rngs[i] for i in indices],
            )
            for i, result in zip(indices, fleet):
                results[i] = result
        if accountant is not None:
            for theta in candidates:
                accountant.spend_parallel(
                    privacy, group="tuning-train", label=str(theta)
                )
    else:
        results = []
        for theta, (X_i, y_i), rng in zip(candidates, portions[:-1], trainer_rngs):
            trainer = trainer_factory(theta)
            result = trainer(X_i, y_i, epsilon=epsilon, delta=delta, random_state=rng)
            if accountant is not None:
                accountant.spend_parallel(
                    privacy, group="tuning-train", label=str(theta)
                )
            results.append(result)

    error_counts = batched_error_counts(results, X_val, y_val)
    if error_counts is None:
        error_counts = [
            int(np.sum(result.predict(X_val) != y_val)) for result in results
        ]

    probabilities = exponential_mechanism_probabilities(error_counts, epsilon)
    chosen = int(selection_rng.choice(l, p=probabilities))
    if accountant is not None:
        accountant.spend(privacy, label="tuning-selection")

    return TuningOutcome(
        model_result=results[chosen],
        chosen_parameters=candidates[chosen],
        chosen_index=chosen,
        privacy=privacy,
        unreleased_error_counts=error_counts,
        unreleased_probabilities=probabilities,
        candidates=candidates,
    )
