"""The append-only receipt log — crash-safe durability in O(1) per window.

PR 4's durability rewrote the *entire* registry JSON after every
dispatched window: O(history) work per window on a long-lived server,
and a crash mid-rewrite could tear the only copy of the state. This
module replaces that with the classic write-ahead discipline:

* every service event (job admitted, receipt committed, refund/failure,
  budget grant) is **appended** as one checksummed, length-prefixed JSON
  record — the autosave hook merely flushes and fsyncs the tail, so its
  cost is O(events this window), never O(history);
* recovery is *snapshot + replay*: a periodic **compaction** folds the
  log into the base snapshot (``registry.json`` + ``accounts.json``,
  both atomic tmp-rename writes) and starts a fresh log, so replay cost
  is O(delta since last compaction);
* a **torn final record** — the half-written tail a kill -9 or power cut
  leaves behind — is detected by its checksum/length and truncated away:
  recovery keeps the clean prefix. Anything wrong *before* the tail
  (a checksum mismatch with valid data following, a record that passes
  its checksum but decodes to garbage) is not a torn write but
  corruption or tampering, and replay **fails closed** with
  :class:`WalCorruption` rather than load a log it cannot vouch for.

Record format (``repro-wal/v1``)
--------------------------------

Each record is ``<length:u32 little-endian> <crc32:u32 little-endian>
<payload>`` where ``payload`` is compact UTF-8 JSON and the CRC covers
the payload bytes. The first record of every log is a header event
``{"event": "header", "format": "repro-wal/v1"}`` — replay refuses
files that do not open with it, so a foreign file can never be
mistaken for a log. Event *schemas* (what "admit"/"record"/"grant"
mean) belong to the service layer (:mod:`repro.service.server`); this
module only guarantees that what comes back out is byte-for-byte what
went in, or a clean prefix of it, or an exception.

Write path
----------

:meth:`WriteAheadLog.append` only buffers (in memory, under the log's
lock — submission-path cheap); :meth:`WriteAheadLog.sync` drains the
buffer to disk and fsyncs, which the service calls once per dispatched
window. :meth:`WriteAheadLog.reset` starts a fresh log *after* a
compaction snapshot: it writes the header plus any still-buffered
events to a temp file and atomically renames it over the log, so events
that raced the snapshot are re-logged rather than dropped (replay is
idempotent — see ``load_state``) and a crash between snapshot and reset
leaves at worst a stale-but-replayable tail.
"""

from __future__ import annotations

import json
import os
import pathlib
import struct
import threading
import time
import zlib
from typing import Callable, List, Optional, Tuple, Union

#: Format tag carried by every log's header record.
WAL_FORMAT = "repro-wal/v1"

_FRAME = struct.Struct("<II")

#: Sanity bound on one record's payload: a length field beyond this is
#: garbage framing, not a real record (the largest real payload is one
#: job record — weights included — which is orders of magnitude smaller).
_MAX_RECORD_BYTES = 1 << 30


class WalCorruption(ValueError):
    """Mid-log corruption or tampering: the log cannot be trusted and
    replay refuses to load it (fail-closed). Torn *final* records — the
    signature of a crash mid-append — never raise this; they are
    truncated away and the clean prefix recovers."""


def _frame(event: dict) -> bytes:
    payload = json.dumps(event, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _header_frame() -> bytes:
    return _frame({"event": "header", "format": WAL_FORMAT})


def _check_torn(data: bytes, offset: int, *, final: bool, source: str, reason: str) -> None:
    """Classify a failed record: tolerate a torn tail, raise on corruption.

    ``final`` — the failing record reaches end-of-file, so it is
    indistinguishable from a half-written append (tolerate). A failure
    with valid-looking data *after* it is corruption — unless every
    remaining byte is zero, the signature of a filesystem zero-filling
    blocks it allocated for a write that never completed.
    """
    if final or not any(data[offset:]):
        return
    raise WalCorruption(
        f"{source}: {reason} at byte {offset} with data following — this is "
        "mid-log corruption, not a torn tail; refusing to load"
    )


def _scan(data: bytes, source: str) -> Tuple[List[dict], int]:
    """Walk the framed records in ``data``.

    Returns ``(events, valid_length)``: the decoded events (header
    excluded) and the byte offset of the end of the last good record —
    what a writer reopening the log truncates to. Raises
    :class:`WalCorruption` per the fail-closed rules above.
    """
    events: List[dict] = []
    offset = 0
    size = len(data)
    header = _header_frame()
    common = min(size, len(header))
    if data[:common] != header[:common] and any(data[:common]):
        # Every log starts with the byte-identical header frame; a file
        # that diverges inside those bytes was never a log (a torn
        # creation leaves a strict prefix of them — or zero-fill, both
        # recovered as an empty log below).
        raise WalCorruption(
            f"{source} is not a {WAL_FORMAT} write-ahead log "
            "(its first bytes are not the header record)"
        )
    while offset < size:
        if size - offset < _FRAME.size:
            _check_torn(data, offset, final=True, source=source,
                        reason="truncated record header")
            break
        length, crc = _FRAME.unpack_from(data, offset)
        end = offset + _FRAME.size + length
        if length > _MAX_RECORD_BYTES or end > size:
            _check_torn(data, offset, final=True, source=source,
                        reason="record extends past end of file")
            break
        payload = data[offset + _FRAME.size:end]
        if zlib.crc32(payload) != crc:
            _check_torn(data, offset, final=(end == size), source=source,
                        reason="record checksum mismatch")
            break
        try:
            event = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            if not any(data[offset:]):
                # An all-zero tail frames as a zero-length record whose
                # CRC (zlib.crc32(b"") == 0) vacuously matches — that is
                # a filesystem zero-filling blocks for a crashed append,
                # not a written record. Torn tail; keep the prefix.
                break
            # A checksum-valid record that is not JSON was *written* that
            # way — writer bug or tampering that recomputed the CRC.
            # Truncation cannot produce this; always fail closed.
            raise WalCorruption(
                f"{source}: record at byte {offset} passes its checksum but "
                f"does not decode ({error}); refusing to load"
            ) from error
        if not isinstance(event, dict):
            raise WalCorruption(
                f"{source}: record at byte {offset} decodes to "
                f"{type(event).__name__}, not an event object; refusing to load"
            )
        if offset == 0:
            if event.get("event") != "header" or event.get("format") != WAL_FORMAT:
                raise WalCorruption(
                    f"{source} is not a {WAL_FORMAT} write-ahead log "
                    f"(first record: {event!r})"
                )
        else:
            events.append(event)
        offset = end
    return events, offset


class WriteAheadLog:
    """One append-only event log file, safe for concurrent appenders.

    ``append`` is in-memory (the admission/release paths call it);
    ``sync`` makes the buffered events durable; ``reset`` starts a fresh
    log after a compaction snapshot. All three are serialized by an
    internal lock, so worker threads and the autosave hook compose
    without a protocol. ``fsync=False`` is for benchmarks that measure
    the framing cost without the device flush.
    """

    def __init__(self, path: Union[str, pathlib.Path], *, fsync: bool = True) -> None:
        self.path = pathlib.Path(path)
        self._fsync = bool(fsync)
        self._lock = threading.Lock()
        self._pending: List[bytes] = []
        self._file: Optional[object] = None
        #: Records in the current log generation (file + buffer) — the
        #: service's compaction trigger reads this.
        self.records_since_reset = 0
        self.appends = 0
        self.syncs = 0
        self.resets = 0
        #: Telemetry hook: called as ``observer(kind, seconds)`` with
        #: ``kind`` "sync" (a :meth:`sync` drain+fsync) or "compaction"
        #: (a :meth:`reset`), *after* the log's lock is released. The
        #: service wires this to its WAL latency histograms; ``None``
        #: (the default) costs nothing.
        self.observer: Optional[Callable[[str, float], None]] = None

    # -- write path --------------------------------------------------------------

    def append(self, event: dict) -> None:
        """Buffer one event (no I/O; durable at the next :meth:`sync`)."""
        frame = _frame(event)
        with self._lock:
            self._pending.append(frame)
            self.appends += 1
            self.records_since_reset += 1

    def open(self) -> None:
        """Open the log for appending (creating it with a header record),
        truncating any torn tail a crashed writer left, then drain and
        fsync the buffer. Raises :class:`WalCorruption` if the existing
        log fails validation anywhere but its tail."""
        with self._lock:
            self._open_locked()
            self._drain_locked()

    def sync(self) -> None:
        """Make every buffered event durable: write, flush, fsync.
        O(events since the last sync) — never O(history)."""
        started = time.perf_counter()
        with self._lock:
            self._open_locked()
            self._drain_locked()
        self._observe("sync", started)

    def reset(self) -> None:
        """Start a fresh log generation (call *after* the compaction
        snapshot is on disk). Events still buffered — appended after the
        snapshot was cut — are carried into the new log, not dropped:
        replay is idempotent, a lost event is not recoverable."""
        started = time.perf_counter()
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            with open(tmp, "wb") as handle:
                handle.write(_header_frame())
                for frame in self._pending:
                    handle.write(frame)
                handle.flush()
                if self._fsync:
                    os.fsync(handle.fileno())
            os.replace(tmp, self.path)
            self.records_since_reset = len(self._pending)
            self._pending = []
            self._file = open(self.path, "r+b")
            self._file.seek(0, os.SEEK_END)
            self.resets += 1
            self.syncs += 1
        self._observe("compaction", started)

    def _observe(self, kind: str, started: float) -> None:
        observer = self.observer
        if observer is not None:
            observer(kind, time.perf_counter() - started)

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                try:
                    self._file.close()
                finally:
                    self._file = None

    def _open_locked(self) -> None:
        if self._file is not None:
            return
        if self.path.exists():
            data = self.path.read_bytes()
            events, valid = _scan(data, str(self.path))
            handle = open(self.path, "r+b")
            handle.truncate(valid)
            handle.seek(valid)
            if valid == 0:
                # Empty (or fully-torn-header) file: start it properly.
                handle.write(_header_frame())
            self._file = handle
            self.records_since_reset = len(events) + len(self._pending)
        else:
            handle = open(self.path, "w+b")
            handle.write(_header_frame())
            self._file = handle
            self.records_since_reset = len(self._pending)

    def _drain_locked(self) -> None:
        for frame in self._pending:
            self._file.write(frame)
        self._pending = []
        self._file.flush()
        if self._fsync:
            os.fsync(self._file.fileno())
        self.syncs += 1

    # -- read path ---------------------------------------------------------------

    @classmethod
    def replay(cls, path: Union[str, pathlib.Path]) -> List[dict]:
        """The events of the log at ``path``, in append order (header
        excluded; missing file is an empty log). Tolerates a torn final
        record; raises :class:`WalCorruption` on anything worse."""
        path = pathlib.Path(path)
        if not path.exists():
            return []
        return cls.replay_bytes(path.read_bytes(), source=str(path))

    @staticmethod
    def replay_bytes(data: bytes, source: str = "<bytes>") -> List[dict]:
        """:meth:`replay` over raw bytes (the property tests truncate and
        tamper these directly)."""
        events, _ = _scan(data, source)
        return events
