#!/usr/bin/env python
"""In-RDBMS private analytics: the Bismarck integration (Figure 1).

Loads a table into the miniature analytics engine, trains with all four
integration styles (regular Bismarck, bolt-on, SCS13, BST14), and prints
the runtime/accuracy comparison plus the integration-effort report — the
Section 4.2/4.4 story in one script.

Run:  python examples/in_rdbms_analytics.py
"""

from __future__ import annotations

import numpy as np

from repro import LogisticLoss
from repro.data import covertype_like
from repro.optim import CappedInverseTSchedule
from repro.rdbms import BismarckSession, integration_report


def accuracy(model: np.ndarray, features: np.ndarray, labels: np.ndarray) -> float:
    return float(np.mean(np.where(features @ model >= 0, 1.0, -1.0) == labels))


def main() -> None:
    train, test = covertype_like(scale=0.02, seed=0)
    print(f"dataset: {train.name}  m={train.size}  d={train.dimension}\n")

    session = BismarckSession(buffer_pool_pages=1 << 18)
    session.load_table("covertype", train.features, train.labels)

    lam = 1e-3
    loss = LogisticLoss(regularization=lam)
    radius = 1.0 / lam
    epsilon, delta = 0.2, 1.0 / train.size**2
    epochs, batch = 5, 10

    properties = loss.properties(radius=radius)
    schedule = CappedInverseTSchedule(properties.smoothness,
                                      properties.strong_convexity)

    print(f"{'algorithm':<12} {'sim. seconds':>12} {'noise draws':>12} {'accuracy':>9}")
    noiseless = session.run_noiseless(
        "covertype", loss, schedule, epochs, batch, random_state=0,
    )
    print(f"{'noiseless':<12} {noiseless.simulated_seconds:>12.4f} "
          f"{noiseless.noise_draws:>12} "
          f"{accuracy(noiseless.model, test.features, test.labels):>9.4f}")

    ours = session.run_bolton_private(
        "covertype", loss, epsilon, delta=delta, epochs=epochs,
        batch_size=batch, radius=radius, random_state=0,
    )
    print(f"{'ours':<12} {ours.simulated_seconds:>12.4f} {ours.noise_draws:>12} "
          f"{accuracy(ours.model, test.features, test.labels):>9.4f}")

    scs13 = session.run_scs13(
        "covertype", loss, epsilon, delta=delta, epochs=epochs,
        batch_size=batch, radius=radius, random_state=0,
    )
    print(f"{'SCS13':<12} {scs13.simulated_seconds:>12.4f} {scs13.noise_draws:>12} "
          f"{accuracy(scs13.model, test.features, test.labels):>9.4f}")

    bst14 = session.run_bst14(
        "covertype", loss, epsilon, delta, epochs=epochs, batch_size=batch,
        radius=radius, random_state=0,
    )
    print(f"{'BST14':<12} {bst14.simulated_seconds:>12.4f} {bst14.noise_draws:>12} "
          f"{accuracy(bst14.model, test.features, test.labels):>9.4f}")

    print("\nintegration effort (Section 4.2):")
    for key, value in integration_report().items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
