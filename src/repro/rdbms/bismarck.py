"""The Bismarck stand-in: an epoch-driving front-end over the mini engine.

Figure 1 of the paper shows the architecture this module reproduces:

* the dataset lives in a table; a *shuffle* stage permutes it;
* each epoch runs the SGD UDA over the (shuffled) table via an SQL query;
* a Python front-end controller issues the per-epoch queries and applies
  the convergence test;
* **(B)** the bolt-on algorithms add noise once, in the *front end*, after
  all epochs — :meth:`BismarckSession.run_bolton_private` is deliberately
  written as the handful of controller lines the paper describes
  ("about 10 LOC in Python");
* **(C)** SCS13 and BST14 need noise inside the UDA's *transition*
  function — :class:`NoisySGDUDA` is that modification, and
  :func:`integration_report` quantifies the contrast.
"""

from __future__ import annotations

import inspect
import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.core.mechanisms import (
    PrivacyParameters,
    mechanism_for,
)
from repro.core.sensitivity import sensitivity_for_schedule
from repro.optim.losses import Loss
from repro.optim.projection import IdentityProjection, L2BallProjection, Projection
from repro.optim.schedules import (
    CappedInverseTSchedule,
    ConstantSchedule,
    InverseSqrtTSchedule,
    StepSizeSchedule,
)
from repro.rdbms.catalog import Catalog, TableInfo
from repro.rdbms.cost_model import CostModel, RuntimeBreakdown, WorkCounters
from repro.rdbms.executor import OffsetScanView, ShuffleOnce, run_aggregate
from repro.rdbms.storage import BufferPool
from repro.rdbms.uda import MultiSGDUDA, SGDState, SGDUDA
from repro.utils.rng import RandomState, as_generator, spawn_generators
from repro.utils.validation import check_positive, check_positive_int


@dataclass
class EpochReport:
    """Counters and simulated cost of one epoch."""

    epoch: int
    loss_value: Optional[float]
    runtime: RuntimeBreakdown


@dataclass
class TrainingReport:
    """The outcome of an in-RDBMS training run."""

    model: np.ndarray
    epochs: List[EpochReport] = field(default_factory=list)
    converged_early: bool = False
    algorithm: str = "noiseless"
    noise_draws: int = 0

    @property
    def total_runtime(self) -> RuntimeBreakdown:
        total = RuntimeBreakdown()
        for epoch in self.epochs:
            total = total + epoch.runtime
        return total

    @property
    def simulated_seconds(self) -> float:
        return self.total_runtime.total


@dataclass
class MultiTrainingReport:
    """The outcome of one fused K-model in-RDBMS training run.

    ``models`` is the ``(K, d)`` matrix of trained models. The per-epoch
    runtime reports charge the scan — tuples streamed, pages requested,
    shuffle work — **once**, while gradient/update/noise work is charged
    K-fold; contrast with K separate :class:`TrainingReport` runs, whose
    totals repeat the scan K times. That difference is exactly the
    shared-scan amortization the cost model quantifies.
    """

    models: np.ndarray
    epochs: List[EpochReport] = field(default_factory=list)
    algorithm: str = "noiseless-multi"
    noise_draws: int = 0

    @property
    def num_models(self) -> int:
        return int(self.models.shape[0])

    @property
    def total_runtime(self) -> RuntimeBreakdown:
        total = RuntimeBreakdown()
        for epoch in self.epochs:
            total = total + epoch.runtime
        return total

    @property
    def simulated_seconds(self) -> float:
        return self.total_runtime.total


class NoisySGDUDA(SGDUDA):
    """The white-box modification: per-mini-batch noise in ``transition``.

    This class *is* the "dozens of LOC in C" change of Figure 1 (C),
    expressed in our substrate: a subclass whose only difference is drawing
    a noise vector for every completed mini-batch. ``noise_sampler`` is
    ``(step_index, dimension) -> vector`` and each call is also what the
    cost model charges as an expensive sophisticated-distribution draw.
    """

    def __init__(
        self,
        loss: Loss,
        schedule: StepSizeSchedule,
        noise_sampler: Callable[[int, int], np.ndarray],
        batch_size: int = 1,
        projection: Optional[Projection] = None,
    ):
        super().__init__(loss, schedule, batch_size, projection)
        self.noise_sampler = noise_sampler
        self.noise_draws = 0

    def _adjust_gradient(self, state: SGDState, gradient: np.ndarray) -> np.ndarray:
        self.noise_draws += 1
        return gradient + self.noise_sampler(state.next_step_index, gradient.shape[0])


class BismarckSession:
    """A connection to the miniature analytics engine.

    Owns the catalog, buffer pool, and cost model; exposes the training
    entry points the paper's experiments call.
    """

    def __init__(
        self,
        buffer_pool_pages: int = 65536,
        cost_model: Optional[CostModel] = None,
    ):
        self.catalog = Catalog()
        self.pool = BufferPool(buffer_pool_pages)
        self.cost_model = cost_model if cost_model is not None else CostModel()
        # Per-table ShuffleOnce operators kept alive across training runs
        # (see shared_scan): the session-reuse hook the training service
        # relies on so every job on a table replays ONE permutation.
        # Creation is locked: with per-table engine domains, workers
        # reach here concurrently for different tables.
        self._shared_scans: dict[str, ShuffleOnce] = {}
        self._shared_scans_lock = threading.Lock()

    # -- data loading -----------------------------------------------------------

    def load_table(self, name: str, features: np.ndarray, labels: np.ndarray) -> TableInfo:
        """CREATE TABLE + COPY: materialize arrays as a table."""
        return self.catalog.create_table_from_arrays(name, features, labels)

    def register_table(self, name: str, heap) -> TableInfo:
        """Register an existing heap file (e.g. a synthesized virtual one)."""
        return self.catalog.create_table(name, heap)

    def table_stats(self) -> dict:
        """Per-table buffer-pool counters, keyed by table name.

        A live read of each registered heap's own
        :class:`~repro.rdbms.storage.BufferPoolStats` (via
        :meth:`BufferPool.stats_for`) — the ground truth the service's
        metrics collector samples into its per-table pool gauges.
        """
        return {
            name: self.pool.stats_for(self.catalog.get(name).heap)
            for name in self.catalog.table_names()
        }

    def warm_cache(self, table_name: str) -> None:
        """Pre-read a table through the buffer pool.

        The paper's runtime measurements are "the average of 4 warm-cache
        runs [where] all datasets fit in the buffer cache" (Section 4.4);
        calling this before timing reproduces that methodology so the
        first-measured algorithm is not charged the one-off cold misses.
        """
        table = self.catalog.get(table_name)
        for _ in self.pool.scan(table.heap):
            pass

    def shared_scan(self, table_name: str, random_state: RandomState = None) -> ShuffleOnce:
        """Get-or-create the table's *persistent* shuffle operator.

        Bismarck materializes a shuffled copy of each table once and
        replays it for every epoch; this extends that discipline across
        *runs*: the first caller fixes the table's permutation (drawn from
        ``random_state``) and every later training run on the table —
        fused or standalone, in any order — replays exactly the same tuple
        order. That permutation-stability is what lets the training
        service promise bitwise-identical per-job models regardless of how
        jobs were grouped into scans. Pass the returned operator to
        :meth:`run_sgd` / :meth:`run_sgd_multi` via ``shuffle=``.

        The operator is also the anchor of the *shared-cursor* design:
        ``shared_scan(t).cursor(chunk_size)`` is the table's persistent
        :class:`~repro.rdbms.executor.ScanCursor`, a resumable position
        on the permutation's canonical chunk grid that the elevator
        dispatcher drives as one continuous loop — late-arriving jobs
        board at the cursor's current position and ride through the
        wrap-around, exiting back at their boarding chunk. Because the
        permutation belongs to the table (never to a job), a boarded
        ride replays exactly the chunk stream of a solo
        :meth:`run_sgd` with ``start_offset=`` that boarding position,
        which is what keeps mid-flight boarding bitwise-safe.

        Get-or-create is atomic: with per-table engine domains, workers
        reach here concurrently for *different* tables, and two racing
        callers on the same table must agree on one permutation. The memo
        is keyed to the table's *identity*, not its name: dropping and
        recreating a table retires the old operator (and its cursor), so
        a recreated table can never be scanned through a permutation —
        or worse, a heap — that belonged to its predecessor.
        """
        with self._shared_scans_lock:
            scan = self._shared_scans.get(table_name)
            table = self.catalog.get(table_name)
            if scan is None or scan.table is not table:
                scan = ShuffleOnce(table, self.pool, random_state=as_generator(random_state))
                self._shared_scans[table_name] = scan
            return scan

    # -- core epoch loop ----------------------------------------------------------

    def run_sgd(
        self,
        table_name: str,
        uda: SGDUDA,
        epochs: int,
        *,
        convergence_tolerance: Optional[float] = None,
        loss_for_convergence: Optional[Loss] = None,
        fresh_permutation_each_epoch: bool = False,
        random_state: RandomState = None,
        algorithm_label: str = "noiseless",
        chunk_size: Optional[int] = None,
        shuffle: Optional[ShuffleOnce] = None,
        start_offset: int = 0,
    ) -> TrainingReport:
        """The front-end controller: shuffle once, one UDA query per epoch.

        The convergence test mirrors the paper's Python controller: after
        each epoch, evaluate the training loss and stop when its relative
        decrease falls below ``convergence_tolerance``.

        ``chunk_size`` selects the executor path: ``None`` streams tuples
        one at a time through ``UDA.transition``; a positive value streams
        array blocks through ``scan_chunks``/``transition_batch`` — same
        permutation, same page accounting, same model, vectorized hot loop.

        ``shuffle`` reuses an existing operator (typically from
        :meth:`shared_scan`) instead of drawing a fresh permutation —
        don't combine it with ``fresh_permutation_each_epoch``, which
        would reshuffle the shared order under other callers.

        ``start_offset`` rotates every epoch to begin at that position on
        the shuffle's canonical chunk grid and wrap around — the *solo
        reference* for a job that boarded a shared cursor mid-flight at
        that offset (see :class:`~repro.rdbms.executor.ScanCursor`): the
        boarded ride and this run execute identical operation sequences,
        so their models agree bitwise. Requires ``shuffle`` (offsets are
        positions in an existing permutation) and ``chunk_size`` (the
        grid), and excludes ``fresh_permutation_each_epoch``.
        """
        check_positive_int(epochs, "epochs")
        table = self.catalog.get(table_name)
        if start_offset:
            if shuffle is None:
                raise ValueError(
                    "start_offset is a position in an existing permutation; "
                    "pass the shared shuffle operator"
                )
            if chunk_size is None:
                raise ValueError(
                    "start_offset lives on the chunk grid; pass chunk_size"
                )
            if fresh_permutation_each_epoch:
                raise ValueError(
                    "start_offset and fresh_permutation_each_epoch are exclusive"
                )
        if shuffle is None:
            rng = as_generator(random_state)
            shuffle = ShuffleOnce(table, self.pool, random_state=rng)
        source = OffsetScanView(shuffle, start_offset) if start_offset else shuffle
        # Per-table counters: a concurrent scan on another table (per-table
        # engine domains) must never leak into this run's epoch accounting.
        pool_stats = self.pool.stats_for(table.heap)

        model: Optional[np.ndarray] = None
        reports: List[EpochReport] = []
        converged = False
        previous_loss: Optional[float] = None
        global_step_offset = 0
        total_noise_draws = 0

        for epoch in range(1, epochs + 1):
            if fresh_permutation_each_epoch and epoch > 1:
                shuffle.reshuffle()
            hits_before = pool_stats.cache_hits
            misses_before = pool_stats.cache_misses
            updates_before = uda.updates_applied
            noise_before = getattr(uda, "noise_draws", 0)

            model = run_aggregate(
                source,
                uda,
                chunk_size=chunk_size,
                model=model,
                dimension=table.dimension,
                global_step_offset=global_step_offset,
            )
            global_step_offset += -(-table.num_tuples // uda.batch_size)

            noise_after = getattr(uda, "noise_draws", 0)
            total_noise_draws += noise_after - noise_before
            work = WorkCounters(
                tuples_processed=table.num_tuples,
                gradient_evaluations=table.num_tuples,
                batch_updates=uda.updates_applied - updates_before,
                noise_draws=noise_after - noise_before,
                shuffled_tuples=table.num_tuples if epoch == 1 or fresh_permutation_each_epoch else 0,
                page_hits=pool_stats.cache_hits - hits_before,
                page_misses=pool_stats.cache_misses - misses_before,
                dimension=table.dimension,
            )
            loss_value: Optional[float] = None
            if convergence_tolerance is not None or loss_for_convergence is not None:
                loss_value = self._training_loss(table, loss_for_convergence or uda.loss, model)
            reports.append(
                EpochReport(
                    epoch=epoch,
                    loss_value=loss_value,
                    runtime=self.cost_model.charge(work),
                )
            )
            if convergence_tolerance is not None and previous_loss is not None:
                scale = max(abs(previous_loss), 1e-12)
                if (previous_loss - loss_value) / scale < convergence_tolerance:
                    converged = True
                    break
            previous_loss = loss_value

        assert model is not None
        return TrainingReport(
            model=model,
            epochs=reports,
            converged_early=converged,
            algorithm=algorithm_label,
            noise_draws=total_noise_draws,
        )

    def run_sgd_multi(
        self,
        table_name: str,
        uda: MultiSGDUDA,
        epochs: int,
        *,
        fresh_permutation_each_epoch: bool = False,
        random_state: RandomState = None,
        algorithm_label: str = "noiseless-multi",
        chunk_size: Optional[int] = None,
        shuffle: Optional[ShuffleOnce] = None,
    ) -> MultiTrainingReport:
        """Train K models in one table scan per epoch — the fused controller.

        Same front-end discipline as :meth:`run_sgd` (shuffle once, one
        aggregate query per epoch), but the query is the fused
        :class:`~repro.rdbms.uda.MultiSGDUDA`: the scan streams each tuple
        block once and every model folds it, so the epoch's page requests
        and executor work are charged once while gradient/update/noise
        work is charged per model. This is the Bismarck
        many-aggregates-one-scan pattern applied to model training.
        """
        check_positive_int(epochs, "epochs")
        table = self.catalog.get(table_name)
        if shuffle is None:
            rng = as_generator(random_state)
            shuffle = ShuffleOnce(table, self.pool, random_state=rng)
        pool_stats = self.pool.stats_for(table.heap)
        K = uda.num_models

        models: Optional[np.ndarray] = None
        reports: List[EpochReport] = []
        global_step_offset = 0
        total_noise_draws = 0

        for epoch in range(1, epochs + 1):
            if fresh_permutation_each_epoch and epoch > 1:
                shuffle.reshuffle()
            hits_before = pool_stats.cache_hits
            misses_before = pool_stats.cache_misses
            updates_before = uda.updates_applied
            noise_before = uda.noise_draws

            models = run_aggregate(
                shuffle,
                uda,
                chunk_size=chunk_size,
                models=models,
                dimension=table.dimension,
                global_step_offset=global_step_offset,
            )
            global_step_offset += -(-table.num_tuples // uda.batch_size)

            scan_updates = uda.updates_applied - updates_before
            epoch_noise = uda.noise_draws - noise_before
            total_noise_draws += epoch_noise
            work = WorkCounters(
                # The scan is shared: tuples stream (and pages are
                # requested) once per epoch regardless of K...
                tuples_processed=table.num_tuples,
                shuffled_tuples=table.num_tuples
                if epoch == 1 or fresh_permutation_each_epoch
                else 0,
                page_hits=pool_stats.cache_hits - hits_before,
                page_misses=pool_stats.cache_misses - misses_before,
                # ...while per-model arithmetic is honestly charged K-fold.
                gradient_evaluations=table.num_tuples * K,
                batch_updates=scan_updates * K,
                noise_draws=epoch_noise,
                dimension=table.dimension,
            )
            reports.append(
                EpochReport(
                    epoch=epoch,
                    loss_value=None,
                    runtime=self.cost_model.charge(work),
                )
            )

        assert models is not None
        return MultiTrainingReport(
            models=models,
            epochs=reports,
            algorithm=algorithm_label,
            noise_draws=total_noise_draws,
        )

    def run_noiseless_multi(
        self,
        table_name: str,
        losses,
        schedules,
        epochs: int,
        batch_size: int = 1,
        projections=None,
        random_state: RandomState = None,
        chunk_size: Optional[int] = None,
    ) -> MultiTrainingReport:
        """Fused grid training: K (loss, schedule) candidates, one scan.

        The convenience wrapper the tuning workloads use — build the fused
        UDA from per-candidate losses/schedules and run it through
        :meth:`run_sgd_multi`.
        """
        uda = MultiSGDUDA(losses, schedules, batch_size, projections)
        return self.run_sgd_multi(
            table_name,
            uda,
            epochs,
            random_state=random_state,
            chunk_size=chunk_size,
        )

    # -- the three algorithm entry points -------------------------------------------

    def run_noiseless(
        self,
        table_name: str,
        loss: Loss,
        schedule: StepSizeSchedule,
        epochs: int,
        batch_size: int = 1,
        projection: Optional[Projection] = None,
        random_state: RandomState = None,
        convergence_tolerance: Optional[float] = None,
        chunk_size: Optional[int] = None,
    ) -> TrainingReport:
        """Regular Bismarck (Figure 1 (A))."""
        uda = SGDUDA(loss, schedule, batch_size, projection)
        return self.run_sgd(
            table_name,
            uda,
            epochs,
            convergence_tolerance=convergence_tolerance,
            random_state=random_state,
            algorithm_label="noiseless",
            chunk_size=chunk_size,
        )

    def run_bolton_private(
        self,
        table_name: str,
        loss: Loss,
        epsilon: float,
        *,
        delta: float = 0.0,
        epochs: int = 1,
        batch_size: int = 1,
        eta: Optional[float] = None,
        radius: Optional[float] = None,
        random_state: RandomState = None,
        convergence_tolerance: Optional[float] = None,
        chunk_size: Optional[int] = None,
    ) -> TrainingReport:
        """Our algorithms as integrated into Bismarck (Figure 1 (B)).

        Everything below the noise-adding block is the *unchanged* engine;
        the privacy addition really is the last few lines — the same "about
        10 lines of Python in the front-end controller" the paper reports.
        """
        table = self.catalog.get(table_name)
        m = table.num_tuples
        sgd_rng, noise_rng = spawn_generators(random_state, 2)
        privacy = PrivacyParameters(epsilon, delta)

        if radius is not None:
            projection: Projection = L2BallProjection(radius)
            properties = loss.properties(radius=radius)
        else:
            projection = IdentityProjection()
            properties = loss.properties()

        if properties.is_strongly_convex:
            schedule: StepSizeSchedule = CappedInverseTSchedule(
                properties.smoothness, properties.strong_convexity
            )
        else:
            schedule = ConstantSchedule(eta if eta is not None else 1.0 / np.sqrt(m))
            if convergence_tolerance is not None:
                raise ValueError(
                    "data-dependent early stopping is only private when the "
                    "sensitivity does not depend on the pass count — i.e. the "
                    "strongly convex case (Section 4.3); in the convex case "
                    "fix the number of epochs instead"
                )

        uda = SGDUDA(loss, schedule, batch_size, projection)
        report = self.run_sgd(
            table_name,
            uda,
            epochs,
            convergence_tolerance=convergence_tolerance,
            random_state=sgd_rng,
            algorithm_label="bolton",
            chunk_size=chunk_size,
        )

        # ---- the bolt-on addition: this is the entire integration ----
        passes_run = len(report.epochs)
        sensitivity = sensitivity_for_schedule(
            properties, schedule, m, passes_run, batch_size
        )
        mechanism = mechanism_for(privacy)
        noise = mechanism.sample(table.dimension, sensitivity.value, privacy, noise_rng)
        report.model = report.model + noise
        report.noise_draws = 1
        # ---------------------------------------------------------------

        # Charge the single draw so runtime accounting is honest.
        final_work = WorkCounters(noise_draws=1, dimension=table.dimension)
        report.epochs[-1].runtime += self.cost_model.charge(final_work)
        return report

    def run_scs13(
        self,
        table_name: str,
        loss: Loss,
        epsilon: float,
        *,
        delta: float = 0.0,
        epochs: int = 1,
        batch_size: int = 1,
        radius: Optional[float] = None,
        eta0: float = 1.0,
        random_state: RandomState = None,
        chunk_size: Optional[int] = None,
    ) -> TrainingReport:
        """SCS13 inside the engine (Figure 1 (C)) — per-batch noise."""
        from repro.baselines.scs13 import scs13_gaussian_sigma, scs13_noise_scale
        from repro.utils.linalg import random_unit_vector

        check_positive(epsilon, "epsilon")
        check_positive_int(epochs, "epochs")
        if radius is not None:
            projection: Projection = L2BallProjection(radius)
            properties = loss.properties(radius=radius)
        else:
            projection = IdentityProjection()
            properties = loss.properties()
        lipschitz = properties.lipschitz
        epsilon_per_pass = epsilon / epochs
        sgd_rng, noise_rng = spawn_generators(random_state, 2)

        if delta == 0.0:
            scale = scs13_noise_scale(lipschitz, epsilon_per_pass, batch_size)

            def noise_sampler(step: int, dimension: int) -> np.ndarray:
                direction = random_unit_vector(dimension, noise_rng)
                return noise_rng.gamma(shape=dimension, scale=scale) * direction

        else:
            sigma = scs13_gaussian_sigma(
                lipschitz, epsilon_per_pass, delta / epochs, batch_size
            )

            def noise_sampler(step: int, dimension: int) -> np.ndarray:
                return noise_rng.normal(0.0, sigma, size=dimension)

        uda = NoisySGDUDA(
            loss, InverseSqrtTSchedule(eta0), noise_sampler, batch_size, projection
        )
        return self.run_sgd(
            table_name, uda, epochs, random_state=sgd_rng, algorithm_label="scs13",
            chunk_size=chunk_size,
        )

    def run_bst14(
        self,
        table_name: str,
        loss: Loss,
        epsilon: float,
        delta: float,
        *,
        epochs: int = 1,
        batch_size: int = 1,
        radius: float = 1.0,
        random_state: RandomState = None,
        chunk_size: Optional[int] = None,
    ) -> TrainingReport:
        """BST14 (constant-epoch extension) inside the engine."""
        from repro.baselines.bst14 import bst14_noise_sigma, per_iteration_sensitivity
        from repro.optim.schedules import BST14Schedule, InverseTSchedule

        table = self.catalog.get(table_name)
        m, d = table.num_tuples, table.dimension
        properties = loss.properties(radius=radius)
        sigma, _ = bst14_noise_sigma(epsilon, delta, m, epochs, batch_size)
        iota = per_iteration_sensitivity(properties.lipschitz, batch_size)
        effective_sigma = sigma * float(np.sqrt(iota))
        sgd_rng, noise_rng = spawn_generators(random_state, 2)

        if properties.is_strongly_convex:
            schedule: StepSizeSchedule = InverseTSchedule(properties.strong_convexity)
        else:
            gradient_bound = float(
                np.sqrt(d * sigma**2 + batch_size**2 * properties.lipschitz**2)
            )
            schedule = BST14Schedule(radius=radius, gradient_bound=gradient_bound)

        def noise_sampler(step: int, dimension: int) -> np.ndarray:
            return noise_rng.normal(0.0, effective_sigma, size=dimension)

        uda = NoisySGDUDA(
            loss, schedule, noise_sampler, batch_size, L2BallProjection(radius)
        )
        return self.run_sgd(
            table_name, uda, epochs, random_state=sgd_rng, algorithm_label="bst14",
            chunk_size=chunk_size,
        )

    # -- internals -------------------------------------------------------------------

    def _training_loss(self, table: TableInfo, loss: Loss, model: np.ndarray) -> float:
        # Tuple-count-weighted mean of per-page batch_value calls: for any
        # Loss whose batch_value is a mean of per-example values plus a
        # state-only regularizer, this equals the full-table batch_value —
        # vectorized page-at-a-time and generic over scalar-only losses.
        total = 0.0
        count = 0
        for page in self.pool.scan(table.heap):
            total += page.tuple_count * loss.batch_value(model, page.features, page.labels)
            count += page.tuple_count
        return total / count


def integration_report() -> dict:
    """Quantify the Section 4.2 integration-effort comparison on our code.

    Counts the source lines of the bolt-on addition inside
    :meth:`BismarckSession.run_bolton_private` (the block between the
    marker comments) versus the white-box :class:`NoisySGDUDA` subclass
    plus the per-algorithm samplers — the stand-ins for "about 10 LOC of
    Python" versus "dozens of LOC in C inside the transition function".
    """
    bolton_source = inspect.getsource(BismarckSession.run_bolton_private)
    in_block = False
    bolton_lines = 0
    for line in bolton_source.splitlines():
        stripped = line.strip()
        if stripped.startswith("# ---- the bolt-on addition"):
            in_block = True
            continue
        if stripped.startswith("# ----------------"):
            in_block = False
            continue
        if in_block and stripped and not stripped.startswith("#"):
            bolton_lines += 1

    whitebox_lines = 0
    for source in (
        inspect.getsource(NoisySGDUDA),
        inspect.getsource(BismarckSession.run_scs13),
        inspect.getsource(BismarckSession.run_bst14),
    ):
        for line in source.splitlines():
            stripped = line.strip()
            if stripped and not stripped.startswith("#") and not stripped.startswith('"""'):
                whitebox_lines += 1

    return {
        "bolton_integration_loc": bolton_lines,
        "whitebox_integration_loc": whitebox_lines,
        "bolton_touches_engine_internals": False,
        "whitebox_touches_engine_internals": True,
        "paper_claim": "ours ~10 LOC of front-end Python; SCS13/BST14 dozens "
        "of LOC of C inside the UDA transition function",
    }
