"""Unit and property tests for the loss functions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim.losses import (
    HingeLoss,
    HuberSVMLoss,
    LeastSquaresLoss,
    LogisticLoss,
    Loss,
    MarginLoss,
)

FINITE_W = st.lists(
    st.floats(-3.0, 3.0, allow_nan=False), min_size=3, max_size=3
).map(lambda ws: np.asarray(ws))


def numeric_gradient(loss, w, x, y, h=1e-6):
    grad = np.zeros_like(w)
    for i in range(len(w)):
        up = w.copy()
        down = w.copy()
        up[i] += h
        down[i] -= h
        grad[i] = (loss.value(up, x, y) - loss.value(down, x, y)) / (2 * h)
    return grad


class TestLogisticLoss:
    def test_value_at_zero_is_log2(self):
        loss = LogisticLoss()
        w = np.zeros(3)
        assert loss.value(w, np.array([1.0, 0.0, 0.0]), 1.0) == pytest.approx(np.log(2))

    def test_value_large_positive_margin_small(self):
        loss = LogisticLoss()
        w = np.array([10.0, 0.0, 0.0])
        assert loss.value(w, np.array([1.0, 0.0, 0.0]), 1.0) < 1e-4

    def test_value_large_negative_margin_linear(self):
        # phi(z) ~ -z for very negative z
        loss = LogisticLoss()
        w = np.array([50.0, 0.0, 0.0])
        value = loss.value(w, np.array([1.0, 0.0, 0.0]), -1.0)
        assert value == pytest.approx(50.0, rel=1e-6)

    def test_gradient_matches_numeric(self):
        loss = LogisticLoss(regularization=0.1)
        rng = np.random.default_rng(0)
        w = rng.normal(size=4)
        x = rng.normal(size=4)
        x /= 2 * np.linalg.norm(x)
        got = loss.gradient(w, x, -1.0)
        want = numeric_gradient(loss, w, x, -1.0)
        np.testing.assert_allclose(got, want, atol=1e-5)

    def test_batch_gradient_is_mean_of_gradients(self):
        loss = LogisticLoss(regularization=0.01)
        rng = np.random.default_rng(1)
        X = rng.normal(size=(7, 3)) / 3
        y = np.where(rng.random(7) > 0.5, 1.0, -1.0)
        w = rng.normal(size=3)
        want = np.mean([loss.gradient(w, X[i], y[i]) for i in range(7)], axis=0)
        np.testing.assert_allclose(loss.batch_gradient(w, X, y), want, atol=1e-12)

    def test_batch_value_is_mean_of_values(self):
        loss = LogisticLoss()
        rng = np.random.default_rng(2)
        X = rng.normal(size=(5, 3)) / 3
        y = np.ones(5)
        w = rng.normal(size=3)
        want = np.mean([loss.value(w, X[i], y[i]) for i in range(5)])
        assert loss.batch_value(w, X, y) == pytest.approx(want)

    def test_properties_unregularized(self):
        props = LogisticLoss().properties()
        assert props.lipschitz == 1.0
        assert props.smoothness == 1.0
        assert props.strong_convexity == 0.0
        assert not props.is_strongly_convex

    def test_properties_tight_smoothness(self):
        props = LogisticLoss(tight_smoothness=True).properties()
        assert props.smoothness == 0.25

    def test_properties_regularized_match_paper(self):
        # Paper Section 2: L = 1 + lam*R, beta = 1 + lam, gamma = lam.
        lam, R = 0.01, 100.0
        props = LogisticLoss(regularization=lam).properties(radius=R)
        assert props.lipschitz == pytest.approx(1 + lam * R)
        assert props.smoothness == pytest.approx(1 + lam)
        assert props.strong_convexity == pytest.approx(lam)
        assert props.is_strongly_convex

    def test_regularized_properties_require_radius(self):
        with pytest.raises(ValueError, match="radius"):
            LogisticLoss(regularization=0.1).properties()

    @given(z=st.floats(-30, 30))
    @settings(max_examples=50, deadline=None)
    def test_margin_derivative_bounded_by_one(self, z):
        deriv = float(LogisticLoss().margin_derivative(np.asarray(z)))
        assert -1.0 <= deriv <= 0.0

    @given(z=st.floats(-700, 700))
    @settings(max_examples=50, deadline=None)
    def test_margin_loss_finite_and_nonnegative(self, z):
        value = float(LogisticLoss().margin_loss(np.asarray(z)))
        assert np.isfinite(value)
        assert value >= 0.0

    def test_gradient_norm_within_lipschitz(self, rng):
        loss = LogisticLoss()
        for _ in range(20):
            w = rng.normal(size=6)
            x = rng.normal(size=6)
            x /= max(np.linalg.norm(x), 1.0)
            assert np.linalg.norm(loss.gradient(w, x, 1.0)) <= 1.0 + 1e-12

    def test_with_regularization_clone(self):
        loss = LogisticLoss(tight_smoothness=True)
        clone = loss.with_regularization(0.5)
        assert clone.regularization == 0.5
        assert clone.tight_smoothness is True
        assert loss.regularization == 0.0

    def test_predict_signs(self):
        loss = LogisticLoss()
        w = np.array([1.0, 0.0])
        X = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0]])
        np.testing.assert_array_equal(loss.predict(w, X), [1.0, -1.0, 1.0])

    def test_negative_regularization_rejected(self):
        with pytest.raises(ValueError):
            LogisticLoss(regularization=-0.1)


class TestHuberSVMLoss:
    def test_regions(self):
        loss = HuberSVMLoss(smoothing=0.5)
        # z > 1 + h -> 0
        assert float(loss.margin_loss(np.asarray(2.0))) == 0.0
        # z < 1 - h -> 1 - z
        assert float(loss.margin_loss(np.asarray(0.0))) == pytest.approx(1.0)
        # quadratic region
        assert float(loss.margin_loss(np.asarray(1.0))) == pytest.approx(
            (1 + 0.5 - 1.0) ** 2 / (4 * 0.5)
        )

    def test_continuity_at_region_boundaries(self):
        loss = HuberSVMLoss(smoothing=0.1)
        h = 0.1
        for z0 in (1 - h, 1 + h):
            left = float(loss.margin_loss(np.asarray(z0 - 1e-9)))
            right = float(loss.margin_loss(np.asarray(z0 + 1e-9)))
            assert left == pytest.approx(right, abs=1e-6)

    def test_derivative_continuity(self):
        loss = HuberSVMLoss(smoothing=0.1)
        h = 0.1
        for z0 in (1 - h, 1 + h):
            left = float(loss.margin_derivative(np.asarray(z0 - 1e-9)))
            right = float(loss.margin_derivative(np.asarray(z0 + 1e-9)))
            assert left == pytest.approx(right, abs=1e-6)

    def test_gradient_matches_numeric(self):
        loss = HuberSVMLoss(smoothing=0.2, regularization=0.05)
        rng = np.random.default_rng(3)
        w = rng.normal(size=4) * 0.3
        x = rng.normal(size=4)
        x /= 2 * np.linalg.norm(x)
        got = loss.gradient(w, x, 1.0)
        want = numeric_gradient(loss, w, x, 1.0)
        np.testing.assert_allclose(got, want, atol=1e-5)

    def test_properties(self):
        props = HuberSVMLoss(smoothing=0.1).properties()
        assert props.lipschitz == 1.0
        assert props.smoothness == pytest.approx(1.0 / 0.2)
        assert props.strong_convexity == 0.0

    def test_paper_appendix_b_constants(self):
        # Appendix B: L <= 1 and beta <= 1/(2h).
        for h in (0.05, 0.1, 0.5):
            props = HuberSVMLoss(smoothing=h).properties()
            assert props.lipschitz <= 1.0
            assert props.smoothness == pytest.approx(1.0 / (2 * h))

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            HuberSVMLoss(smoothing=0.0)

    @given(z=st.floats(-5, 5), h=st.floats(0.01, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_derivative_bounded(self, z, h):
        deriv = float(HuberSVMLoss(smoothing=h).margin_derivative(np.asarray(z)))
        assert -1.0 - 1e-12 <= deriv <= 0.0 + 1e-12

    @given(z=st.floats(-5, 5), h=st.floats(0.01, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_loss_nonnegative_and_convexish(self, z, h):
        loss = HuberSVMLoss(smoothing=h)
        assert float(loss.margin_loss(np.asarray(z))) >= 0.0


class TestLeastSquaresLoss:
    def test_margin_form(self):
        loss = LeastSquaresLoss()
        # (1 - z)^2 / 2 at z = 0 -> 0.5
        assert float(loss.margin_loss(np.asarray(0.0))) == pytest.approx(0.5)

    def test_lipschitz_requires_bound(self):
        assert LeastSquaresLoss().margin_lipschitz() == float("inf")
        assert LeastSquaresLoss(margin_bound=2.0).margin_lipschitz() == 3.0

    def test_properties_resolve_radius(self):
        props = LeastSquaresLoss().properties(radius=5.0)
        assert props.lipschitz == pytest.approx(6.0)

    def test_gradient_matches_numeric(self):
        loss = LeastSquaresLoss(regularization=0.1)
        rng = np.random.default_rng(4)
        w = rng.normal(size=3)
        x = rng.normal(size=3)
        x /= 2 * np.linalg.norm(x)
        got = loss.gradient(w, x, -1.0)
        want = numeric_gradient(loss, w, x, -1.0)
        np.testing.assert_allclose(got, want, atol=1e-5)


class TestHingeLoss:
    def test_values(self):
        loss = HingeLoss()
        assert float(loss.margin_loss(np.asarray(2.0))) == 0.0
        assert float(loss.margin_loss(np.asarray(0.0))) == 1.0
        assert float(loss.margin_loss(np.asarray(-1.0))) == 2.0

    def test_smoothness_is_infinite(self):
        assert HingeLoss().margin_smoothness() == float("inf")

    def test_sensitivity_refuses_hinge(self):
        # The library must refuse to compute a privacy bound for a
        # non-smooth loss rather than silently produce a wrong one.
        from repro.core.sensitivity import convex_constant_step

        with pytest.raises(ValueError, match="smooth"):
            convex_constant_step(HingeLoss().properties(), eta=0.1, passes=1)


class TestLossHierarchy:
    """The scalar-first base / margin-form specialization split."""

    @pytest.mark.parametrize(
        "loss",
        [
            LogisticLoss(),
            HuberSVMLoss(smoothing=0.2),
            LeastSquaresLoss(margin_bound=2.0),
            HingeLoss(),
        ],
    )
    def test_builtin_losses_are_margin_losses(self, loss):
        assert isinstance(loss, MarginLoss)
        assert isinstance(loss, Loss)

    def test_scalar_only_subclass_instantiates_and_batches(self):
        """A third-party Loss defining only value/gradient must work: the
        defaulted batch methods loop over rows."""

        class TinyQuadraticLoss(Loss):
            def value(self, w, x, y):
                return 0.5 * (float(np.dot(w, x)) - float(y)) ** 2

            def gradient(self, w, x, y):
                return (float(np.dot(w, x)) - float(y)) * np.asarray(
                    x, dtype=np.float64
                )

        loss = TinyQuadraticLoss()
        rng = np.random.default_rng(8)
        X = rng.normal(size=(9, 4))
        y = np.where(rng.random(9) > 0.5, 1.0, -1.0)
        w = rng.normal(size=4)
        want_grad = np.mean([loss.gradient(w, X[i], y[i]) for i in range(9)], axis=0)
        want_val = np.mean([loss.value(w, X[i], y[i]) for i in range(9)])
        np.testing.assert_allclose(loss.batch_gradient(w, X, y), want_grad, atol=1e-12)
        assert loss.batch_value(w, X, y) == pytest.approx(want_val)

    def test_scalar_only_subclass_has_no_properties(self):
        class OpaqueLoss(Loss):
            def value(self, w, x, y):
                return 0.0

            def gradient(self, w, x, y):
                return np.zeros_like(w)

        with pytest.raises(NotImplementedError, match="MarginLoss"):
            OpaqueLoss().properties()

    def test_margin_batch_gradient_matches_row_loop(self):
        """The vectorized MarginLoss batch pair agrees with the base-class
        row-loop fallback on the same instance."""
        loss = LogisticLoss(regularization=0.05)
        rng = np.random.default_rng(3)
        X = rng.normal(size=(15, 5))
        X /= np.maximum(np.linalg.norm(X, axis=1, keepdims=True), 1.0)
        y = np.where(rng.random(15) > 0.5, 1.0, -1.0)
        w = rng.normal(size=5)
        vectorized = loss.batch_gradient(w, X, y)
        fallback = Loss.batch_gradient(loss, w, X, y)
        np.testing.assert_allclose(vectorized, fallback, rtol=0, atol=1e-12)
        assert loss.batch_value(w, X, y) == pytest.approx(
            Loss.batch_value(loss, w, X, y), abs=1e-12
        )
