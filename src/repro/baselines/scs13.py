"""SCS13 — Song, Chaudhuri and Sarwate, "Stochastic gradient descent with
differentially private updates" (GlobalSIP 2013).

The white-box baseline: noise is added to *every* (mini-batch) gradient
update, calibrated so each iterate is differentially private. Following the
paper's experimental setup (Section 4.1):

* step size ``eta_t = 1 / sqrt(t)`` (Table 4, all four scenarios);
* mini-batches of size b reduce the per-update gradient sensitivity from
  ``2L`` to ``2L/b``;
* SCS13 originally covers one pass; the paper "modif[ies it] to support
  multi-passes over the data", which we implement by sequential
  composition across passes — each pass receives an ``eps/k`` (and
  ``delta/k``) share, while updates *within* a pass touch disjoint batches
  and compose in parallel;
* pure ε-DP uses per-update spherical Laplace noise, (ε,δ)-DP uses
  per-update Gaussian noise.

Implementation note: this is precisely the "deep code change" the paper's
integration study talks about — expressed here as the ``gradient_noise``
hook of :class:`repro.optim.PSGD`, and in the RDBMS substrate as a modified
UDA ``transition`` function (:mod:`repro.rdbms.bismarck`).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.baselines.common import BaselineResult, EpochNoiseBuffer
from repro.core.mechanisms import (
    GaussianMechanism,
    NoiseMechanism,
    PrivacyParameters,
    SphericalLaplaceMechanism,
)
from repro.optim.losses import Loss
from repro.optim.projection import IdentityProjection, L2BallProjection, Projection
from repro.optim.psgd import PSGD, PSGDConfig
from repro.optim.schedules import InverseSqrtTSchedule
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import (
    check_matrix_labels,
    check_positive,
    check_positive_int,
    check_unit_ball,
)


def scs13_noise_scale(
    lipschitz: float, epsilon_per_pass: float, batch_size: int
) -> float:
    """Per-update Laplace scale: sensitivity ``2L/b`` at budget ε_pass.

    The per-update gradient difference between neighbouring datasets is at
    most ``2L`` (both gradients have norm <= L), shrunk by mini-batch
    averaging.
    """
    check_positive(lipschitz, "lipschitz")
    check_positive(epsilon_per_pass, "epsilon_per_pass")
    check_positive_int(batch_size, "batch_size")
    return (2.0 * lipschitz / batch_size) / epsilon_per_pass


def scs13_gaussian_sigma(
    lipschitz: float,
    epsilon_per_pass: float,
    delta_per_pass: float,
    batch_size: int,
) -> float:
    """Per-update Gaussian sigma for the (ε,δ) variant (Theorem 3 form)."""
    check_positive(delta_per_pass, "delta_per_pass")
    sensitivity = 2.0 * lipschitz / batch_size
    c = math.sqrt(2.0 * math.log(1.25 / delta_per_pass))
    return c * sensitivity / epsilon_per_pass


def scs13_train(
    X: np.ndarray,
    y: np.ndarray,
    loss: Loss,
    epsilon: float,
    *,
    delta: float = 0.0,
    passes: int = 1,
    batch_size: int = 1,
    radius: Optional[float] = None,
    eta0: float = 1.0,
    random_state: RandomState = None,
) -> BaselineResult:
    """Train with SCS13's per-update noise.

    Parameters
    ----------
    epsilon, delta:
        The *total* guarantee; the per-pass share is ``epsilon/passes``
        (and ``delta/passes``), with parallel composition inside a pass.
    radius:
        Optional L2-ball constraint; the paper's strongly convex runs use
        ``R = 1/lambda``.
    eta0:
        Numerator of the ``eta0/sqrt(t)`` schedule.
    """
    X, y = check_matrix_labels(X, y)
    check_unit_ball(X)
    check_positive(epsilon, "epsilon")
    check_positive_int(passes, "passes")
    check_positive_int(batch_size, "batch_size")
    privacy = PrivacyParameters(epsilon, delta)

    projection: Projection
    if radius is not None:
        projection = L2BallProjection(radius)
        properties = loss.properties(radius=radius)
    else:
        projection = IdentityProjection()
        properties = loss.properties()
    lipschitz = properties.lipschitz
    if not np.isfinite(lipschitz):
        raise ValueError("SCS13 requires a finite Lipschitz constant")

    epsilon_per_pass = epsilon / passes
    m, d = X.shape

    # Per-update noise == one mechanism draw at sensitivity 2L/b and the
    # per-pass budget. Routing it through the mechanism's ``sample_batch``
    # blocks a whole epoch's draws into vectorized RNG calls while
    # consuming the generator identically to the historical per-step code
    # (the sample_batch contract) — every update's only stream consumption
    # here is its noise draw, so a seeded run releases the same model.
    sensitivity = 2.0 * lipschitz / batch_size
    if privacy.is_pure:
        mechanism: NoiseMechanism = SphericalLaplaceMechanism()
        noise_privacy = PrivacyParameters(epsilon_per_pass)
        per_step_scale = scs13_noise_scale(lipschitz, epsilon_per_pass, batch_size)
    else:
        mechanism = GaussianMechanism()
        noise_privacy = PrivacyParameters(epsilon_per_pass, delta / passes)
        per_step_scale = scs13_gaussian_sigma(
            lipschitz, epsilon_per_pass, delta / passes, batch_size
        )

    buffer = EpochNoiseBuffer(
        lambda n, block_rng: mechanism.sample_batch(
            n, d, sensitivity, noise_privacy, block_rng
        ),
        steps_per_epoch=-(-m // batch_size),
    )

    def gradient_noise(t: int, dimension: int, rng: np.random.Generator) -> np.ndarray:
        return buffer.next(rng)

    config = PSGDConfig(
        schedule=InverseSqrtTSchedule(eta0),
        passes=passes,
        batch_size=batch_size,
        projection=projection,
    )
    engine = PSGD(loss, config, gradient_noise=gradient_noise)
    result = engine.run(X, y, random_state=as_generator(random_state))
    return BaselineResult(
        model=result.model,
        privacy=privacy,
        algorithm="SCS13",
        psgd=result,
        loss=loss,
        per_step_noise_scale=per_step_scale,
        noise_draws=buffer.rows_served,
    )
