"""The dataset container used throughout the library."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_in_range, check_matrix_labels


@dataclass
class Dataset:
    """A named classification dataset.

    ``labels`` are {-1, +1} for binary tasks and {0, ..., C-1} for
    multiclass tasks (``num_classes > 2``); the one-vs-rest trainer converts
    as needed.
    """

    name: str
    features: np.ndarray
    labels: np.ndarray
    num_classes: int = 2

    def __post_init__(self) -> None:
        self.features, self.labels = check_matrix_labels(
            self.features, self.labels, name=self.name
        )
        if self.num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {self.num_classes}")

    @property
    def size(self) -> int:
        """Number of examples m."""
        return int(self.features.shape[0])

    @property
    def dimension(self) -> int:
        """Number of features d."""
        return int(self.features.shape[1])

    def split(
        self,
        test_fraction: float = 0.5,
        random_state: RandomState = None,
    ) -> Tuple["Dataset", "Dataset"]:
        """Random train/test split (the paper splits Protein in halves)."""
        check_in_range(
            test_fraction, "test_fraction", 0.0, 1.0, inclusive_low=False, inclusive_high=False
        )
        rng = as_generator(random_state)
        order = rng.permutation(self.size)
        cut = self.size - int(round(self.size * test_fraction))
        if cut <= 0 or cut >= self.size:
            raise ValueError(
                f"test_fraction={test_fraction} leaves an empty split for "
                f"m={self.size}"
            )
        train_idx, test_idx = order[:cut], order[cut:]
        return (
            replace(
                self,
                name=f"{self.name}-train",
                features=self.features[train_idx],
                labels=self.labels[train_idx],
            ),
            replace(
                self,
                name=f"{self.name}-test",
                features=self.features[test_idx],
                labels=self.labels[test_idx],
            ),
        )

    def subsample(self, size: int, random_state: RandomState = None) -> "Dataset":
        """Uniform subsample without replacement (scalability sweeps)."""
        if not 0 < size <= self.size:
            raise ValueError(f"size must be in (0, {self.size}], got {size}")
        rng = as_generator(random_state)
        idx = rng.choice(self.size, size=size, replace=False)
        return replace(
            self,
            name=f"{self.name}-sub{size}",
            features=self.features[idx],
            labels=self.labels[idx],
        )

    def binarize(self, positive_class: int) -> "Dataset":
        """One-vs-rest view: ``positive_class`` becomes +1, the rest -1."""
        if self.num_classes == 2:
            raise ValueError("dataset is already binary")
        labels = np.where(self.labels == positive_class, 1.0, -1.0)
        return Dataset(
            name=f"{self.name}-ovr{positive_class}",
            features=self.features,
            labels=labels,
            num_classes=2,
        )


@dataclass(frozen=True)
class TrainTestPair:
    """A convenience bundle for loaders that produce both splits at once."""

    train: Dataset
    test: Dataset

    def __iter__(self):
        return iter((self.train, self.test))
