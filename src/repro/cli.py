"""Command-line interface.

Six subcommands::

    python -m repro train --dataset protein --epsilon 0.2 [--delta auto]
        Train a bolt-on private model on a registry dataset and report
        accuracy, sensitivity, and noise magnitude.

    python -m repro reproduce {table2,table3,table4,fig1,fig2} [options]
        Regenerate one of the cheap paper artefacts and print it. (The
        accuracy figures take minutes; run the benchmark harness for
        those: ``pytest benchmarks/ --benchmark-only``.)

    python -m repro submit --dataset protein --epsilon 0.2 [--budget 1.0]
        Drive one job through the multi-tenant training service — budget
        reservation, scheduling, the bolt-on release, the receipt — and
        report the job record.

    python -m repro serve --jobs 50 --workers 4 --tables 2 [--state-dir DIR]
        The async scheduling demo: a synthetic mixed-tenant workload
        over ``--tables`` tables submitted to a running dispatch loop
        (``submit()`` returns immediately; background workers fuse and
        train the queue, overlapping scans on distinct tables thanks to
        per-table engine domains), reporting submit latency, the
        per-table scan overlap achieved, fused-vs-sequential page
        requests, cache hits for resubmitted jobs, per-status job
        counts, and every tenant's budget statement. Warns when
        ``--workers`` exceeds the tables with queued work (same-table
        scans serialize, so the extra workers cannot overlap I/O). With
        ``--state-dir`` the registry + budgets autosave there and a
        restarted serve resumes from the snapshot; ``--metrics-file``
        additionally exports the telemetry registry (Prometheus text,
        or a JSON dump when the path ends in ``.json``) after every
        dispatched window. The end-of-run summary renders from the same
        registry, so the report and the export can never disagree.

    python -m repro status JOB {--url http://HOST:PORT --token T | --state-dir DIR}
        One job's status and record summary, from a running HTTP
        front-end or from a prior serve run's state directory.

    python -m repro trace JOB {--state-dir DIR | --url ... --token T} [--json]
        Print one job's lifecycle trace — the monotonic-clock spans
        (admit, queued, claim, scan, epilogue, commit) its record
        carries — from a prior serve run's state directory or over the
        HTTP API. ``--json`` emits the raw span payload instead of the
        pretty table.

``serve --http PORT`` additionally starts the ``repro-api/v1`` HTTP
front-end (``repro.api``) and drives the demo workload through
``ServiceClient`` over a real socket; ``--token-file`` maps bearer
tokens to principals (generated and written when the file is missing),
and ``--hold`` keeps serving after the demo until SIGTERM/SIGINT or
``POST /v1/admin/shutdown`` — either path drains the autosave window
before exit, so a containerized deploy never tears the WAL tail.
``submit --url http://... --token ...`` submits through the same
client, making the CLI the API's first consumer.

The CLI is intentionally a thin shell over the library — everything it
does is one public API call.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Optional, Sequence

from repro.core.estimators import BoltOnPrivateClassifier
from repro.data.registry import REGISTRY
from repro.evaluation.figures import (
    figure1_integration,
    figure2_scalability,
    load_experiment_dataset,
)
from repro.evaluation.reporting import format_series, format_table
from repro.evaluation.tables import table2_rows, table3, table4_rows
from repro.optim.losses import LogisticLoss


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bolt-on differentially private SGD (Wu et al., SIGMOD 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train a private model on a dataset")
    train.add_argument(
        "--dataset", choices=sorted(REGISTRY), default="protein",
        help="registry dataset (synthetic stand-in)",
    )
    train.add_argument("--epsilon", type=float, required=True)
    train.add_argument(
        "--delta", default="0",
        help="'auto' for 1/m^2, or a float (0 = pure eps-DP)",
    )
    train.add_argument("--passes", type=int, default=10)
    train.add_argument("--batch-size", type=int, default=50)
    train.add_argument(
        "--regularization", type=float, default=1e-3,
        help="lambda; 0 selects the convex Algorithm 1",
    )
    train.add_argument("--loss", choices=("logistic", "huber"), default="logistic")
    train.add_argument("--scale", type=float, default=None,
                       help="dataset scale (default: registry default)")
    train.add_argument("--seed", type=int, default=0)

    reproduce = sub.add_parser("reproduce", help="regenerate a paper artefact")
    reproduce.add_argument(
        "artefact", choices=("table2", "table3", "table4", "fig1", "fig2"),
    )

    submit = sub.add_parser(
        "submit", help="run one job through the training service"
    )
    submit.add_argument(
        "--dataset", choices=sorted(REGISTRY), default="protein",
        help="registry dataset (synthetic stand-in)",
    )
    submit.add_argument("--epsilon", type=float, required=True)
    submit.add_argument("--delta", type=float, default=0.0)
    submit.add_argument(
        "--budget", type=float, default=None,
        help="the principal's epsilon cap on the table (default: 2x epsilon)",
    )
    submit.add_argument("--principal", default="analyst")
    submit.add_argument("--passes", type=int, default=5)
    submit.add_argument("--batch-size", type=int, default=50)
    submit.add_argument("--regularization", type=float, default=1e-3)
    submit.add_argument("--scale", type=float, default=None)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument(
        "--url", default=None, metavar="http://HOST:PORT",
        help="submit through a running HTTP front-end (repro serve --http) "
        "instead of spinning up an in-process service",
    )
    submit.add_argument(
        "--token", default=None,
        help="bearer token for --url (maps to the submitting principal)",
    )
    submit.add_argument(
        "--table", default=None,
        help="server-side table to train against (--url mode only)",
    )
    submit.add_argument(
        "--wait-seconds", type=float, default=600.0,
        help="--url mode: how long to poll for the job to finish",
    )

    serve = sub.add_parser(
        "serve", help="demo the async shared-scan server on a mixed-tenant workload"
    )
    serve.add_argument("--jobs", type=int, default=50, help="jobs to submit")
    serve.add_argument("--tenants", type=int, default=4)
    serve.add_argument("--rows", type=int, default=2000)
    serve.add_argument("--dim", type=int, default=20)
    serve.add_argument("--passes", type=int, default=2)
    serve.add_argument("--batch-size", type=int, default=50)
    serve.add_argument(
        "--epsilon", type=float, default=0.05, help="epsilon per job"
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--workers", type=int, default=4,
        help="background dispatch worker threads (the async loop)",
    )
    serve.add_argument(
        "--tables", type=int, default=2,
        help="registered tables to spread the workload over; workers "
        "overlap scans on distinct tables (per-table engine domains)",
    )
    serve.add_argument(
        "--state-dir", default=None,
        help="autosave registry + budgets here and resume from a prior run",
    )
    serve.add_argument(
        "--no-fuse", action="store_true",
        help="force the sequential dispatch path (the reference)",
    )
    serve.add_argument(
        "--elevator", action="store_true",
        help="shared-cursor dispatch: jobs submitted mid-scan board the "
        "running scan loop at its current position instead of waiting "
        "for the next batching window",
    )
    serve.add_argument(
        "--metrics-file", default=None,
        help="export the metrics registry here after every dispatched "
        "window (atomic replace; a .json suffix selects the JSON dump, "
        "anything else the Prometheus text exposition)",
    )
    serve.add_argument(
        "--backend", choices=("memory", "sqlite"), default="memory",
        help="table storage: 'memory' (in-process arrays) or 'sqlite' "
        "(each table bulk-loaded into a SQLite-WAL heap file; scans pay "
        "real page I/O through the buffer pool)",
    )
    serve.add_argument(
        "--sqlite-dir", default=None,
        help="directory for the SQLite heap files (--backend sqlite); "
        "defaults to <state-dir>/heaps, or a temp dir without --state-dir",
    )
    serve.add_argument(
        "--http", type=int, default=None, metavar="PORT",
        help="start the repro-api/v1 HTTP front-end on PORT (0 = pick an "
        "ephemeral port) and drive the demo workload through ServiceClient "
        "over a real socket",
    )
    serve.add_argument(
        "--token-file", default=None,
        help="principal:token lines mapping bearer tokens to principals "
        "(the 'admin' principal's token guards POST /v1/admin/shutdown); "
        "a missing file is generated with demo tokens and written back",
    )
    serve.add_argument(
        "--hold", action="store_true",
        help="with --http: keep serving after the demo workload until "
        "SIGTERM/SIGINT or POST /v1/admin/shutdown (draining the autosave "
        "window before exit)",
    )

    status = sub.add_parser(
        "status",
        help="one job's status from a running HTTP front-end or a state dir",
    )
    status.add_argument("job_id", help="the job id (e.g. job-00001)")
    status.add_argument(
        "--url", default=None, metavar="http://HOST:PORT",
        help="a running HTTP front-end (repro serve --http)",
    )
    status.add_argument("--token", default=None, help="bearer token for --url")
    status.add_argument(
        "--state-dir", default=None,
        help="a prior serve run's state directory (instead of --url)",
    )

    trace = sub.add_parser(
        "trace",
        help="print one job's lifecycle trace from a state dir or over HTTP",
    )
    trace.add_argument("job_id", help="the job id (e.g. job-00001)")
    trace.add_argument(
        "--state-dir", default=None,
        help="a prior serve run's state directory (snapshot + receipt log)",
    )
    trace.add_argument(
        "--url", default=None, metavar="http://HOST:PORT",
        help="a running HTTP front-end (instead of --state-dir)",
    )
    trace.add_argument("--token", default=None, help="bearer token for --url")
    trace.add_argument(
        "--json", action="store_true",
        help="emit the record's raw trace payload as JSON",
    )
    return parser


def _train(args: argparse.Namespace) -> int:
    pair = load_experiment_dataset(args.dataset, scale=args.scale, seed=args.seed)
    train_ds, test_ds = pair.train, pair.test
    if train_ds.num_classes != 2:
        print(
            f"{args.dataset} is multiclass; the CLI trains binary models — "
            "use repro.multiclass.train_one_vs_rest from Python",
            file=sys.stderr,
        )
        return 2
    delta = 1.0 / train_ds.size**2 if args.delta == "auto" else float(args.delta)

    classifier = BoltOnPrivateClassifier(
        epsilon=args.epsilon,
        delta=delta,
        loss=args.loss,
        regularization=args.regularization,
        passes=args.passes,
        batch_size=args.batch_size,
    ).fit(train_ds.features, train_ds.labels, random_state=args.seed)

    print(f"dataset         : {train_ds.name} (m={train_ds.size}, d={train_ds.dimension})")
    print(f"privacy         : {classifier.privacy_}")
    print(f"sensitivity     : {classifier.sensitivity_:.6g} "
          f"({classifier.result_.sensitivity.regime})")
    print(f"noise norm      : {classifier.noise_norm_:.6g}")
    print(f"test accuracy   : {classifier.score(test_ds.features, test_ds.labels):.4f}")
    return 0


def _reproduce(args: argparse.Namespace) -> int:
    if args.artefact == "table2":
        print(format_table(table2_rows()))
    elif args.artefact == "table3":
        print(format_table(table3()))
    elif args.artefact == "table4":
        props = LogisticLoss(regularization=1e-4).properties(radius=1e4)
        print(format_table(table4_rows(72876, props)))
    elif args.artefact == "fig1":
        fig = figure1_integration()
        for key, value in fig["meta"].items():
            print(f"{key}: {value}")
    elif args.artefact == "fig2":
        fig = figure2_scalability()
        print(format_series(
            "Figure 2(a) (simulated minutes/epoch)", "millions",
            fig["x"], fig["series"],
        ))
    return 0


def _submit_remote(args: argparse.Namespace) -> int:
    """``repro submit --url``: the same verb, spoken through the client."""
    from repro.api import ServiceClient
    from repro.optim.losses import LogisticLoss as _Logistic
    from repro.service import JobStatus, ServiceError

    if args.table is None:
        print("submit --url needs --table (the server-side table name)",
              file=sys.stderr)
        return 2
    client = ServiceClient(args.url, token=args.token)
    try:
        view = client.submit(
            args.principal,
            args.table,
            _Logistic(regularization=args.regularization),
            epsilon=args.epsilon,
            delta=args.delta,
            passes=args.passes,
            batch_size=args.batch_size,
            seed=args.seed,
        )
        if not view.done:
            view = client.wait(view.job_id, timeout=args.wait_seconds)
        statements = [
            statement
            for statement in client.budgets()
            if statement.principal == args.principal
            and statement.table == args.table
        ]
    except (ServiceError, TimeoutError) as error:
        code = getattr(error, "code", "error")
        print(f"error: {code}: {error}", file=sys.stderr)
        return 2
    print(f"job             : {view.job_id} ({args.principal} on {args.table})")
    print(f"status          : {view.status}")
    if view.status is JobStatus.COMPLETED:
        print(f"dispatch        : {view.dispatch} (group of {view.group_size})")
        print(f"pages charged   : {view.group_pages}")
        print(f"sensitivity     : {view.sensitivity:.6g}")
        print(f"noise norm      : {view.noise_norm:.6g}")
        if view.receipt is not None:
            print(f"receipt         : #{view.receipt.sequence} for "
                  f"{view.receipt.parameters}")
    elif view.error:
        print(f"reason          : {view.error}")
    if statements:
        statement = statements[0]
        print(
            f"budget          : cap {statement.cap}, spent "
            f"({statement.spent[0]:g}, {statement.spent[1]:g}), "
            f"available eps {statement.available_epsilon:g}"
        )
    return 0 if view.status is JobStatus.COMPLETED else 1


def _submit(args: argparse.Namespace) -> int:
    from repro.optim.losses import LogisticLoss as _Logistic
    from repro.service import JobStatus, TrainingService

    if args.url is not None:
        return _submit_remote(args)
    pair = load_experiment_dataset(args.dataset, scale=args.scale, seed=args.seed)
    train_ds, test_ds = pair.train, pair.test
    if train_ds.num_classes != 2:
        print(
            f"{args.dataset} is multiclass; the service CLI submits binary "
            "jobs — use repro.service.TrainingService from Python",
            file=sys.stderr,
        )
        return 2
    budget = args.budget if args.budget is not None else 2.0 * args.epsilon
    table_name = train_ds.name.replace("-", "_")  # catalog names are [A-Za-z0-9_]

    service = TrainingService(scan_seed=args.seed)
    service.register_table(table_name, train_ds.features, train_ds.labels)
    service.open_budget(args.principal, table_name, budget, args.delta)
    record = service.submit(
        args.principal,
        table_name,
        _Logistic(regularization=args.regularization),
        epsilon=args.epsilon,
        delta=args.delta,
        passes=args.passes,
        batch_size=args.batch_size,
        seed=args.seed,
    )
    service.drain()

    print(f"job             : {record.job_id} ({args.principal} on {table_name})")
    print(f"status          : {record.status}")
    if record.status is JobStatus.COMPLETED:
        loss = record.job.candidate.loss
        accuracy = float(
            (loss.predict(record.model, test_ds.features) == test_ds.labels).mean()
        )
        print(f"dispatch        : {record.dispatch} (group of {record.group_size})")
        print(f"pages charged   : {record.group_pages}")
        print(f"sensitivity     : {record.sensitivity:.6g}")
        print(f"noise norm      : {record.noise_norm:.6g}")
        print(f"receipt         : #{record.receipt.sequence} for {record.receipt.parameters}")
        print(f"test accuracy   : {accuracy:.4f}")
    elif record.error:
        print(f"reason          : {record.error}")
    statement = service.budgets()[0]
    print(
        f"budget          : cap {statement.cap}, spent "
        f"({statement.spent[0]:g}, {statement.spent[1]:g}), "
        f"available eps {statement.available_epsilon:g}"
    )
    return 0 if record.status is JobStatus.COMPLETED else 1


def _serve_tokens(token_file, tenants):
    """The bearer-token map for ``serve --http``: token -> principal.

    ``token_file`` holds ``principal:token`` lines (``#`` comments); the
    ``admin`` principal's token guards ``POST /v1/admin/shutdown``. When
    the path is missing (or None), deterministic demo tokens are
    generated — and written back to the path, if one was given, so a
    follow-up ``repro submit --url --token $(...)`` can read them. Demo
    tokens are for the demo: a real deploy writes its own file.
    """
    entries = {}
    if token_file is not None and pathlib.Path(token_file).exists():
        for line in pathlib.Path(token_file).read_text().splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            principal, _, token = line.partition(":")
            if not token:
                raise ValueError(
                    f"{token_file}: expected 'principal:token', got {line!r}"
                )
            entries[principal.strip()] = token.strip()
    else:
        entries = {tenant: f"{tenant}-token" for tenant in tenants}
        entries["admin"] = "admin-token"
        if token_file is not None:
            lines = [f"{p}:{t}" for p, t in sorted(entries.items())]
            pathlib.Path(token_file).write_text("\n".join(lines) + "\n")
    admin_token = entries.pop("admin", None)
    tokens = {token: principal for principal, token in entries.items()}
    return tokens, admin_token


def _serve(args: argparse.Namespace) -> int:
    import signal
    import threading
    import time

    import numpy as np

    from repro.data.synthetic import linearly_separable_binary
    from repro.obs.summary import serve_summary_lines
    from repro.optim.losses import LogisticLoss as _Logistic
    from repro.service import TrainingService

    if args.workers < 1:
        print("serve needs at least one worker", file=sys.stderr)
        return 2
    if args.tables < 1:
        print("serve needs at least one table", file=sys.stderr)
        return 2
    if args.hold and args.http is None:
        print("--hold needs --http (there is nothing to hold open)", file=sys.stderr)
        return 2
    tenants = [f"tenant-{i}" for i in range(max(1, args.tenants))]
    table_names = [f"shared_{t}" for t in range(args.tables)]
    # Jobs rotate tenants first, then tables — how many tables actually
    # receive queued work bounds the scan overlap the workers can reach.
    tables_used = min(args.tables, max(1, -(-args.jobs // len(tenants))))
    if args.workers > tables_used:
        print(
            f"warning: --workers {args.workers} exceeds the {tables_used} "
            f"table(s) with queued work; scans of the same table serialize "
            f"(per-table engine domains), so at most {tables_used} scan(s) "
            f"overlap and the extra workers only overlap epilogues — "
            f"spread jobs over more --tables to use the full fleet",
            file=sys.stderr,
        )

    service = TrainingService(
        fuse=not args.no_fuse,
        scan_seed=args.seed,
        workers=args.workers,
        elevator=args.elevator,
        state_dir=args.state_dir,
        metrics_file=args.metrics_file,
    )
    sqlite_dir = None
    if args.backend == "sqlite":
        if args.sqlite_dir is not None:
            sqlite_dir = pathlib.Path(args.sqlite_dir)
        elif args.state_dir is not None:
            sqlite_dir = pathlib.Path(args.state_dir) / "heaps"
        else:
            import tempfile

            sqlite_dir = pathlib.Path(tempfile.mkdtemp(prefix="repro-heaps-"))
        sqlite_dir.mkdir(parents=True, exist_ok=True)
    table = None
    for t, name in enumerate(table_names):
        pair = linearly_separable_binary(
            "served", args.rows, 10, args.dim, random_state=args.seed + t
        )
        table = table if table is not None else pair.train
        if args.backend == "sqlite":
            service.register_table(
                name,
                pair.train.features,
                pair.train.labels,
                backend="sqlite",
                path=sqlite_dir / f"{name}.db",
            )
        else:
            service.register_table(name, pair.train.features, pair.train.labels)
    resumed = service.load_state() if args.state_dir else 0

    jobs_per_tenant = -(-args.jobs // len(tenants))
    jobs_per_account = max(1, -(-jobs_per_tenant // args.tables))
    for index, tenant in enumerate(tenants):
        # The last tenant gets roughly half the allowance it needs, so the
        # tail of its submissions exercises admission-control rejection.
        # (A resumed run already has the accounts — budgets are durable.)
        share = (
            jobs_per_account
            if index < len(tenants) - 1
            else max(1, jobs_per_account // 2)
        )
        for name in table_names:
            if service.ledger.has_account(tenant, name):
                continue
            service.open_budget(tenant, name, args.epsilon * share + 1e-9)

    # The optional HTTP front-end: the demo workload then rides
    # ServiceClient over a real socket — the CLI is the API's first
    # consumer, and the submit latencies below include the wire.
    api_server = None
    clients = {}
    stop_event = threading.Event()
    if args.http is not None:
        from repro.api import ServiceApiServer, ServiceClient

        tokens, admin_token = _serve_tokens(args.token_file, tenants)
        api_server = ServiceApiServer(
            service, tokens, admin_token=admin_token, port=args.http
        ).start()
        clients = {
            principal: ServiceClient(api_server.url, token)
            for token, principal in tokens.items()
        }
        missing = [t for t in tenants if t not in clients]
        if missing:
            print(
                f"error: token file grants no token to {missing[0]!r} "
                "(every tenant in the demo workload needs one)",
                file=sys.stderr,
            )
            api_server.close()
            return 2

    # A containerized deploy stops with SIGTERM: finish the workload
    # path we are on, drain the autosave window, and only then exit —
    # never tear the WAL tail. (Handlers only install from the main
    # thread; elsewhere — e.g. tests driving main() — the default
    # disposition stays.)
    def _graceful(signum, frame):
        stop_event.set()
        if api_server is not None:
            api_server.request_shutdown()

    previous_handlers = {}
    try:
        for sig in (signal.SIGTERM, signal.SIGINT):
            previous_handlers[sig] = signal.signal(sig, _graceful)
    except ValueError:
        pass

    try:
        # The async loop: workers dispatch in the background while
        # submit() returns immediately — the per-call latency below is
        # the proof.
        service.start()
        lambdas = np.logspace(-4, -2, 5)
        submit_seconds = []
        for j in range(args.jobs):
            tenant = tenants[j % len(tenants)]
            table_name = table_names[(j // len(tenants)) % args.tables]
            loss = _Logistic(regularization=float(lambdas[j % len(lambdas)]))
            start = time.perf_counter()
            if clients:
                clients[tenant].submit(
                    tenant,
                    table_name,
                    loss,
                    epsilon=args.epsilon,
                    passes=args.passes,
                    batch_size=args.batch_size,
                    seed=1000 + j,
                )
            else:
                service.submit(
                    tenant,
                    table_name,
                    loss,
                    epsilon=args.epsilon,
                    passes=args.passes,
                    batch_size=args.batch_size,
                    seed=1000 + j,
                )
            submit_seconds.append(time.perf_counter() - start)
        drain_start = time.perf_counter()
        service.drain()
        drain_seconds = time.perf_counter() - drain_start
        if args.hold and api_server is not None and not stop_event.is_set():
            print(
                f"holding         : {api_server.url} serving until SIGTERM "
                "or POST /v1/admin/shutdown"
            )
            while not (
                stop_event.wait(0.1) or api_server.shutdown_requested.is_set()
            ):
                pass
            service.drain()  # jobs submitted during the hold finish too
        service.stop()
    finally:
        for sig, handler in previous_handlers.items():
            signal.signal(sig, handler)
        if api_server is not None:
            api_server.close()

    single_scan_pages = args.passes * table.size
    print(f"workload        : {args.jobs} jobs, {len(tenants)} tenants, "
          f"{args.tables} tables, m={table.size}, d={table.features.shape[1]}")
    mode = (
        "elevator (shared cursors)"
        if args.elevator
        else ("sequential (forced)" if args.no_fuse else "fused")
    )
    print(f"dispatch mode   : {mode}, {args.workers} workers")
    if api_server is not None:
        print(
            f"http front-end  : {api_server.url} (repro-api/v1, "
            f"{len(clients)} tenant tokens; submits rode the socket)"
        )
    if args.backend == "sqlite":
        print(f"storage backend : sqlite (WAL heaps under {sqlite_dir})")
    if resumed:
        print(f"resumed         : {resumed} records from {args.state_dir} "
              f"(cache hits serve them free)")
    print(f"submit latency  : max {max(submit_seconds) * 1e3:.2f} ms, "
          f"mean {np.mean(submit_seconds) * 1e3:.2f} ms "
          f"(never blocks on a scan)")
    print(f"drain           : {drain_seconds * 1e3:.1f} ms until quiescent")
    # The snapshot happens before the summary so its WAL counters (and
    # the metrics dump, if one is being exported) include it.
    if args.state_dir and service.durability["mode"] != "degraded":
        service.save_state()
    for line in serve_summary_lines(
        service,
        table_names=table_names,
        overlap_note=f" of {min(args.workers, tables_used)} possible "
                     f"({args.workers} workers, {tables_used} tables with work)",
        pages_note=f" ({single_scan_pages} = one job alone on its table)",
        state_dir=args.state_dir,
    ):
        print(line)
    return 0


def _record_source(args: argparse.Namespace):
    """Resolve ``--url`` / ``--state-dir`` into a record fetcher.

    Returns ``(fetch, where, code)``: ``fetch(job_id)`` yields a
    record-shaped object (a live :class:`JobRecord` or a wire
    :class:`JobView` — attribute-compatible), ``where`` names the source
    for error messages. On a usage/load error, ``fetch`` is None and
    ``code`` is the exit status to return.
    """
    from repro.service import TrainingService, WalCorruption

    if (args.url is None) == (args.state_dir is None):
        print("pass exactly one of --url or --state-dir", file=sys.stderr)
        return None, "", 2
    if args.url is not None:
        from repro.api import ServiceClient

        client = ServiceClient(args.url, token=args.token)
        return client.result, args.url, 0
    service = TrainingService()
    try:
        service.load_state(args.state_dir)
    except (OSError, ValueError, WalCorruption) as error:
        print(f"error: cannot load {args.state_dir}: {error}", file=sys.stderr)
        return None, "", 2
    return service.result, args.state_dir, 0


def _status(args: argparse.Namespace) -> int:
    from repro.service import JobStatus, ServiceError, UnknownJob

    fetch, where, code = _record_source(args)
    if fetch is None:
        return code
    try:
        record = fetch(args.job_id)
    except UnknownJob:
        print(f"error: no job {args.job_id!r} at {where}", file=sys.stderr)
        return 2
    except ServiceError as error:
        print(f"error: {getattr(error, 'code', 'error')}: {error}",
              file=sys.stderr)
        return 2
    print(f"job             : {record.job_id} "
          f"({record.job.principal} on {record.job.table})")
    print(f"status          : {record.status}")
    if record.error:
        print(f"reason          : {record.error}")
    if record.status is JobStatus.COMPLETED:
        print(f"dispatch        : {record.dispatch} (group of {record.group_size})")
        print(f"pages charged   : {record.group_pages}")
    return 0 if record.status is JobStatus.COMPLETED else 1


def _trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs.summary import trace_lines
    from repro.service import ServiceError, UnknownJob

    fetch, where, code = _record_source(args)
    if fetch is None:
        return code
    try:
        record = fetch(args.job_id)
    except UnknownJob:
        print(
            f"error: no job {args.job_id!r} in {where} "
            "(only records that reached the log/snapshot are durable)",
            file=sys.stderr,
        )
        return 2
    except ServiceError as error:
        print(f"error: {getattr(error, 'code', 'error')}: {error}",
              file=sys.stderr)
        return 2
    if args.json:
        payload = {
            "job_id": record.job_id,
            "principal": record.job.principal,
            "table": record.job.table,
            "status": str(record.status),
            "trace": record.trace.payload(),
        }
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        for line in trace_lines(record):
            print(line)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "train":
        return _train(args)
    if args.command == "submit":
        return _submit(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "status":
        return _status(args)
    if args.command == "trace":
        return _trace(args)
    return _reproduce(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main
    raise SystemExit(main())
