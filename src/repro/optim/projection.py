"""Projection operators for constrained SGD (equation (7) of the paper).

The paper's sensitivity argument carries over to constrained optimization
because projection onto a convex set is *non-expansive*:
``||Pi(u) - Pi(v)|| <= ||u - v||``. Every projector here is exercised by a
property test asserting exactly that inequality.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional, Sequence

import numpy as np

from repro.utils.validation import check_positive


class Projection(abc.ABC):
    """Projection onto a closed convex set C in R^d."""

    @abc.abstractmethod
    def __call__(self, w: np.ndarray) -> np.ndarray:
        """Return ``argmin_{v in C} ||v - w||``."""

    @abc.abstractmethod
    def contains(self, w: np.ndarray, atol: float = 1e-9) -> bool:
        """True when ``w`` already lies in C (up to ``atol``)."""

    @property
    @abc.abstractmethod
    def radius(self) -> float:
        """Radius of the smallest origin-centred ball containing C.

        The convergence theorems (Theorems 10 and 12) are stated in terms
        of this value ``R``.
        """


class IdentityProjection(Projection):
    """No constraint: W = R^d (unconstrained optimization)."""

    def __call__(self, w: np.ndarray) -> np.ndarray:
        return w

    def contains(self, w: np.ndarray, atol: float = 1e-9) -> bool:
        return True

    @property
    def radius(self) -> float:
        return float("inf")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "IdentityProjection()"


class L2BallProjection(Projection):
    """Projection onto ``{w : ||w|| <= R}``.

    This is the constraint the paper uses for strongly convex experiments
    (``R = 1/lambda``, Section 4.3).
    """

    def __init__(self, radius: float):
        self._radius = check_positive(radius, "radius")

    def __call__(self, w: np.ndarray) -> np.ndarray:
        w = np.asarray(w, dtype=np.float64)
        norm = np.linalg.norm(w)
        if norm <= self._radius:
            return w
        return w * (self._radius / norm)

    def contains(self, w: np.ndarray, atol: float = 1e-9) -> bool:
        return float(np.linalg.norm(w)) <= self._radius + atol

    @property
    def radius(self) -> float:
        return self._radius

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"L2BallProjection(radius={self._radius!r})"


class BoxProjection(Projection):
    """Projection onto the axis-aligned box ``[low, high]^d``.

    Not used by the paper's experiments but a common constraint in
    practice; included to demonstrate that the bolt-on algorithm works with
    any convex constraint (the analysis only needs non-expansiveness).
    """

    def __init__(self, low: float, high: float):
        if not (np.isfinite(low) and np.isfinite(high)) or low >= high:
            raise ValueError(f"box bounds must satisfy low < high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def __call__(self, w: np.ndarray) -> np.ndarray:
        return np.clip(np.asarray(w, dtype=np.float64), self.low, self.high)

    def contains(self, w: np.ndarray, atol: float = 1e-9) -> bool:
        w = np.asarray(w, dtype=np.float64)
        return bool(np.all(w >= self.low - atol) and np.all(w <= self.high + atol))

    @property
    def radius(self) -> float:
        # Largest norm in the box is attained at a corner; per-dimension the
        # farthest coordinate from 0 is max(|low|, |high|). The dimension is
        # unknown here, so report the per-coordinate bound; callers needing
        # the exact d-dependent radius scale by sqrt(d).
        return max(abs(self.low), abs(self.high))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BoxProjection(low={self.low!r}, high={self.high!r})"


def rows_projector(
    projections: Sequence[Projection],
) -> Optional[Callable[[np.ndarray], np.ndarray]]:
    """Compile per-model projections into one row-wise matrix projector.

    The fused multi-model engines step a ``(K, d)`` weight matrix and must
    then project each row onto its own constraint set. Returns ``None``
    when every projection is the identity (the common unconstrained case —
    callers skip the call entirely); a vectorized norm-and-rescale when
    every constraint is an L2 ball (or identity, radius = inf); and a
    plain row loop otherwise. The rescale computes ``w * (radius/norm)``
    exactly as :class:`L2BallProjection` does, so fused and sequential
    runs project to identical floats. The projector mutates its argument
    in place and returns it.
    """
    projections = list(projections)
    if all(isinstance(p, IdentityProjection) for p in projections):
        return None
    if all(isinstance(p, (IdentityProjection, L2BallProjection)) for p in projections):
        radii = np.array([p.radius for p in projections], dtype=np.float64)

        def project_l2(W: np.ndarray) -> np.ndarray:
            norms = np.linalg.norm(W, axis=1)
            violating = norms > radii
            if np.any(violating):
                W[violating] *= (radii[violating] / norms[violating])[:, None]
            return W

        return project_l2

    def project_rows(W: np.ndarray) -> np.ndarray:
        for i, projection in enumerate(projections):
            W[i] = projection(W[i])
        return W

    return project_rows
