"""Slotted-page storage with a buffer pool — the engine's bottom layer.

The paper's experiments run inside PostgreSQL, where the dataset is "stored
as a table" and scalability to larger-than-memory data "comes for free"
through the buffer manager (Section 4.4, Figure 2). This module recreates
the parts of that stack the experiments exercise:

* fixed-width tuples (d float64 features + 1 float64 label) packed into
  8 KiB pages;
* a :class:`HeapFile` of pages — either *materialized* (backed by real
  arrays) or *virtual* (pages synthesized deterministically on first read,
  so multi-gigabyte scalability tables never occupy RAM, mirroring the
  paper's 149–447 GB disk-based datasets);
* a :class:`BufferPool` with LRU eviction and hit/miss counters, which is
  what distinguishes the in-memory regime (all pages resident, CPU-bound)
  from the disk regime (misses dominate, I/O-bound) in Figure 2.

Page reads/writes are *counted*, not physically performed; the cost model
(:mod:`repro.rdbms.cost_model`) converts the counters into simulated
seconds. Real wall-clock time of the Python hot loops is measured
separately by the pytest benchmarks. For workloads where page *latency*
is the point — overlapping scans on different tables — wrap a heap in
:class:`LatencyHeapFile` and the simulated disk fetch becomes real
(GIL-releasing) wall-clock time.

Per-table engine domains
------------------------

The pool shards its cache and its counters **per heap file**: every heap
gets its own LRU region (``capacity_pages`` each — the memory its engine
domain may hold), its own :class:`BufferPoolStats`, and its own lock.
Scans on *different* tables therefore never share mutable state: their
hit/miss/eviction counters and LRU recency are exactly what a serialized
execution would produce, under any interleaving — the invariant that
lets the training service run one scan per table concurrently while
still recording exact per-dispatch page deltas. ``pool.stats`` remains
the whole-pool view (the sum over domains); ``pool.stats_for(heap)`` is
the per-table truth a concurrent dispatcher must read.
"""

from __future__ import annotations

import abc
import hashlib
import os
import pathlib
import sqlite3
import threading
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Union

import numpy as np

from repro.utils.validation import check_positive_int

#: PostgreSQL's default page size.
PAGE_SIZE_BYTES = 8192
#: Per-page header we account for (page id + tuple count).
PAGE_HEADER_BYTES = 16


def tuple_width_bytes(dimension: int) -> int:
    """On-page width of one example: d features + 1 label, all float64."""
    check_positive_int(dimension, "dimension")
    return (dimension + 1) * 8


def tuples_per_page(dimension: int) -> int:
    """How many examples fit in one 8 KiB page."""
    width = tuple_width_bytes(dimension)
    capacity = (PAGE_SIZE_BYTES - PAGE_HEADER_BYTES) // width
    if capacity < 1:
        raise ValueError(
            f"dimension {dimension} is too wide for a {PAGE_SIZE_BYTES}-byte "
            "page; wide tuples would need TOAST-style storage, which the "
            "experiments do not exercise"
        )
    return capacity


@dataclass
class Page:
    """One page of examples: a features block and a labels block."""

    page_id: int
    features: np.ndarray
    labels: np.ndarray

    @property
    def tuple_count(self) -> int:
        return int(self.features.shape[0])


class HeapFile(abc.ABC):
    """A sequence of pages holding one table's tuples."""

    @property
    @abc.abstractmethod
    def dimension(self) -> int:
        """Feature dimension d."""

    @property
    @abc.abstractmethod
    def num_pages(self) -> int:
        """Page count."""

    @property
    @abc.abstractmethod
    def num_tuples(self) -> int:
        """Row count m."""

    @abc.abstractmethod
    def read_page(self, page_id: int) -> Page:
        """Materialize page ``page_id`` (0-based)."""

    @property
    def size_bytes(self) -> int:
        """On-disk footprint (pages x page size)."""
        return self.num_pages * PAGE_SIZE_BYTES


class MaterializedHeapFile(HeapFile):
    """A heap file backed by in-process arrays (small/medium tables)."""

    def __init__(self, features: np.ndarray, labels: np.ndarray):
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if features.ndim != 2 or labels.ndim != 1:
            raise ValueError("features must be 2-D and labels 1-D")
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features/labels row counts disagree")
        if features.shape[0] == 0:
            raise ValueError("heap file must contain at least one tuple")
        self._features = features
        self._labels = labels
        self._per_page = tuples_per_page(features.shape[1])

    @property
    def dimension(self) -> int:
        return int(self._features.shape[1])

    @property
    def num_tuples(self) -> int:
        return int(self._features.shape[0])

    @property
    def num_pages(self) -> int:
        return -(-self.num_tuples // self._per_page)

    def read_page(self, page_id: int) -> Page:
        if not 0 <= page_id < self.num_pages:
            raise IndexError(f"page {page_id} out of range [0, {self.num_pages})")
        start = page_id * self._per_page
        stop = min(start + self._per_page, self.num_tuples)
        return Page(
            page_id=page_id,
            features=self._features[start:stop],
            labels=self._labels[start:stop],
        )


class VirtualHeapFile(HeapFile):
    """A heap file whose pages are generated deterministically on read.

    Used by the scalability experiments: a 447 GB table exists as a page
    *generator* ``(page_id) -> (features, labels)`` seeded by the page id,
    so scanning it produces stable data with bounded memory — exactly the
    role the Bismarck data synthesizer plays in the paper's Figure 2 study.
    """

    def __init__(
        self,
        num_tuples: int,
        dimension: int,
        page_generator: Callable[[int, int, int], tuple[np.ndarray, np.ndarray]],
    ):
        self._num_tuples = check_positive_int(num_tuples, "num_tuples")
        self._dimension = check_positive_int(dimension, "dimension")
        self._per_page = tuples_per_page(dimension)
        self._generator = page_generator

    @property
    def dimension(self) -> int:
        return self._dimension

    @property
    def num_tuples(self) -> int:
        return self._num_tuples

    @property
    def num_pages(self) -> int:
        return -(-self._num_tuples // self._per_page)

    def read_page(self, page_id: int) -> Page:
        if not 0 <= page_id < self.num_pages:
            raise IndexError(f"page {page_id} out of range [0, {self.num_pages})")
        start = page_id * self._per_page
        count = min(self._per_page, self._num_tuples - start)
        features, labels = self._generator(page_id, count, self._dimension)
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if features.shape != (count, self._dimension) or labels.shape != (count,):
            raise ValueError(
                "page generator returned wrong shapes: "
                f"{features.shape}, {labels.shape}; expected "
                f"({count}, {self._dimension}) and ({count},)"
            )
        return Page(page_id=page_id, features=features, labels=labels)


class LatencyHeapFile(HeapFile):
    """A heap whose page reads cost real wall-clock time (simulated disk).

    Wraps any heap and sleeps ``seconds_per_page`` before delegating each
    :meth:`read_page` — the disk-fetch latency the paper's larger-than-
    memory experiments pay on every buffer-pool miss, made real instead
    of merely counted. Because the sleep releases the GIL, two scans on
    *different* latency-backed tables overlap their I/O even on one core;
    that overlap is exactly what the per-table engine domains unlock, and
    what ``benchmarks/bench_service.py --parallel`` measures.

    ``sleeper`` is injectable (tests swap in a recording fake so latency
    behaviour is asserted without timing flakiness). ``reads`` counts
    delegated page materializations — with a buffer pool in front, that
    is the number of misses actually paid, not the number of requests.
    """

    def __init__(
        self,
        inner: HeapFile,
        seconds_per_page: float,
        sleeper: Callable[[float], None] = time.sleep,
    ):
        if seconds_per_page < 0:
            raise ValueError(
                f"seconds_per_page must be >= 0, got {seconds_per_page}"
            )
        self.inner = inner
        self.seconds_per_page = float(seconds_per_page)
        self._sleep = sleeper
        self.reads = 0

    @property
    def dimension(self) -> int:
        return self.inner.dimension

    @property
    def num_pages(self) -> int:
        return self.inner.num_pages

    @property
    def num_tuples(self) -> int:
        return self.inner.num_tuples

    def read_page(self, page_id: int) -> Page:
        self.reads += 1
        if self.seconds_per_page > 0.0:
            self._sleep(self.seconds_per_page)
        return self.inner.read_page(page_id)


class PageFaultError(IOError):
    """A heap page read failed. The storage-layer analogue of a bad
    sector / dropped NFS mount: raised by :class:`FaultyHeapFile` on an
    injected fault, and the type dispatch-layer retry logic keys on."""


class TransientPageFault(PageFaultError):
    """A page fault expected to succeed on retry (the flaky-device
    case). The scheduler's bounded retry-with-backoff retries these
    only; a plain :class:`PageFaultError` fails the scan immediately."""


class FaultyHeapFile(HeapFile):
    """A heap whose page reads fail on command — the fault-injection
    harness behind the service's robustness tests.

    Wraps any heap and raises on a configurable subset of reads:

    * ``fail_pages`` — page ids that fault when read;
    * ``probability`` — additionally, each read of *any* page faults
      with this chance (drawn from a ``seed``-fixed generator, so a
      given wrap produces the same fault sequence every run);
    * ``fail_times`` — total fault budget (``None`` = unlimited). With
      a buffer pool in front, a faulted page was never cached, so a
      retried scan re-reads it — ``fail_times=1`` makes exactly the
      first attempt fail and the retry succeed.
    * ``transient`` — raise :class:`TransientPageFault` (retryable)
      instead of the permanent :class:`PageFaultError`.

    ``reads`` counts delegated reads (with a pool in front: misses),
    ``faults_injected`` the reads that raised.
    """

    def __init__(
        self,
        inner: HeapFile,
        *,
        fail_pages=(),
        fail_times: Optional[int] = None,
        probability: float = 0.0,
        seed: int = 0,
        transient: bool = True,
    ):
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        if fail_times is not None and fail_times < 0:
            raise ValueError(f"fail_times must be >= 0 or None, got {fail_times}")
        self.inner = inner
        self.fail_pages = frozenset(fail_pages)
        self.fail_times = fail_times
        self.probability = float(probability)
        self.transient = bool(transient)
        self._rng = np.random.default_rng(seed)
        self.reads = 0
        self.faults_injected = 0

    @property
    def dimension(self) -> int:
        return self.inner.dimension

    @property
    def num_pages(self) -> int:
        return self.inner.num_pages

    @property
    def num_tuples(self) -> int:
        return self.inner.num_tuples

    def _should_fault(self, page_id: int) -> bool:
        if self.fail_times is not None and self.faults_injected >= self.fail_times:
            return False
        if page_id in self.fail_pages:
            return True
        return self.probability > 0.0 and self._rng.random() < self.probability

    def read_page(self, page_id: int) -> Page:
        self.reads += 1
        if self._should_fault(page_id):
            self.faults_injected += 1
            kind = TransientPageFault if self.transient else PageFaultError
            raise kind(
                f"injected {'transient ' if self.transient else ''}fault "
                f"reading page {page_id} (fault {self.faults_injected})"
            )
        return self.inner.read_page(page_id)


#: Schema version tag written into every SQLite heap's ``meta`` table.
SQLITE_HEAP_FORMAT = "repro-heap/v1"

#: ``sqlite3.OperationalError`` messages that signal a *transient*
#: condition — another connection holds a lock, the filesystem is
#: momentarily unhappy — where a retry is expected to succeed. Anything
#: else (missing file, missing table, malformed database) is permanent.
_TRANSIENT_SQLITE_MARKERS = ("locked", "busy")


def _map_sqlite_error(error: sqlite3.Error, path: "pathlib.Path") -> PageFaultError:
    """Translate a ``sqlite3`` exception into the engine's fault taxonomy.

    The scheduler's bounded retry keys on the distinction: a
    :class:`TransientPageFault` (lock contention, a busy device) is
    retried with backoff and — by the determinism contract — a retried
    scan releases the same bits; a plain :class:`PageFaultError`
    (missing file, dropped table, corrupted database) fails the scan
    fast with the reservation refunded. This is the same containment
    contract :class:`FaultyHeapFile` exercises with injected faults,
    applied to a real storage engine's real failure modes.
    """
    message = str(error).lower()
    if isinstance(error, sqlite3.OperationalError) and any(
        marker in message for marker in _TRANSIENT_SQLITE_MARKERS
    ):
        return TransientPageFault(f"sqlite heap {path}: {error}")
    return PageFaultError(f"sqlite heap {path}: {error}")


class SQLiteHeapFile(HeapFile):
    """A heap file persisted in a SQLite database — real pages, real I/O.

    The paper ran its experiments inside a real RDBMS (Bismarck on
    PostgreSQL); every other heap here is an in-process array, so
    buffer-pool misses cost simulated latency at best. This class puts a
    real database under the engine: pages live as rows of one SQLite
    table, a miss pays an actual disk read, and the disk-regime
    benchmarks (``bench_service.py --disk``) measure honest page
    materialization.

    Layout (one database file per heap)::

        PRAGMA journal_mode=WAL;      -- readers never block the writer
        PRAGMA synchronous=NORMAL;    -- fsync at checkpoint, not per txn
        PRAGMA foreign_keys=ON;
        CREATE TABLE meta(key TEXT PRIMARY KEY, value TEXT NOT NULL);
        CREATE TABLE pages(
            page_no  INTEGER PRIMARY KEY,
            features BLOB NOT NULL,   -- contiguous float64, C order
            labels   BLOB NOT NULL    -- contiguous float64
        );

    Page geometry is identical to every other heap
    (:func:`tuples_per_page` rows per page, the tail page short), so the
    buffer pool in front of it produces *exactly* the counters an
    in-memory heap would — hit/miss/eviction accounting is
    backend-invariant, which is what keeps the service's bitwise and
    page-attribution guarantees intact on real storage.

    Connection discipline: the single **writer** connection lives only
    inside :meth:`bulk_load`; every reader gets a **connection per
    thread** (lazily opened, ``PRAGMA query_only=ON`` so it cannot
    write), which under WAL means concurrent scans from worker threads
    never block each other. ``sqlite3`` errors surface through the
    engine's fault taxonomy (:func:`_map_sqlite_error`): lock/busy
    contention as retryable :class:`TransientPageFault`, a missing or
    corrupted database as fail-fast :class:`PageFaultError` — so a
    flaky disk is contained by the scheduler's bounded retry exactly as
    an injected :class:`FaultyHeapFile` fault is.
    """

    def __init__(self, path: Union[str, "pathlib.Path"]):
        self.path = pathlib.Path(path)
        if not self.path.exists():
            raise PageFaultError(f"sqlite heap {self.path}: no such database file")
        self._local = threading.local()
        self._fingerprint: Optional[str] = None
        self._fingerprint_lock = threading.Lock()
        try:
            meta = dict(
                self._connection().execute("SELECT key, value FROM meta").fetchall()
            )
        except sqlite3.Error as error:
            raise _map_sqlite_error(error, self.path) from error
        if meta.get("format") != SQLITE_HEAP_FORMAT:
            raise PageFaultError(
                f"sqlite heap {self.path}: format {meta.get('format')!r} is not "
                f"{SQLITE_HEAP_FORMAT!r}; refusing to scan a database this "
                "engine version cannot vouch for"
            )
        self._dimension = int(meta["dimension"])
        self._num_tuples = int(meta["num_tuples"])
        self._per_page = tuples_per_page(self._dimension)

    # -- ingest ------------------------------------------------------------------

    @classmethod
    def bulk_load(
        cls,
        path: Union[str, "pathlib.Path"],
        features: np.ndarray,
        labels: Optional[np.ndarray] = None,
        *,
        page_rows: int = 64,
    ) -> "SQLiteHeapFile":
        """Ingest a dataset into a fresh SQLite heap at ``path``.

        ``features`` may also be a dataset object carrying ``.features``
        and ``.labels`` (e.g. :class:`repro.data.dataset.Dataset`), in
        which case ``labels`` is taken from it. An existing database at
        ``path`` is replaced (its ``-wal``/``-shm`` siblings removed
        first — stale WAL frames must never leak into the new heap).
        The whole ingest is one transaction, committed page-batch by
        page-batch via ``executemany`` (``page_rows`` pages per call),
        then checkpointed so readers open a clean, compact database.
        """
        if labels is None:
            dataset = features
            features, labels = dataset.features, dataset.labels
        features = np.ascontiguousarray(features, dtype=np.float64)
        labels = np.ascontiguousarray(labels, dtype=np.float64)
        if features.ndim != 2 or labels.ndim != 1:
            raise ValueError("features must be 2-D and labels 1-D")
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features/labels row counts disagree")
        if features.shape[0] == 0:
            raise ValueError("heap file must contain at least one tuple")
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        for stale in (path, path.with_name(path.name + "-wal"),
                      path.with_name(path.name + "-shm")):
            if stale.exists():
                os.remove(stale)
        m, d = features.shape
        per_page = tuples_per_page(d)
        connection = sqlite3.connect(path)
        try:
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            connection.execute("PRAGMA foreign_keys=ON")
            with connection:
                connection.execute(
                    "CREATE TABLE meta(key TEXT PRIMARY KEY, value TEXT NOT NULL)"
                )
                connection.execute(
                    "CREATE TABLE pages("
                    "page_no INTEGER PRIMARY KEY, "
                    "features BLOB NOT NULL, labels BLOB NOT NULL)"
                )
                connection.executemany(
                    "INSERT INTO meta(key, value) VALUES (?, ?)",
                    [
                        ("format", SQLITE_HEAP_FORMAT),
                        ("dimension", str(d)),
                        ("num_tuples", str(m)),
                    ],
                )
                num_pages = -(-m // per_page)
                for first in range(0, num_pages, page_rows):
                    rows = []
                    for page_id in range(first, min(first + page_rows, num_pages)):
                        start = page_id * per_page
                        stop = min(start + per_page, m)
                        rows.append(
                            (
                                page_id,
                                features[start:stop].tobytes(),
                                labels[start:stop].tobytes(),
                            )
                        )
                    connection.executemany(
                        "INSERT INTO pages(page_no, features, labels) "
                        "VALUES (?, ?, ?)",
                        rows,
                    )
            # Fold the ingest's WAL frames back into the main file so the
            # read-only connections open a clean, checkpointed database.
            connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        finally:
            connection.close()
        return cls(path)

    # -- read path ---------------------------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        """This thread's lazily-opened reader connection.

        One connection per thread (sqlite connections are not thread-safe
        by default, and sharing one would serialize scans that WAL mode
        exists to let overlap); ``query_only`` enforces the read-only
        discipline at the engine level — a bug that tried to write
        through a reader raises instead of mutating tenant data.
        """
        connection = getattr(self._local, "connection", None)
        if connection is None:
            try:
                connection = sqlite3.connect(self.path)
                connection.execute("PRAGMA query_only=ON")
                connection.execute("PRAGMA foreign_keys=ON")
            except sqlite3.Error as error:  # pragma: no cover - open races
                raise _map_sqlite_error(error, self.path) from error
            self._local.connection = connection
        return connection

    def _fetch_page_row(self, page_id: int):
        """One ``pages`` row as ``(features_blob, labels_blob)`` — the
        seam the fault-mapping tests monkeypatch to simulate lock
        contention and corruption without a second process."""
        return self._connection().execute(
            "SELECT features, labels FROM pages WHERE page_no = ?", (page_id,)
        ).fetchone()

    @property
    def dimension(self) -> int:
        return self._dimension

    @property
    def num_tuples(self) -> int:
        return self._num_tuples

    @property
    def num_pages(self) -> int:
        return -(-self._num_tuples // self._per_page)

    def read_page(self, page_id: int) -> Page:
        if not 0 <= page_id < self.num_pages:
            raise IndexError(f"page {page_id} out of range [0, {self.num_pages})")
        try:
            row = self._fetch_page_row(page_id)
        except sqlite3.Error as error:
            raise _map_sqlite_error(error, self.path) from error
        if row is None:
            raise PageFaultError(
                f"sqlite heap {self.path}: page {page_id} is missing from the "
                "pages table (truncated or tampered heap)"
            )
        start = page_id * self._per_page
        count = min(self._per_page, self._num_tuples - start)
        features = np.frombuffer(row[0], dtype=np.float64)
        labels = np.frombuffer(row[1], dtype=np.float64)
        if features.shape[0] != count * self._dimension or labels.shape[0] != count:
            raise PageFaultError(
                f"sqlite heap {self.path}: page {page_id} blob sizes disagree "
                f"with the meta row counts (expected {count} tuples)"
            )
        return Page(
            page_id=page_id,
            features=features.reshape(count, self._dimension),
            labels=labels,
        )

    def content_fingerprint(self) -> str:
        """The same page-wise SHA-256 content hash a
        :class:`MaterializedHeapFile` gets from the scheduler, so the
        result cache treats "same data, different backend" as the same
        table — a release trained on the in-memory copy is served to a
        resubmission against the SQLite copy (and vice versa). Computed
        once, off the buffer pool, memoized for the heap's lifetime
        (heaps are immutable once registered)."""
        with self._fingerprint_lock:
            if self._fingerprint is None:
                digest = hashlib.sha256()
                for page_id in range(self.num_pages):
                    page = self.read_page(page_id)
                    digest.update(
                        np.ascontiguousarray(page.features, dtype=np.float64).tobytes()
                    )
                    digest.update(
                        np.ascontiguousarray(page.labels, dtype=np.float64).tobytes()
                    )
                self._fingerprint = digest.hexdigest()[:16]
            return self._fingerprint

    def close(self) -> None:
        """Close this thread's reader connection (other threads' close
        when they are garbage collected; sqlite tolerates that)."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None


@dataclass
class BufferPoolStats:
    """Counters the cost model consumes."""

    page_reads: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    evictions: int = 0

    def reset(self) -> None:
        self.page_reads = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.evictions = 0

    @property
    def hit_rate(self) -> float:
        if self.page_reads == 0:
            return 0.0
        return self.cache_hits / self.page_reads


class _HeapDomain:
    """One heap's engine domain: its LRU shard, counters, and lock.

    The lock serializes page requests *within* one table (scans of the
    same table already serialize on the scheduler's table lock; this
    guards direct pool users too). Requests on different heaps take
    different locks, so cross-table scans proceed concurrently — and the
    miss path (the actual page read, which for a :class:`LatencyHeapFile`
    sleeps) is held under this domain lock only, never a pool-wide one.
    """

    __slots__ = ("cache", "stats", "lock")

    def __init__(self) -> None:
        self.cache: "OrderedDict[int, Page]" = OrderedDict()
        self.stats = BufferPoolStats()
        self.lock = threading.Lock()


class _PoolStatsView:
    """The whole-pool counters: a live sum over every heap domain.

    API-compatible with :class:`BufferPoolStats` (the attribute names,
    ``hit_rate``, ``reset()``) so existing callers keep reading
    ``pool.stats.page_reads`` etc.; ``reset()`` zeroes the *view* by
    remembering the current totals as a baseline — the per-domain
    counters themselves are monotonic.
    """

    def __init__(self, pool: "BufferPool") -> None:
        self._pool = pool
        self._base = BufferPoolStats()

    def _totals(self) -> BufferPoolStats:
        totals = BufferPoolStats()
        retired = self._pool._retired
        sources = [domain.stats for domain in self._pool._domain_snapshot()]
        sources.append(retired)
        for stats in sources:
            totals.page_reads += stats.page_reads
            totals.cache_hits += stats.cache_hits
            totals.cache_misses += stats.cache_misses
            totals.evictions += stats.evictions
        return totals

    @property
    def page_reads(self) -> int:
        return self._totals().page_reads - self._base.page_reads

    @property
    def cache_hits(self) -> int:
        return self._totals().cache_hits - self._base.cache_hits

    @property
    def cache_misses(self) -> int:
        return self._totals().cache_misses - self._base.cache_misses

    @property
    def evictions(self) -> int:
        return self._totals().evictions - self._base.evictions

    def reset(self) -> None:
        self._base = self._totals()

    @property
    def hit_rate(self) -> float:
        reads = self.page_reads
        if reads == 0:
            return 0.0
        return self.cache_hits / reads

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PoolStats(page_reads={self.page_reads}, "
            f"cache_hits={self.cache_hits}, "
            f"cache_misses={self.cache_misses}, evictions={self.evictions})"
        )


class BufferPool:
    """LRU page cache in front of heap files, sharded per heap.

    ``capacity_pages`` models the memory each table's engine domain may
    hold: when every page of a table fits, repeated epochs are all cache
    hits (the paper's warm-cache in-memory runs); when the table exceeds
    it, each sequential scan incurs one miss per page (the disk-based
    regime of Figure 2(b)). Each heap's LRU shard, counters, and lock are
    private to it (see :class:`_HeapDomain`), so concurrent scans on
    disjoint tables produce exactly the serialized execution's counters.
    """

    def __init__(self, capacity_pages: int):
        self.capacity = check_positive_int(capacity_pages, "capacity_pages")
        # Weak keys: a heap's domain (its cached Pages, up to capacity of
        # them) dies with the heap instead of accruing for the pool's
        # lifetime — and a NEW heap allocated at a dead heap's address
        # can never inherit its cache (an id()-keyed map would serve the
        # old table's pages as hits).
        self._domains: "weakref.WeakKeyDictionary[HeapFile, _HeapDomain]" = (
            weakref.WeakKeyDictionary()
        )
        self._domains_lock = threading.Lock()
        # Counters of collected heaps' domains, folded in at finalization
        # so the whole-pool view stays monotonic across heap lifetimes.
        self._retired = BufferPoolStats()
        self.stats = _PoolStatsView(self)

    def _domain(self, heap: HeapFile) -> _HeapDomain:
        domain = self._domains.get(heap)
        if domain is None:
            with self._domains_lock:
                domain = self._domains.get(heap)
                if domain is None:
                    domain = _HeapDomain()
                    self._domains[heap] = domain
                    weakref.finalize(heap, self._retire, domain.stats)
        return domain

    def _retire(self, stats: BufferPoolStats) -> None:
        with self._domains_lock:
            self._retired.page_reads += stats.page_reads
            self._retired.cache_hits += stats.cache_hits
            self._retired.cache_misses += stats.cache_misses
            self._retired.evictions += stats.evictions

    def _domain_snapshot(self) -> List[_HeapDomain]:
        with self._domains_lock:
            return list(self._domains.values())

    def stats_for(self, heap: HeapFile) -> BufferPoolStats:
        """The heap's own counters — the per-table truth a concurrent
        dispatcher reads its before/after page deltas from (immune to
        scans on any other table)."""
        return self._domain(heap).stats

    def get_page(
        self,
        heap: HeapFile,
        page_id: int,
        reader: Optional[Callable[[int], Page]] = None,
    ) -> Page:
        """Fetch a page through the cache, updating LRU order and stats.

        ``reader`` optionally replaces ``heap.read_page`` as the miss
        handler. Accounting is identical either way — the request, the
        hit/miss classification, the LRU update, and any eviction happen
        exactly as without it — only the *materialization* of a missed
        page is delegated. Scan operators use this to memoize synthesized
        pages (``VirtualHeapFile`` generators are deterministic, so a page
        materialized moments ago in the same chunk is the same page).
        """
        domain = self._domain(heap)
        with domain.lock:
            stats = domain.stats
            stats.page_reads += 1
            cached = domain.cache.get(page_id)
            if cached is not None:
                stats.cache_hits += 1
                domain.cache.move_to_end(page_id)
                return cached
            stats.cache_misses += 1
            page = heap.read_page(page_id) if reader is None else reader(page_id)
            domain.cache[page_id] = page
            if len(domain.cache) > self.capacity:
                domain.cache.popitem(last=False)
                stats.evictions += 1
            return page

    def scan(self, heap: HeapFile, page_order: Optional[List[int]] = None) -> Iterator[Page]:
        """Iterate pages (sequentially by default) through the cache."""
        order = page_order if page_order is not None else range(heap.num_pages)
        for page_id in order:
            yield self.get_page(heap, page_id)

    def clear(self) -> None:
        for domain in self._domain_snapshot():
            with domain.lock:
                domain.cache.clear()

    @property
    def resident_pages(self) -> int:
        return sum(len(domain.cache) for domain in self._domain_snapshot())
