"""Failure-injection and adversarial-input tests.

A privacy library must fail *closed*: bad configurations, corrupted
inputs, and misuse must raise before any under-noised release can happen.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bolton import private_convex_psgd, private_strongly_convex_psgd
from repro.core.mechanisms import GaussianMechanism, PrivacyParameters
from repro.optim.losses import LogisticLoss
from repro.optim.psgd import PSGD, PSGDConfig
from repro.optim.schedules import ConstantSchedule
from repro.rdbms.bismarck import BismarckSession
from repro.rdbms.executor import run_aggregate, SeqScan
from repro.rdbms.storage import BufferPool, MaterializedHeapFile, VirtualHeapFile
from repro.rdbms.uda import UDA
from tests.conftest import make_binary_data


class TestPrivacyFailsClosed:
    def test_unnormalized_features_refused_everywhere(self):
        X = np.full((20, 3), 2.0)
        y = np.ones(20)
        with pytest.raises(ValueError, match="unit L2 ball"):
            private_convex_psgd(X, y, LogisticLoss(), epsilon=1.0)
        with pytest.raises(ValueError, match="unit L2 ball"):
            private_strongly_convex_psgd(
                X, y, LogisticLoss(regularization=0.1), epsilon=1.0
            )

    def test_slightly_over_norm_refused(self):
        # Even a 1% violation must be caught — noise calibrated for
        # ||x|| <= 1 does not cover it.
        X = np.zeros((10, 2))
        X[:, 0] = 1.01
        with pytest.raises(ValueError, match="unit L2 ball"):
            private_convex_psgd(X, np.ones(10), LogisticLoss(), epsilon=1.0)

    def test_epsilon_must_be_positive(self, medium_data):
        X, y = medium_data
        for bad in (0.0, -1.0, float("nan")):
            with pytest.raises(ValueError):
                private_convex_psgd(X, y, LogisticLoss(), epsilon=bad)

    def test_delta_one_rejected(self, medium_data):
        X, y = medium_data
        with pytest.raises(ValueError):
            private_convex_psgd(X, y, LogisticLoss(), epsilon=1.0, delta=1.0)

    def test_oversized_constant_step_rejected(self, medium_data):
        # eta > 2/beta voids 1-expansiveness, hence the sensitivity.
        X, y = medium_data
        with pytest.raises(ValueError, match="2/beta"):
            private_convex_psgd(
                X, y, LogisticLoss(), epsilon=1.0, eta=3.0
            )

    def test_gaussian_mechanism_never_pure(self, rng):
        mech = GaussianMechanism()
        with pytest.raises(ValueError):
            mech.privatize(np.ones(3), 0.1, PrivacyParameters(1.0), rng)

    def test_nan_labels_rejected(self):
        X, y = make_binary_data(10, 3, seed=0)
        y = y.copy()
        y[0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            private_convex_psgd(X, y, LogisticLoss(), epsilon=1.0)


class TestEngineRobustness:
    def test_failing_page_generator_propagates(self):
        def exploding(page_id, count, dim):
            raise IOError("disk failure simulated")

        heap = VirtualHeapFile(1000, 5, exploding)
        pool = BufferPool(10)
        with pytest.raises(IOError, match="disk failure"):
            pool.get_page(heap, 0)

    def test_failing_transition_propagates(self):
        class ExplodingUDA(UDA):
            def initialize(self, **kwargs):
                return 0

            def transition(self, state, features, label):
                raise RuntimeError("transition bug")

            def terminate(self, state):  # pragma: no cover
                return state

        rng = np.random.default_rng(0)
        heap = MaterializedHeapFile(rng.normal(size=(10, 3)), np.ones(10))
        from repro.rdbms.catalog import Catalog

        catalog = Catalog()
        catalog.create_table("t", heap)
        with pytest.raises(RuntimeError, match="transition bug"):
            run_aggregate(SeqScan(catalog.get("t"), BufferPool(4)), ExplodingUDA())

    def test_session_rejects_zero_epochs(self):
        session = BismarckSession()
        X, y = make_binary_data(20, 3, seed=0)
        session.load_table("t", X, y)
        with pytest.raises(ValueError):
            session.run_noiseless(
                "t", LogisticLoss(), ConstantSchedule(0.1), epochs=0
            )

    def test_session_unknown_table(self):
        session = BismarckSession()
        with pytest.raises(KeyError):
            session.run_noiseless(
                "ghost", LogisticLoss(), ConstantSchedule(0.1), epochs=1
            )

    def test_minimal_buffer_pool_still_correct(self):
        """A 1-page pool thrashes but must not change results."""
        # d=4 packs ~200 tuples per page; 1000 rows span several pages so
        # the 1-page pool genuinely thrashes.
        X, y = make_binary_data(1000, 4, seed=3)
        big = BismarckSession(buffer_pool_pages=10_000)
        tiny = BismarckSession(buffer_pool_pages=1)
        big.load_table("t", X, y)
        tiny.load_table("t", X, y)
        a = big.run_noiseless(
            "t", LogisticLoss(), ConstantSchedule(0.1), epochs=2, batch_size=10,
            random_state=4,
        )
        b = tiny.run_noiseless(
            "t", LogisticLoss(), ConstantSchedule(0.1), epochs=2, batch_size=10,
            random_state=4,
        )
        np.testing.assert_allclose(a.model, b.model)
        # ... but the tiny pool pays real I/O.
        assert b.total_runtime.io_seconds > a.total_runtime.io_seconds


class TestNumericalEdges:
    def test_extreme_regularization_still_finite(self, medium_data):
        X, y = medium_data
        result = private_strongly_convex_psgd(
            X, y, LogisticLoss(regularization=10.0), epsilon=1.0,
            passes=2, random_state=0,
        )
        assert np.all(np.isfinite(result.model))

    def test_single_example_dataset(self):
        X = np.array([[0.5, 0.5]])
        y = np.array([1.0])
        result = private_convex_psgd(
            X, y, LogisticLoss(), epsilon=1.0, random_state=0
        )
        assert result.model.shape == (2,)

    def test_batch_larger_than_dataset(self, small_data):
        X, y = small_data
        result = private_convex_psgd(
            X, y, LogisticLoss(), epsilon=1.0, batch_size=1000, random_state=0
        )
        assert result.psgd.updates == 1

    def test_tiny_epsilon_huge_noise_is_finite(self, medium_data):
        X, y = medium_data
        result = private_convex_psgd(
            X, y, LogisticLoss(), epsilon=1e-6, random_state=0
        )
        assert np.all(np.isfinite(result.model))
        assert result.noise_norm > 100

    def test_long_run_stays_stable(self):
        X, y = make_binary_data(50, 4, seed=9)
        config = PSGDConfig(schedule=ConstantSchedule(1.9), passes=50)
        result = PSGD(LogisticLoss(), config).run(X, y, random_state=0)
        assert np.all(np.isfinite(result.model))
