"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.preprocessing import normalize_rows


def make_binary_data(m: int, d: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """A small linearly-separable-ish binary dataset on the unit ball."""
    rng = np.random.default_rng(seed)
    direction = rng.standard_normal(d)
    direction /= np.linalg.norm(direction)
    X = normalize_rows(rng.standard_normal((m, d)) / np.sqrt(d))
    y = np.where(X @ direction >= 0.0, 1.0, -1.0)
    return X, y


@pytest.fixture
def small_data() -> tuple[np.ndarray, np.ndarray]:
    """60 examples, 5 dims — fast unit-test fodder."""
    return make_binary_data(60, 5, seed=1)


@pytest.fixture
def medium_data() -> tuple[np.ndarray, np.ndarray]:
    """600 examples, 10 dims — for accuracy-sensitive tests."""
    return make_binary_data(600, 10, seed=2)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
