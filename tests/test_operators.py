"""Tests for gradient-update operators: Lemmas 1–4 made executable."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.optim.losses import HuberSVMLoss, LogisticLoss
from repro.optim.operators import (
    BatchGradientUpdate,
    GradientUpdate,
    OperatorBounds,
    boundedness_bound,
    empirical_boundedness,
    empirical_expansiveness,
    expansiveness_bound,
    growth_recursion_step,
    operator_bounds,
)

unit_x = st.lists(st.floats(-1.0, 1.0), min_size=4, max_size=4).map(
    lambda vals: np.asarray(vals) / max(np.linalg.norm(vals), 1.0)
)
hypothesis_w = st.lists(st.floats(-5.0, 5.0), min_size=4, max_size=4).map(np.asarray)


class TestExpansivenessBounds:
    def test_convex_is_one_expansive(self):
        props = LogisticLoss().properties()
        assert expansiveness_bound(props, eta=1.0) == 1.0  # eta <= 2/beta = 2

    def test_convex_step_too_large_raises(self):
        props = LogisticLoss().properties()
        with pytest.raises(ValueError, match="2/beta"):
            expansiveness_bound(props, eta=2.5)

    def test_strongly_convex_contraction(self):
        # Lemma 2: eta <= 1/beta -> (1 - eta*gamma)-expansive.
        props = LogisticLoss(regularization=0.1).properties(radius=10.0)
        eta = 0.5 / props.smoothness
        assert expansiveness_bound(props, eta) == pytest.approx(
            1.0 - eta * props.strong_convexity
        )

    def test_strongly_convex_lemma1_regime(self):
        # Between 1/beta and 2/(beta+gamma): Lemma 1.2's bound.
        props = LogisticLoss(regularization=0.5).properties(radius=2.0)
        beta, gamma = props.smoothness, props.strong_convexity
        eta = 1.5 / (beta + gamma)
        expected = 1.0 - 2.0 * eta * beta * gamma / (beta + gamma)
        assert expansiveness_bound(props, eta) == pytest.approx(expected)

    def test_strongly_convex_step_too_large_raises(self):
        props = LogisticLoss(regularization=0.5).properties(radius=2.0)
        with pytest.raises(ValueError, match="2/\\(beta\\+gamma\\)|2/"):
            expansiveness_bound(props, eta=3.0)

    def test_nonsmooth_raises(self):
        from repro.optim.losses import HingeLoss

        with pytest.raises(ValueError, match="smooth"):
            expansiveness_bound(HingeLoss().properties(), eta=0.1)


class TestBoundednessBounds:
    def test_eta_l(self):
        props = LogisticLoss().properties()
        assert boundedness_bound(props, eta=0.3) == pytest.approx(0.3)

    def test_infinite_lipschitz_raises(self):
        from repro.optim.losses import LeastSquaresLoss

        with pytest.raises(ValueError, match="Lipschitz"):
            boundedness_bound(LeastSquaresLoss().properties(), eta=0.1)

    def test_operator_bounds_combines(self):
        props = LogisticLoss().properties()
        bounds = operator_bounds(props, eta=0.5)
        assert bounds == OperatorBounds(expansiveness=1.0, boundedness=0.5)


class TestEmpiricalProperties:
    """The measured behaviour must respect the closed-form bounds."""

    @given(x=unit_x, w1=hypothesis_w, w2=hypothesis_w, y=st.sampled_from([-1.0, 1.0]))
    @settings(max_examples=80, deadline=None)
    def test_convex_update_never_expands(self, x, w1, w2, y):
        update = GradientUpdate(LogisticLoss(), x, y, eta=1.0)
        assert empirical_expansiveness(update, w1, w2) <= 1.0 + 1e-9

    @given(x=unit_x, w1=hypothesis_w, w2=hypothesis_w, y=st.sampled_from([-1.0, 1.0]))
    @settings(max_examples=80, deadline=None)
    def test_strongly_convex_update_contracts(self, x, w1, w2, y):
        # Guard against denormal underflow: ||w1 - w2||^2 below ~1e-308
        # loses precision inside the norm and corrupts the measured ratio.
        assume(float(np.linalg.norm(np.asarray(w1) - np.asarray(w2))) > 1e-100)
        lam = 0.2
        loss = LogisticLoss(regularization=lam)
        props = loss.properties(radius=10.0)
        eta = 1.0 / props.smoothness
        update = GradientUpdate(loss, x, y, eta=eta)
        rho = expansiveness_bound(props, eta)
        assert empirical_expansiveness(update, w1, w2) <= rho + 1e-9

    @given(x=unit_x, w=hypothesis_w, y=st.sampled_from([-1.0, 1.0]))
    @settings(max_examples=80, deadline=None)
    def test_boundedness_holds(self, x, w, y):
        eta = 0.7
        update = GradientUpdate(LogisticLoss(), x, y, eta=eta)
        assert empirical_boundedness(update, w) <= eta * 1.0 + 1e-9

    @given(x=unit_x, w1=hypothesis_w, w2=hypothesis_w)
    @settings(max_examples=50, deadline=None)
    def test_huber_update_never_expands(self, x, w1, w2):
        loss = HuberSVMLoss(smoothing=0.25)
        props = loss.properties()
        eta = 2.0 / props.smoothness
        update = GradientUpdate(loss, x, 1.0, eta=eta)
        assert empirical_expansiveness(update, w1, w2) <= 1.0 + 1e-9

    def test_batch_update_equals_mean_of_updates(self, rng):
        # Section 3.2.3: the mini-batch step is the average of the
        # individual gradient-update operators.
        loss = LogisticLoss()
        X = rng.normal(size=(6, 4))
        X /= np.maximum(np.linalg.norm(X, axis=1, keepdims=True), 1.0)
        y = np.where(rng.random(6) > 0.5, 1.0, -1.0)
        w = rng.normal(size=4)
        eta = 0.5
        batch = BatchGradientUpdate(loss, X, y, eta)(w)
        singles = np.mean(
            [GradientUpdate(loss, X[i], y[i], eta)(w) for i in range(6)], axis=0
        )
        np.testing.assert_allclose(batch, singles, atol=1e-12)


class TestGrowthRecursionStep:
    def test_same_operator_contracts(self):
        bounds = OperatorBounds(expansiveness=0.9, boundedness=0.5)
        assert growth_recursion_step(1.0, bounds, same_operator=True) == pytest.approx(0.9)

    def test_different_operator_adds_two_sigma(self):
        bounds = OperatorBounds(expansiveness=1.0, boundedness=0.5)
        assert growth_recursion_step(1.0, bounds, same_operator=False) == pytest.approx(2.0)

    def test_different_operator_uses_min_rho_one(self):
        bounds = OperatorBounds(expansiveness=1.5, boundedness=0.1)
        # min(rho, 1) * delta + 2 sigma = 1*1 + 0.2
        assert growth_recursion_step(1.0, bounds, same_operator=False) == pytest.approx(1.2)

    def test_negative_delta_rejected(self):
        bounds = OperatorBounds(expansiveness=1.0, boundedness=0.5)
        with pytest.raises(ValueError):
            growth_recursion_step(-0.1, bounds, same_operator=True)
