"""Empirical differential-privacy verification.

Complementing the analytic guarantees, this module estimates the privacy
loss of a mechanism *by measurement*: run it many times on two
neighbouring inputs, histogram the outputs over a shared discretization,
and bound ``max_bin |ln(P_a(bin) / P_b(bin))|``. For a correctly
calibrated ε-DP mechanism this estimate (minus sampling error) must not
exceed ε; the test-suite uses it as an end-to-end check that the
sensitivity calibration, the noise sampler, and the release path compose
into the guarantee they claim.

This is a *detector of gross violations*, not a proof: histogram-based
estimation is consistent only on the bins with enough mass, which is why
bins below ``min_count`` are excluded and a finite-sample ``slack`` is
added by callers. (Deliberately mis-calibrated mechanisms — e.g. noise
scaled for half the true sensitivity — are reliably flagged; see the
tests.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive, check_positive_int

#: A randomized mechanism: rng -> output vector.
Mechanism = Callable[[np.random.Generator], np.ndarray]


@dataclass(frozen=True)
class PrivacyLossEstimate:
    """The result of one empirical comparison."""

    #: max over usable bins of |ln(p_a / p_b)|.
    estimated_epsilon: float
    #: number of histogram bins that met the count threshold.
    usable_bins: int
    #: total trials per side.
    trials: int

    def within(self, epsilon: float, slack: float = 0.0) -> bool:
        """Whether the measurement is consistent with an ε-DP claim."""
        return self.estimated_epsilon <= epsilon + slack


def _project(samples: np.ndarray, direction: np.ndarray) -> np.ndarray:
    return samples @ direction


def estimate_privacy_loss(
    mechanism_a: Mechanism,
    mechanism_b: Mechanism,
    trials: int = 20_000,
    bins: int = 20,
    min_count: int = 50,
    random_state: RandomState = None,
) -> PrivacyLossEstimate:
    """Estimate the privacy loss between two mechanism instantiations.

    ``mechanism_a`` / ``mechanism_b`` are the mechanism run on two
    *neighbouring* datasets (the data is baked into the callables; only the
    generator varies). Vector outputs are reduced to a scalar by projecting
    onto the direction separating the two output means — the most
    distinguishing linear statistic, hence a strong test direction.
    """
    check_positive_int(trials, "trials")
    check_positive_int(bins, "bins")
    check_positive_int(min_count, "min_count")
    rng = as_generator(random_state)

    samples_a = np.array([np.atleast_1d(mechanism_a(rng)) for _ in range(trials)])
    samples_b = np.array([np.atleast_1d(mechanism_b(rng)) for _ in range(trials)])

    gap = samples_a.mean(axis=0) - samples_b.mean(axis=0)
    norm = np.linalg.norm(gap)
    if norm < 1e-12:
        direction = np.zeros(samples_a.shape[1])
        direction[0] = 1.0
    else:
        direction = gap / norm
    projected_a = _project(samples_a, direction)
    projected_b = _project(samples_b, direction)

    low = min(projected_a.min(), projected_b.min())
    high = max(projected_a.max(), projected_b.max())
    edges = np.linspace(low, high, bins + 1)
    counts_a, _ = np.histogram(projected_a, bins=edges)
    counts_b, _ = np.histogram(projected_b, bins=edges)

    # A bin is usable when at least one side has enough mass; the other
    # side is floored at 1/2 count so one-sided mass — the grossest
    # possible violation — reads as a large finite ratio instead of being
    # silently discarded.
    usable = (counts_a >= min_count) | (counts_b >= min_count)
    if not np.any(usable):
        return PrivacyLossEstimate(
            estimated_epsilon=0.0, usable_bins=0, trials=trials
        )
    smoothed_a = np.maximum(counts_a[usable], 0.5)
    smoothed_b = np.maximum(counts_b[usable], 0.5)
    ratios = np.log(smoothed_a / smoothed_b)
    return PrivacyLossEstimate(
        estimated_epsilon=float(np.max(np.abs(ratios))),
        usable_bins=int(np.sum(usable)),
        trials=trials,
    )


def verify_output_perturbation(
    release: Callable[[np.ndarray, np.random.Generator], np.ndarray],
    model_a: np.ndarray,
    model_b: np.ndarray,
    epsilon: float,
    sensitivity: float,
    trials: int = 20_000,
    slack: float = 0.35,
    random_state: RandomState = None,
) -> PrivacyLossEstimate:
    """Measure the privacy loss of an output-perturbation release.

    ``release(w, rng)`` must implement ``w + noise``; ``model_a`` and
    ``model_b`` play the role of the two noiseless models from
    neighbouring datasets and must satisfy ``||a - b|| <= sensitivity``
    (checked — handing in models farther apart than the calibrated
    sensitivity would make any mechanism look broken).
    """
    check_positive(epsilon, "epsilon")
    check_positive(sensitivity, "sensitivity")
    gap = float(np.linalg.norm(np.asarray(model_a) - np.asarray(model_b)))
    if gap > sensitivity * (1 + 1e-9):
        raise ValueError(
            f"models are {gap:.4g} apart but the claimed sensitivity is "
            f"{sensitivity:.4g}; the pair does not witness neighbouring "
            "datasets under this calibration"
        )
    a = np.asarray(model_a, dtype=np.float64)
    b = np.asarray(model_b, dtype=np.float64)
    return estimate_privacy_loss(
        lambda rng: release(a, rng),
        lambda rng: release(b, rng),
        trials=trials,
        random_state=random_state,
    )
