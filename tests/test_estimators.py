"""Tests for the scikit-learn-style estimator wrappers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimators import (
    BoltOnPrivateClassifier,
    PrivateHuberSVM,
    PrivateLogisticRegression,
)
from repro.optim.losses import HuberSVMLoss, LogisticLoss
from tests.conftest import make_binary_data


@pytest.fixture(scope="module")
def data():
    # One generation, split in two — train and test must share the same
    # ground-truth direction.
    X_all, y_all = make_binary_data(2500, 8, seed=11)
    return X_all[:2000], y_all[:2000], X_all[2000:], y_all[2000:]


class TestConstruction:
    def test_loss_strings(self):
        assert isinstance(BoltOnPrivateClassifier(1.0).loss, LogisticLoss)
        assert isinstance(
            BoltOnPrivateClassifier(1.0, loss="huber").loss, HuberSVMLoss
        )

    def test_loss_instance_inherits_regularization(self):
        clf = BoltOnPrivateClassifier(
            1.0, loss=LogisticLoss(), regularization=0.05
        )
        assert clf.loss.regularization == 0.05

    def test_bad_loss(self):
        with pytest.raises(ValueError, match="loss must be"):
            BoltOnPrivateClassifier(1.0, loss="hinge")

    def test_bad_epsilon(self):
        with pytest.raises(ValueError):
            BoltOnPrivateClassifier(0.0)

    def test_unfitted_access_raises(self):
        clf = BoltOnPrivateClassifier(1.0)
        with pytest.raises(RuntimeError, match="not fitted"):
            _ = clf.coef_
        with pytest.raises(RuntimeError):
            clf.predict(np.zeros((1, 3)))


class TestFitting:
    def test_convex_route(self, data):
        X, y, Xt, yt = data
        clf = BoltOnPrivateClassifier(epsilon=2.0, passes=5).fit(
            X, y, random_state=0
        )
        assert clf.result_.sensitivity.regime.startswith("convex-constant")
        assert clf.coef_.shape == (8,)
        assert 0.0 <= clf.score(Xt, yt) <= 1.0

    def test_strongly_convex_route(self, data):
        X, y, Xt, yt = data
        clf = BoltOnPrivateClassifier(
            epsilon=2.0, regularization=0.01, passes=5
        ).fit(X, y, random_state=0)
        assert clf.result_.sensitivity.regime.startswith("strongly-convex")

    def test_privacy_attribute(self, data):
        X, y, _, _ = data
        clf = BoltOnPrivateClassifier(epsilon=0.5, delta=1e-6).fit(
            X, y, random_state=0
        )
        assert clf.privacy_.epsilon == 0.5
        assert clf.privacy_.delta == 1e-6
        assert clf.sensitivity_ > 0
        assert clf.noise_norm_ > 0

    def test_deterministic(self, data):
        X, y, _, _ = data
        a = BoltOnPrivateClassifier(epsilon=1.0).fit(X, y, random_state=7)
        b = BoltOnPrivateClassifier(epsilon=1.0).fit(X, y, random_state=7)
        np.testing.assert_array_equal(a.coef_, b.coef_)

    def test_decision_function(self, data):
        X, y, Xt, _ = data
        clf = BoltOnPrivateClassifier(epsilon=5.0, passes=5).fit(
            X, y, random_state=0
        )
        margins = clf.decision_function(Xt)
        np.testing.assert_array_equal(
            np.where(margins >= 0, 1.0, -1.0), clf.predict(Xt)
        )

    def test_learns_at_generous_epsilon(self, data):
        X, y, Xt, yt = data
        clf = PrivateLogisticRegression(
            epsilon=20.0, regularization=0.01, passes=10
        ).fit(X, y, random_state=0)
        assert clf.score(Xt, yt) > 0.8

    def test_huber_subclass(self, data):
        X, y, Xt, yt = data
        clf = PrivateHuberSVM(epsilon=20.0, regularization=0.01, passes=5).fit(
            X, y, random_state=0
        )
        assert isinstance(clf.loss, HuberSVMLoss)
        assert clf.score(Xt, yt) > 0.7

    def test_averaging_option(self, data):
        X, y, _, _ = data
        clf = BoltOnPrivateClassifier(epsilon=1.0, average="uniform").fit(
            X, y, random_state=0
        )
        assert clf.coef_.shape == (8,)
