"""The multi-tenant training service (the serving layer over the engine).

The paper runs private SGD *inside* the data platform; this package is
the subsystem that makes the platform a long-lived, multi-tenant server:
jobs arrive from many principals, a shared-scan scheduler fuses
compatible jobs into single table scans (cross-tenant amortization of
PR 2's K-models-one-scan engine), and a two-phase privacy-budget ledger
guarantees that no tenant can exceed their per-dataset (ε, δ) allowance
— over-budget jobs are rejected before touching data, failed jobs refund
their reservation, and only released models commit a spend.

Entry point: :class:`TrainingService` (see :mod:`repro.service.server`).
"""

from repro.service.jobs import JobQueue, JobStatus, TrainingJob
from repro.service.ledger import (
    AccountStatement,
    BudgetDenied,
    BudgetReceipt,
    BudgetReservation,
    PrivacyBudgetLedger,
)
from repro.service.registry import JobRecord, ModelRegistry
from repro.service.scheduler import SharedScanScheduler
from repro.service.server import TrainingService

__all__ = [
    "TrainingService",
    "TrainingJob",
    "JobQueue",
    "JobStatus",
    "JobRecord",
    "ModelRegistry",
    "SharedScanScheduler",
    "PrivacyBudgetLedger",
    "BudgetDenied",
    "BudgetReceipt",
    "BudgetReservation",
    "AccountStatement",
]
