"""A small SQL front-end for the miniature engine.

Bismarck drives SGD with real SQL — ``SELECT sgd_agg(...) FROM data ORDER
BY RANDOM()`` issued per epoch by the Python controller, plus ordinary
aggregates like ``SELECT AVG(label) FROM data``. This module gives the
engine that surface: a hand-written tokenizer and recursive-descent parser
for the fragment the experiments need, compiled onto the physical
operators of :mod:`repro.rdbms.executor`.

Supported grammar (case-insensitive keywords)::

    query     := select | create | drop
    select    := SELECT agg_call FROM ident [ORDER BY RANDOM()] [';']
    agg_call  := IDENT '(' [IDENT (',' IDENT)*] ')'
    create    := CREATE TABLE ident ';'?          -- registration only
    drop      := DROP TABLE ident ';'?

Aggregates are resolved from a registry: ``avg`` ships built in, and any
:class:`repro.rdbms.uda.UDA` can be registered under a name (this is how
the SGD epoch query works — see :meth:`SQLSession.register_aggregate`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.rdbms.catalog import Catalog
from repro.rdbms.executor import SeqScan, ShuffleOnce, run_aggregate
from repro.rdbms.storage import BufferPool
from repro.rdbms.uda import UDA, AvgUDA
from repro.utils.rng import RandomState, as_generator


class SQLError(ValueError):
    """Raised for lexical, syntactic, or semantic query errors."""


# --------------------------------------------------------------------------
# Lexer
# --------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<ident>[A-Za-z_][A-Za-z_0-9]*)|(?P<punct>[(),;*])|(?P<other>\S))"
)

KEYWORDS = {"select", "from", "order", "by", "random", "create", "drop", "table"}


@dataclass(frozen=True)
class Token:
    kind: str  # 'keyword' | 'ident' | 'punct'
    text: str


def tokenize(sql: str) -> List[Token]:
    """Split a statement into tokens, classifying keywords."""
    tokens: List[Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            break
        position = match.end()
        if match.group("ident"):
            text = match.group("ident")
            kind = "keyword" if text.lower() in KEYWORDS else "ident"
            tokens.append(Token(kind, text))
        elif match.group("punct"):
            tokens.append(Token("punct", match.group("punct")))
        elif match.group("other"):
            raise SQLError(f"unexpected character {match.group('other')!r} in query")
    return tokens


# --------------------------------------------------------------------------
# Parser -> statement objects
# --------------------------------------------------------------------------


@dataclass
class SelectAggregate:
    """``SELECT agg(args...) FROM table [ORDER BY RANDOM()]``."""

    aggregate: str
    arguments: List[str]
    table: str
    shuffled: bool


@dataclass
class CreateTable:
    table: str


@dataclass
class DropTable:
    table: str


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    def peek(self) -> Optional[Token]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def advance(self) -> Token:
        token = self.peek()
        if token is None:
            raise SQLError("unexpected end of query")
        self.position += 1
        return token

    def expect_keyword(self, word: str) -> None:
        token = self.advance()
        if token.kind != "keyword" or token.text.lower() != word:
            raise SQLError(f"expected {word.upper()}, got {token.text!r}")

    def expect_punct(self, char: str) -> None:
        token = self.advance()
        if token.kind != "punct" or token.text != char:
            raise SQLError(f"expected {char!r}, got {token.text!r}")

    def expect_ident(self) -> str:
        token = self.advance()
        if token.kind != "ident":
            raise SQLError(f"expected identifier, got {token.text!r}")
        return token.text

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return (
            token is not None
            and token.kind == "keyword"
            and token.text.lower() == word
        )

    def maybe_semicolon_then_end(self) -> None:
        token = self.peek()
        if token is not None and token.kind == "punct" and token.text == ";":
            self.advance()
        if self.peek() is not None:
            raise SQLError(f"trailing tokens starting at {self.peek().text!r}")

    def parse(self):
        if self.at_keyword("select"):
            return self._select()
        if self.at_keyword("create"):
            self.advance()
            self.expect_keyword("table")
            name = self.expect_ident()
            self.maybe_semicolon_then_end()
            return CreateTable(name)
        if self.at_keyword("drop"):
            self.advance()
            self.expect_keyword("table")
            name = self.expect_ident()
            self.maybe_semicolon_then_end()
            return DropTable(name)
        token = self.peek()
        raise SQLError(f"expected a statement, got {token.text if token else 'EOF'!r}")

    def _select(self) -> SelectAggregate:
        self.expect_keyword("select")
        aggregate = self.expect_ident()
        self.expect_punct("(")
        arguments: List[str] = []
        token = self.peek()
        if token is not None and not (token.kind == "punct" and token.text == ")"):
            while True:
                nxt = self.advance()
                if nxt.kind == "punct" and nxt.text == "*":
                    arguments.append("*")
                elif nxt.kind == "ident":
                    arguments.append(nxt.text)
                else:
                    raise SQLError(f"bad aggregate argument {nxt.text!r}")
                token = self.peek()
                if token is not None and token.kind == "punct" and token.text == ",":
                    self.advance()
                    continue
                break
        self.expect_punct(")")
        self.expect_keyword("from")
        table = self.expect_ident()
        shuffled = False
        if self.at_keyword("order"):
            self.advance()
            self.expect_keyword("by")
            self.expect_keyword("random")
            self.expect_punct("(")
            self.expect_punct(")")
            shuffled = True
        self.maybe_semicolon_then_end()
        return SelectAggregate(
            aggregate=aggregate.lower(), arguments=arguments, table=table,
            shuffled=shuffled,
        )


def parse(sql: str):
    """Parse one statement; raises :class:`SQLError` on malformed input."""
    tokens = tokenize(sql)
    if not tokens:
        raise SQLError("empty query")
    return _Parser(tokens).parse()


# --------------------------------------------------------------------------
# Session: bind statements to the engine
# --------------------------------------------------------------------------


@dataclass
class _RegisteredAggregate:
    uda: UDA
    initialize_kwargs: Dict[str, Any] = field(default_factory=dict)


class SQLSession:
    """Execute the supported SQL fragment against a catalog + buffer pool.

    >>> session = SQLSession(catalog, pool)
    >>> session.execute("SELECT avg(label) FROM protein")
    0.0123
    >>> session.register_aggregate("sgd_epoch", sgd_uda, dimension=74)
    >>> model = session.execute(
    ...     "SELECT sgd_epoch(features, label) FROM protein ORDER BY RANDOM()")
    """

    def __init__(
        self,
        catalog: Catalog,
        pool: BufferPool,
        random_state: RandomState = None,
    ):
        self.catalog = catalog
        self.pool = pool
        self.rng = as_generator(random_state)
        self._aggregates: Dict[str, _RegisteredAggregate] = {
            "avg": _RegisteredAggregate(AvgUDA())
        }

    def register_aggregate(self, name: str, uda: UDA, **initialize_kwargs: Any) -> None:
        """Make a UDA callable from SQL (PostgreSQL's CREATE AGGREGATE)."""
        key = name.lower()
        if not key.isidentifier():
            raise SQLError(f"invalid aggregate name {name!r}")
        self._aggregates[key] = _RegisteredAggregate(uda, dict(initialize_kwargs))

    def execute(self, sql: str):
        """Parse and run one statement, returning its result."""
        statement = parse(sql)
        if isinstance(statement, SelectAggregate):
            return self._run_select(statement)
        if isinstance(statement, CreateTable):
            raise SQLError(
                "CREATE TABLE via SQL needs column definitions the fragment "
                "does not model; use BismarckSession.load_table / "
                "Catalog.create_table_from_arrays"
            )
        if isinstance(statement, DropTable):
            self.catalog.drop_table(statement.table)
            return None
        raise SQLError(f"unsupported statement {statement!r}")  # pragma: no cover

    def _run_select(self, statement: SelectAggregate):
        try:
            table = self.catalog.get(statement.table)
        except KeyError as exc:
            raise SQLError(str(exc)) from exc
        registered = self._aggregates.get(statement.aggregate)
        if registered is None:
            raise SQLError(
                f"unknown aggregate {statement.aggregate!r}; registered: "
                f"{sorted(self._aggregates)}"
            )
        if statement.shuffled:
            source = ShuffleOnce(table, self.pool, random_state=self.rng)
        else:
            source = SeqScan(table, self.pool)
        return run_aggregate(source, registered.uda, **registered.initialize_kwargs)
