"""Fused-vs-sequential equivalence: K models in one scan == K runs.

The fused engines (:class:`repro.optim.psgd.MultiModelPSGD`,
:class:`repro.rdbms.uda.MultiSGDUDA`, :func:`repro.core.bolton.
private_psgd_fleet`) are only admissible because each model's trajectory
is *the same algorithm* as its standalone run: same permutation, same
mini-batch boundaries, same per-model step sizes / regularization /
projection, same per-model noise stream. This suite is the lock on that
contract, in the same spirit as ``test_vectorized_equivalence.py``:
every comparison runs at ``rtol=0, atol=1e-12`` — the only admissible
difference is floating-point rounding of the batched contractions.

It also pins the resource side of the bargain: a fused scan charges ONE
scan's worth of page requests where K sequential runs charge K.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bolton import (
    BoltOnCandidate,
    BoltOnTrainerFactory,
    private_psgd_fleet,
    train_bolt_on,
)
from repro.optim.losses import (
    HingeLoss,
    HuberSVMLoss,
    LeastSquaresLoss,
    LogisticLoss,
    Loss,
)
from repro.optim.projection import L2BallProjection
from repro.optim.psgd import PSGD, ModelSpec, MultiModelPSGD, PSGDConfig
from repro.optim.schedules import (
    CappedInverseTSchedule,
    ConstantSchedule,
    DecreasingSchedule,
    InverseSqrtTSchedule,
    SquareRootSchedule,
)
from repro.rdbms.catalog import Catalog
from repro.rdbms.executor import ShuffleOnce, run_aggregate, run_aggregates
from repro.rdbms.storage import BufferPool
from repro.rdbms.uda import MultiSGDUDA, SGDUDA
from tests.conftest import make_binary_data

ATOL = 1e-12

#: Every loss family (regularized and not) — as in the vectorized suite.
LOSSES = [
    pytest.param(LogisticLoss(), id="logistic"),
    pytest.param(LogisticLoss(regularization=0.05), id="logistic-l2"),
    pytest.param(LogisticLoss(tight_smoothness=True), id="logistic-tight"),
    pytest.param(HuberSVMLoss(smoothing=0.1), id="huber"),
    pytest.param(HuberSVMLoss(smoothing=0.3, regularization=0.02), id="huber-l2"),
    pytest.param(LeastSquaresLoss(margin_bound=2.0), id="least-squares"),
    pytest.param(HingeLoss(), id="hinge"),
]

#: One schedule per analysed step-size regime.
REGIMES = [
    pytest.param(ConstantSchedule(0.1), id="constant"),
    pytest.param(DecreasingSchedule(beta=1.0, m=80, c=0.5), id="decreasing"),
    pytest.param(SquareRootSchedule(beta=1.0, m=80, c=0.5), id="square-root"),
    pytest.param(CappedInverseTSchedule(beta=1.05, gamma=0.05), id="capped-inverse-t"),
    pytest.param(InverseSqrtTSchedule(0.2), id="inverse-sqrt-t"),
]


def sequential_reference(specs, X, y, perm, passes, batch_size, noise_seeds=None):
    """K standalone vectorized PSGD runs over the same permutation."""
    results = []
    for k, spec in enumerate(specs):
        config = PSGDConfig(
            schedule=spec.schedule,
            passes=spec.passes if spec.passes is not None else passes,
            batch_size=batch_size,
            projection=spec.projection,
            average=spec.average,
        )
        engine = PSGD(spec.loss, config, gradient_noise=spec.gradient_noise)
        labels = y if y.ndim == 1 else y[k]
        results.append(
            engine.run(
                X,
                labels,
                permutation=perm,
                random_state=None if noise_seeds is None else noise_seeds[k],
            )
        )
    return results


def assert_fused_equals_sequential(fused, references):
    for k, reference in enumerate(references):
        np.testing.assert_allclose(
            fused.models[k], reference.model, rtol=0, atol=ATOL
        )
        np.testing.assert_allclose(
            fused.final_iterates[k], reference.final_iterate, rtol=0, atol=ATOL
        )
        assert int(fused.updates_per_model[k]) == reference.updates


class TestHomogeneousGrids:
    """Same loss family, K models — the grid-search shape."""

    @pytest.mark.parametrize("loss", LOSSES)
    @pytest.mark.parametrize("schedule", REGIMES)
    def test_loss_by_regime(self, loss, schedule):
        X, y = make_binary_data(80, 6, seed=0)
        perm = np.random.default_rng(100).permutation(80)
        specs = [
            ModelSpec(loss, schedule),
            ModelSpec(loss, ConstantSchedule(0.05)),
            ModelSpec(loss, schedule, average="uniform"),
        ]
        fused = MultiModelPSGD(specs, passes=2, batch_size=7).run(
            X, y, permutation=perm
        )
        references = sequential_reference(specs, X, y, perm, 2, 7)
        assert_fused_equals_sequential(fused, references)

    @pytest.mark.parametrize("batch_size", [1, 3, 8, 80, 100])
    def test_batch_sizes_including_tail_and_oversized(self, batch_size):
        X, y = make_binary_data(80, 5, seed=2)
        perm = np.random.default_rng(7).permutation(80)
        specs = [
            ModelSpec(LogisticLoss(regularization=lam), ConstantSchedule(0.1))
            for lam in (0.0, 0.01, 0.1)
        ]
        fused = MultiModelPSGD(specs, passes=3, batch_size=batch_size).run(
            X, y, permutation=perm
        )
        references = sequential_reference(specs, X, y, perm, 3, batch_size)
        assert_fused_equals_sequential(fused, references)


class TestHeterogeneousModels:
    """Mixed losses, schedules, radii, passes, averaging — one scan."""

    def test_kitchen_sink(self):
        X, y = make_binary_data(97, 6, seed=3)
        perm = np.random.default_rng(5).permutation(97)
        specs = [
            ModelSpec(LogisticLoss(), ConstantSchedule(0.1)),
            ModelSpec(
                LogisticLoss(regularization=0.05),
                CappedInverseTSchedule(1.05, 0.05),
                projection=L2BallProjection(1.0 / 0.05),
            ),
            ModelSpec(
                HuberSVMLoss(smoothing=0.2),
                InverseSqrtTSchedule(0.3),
                projection=L2BallProjection(0.7),
                average="suffix",
            ),
            ModelSpec(LogisticLoss(), ConstantSchedule(0.2), passes=1),
            ModelSpec(
                LeastSquaresLoss(margin_bound=2.0),
                DecreasingSchedule(beta=1.0, m=97, c=0.5),
                average="uniform",
            ),
            ModelSpec(HingeLoss(), ConstantSchedule(0.05), passes=2),
        ]
        fused = MultiModelPSGD(specs, passes=3, batch_size=10).run(
            X, y, permutation=perm
        )
        references = sequential_reference(specs, X, y, perm, 3, 10)
        assert_fused_equals_sequential(fused, references)

    def test_scalar_only_loss_rides_row_loop_fallback(self):
        class ScalarOnlyAbsLoss(Loss):
            def value(self, w, x, y):
                margin = 1.0 - float(y) * float(np.dot(w, x))
                return float(np.sqrt(1.0 + margin**2) - 1.0)

            def gradient(self, w, x, y):
                margin = 1.0 - float(y) * float(np.dot(w, x))
                coef = -float(y) * margin / float(np.sqrt(1.0 + margin**2))
                return coef * np.asarray(x, dtype=np.float64)

        X, y = make_binary_data(60, 5, seed=6)
        perm = np.random.default_rng(9).permutation(60)
        specs = [
            ModelSpec(ScalarOnlyAbsLoss(), ConstantSchedule(0.1)),
            ModelSpec(LogisticLoss(), ConstantSchedule(0.1)),
        ]
        fused = MultiModelPSGD(specs, passes=2, batch_size=6).run(
            X, y, permutation=perm
        )
        references = sequential_reference(specs, X, y, perm, 2, 6)
        assert_fused_equals_sequential(fused, references)
        assert float(np.linalg.norm(fused.models[0])) > 0.0

    def test_per_model_labels_ovr_shape(self):
        X, y = make_binary_data(70, 5, seed=8)
        Y = np.stack([y, -y, np.where(X[:, 0] > 0.0, 1.0, -1.0)])
        perm = np.random.default_rng(11).permutation(70)
        specs = [
            ModelSpec(LogisticLoss(regularization=lam), ConstantSchedule(0.1))
            for lam in (0.0, 0.02, 0.0)
        ]
        fused = MultiModelPSGD(specs, passes=2, batch_size=8).run(
            X, Y, permutation=perm
        )
        references = sequential_reference(specs, X, Y, perm, 2, 8)
        assert_fused_equals_sequential(fused, references)

    def test_stacked_per_model_datasets(self):
        """Partition-style fusion: each model has its own data and its own
        permutation, and must match its standalone run bit-for-bit in
        randomness (1e-12 in floats)."""
        Xs = np.stack([make_binary_data(48, 5, seed=s)[0] for s in (1, 2, 3)])
        Ys = np.stack([make_binary_data(48, 5, seed=s)[1] for s in (1, 2, 3)])
        perms = np.stack(
            [np.random.default_rng(40 + s).permutation(48) for s in (1, 2, 3)]
        )
        specs = [
            ModelSpec(LogisticLoss(regularization=lam), ConstantSchedule(0.1))
            for lam in (0.0, 0.05, 0.2)
        ]
        fused = MultiModelPSGD(specs, passes=2, batch_size=7).run(
            Xs, Ys, permutation=perms
        )
        for k, spec in enumerate(specs):
            config = PSGDConfig(
                schedule=spec.schedule, passes=2, batch_size=7,
                projection=spec.projection,
            )
            reference = PSGD(spec.loss, config).run(
                Xs[k], Ys[k], permutation=perms[k]
            )
            np.testing.assert_allclose(
                fused.models[k], reference.model, rtol=0, atol=ATOL
            )


class TestNoisyModels:
    """The white-box baselines fused: per-model noise streams must consume
    exactly what each standalone run would have consumed."""

    @pytest.mark.parametrize("schedule", REGIMES)
    def test_noisy_fused_equals_noisy_sequential(self, schedule):
        X, y = make_binary_data(66, 5, seed=4)
        perm = np.random.default_rng(21).permutation(66)

        def gaussian_noise(t, dimension, rng):
            return rng.normal(0.0, 0.02, size=dimension)

        def laplace_style_noise(t, dimension, rng):
            from repro.utils.linalg import random_unit_vector

            return rng.gamma(shape=dimension, scale=0.01) * random_unit_vector(
                dimension, rng
            )

        specs = [
            ModelSpec(LogisticLoss(), schedule, gradient_noise=gaussian_noise),
            ModelSpec(
                LogisticLoss(regularization=0.05),
                ConstantSchedule(0.1),
                gradient_noise=laplace_style_noise,
            ),
            ModelSpec(HuberSVMLoss(smoothing=0.3), schedule),  # noiseless rider
        ]
        noise_seeds = [77, 88, 99]
        fused = MultiModelPSGD(specs, passes=2, batch_size=6).run(
            X, y, permutation=perm, noise_random_states=noise_seeds
        )
        references = sequential_reference(
            specs, X, y, perm, 2, 6, noise_seeds=noise_seeds
        )
        assert_fused_equals_sequential(fused, references)


class TestBoltOnFleet:
    """Fleet == per-candidate train_bolt_on, noise draw included."""

    def test_stacked_fleet_matches_sequential_trainers(self):
        Xs = np.stack([make_binary_data(60, 5, seed=s)[0] for s in (4, 5, 6, 7)])
        Ys = np.stack([make_binary_data(60, 5, seed=s)[1] for s in (4, 5, 6, 7)])
        candidates = [
            BoltOnCandidate(LogisticLoss(regularization=0.05), passes=2, batch_size=10),
            BoltOnCandidate(LogisticLoss(regularization=0.1), passes=3, batch_size=10),
            BoltOnCandidate(LogisticLoss(), passes=2, batch_size=10),
            BoltOnCandidate(HuberSVMLoss(smoothing=0.5), passes=1, batch_size=10,
                            eta=0.2, radius=1.5),
        ]
        seeds = [11, 22, 33, 44]
        fleet = private_psgd_fleet(Xs, Ys, candidates, 2.0, random_states=seeds)
        for k, candidate in enumerate(candidates):
            reference = train_bolt_on(
                Xs[k], Ys[k], candidate, 2.0, random_state=seeds[k]
            )
            np.testing.assert_allclose(
                fleet[k].model, reference.model, rtol=0, atol=ATOL
            )
            np.testing.assert_allclose(
                fleet[k].unreleased_noiseless_model,
                reference.unreleased_noiseless_model,
                rtol=0, atol=ATOL,
            )
            assert fleet[k].sensitivity.value == reference.sensitivity.value

    def test_shared_fleet_matches_sequential_given_scan_permutation(self):
        """Shared-scan fleet: fixing the scan permutation, each candidate
        equals its standalone trainer run on that same permutation."""
        X, y = make_binary_data(90, 6, seed=9)
        perm = np.random.default_rng(3).permutation(90)
        candidates = [
            BoltOnCandidate(LogisticLoss(regularization=lam), passes=k, batch_size=9)
            for lam, k in ((0.05, 2), (0.01, 3), (0.1, 2))
        ]
        seeds = [1, 2, 3]
        fleet = private_psgd_fleet(
            X, y, candidates, 1.0, random_states=seeds, permutation=perm
        )
        for k, candidate in enumerate(candidates):
            reference = train_bolt_on(
                X, y, candidate, 1.0, random_state=seeds[k], permutation=perm
            )
            np.testing.assert_allclose(
                fleet[k].model, reference.model, rtol=0, atol=ATOL
            )

    def test_private_tuning_fused_equals_sequential(self):
        from repro.tuning.grid import ParameterGrid
        from repro.tuning.private import privately_tuned_sgd

        X, y = make_binary_data(600, 6, seed=1)
        factory = BoltOnTrainerFactory(
            lambda theta: LogisticLoss(theta.get("regularization", 0.0)),
            batch_size=10,
        )
        grid = ParameterGrid({"passes": [2, 5], "regularization": [0.01, 0.1]})
        fused = privately_tuned_sgd(X, y, factory, grid, epsilon=2.0, random_state=9)
        sequential = privately_tuned_sgd(
            X, y, factory, grid, epsilon=2.0, random_state=9, fused=False
        )
        assert fused.chosen_index == sequential.chosen_index
        np.testing.assert_allclose(
            np.asarray(fused.model_result.model),
            np.asarray(sequential.model_result.model),
            rtol=0, atol=ATOL,
        )
        assert fused.unreleased_error_counts == sequential.unreleased_error_counts


class TestFusedRDBMS:
    """MultiSGDUDA == K SGDUDA epochs; pages charged once, not K times."""

    def make_table(self, m=137, d=6, seed=3):
        catalog = Catalog()
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(m, d))
        X /= np.maximum(np.linalg.norm(X, axis=1, keepdims=True), 1.0)
        y = np.where(rng.random(m) > 0.5, 1.0, -1.0)
        return catalog.create_table_from_arrays("t", X, y)

    LOSSES_SCHEDULES = [
        (LogisticLoss(), ConstantSchedule(0.1)),
        (LogisticLoss(regularization=0.01), ConstantSchedule(0.05)),
        (HuberSVMLoss(smoothing=0.25), InverseSqrtTSchedule(0.2)),
        (LogisticLoss(regularization=0.1), CappedInverseTSchedule(1.1, 0.1)),
    ]

    @pytest.mark.parametrize("chunk_size", [None, 1, 32, 500])
    def test_fused_uda_equals_sequential_udas(self, chunk_size):
        losses = [pair[0] for pair in self.LOSSES_SCHEDULES]
        schedules = [pair[1] for pair in self.LOSSES_SCHEDULES]
        projections = [None, None, L2BallProjection(0.8), L2BallProjection(10.0)]

        info = self.make_table()
        pool = BufferPool(100)
        shuffle = ShuffleOnce(info, pool, random_state=7)
        fused_uda = MultiSGDUDA(losses, schedules, batch_size=10, projections=projections)
        fused_models = run_aggregate(
            shuffle, fused_uda, chunk_size=chunk_size, dimension=6
        )
        fused_pages = shuffle.stats.pages_requested

        sequential_pages = 0
        for k in range(len(losses)):
            info_k = self.make_table()
            pool_k = BufferPool(100)
            shuffle_k = ShuffleOnce(info_k, pool_k, random_state=7)
            uda = SGDUDA(losses[k], schedules[k], batch_size=10,
                         projection=projections[k])
            model = run_aggregate(shuffle_k, uda, chunk_size=chunk_size, dimension=6)
            sequential_pages += shuffle_k.stats.pages_requested
            np.testing.assert_allclose(fused_models[k], model, rtol=0, atol=ATOL)

        # The scan-sharing claim, exactly: fused charges ONE scan's pages,
        # the sequential runs charge K of them.
        assert fused_pages == 137
        assert sequential_pages == 137 * len(losses)

    def test_noisy_samplers_ride_fused_uda(self):
        from repro.rdbms.bismarck import NoisySGDUDA

        def make_sampler(seed):
            rng = np.random.default_rng(seed)

            def sampler(step, dimension):
                return rng.normal(0.0, 0.01, size=dimension)

            return sampler

        info = self.make_table(m=90, d=5)
        pool = BufferPool(100)
        shuffle = ShuffleOnce(info, pool, random_state=7)
        fused = MultiSGDUDA(
            [LogisticLoss(), LogisticLoss(0.01)],
            [ConstantSchedule(0.1), ConstantSchedule(0.1)],
            batch_size=10,
            noise_samplers=[make_sampler(21), make_sampler(22)],
        )
        fused_models = run_aggregate(shuffle, fused, chunk_size=32, dimension=5)
        assert fused.noise_draws == 2 * 9

        for k, (loss, seed) in enumerate(
            [(LogisticLoss(), 21), (LogisticLoss(0.01), 22)]
        ):
            info_k = self.make_table(m=90, d=5)
            shuffle_k = ShuffleOnce(info_k, BufferPool(100), random_state=7)
            uda = NoisySGDUDA(
                loss, ConstantSchedule(0.1), make_sampler(seed), batch_size=10
            )
            model = run_aggregate(shuffle_k, uda, chunk_size=32, dimension=5)
            np.testing.assert_allclose(fused_models[k], model, rtol=0, atol=ATOL)

    def test_run_aggregates_shares_one_scan(self):
        info = self.make_table()
        pool = BufferPool(100)
        shuffle = ShuffleOnce(info, pool, random_state=5)
        udas = [
            SGDUDA(LogisticLoss(), ConstantSchedule(0.1), batch_size=10),
            SGDUDA(LogisticLoss(0.01), ConstantSchedule(0.05), batch_size=10),
        ]
        models = run_aggregates(
            shuffle, udas, chunk_size=32, initialize_kwargs={"dimension": 6}
        )
        assert shuffle.stats.pages_requested == 137  # one scan for both
        for k, uda in enumerate(udas):
            info_k = self.make_table()
            shuffle_k = ShuffleOnce(info_k, BufferPool(100), random_state=5)
            solo = SGDUDA(uda.loss, uda.schedule, batch_size=10)
            reference = run_aggregate(shuffle_k, solo, chunk_size=32, dimension=6)
            np.testing.assert_allclose(models[k], reference, rtol=0, atol=ATOL)

    def test_session_multi_report_charges_scan_once(self):
        from repro.rdbms.bismarck import BismarckSession

        losses = [LogisticLoss(), LogisticLoss(0.01), LogisticLoss(0.1)]
        schedules = [ConstantSchedule(0.1)] * 3
        rng = np.random.default_rng(0)
        X = rng.normal(size=(120, 6))
        X /= np.maximum(np.linalg.norm(X, axis=1, keepdims=True), 1.0)
        y = np.where(rng.random(120) > 0.5, 1.0, -1.0)

        fused_session = BismarckSession()
        fused_session.load_table("t", X, y)
        fused_session.warm_cache("t")
        fused = fused_session.run_noiseless_multi(
            "t", losses, schedules, epochs=2, batch_size=10,
            random_state=3, chunk_size=64,
        )
        assert fused.num_models == 3

        solo_session = BismarckSession()
        solo_session.load_table("t", X, y)
        solo_session.warm_cache("t")
        solo = solo_session.run_noiseless(
            "t", losses[0], schedules[0], epochs=2, batch_size=10,
            random_state=3, chunk_size=64,
        )
        # Fused pays ONE scan's I/O while tripling the gradient work: its
        # simulated I/O seconds equal the single-model run's, and K solo
        # runs would pay K times that.
        fused_io = fused.total_runtime.io_seconds
        solo_io = solo.total_runtime.io_seconds
        assert fused_io == pytest.approx(solo_io)
        assert fused.total_runtime.gradient_seconds == pytest.approx(
            3 * solo.total_runtime.gradient_seconds
        )
        # And the fused models equal the solo run model for the first spec.
        np.testing.assert_allclose(fused.models[0], solo.model, rtol=0, atol=ATOL)


class TestPageGroupedGather:
    """The chunked shuffle replay groups row copies by page while keeping
    counters AND buffer-pool state exactly path-invariant — in every
    regime, including an actively evicting pool."""

    @staticmethod
    def _table(m, d, seed):
        catalog = Catalog()
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(m, d))
        y = np.where(rng.random(m) > 0.5, 1.0, -1.0)
        return catalog.create_table_from_arrays("t", X, y)

    @pytest.mark.parametrize(
        "m,d,capacity,chunk_size",
        [
            (250, 5, 100, 17),   # warm pool, dense chunks (few pages)
            (400, 6, 100, 400),  # one chunk spanning the table
            (4000, 50, 40, 32),  # EVICTING pool: capacity 40 < 125 pages
            (4000, 50, 1, 64),   # pathological thrash, sparse chunks
        ],
    )
    def test_counters_and_pool_state_path_invariant(self, m, d, capacity, chunk_size):
        info = self._table(m, d, seed=1)

        pool_tuple = BufferPool(capacity)
        shuffle_tuple = ShuffleOnce(info, pool_tuple, random_state=9)
        per_tuple = np.vstack([features for features, _ in shuffle_tuple])

        info2 = self._table(m, d, seed=1)
        pool_chunk = BufferPool(capacity)
        shuffle_chunk = ShuffleOnce(info2, pool_chunk, random_state=9)
        chunked = np.vstack(
            [block.copy() for block, _ in shuffle_chunk.scan_chunks(chunk_size)]
        )

        np.testing.assert_array_equal(chunked, per_tuple)
        assert shuffle_chunk.stats.pages_requested == shuffle_tuple.stats.pages_requested
        assert shuffle_chunk.stats.tuples_produced == shuffle_tuple.stats.tuples_produced
        # The buffer pool sees the identical touch sequence, so hit/miss/
        # eviction counters — the cost model's input — agree exactly even
        # while the pool is actively evicting.
        assert pool_chunk.stats.page_reads == pool_tuple.stats.page_reads
        assert pool_chunk.stats.cache_hits == pool_tuple.stats.cache_hits
        assert pool_chunk.stats.cache_misses == pool_tuple.stats.cache_misses
        assert pool_chunk.stats.evictions == pool_tuple.stats.evictions
