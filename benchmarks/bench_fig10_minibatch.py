"""Figure 10 / Appendix D — accuracy vs mini-batch size (50–200).

Test 4 (strongly convex, (ε,δ)-DP) on MNIST-like data for b in
{50, 100, 150, 200}: "we achieve almost native accuracy as we increase the
mini-batch size ... while the accuracy also increases for SCS13 and BST14
..., their accuracy is still significantly worse than our algorithms".
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.figures import figure10_minibatch, load_experiment_dataset
from repro.evaluation.reporting import format_series

from bench_util import run_once, write_report

EPSILONS = (0.5, 2.0, 4.0)
BATCHES = (50, 100, 150, 200)


def bench_fig10_minibatch_sizes(benchmark):
    pair = load_experiment_dataset("mnist", scale=0.05, seed=0)
    results = run_once(
        benchmark, figure10_minibatch, pair,
        epsilons=EPSILONS, batch_grid=BATCHES, passes=5, regularization=1e-3,
    )
    blocks = []
    for batch, sweep in zip(BATCHES, results):
        blocks.append(
            format_series(
                f"Figure 10: Test 4, mini-batch b = {batch}",
                "epsilon", sweep.epsilons, sweep.series,
            )
        )
    write_report("fig10_minibatch", "\n\n".join(blocks))

    # ours >= both baselines at every batch size (mean over the grid).
    for batch, sweep in zip(BATCHES, results):
        ours = float(np.mean(sweep.series["ours"]))
        assert ours >= float(np.mean(sweep.series["scs13"])) - 0.03
        assert ours >= float(np.mean(sweep.series["bst14"])) - 0.03

    # ours approaches native accuracy as b grows: at b = 200 the gap to
    # noiseless at the largest epsilon is small.
    final = results[-1]
    gap = final.series["noiseless"][-1] - final.series["ours"][-1]
    assert gap < 0.1, f"gap to noiseless at b=200: {gap}"
