"""Legacy setup shim.

Exists so `pip install -e .` works in offline environments whose setuptools
predates PEP-660 editable wheels; all metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
