"""Tests for hyper-parameter tuning (grid, public, private Algorithm 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accountant import PrivacyAccountant
from repro.core.bolton import private_strongly_convex_psgd
from repro.core.mechanisms import PrivacyParameters
from repro.optim.losses import LogisticLoss
from repro.tuning.grid import ParameterGrid, paper_grid
from repro.tuning.private import (
    exponential_mechanism_probabilities,
    partition_dataset,
    privately_tuned_sgd,
)
from repro.tuning.public import tune_on_public_data
from tests.conftest import make_binary_data


class TestParameterGrid:
    def test_cross_product(self):
        grid = ParameterGrid({"k": [5, 10], "lam": [0.1, 0.2, 0.3]})
        assert len(grid) == 6
        assert {"k": 5, "lam": 0.1} in grid.candidates()

    def test_deterministic_order(self):
        grid = ParameterGrid({"b": [1], "a": [2, 3]})
        assert grid.candidates() == [{"a": 2, "b": 1}, {"a": 3, "b": 1}]

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid({})
        with pytest.raises(ValueError):
            ParameterGrid({"k": []})

    def test_paper_grid_contents(self):
        # Sections 4.1/4.5: k in {5, 10}, lambda in {1e-4, 1e-3, 1e-2}.
        grid = paper_grid()
        assert len(grid) == 6
        passes = {c["passes"] for c in grid}
        lams = {c["regularization"] for c in grid}
        assert passes == {5, 10}
        assert lams == {0.0001, 0.001, 0.01}

    def test_paper_grid_convex_variant(self):
        grid = paper_grid(include_regularization=False)
        assert len(grid) == 2
        assert all("regularization" not in c for c in grid)


class TestExponentialMechanism:
    def test_probabilities_normalized(self):
        p = exponential_mechanism_probabilities([3, 1, 4], epsilon=1.0)
        assert p.sum() == pytest.approx(1.0)

    def test_lower_error_more_likely(self):
        p = exponential_mechanism_probabilities([10, 0, 10], epsilon=1.0)
        assert p[1] > p[0]
        assert p[1] > p[2]

    def test_paper_formula(self):
        # p_i = exp(-eps chi_i / 2) / sum_j exp(-eps chi_j / 2)
        chi = [2, 5]
        eps = 0.8
        p = exponential_mechanism_probabilities(chi, eps)
        raw = np.exp([-eps * 2 / 2, -eps * 5 / 2])
        np.testing.assert_allclose(p, raw / raw.sum())

    def test_large_counts_stable(self):
        p = exponential_mechanism_probabilities([100000, 100001], epsilon=1.0)
        assert np.all(np.isfinite(p))
        assert p.sum() == pytest.approx(1.0)

    def test_epsilon_zero_rejected(self):
        with pytest.raises(ValueError):
            exponential_mechanism_probabilities([1, 2], epsilon=0.0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            exponential_mechanism_probabilities([1, -1], epsilon=1.0)

    def test_selection_frequencies_match_probabilities(self, rng):
        # DP smoke test: the empirical selection histogram must match the
        # exponential-mechanism distribution.
        chi = [0, 2, 6]
        eps = 1.0
        p = exponential_mechanism_probabilities(chi, eps)
        draws = rng.choice(3, size=20000, p=p)
        freq = np.bincount(draws, minlength=3) / 20000
        np.testing.assert_allclose(freq, p, atol=0.02)


class TestPartition:
    def test_disjoint_and_complete(self, rng):
        X, y = make_binary_data(103, 4, seed=0)
        portions = partition_dataset(X, y, 4, rng)
        assert len(portions) == 4
        total = sum(px.shape[0] for px, _ in portions)
        assert total == 103
        sizes = [px.shape[0] for px, _ in portions]
        assert max(sizes) - min(sizes) <= 1

    def test_too_few_examples(self, rng):
        X, y = make_binary_data(3, 2, seed=0)
        with pytest.raises(ValueError):
            partition_dataset(X, y, 5, rng)


def _factory(theta):
    def trainer(X, y, epsilon, delta, random_state):
        return private_strongly_convex_psgd(
            X, y, LogisticLoss(regularization=theta["regularization"]),
            epsilon=epsilon, delta=delta if delta > 0 else 0.0,
            passes=theta["passes"], batch_size=10, random_state=random_state,
        )

    return trainer


class TestPrivateTuning:
    def test_end_to_end(self):
        X, y = make_binary_data(700, 6, seed=1)
        grid = ParameterGrid({"passes": [2, 5], "regularization": [0.01, 0.1]})
        outcome = privately_tuned_sgd(
            X, y, _factory, grid, epsilon=2.0, random_state=0
        )
        assert outcome.chosen_parameters in grid.candidates()
        assert len(outcome.unreleased_error_counts) == 4
        assert outcome.unreleased_probabilities.sum() == pytest.approx(1.0)
        assert 0.0 <= outcome.accuracy(X, y) <= 1.0

    def test_deterministic_given_seed(self):
        X, y = make_binary_data(700, 6, seed=1)
        grid = ParameterGrid({"passes": [2, 5], "regularization": [0.01]})
        a = privately_tuned_sgd(X, y, _factory, grid, epsilon=2.0, random_state=9)
        b = privately_tuned_sgd(X, y, _factory, grid, epsilon=2.0, random_state=9)
        assert a.chosen_index == b.chosen_index
        np.testing.assert_array_equal(a.model_result.model, b.model_result.model)

    def test_accountant_records_stages(self):
        X, y = make_binary_data(700, 6, seed=1)
        grid = ParameterGrid({"passes": [2], "regularization": [0.01, 0.1]})
        acct = PrivacyAccountant(budget=PrivacyParameters(4.0))
        privately_tuned_sgd(
            X, y, _factory, grid, epsilon=2.0, random_state=0, accountant=acct
        )
        eps, _ = acct.total()
        # parallel training (2.0 once) + selection (2.0) = 4.0
        assert eps == pytest.approx(4.0)

    def test_good_parameters_usually_selected(self):
        """With a grid containing one sane and one terrible setting, the
        mechanism should pick the sane one most of the time at large eps."""
        X, y = make_binary_data(900, 6, seed=2)
        grid = ParameterGrid({"passes": [5], "regularization": [0.01, 49.0]})
        wins = 0
        for seed in range(10):
            outcome = privately_tuned_sgd(
                X, y, _factory, grid, epsilon=5.0, random_state=seed
            )
            if outcome.chosen_parameters["regularization"] == 0.01:
                wins += 1
        assert wins >= 7


class TestPublicTuning:
    def test_end_to_end(self):
        X, y = make_binary_data(600, 6, seed=3)
        Xp, yp = make_binary_data(600, 6, seed=4)
        grid = ParameterGrid({"passes": [2, 5], "regularization": [0.01]})
        outcome = tune_on_public_data(
            Xp[:400], yp[:400], Xp[400:], yp[400:], _factory, grid,
            epsilon=2.0, random_state=0,
        )
        assert outcome.best_parameters in grid.candidates()
        assert len(outcome.scores) == 2
        assert outcome.best_accuracy == max(s for _, s in outcome.scores)


class TestBatchedErrorCounts:
    def test_matches_per_result_loop(self):
        from types import SimpleNamespace

        from repro.tuning.private import batched_error_counts

        rng = np.random.default_rng(8)
        X_val = rng.normal(size=(60, 6))
        y_val = np.where(rng.random(60) > 0.5, 1.0, -1.0)
        loss = LogisticLoss()
        results = [
            SimpleNamespace(model=rng.normal(size=6), loss=loss) for _ in range(4)
        ]
        counts = batched_error_counts(results, X_val, y_val)
        reference = [
            int(np.sum(loss.predict(r.model, X_val) != y_val)) for r in results
        ]
        assert counts == reference

    def test_bespoke_predictors_fall_back(self):
        from types import SimpleNamespace

        from repro.tuning.private import batched_error_counts

        class OddLoss(LogisticLoss):
            def predict(self, w, X):  # non-sign predictor: not batchable
                return np.ones(X.shape[0])

        results = [SimpleNamespace(model=np.zeros(3), loss=OddLoss())]
        assert batched_error_counts(results, np.zeros((2, 3)), np.ones(2)) is None
        assert batched_error_counts([SimpleNamespace()], np.zeros((2, 3)), np.ones(2)) is None
