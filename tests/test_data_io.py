"""Tests for dataset persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.io import load_csv, load_npz, save_csv, save_npz
from tests.conftest import make_binary_data


@pytest.fixture
def dataset():
    X, y = make_binary_data(40, 5, seed=8)
    return Dataset("demo", X, y)


class TestNpz:
    def test_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "demo.npz"
        save_npz(dataset, path)
        loaded = load_npz(path)
        np.testing.assert_array_equal(loaded.features, dataset.features)
        np.testing.assert_array_equal(loaded.labels, dataset.labels)
        assert loaded.name == "demo"
        assert loaded.num_classes == 2

    def test_multiclass_metadata(self, tmp_path):
        rng = np.random.default_rng(0)
        ds = Dataset("mc", rng.normal(size=(10, 3)),
                      rng.integers(0, 3, 10).astype(float), num_classes=3)
        path = tmp_path / "mc.npz"
        save_npz(ds, path)
        assert load_npz(path).num_classes == 3

    def test_missing_arrays_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, features=np.zeros((2, 2)))
        with pytest.raises(ValueError, match="missing arrays"):
            load_npz(path)


class TestCsv:
    def test_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "demo.csv"
        save_csv(dataset, path)
        loaded = load_csv(path, normalize=False)
        np.testing.assert_allclose(loaded.features, dataset.features)
        np.testing.assert_allclose(loaded.labels, dataset.labels)
        assert loaded.name == "demo"

    def test_normalization_applied(self, tmp_path):
        path = tmp_path / "big.csv"
        path.write_text("3.0,4.0,1\n0.1,0.2,-1\n")
        loaded = load_csv(path)
        assert np.linalg.norm(loaded.features[0]) <= 1.0 + 1e-12
        np.testing.assert_allclose(loaded.features[1], [0.1, 0.2])

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0,abc,1\n")
        with pytest.raises(ValueError, match="non-numeric"):
            load_csv(path)

    def test_ragged_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("1.0,2.0,1\n1.0,1\n")
        with pytest.raises(ValueError, match="inconsistent column counts"):
            load_csv(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("\n")
        with pytest.raises(ValueError, match="no data rows"):
            load_csv(path)

    def test_too_few_columns(self, tmp_path):
        path = tmp_path / "thin.csv"
        path.write_text("1.0\n")
        with pytest.raises(ValueError, match="at least one feature"):
            load_csv(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blanks.csv"
        path.write_text("0.1,0.2,1\n\n0.3,0.4,-1\n")
        assert load_csv(path).size == 2

    def test_loaded_data_trains(self, dataset, tmp_path):
        from repro.core.bolton import private_convex_psgd
        from repro.optim.losses import LogisticLoss

        path = tmp_path / "train.csv"
        save_csv(dataset, path)
        loaded = load_csv(path)
        result = private_convex_psgd(
            loaded.features, loaded.labels, LogisticLoss(), epsilon=1.0,
            random_state=0,
        )
        assert np.all(np.isfinite(result.model))
