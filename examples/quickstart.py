#!/usr/bin/env python
"""Quickstart: train a differentially private logistic-regression model.

Demonstrates the bolt-on workflow end to end:

1. load a dataset (a synthetic stand-in for the paper's Protein dataset);
2. train with Algorithm 2 (strongly convex — the recommended default);
3. inspect the privacy parameters, sensitivity, and accuracy;
4. compare against the noiseless model and the SCS13/BST14 baselines.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import LogisticLoss, private_strongly_convex_psgd
from repro.baselines import bst14_train, scs13_train
from repro.data import protein_like


def main() -> None:
    # 1. Data: ~7.3k training examples, 74 features, normalized onto the
    #    unit L2 ball (a precondition of the privacy analysis).
    train, test = protein_like(scale=0.1, seed=0)
    print(f"dataset: {train.name}  m={train.size}  d={train.dimension}")

    # 2. The privacy contract and the model class. R = 1/lambda follows the
    #    paper's practice for constrained strongly convex optimization.
    epsilon, delta = 0.2, 1.0 / train.size**2
    regularization = 1e-3
    loss = LogisticLoss(regularization=regularization)

    result = private_strongly_convex_psgd(
        train.features,
        train.labels,
        loss,
        epsilon,
        delta=delta,
        passes=10,
        batch_size=50,
        random_state=42,
    )

    # 3. What the run produced.
    print(f"privacy guarantee : {result.privacy}")
    print(f"L2-sensitivity    : {result.sensitivity.value:.3e}"
          f"  ({result.sensitivity.regime})")
    print(f"noise magnitude   : {result.noise_norm:.4f}")
    print(f"test accuracy     : {result.accuracy(test.features, test.labels):.4f}")
    print(f"noiseless (never release!) accuracy: "
          f"{result.noiseless_accuracy(test.features, test.labels):.4f}")

    # 4. The state-of-the-art white-box baselines at the same guarantee.
    scs13 = scs13_train(
        train.features, train.labels, loss, epsilon, delta=delta,
        passes=10, batch_size=50, radius=1 / regularization, random_state=42,
    )
    bst14 = bst14_train(
        train.features, train.labels, loss, epsilon, delta,
        passes=10, batch_size=50, radius=1 / regularization, random_state=42,
    )
    print(f"SCS13 accuracy    : {scs13.accuracy(test.features, test.labels):.4f}"
          f"  ({scs13.noise_draws} noise draws)")
    print(f"BST14 accuracy    : {bst14.accuracy(test.features, test.labels):.4f}"
          f"  ({bst14.noise_draws} noise draws)")
    print("ours used exactly 1 noise draw — that is the bolt-on approach.")


if __name__ == "__main__":
    main()
