"""Small linear-algebra helpers used across subpackages."""

from __future__ import annotations

import numpy as np


def l2_norm(vector: np.ndarray) -> float:
    """Euclidean norm as a Python float."""
    return float(np.linalg.norm(np.asarray(vector, dtype=np.float64)))


def clip_to_ball(vector: np.ndarray, radius: float) -> np.ndarray:
    """Project ``vector`` onto the L2 ball of the given radius.

    This is the projection operator Π_C of equation (7) for C = {w : ||w|| <= R}.
    Projection onto a convex set is non-expansive, which is exactly why the
    paper's sensitivity argument survives constrained optimization.
    """
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    v = np.asarray(vector, dtype=np.float64)
    norm = np.linalg.norm(v)
    if norm <= radius:
        return v
    return v * (radius / norm)


def normalize_rows(matrix: np.ndarray, max_norm: float = 1.0) -> np.ndarray:
    """Scale each row so its L2 norm is at most ``max_norm``.

    Rows already inside the ball are left untouched (this mirrors the
    standard preprocessing assumed by the paper: ``||x|| <= 1``).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    X = np.asarray(matrix, dtype=np.float64)
    norms = np.linalg.norm(X, axis=1, keepdims=True)
    scale = np.where(norms > max_norm, max_norm / np.maximum(norms, 1e-300), 1.0)
    return X * scale


def random_unit_vector(dimension: int, rng: np.random.Generator) -> np.ndarray:
    """Sample uniformly from the surface of the unit sphere in R^d.

    Uses the classic Gaussian-normalization trick referenced by the paper's
    Appendix E ([8] in their bibliography).
    """
    if dimension <= 0:
        raise ValueError(f"dimension must be positive, got {dimension}")
    while True:
        v = rng.standard_normal(dimension)
        norm = np.linalg.norm(v)
        if norm > 1e-12:
            return v / norm
