"""BST14 — Bassily, Smith and Thakurta, "Private empirical risk
minimization" (FOCS 2014), in the paper's constant-epoch extension
(Algorithms 4 and 5 of Appendix F).

The original BST14 runs ``O(m^2)`` noisy SGD iterations. The paper extends
it to ``T = k m`` iterations for a constant k and recalibrates the noise
via the advanced-composition equation (line 5 of Algorithm 4):

    eps = T * eps1 * (e^{eps1} - 1) + sqrt(2 T ln(1/delta1)) * eps1,

solved for the per-iteration budget ``eps1`` (we use bisection — the
left-hand side is strictly increasing in eps1), then amplified by
subsampling: ``eps2 = min(1, m * eps1 / 2)``, and finally
``sigma^2 = 2 ln(1.25/delta1) / eps2^2`` with ``delta1 = delta/(k m)``.

Iterations sample ``i_t ~ [m]`` uniformly (with replacement), add
``z ~ N(0, sigma^2 iota I_d)`` to the gradient, and use steps

* convex (Algorithm 4): ``eta_t = 2R / (G sqrt(t))``,
  ``G = sqrt(d sigma^2 + b^2 L^2)``;
* strongly convex (Algorithm 5): ``eta_t = 1 / (gamma t)``.

``iota`` localizes the per-iteration L2-sensitivity (1 for logistic
regression per the paper's note on line 11; generally ``(2L/b)^2`` for a
mini-batch of size b — we use the general form and reproduce the paper's
``iota = 1`` when ``2L/b = 1``... see :func:`per_iteration_sensitivity`).

BST14 supports (ε,δ)-DP only (it relies on advanced composition); asking
for δ = 0 raises.

The ``naive_noise_for_m_passes`` flag reproduces the ablation discussed in
Section 4.1: keep the *original* paper's noise (calibrated for m passes,
i.e. ``T_noise = m^2``) while running only km iterations — the
configuration the extended algorithm is shown to beat.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.baselines.common import BaselineResult, EpochNoiseBuffer
from repro.core.mechanisms import PrivacyParameters
from repro.optim.losses import Loss
from repro.optim.projection import L2BallProjection
from repro.optim.psgd import PSGD, PSGDConfig
from repro.optim.schedules import BST14Schedule, InverseTSchedule
from repro.utils.rng import RandomState, spawn_generators
from repro.utils.validation import (
    check_matrix_labels,
    check_positive,
    check_positive_int,
    check_unit_ball,
)


def solve_composition_epsilon(epsilon: float, steps: int, delta1: float) -> float:
    """Solve ``eps = T e1 (e^{e1} - 1) + sqrt(2 T ln(1/delta1)) e1`` for e1.

    Line 5 of Algorithms 4/5. The LHS is continuous, strictly increasing,
    0 at ``e1 = 0`` and unbounded, so bisection on ``[0, hi]`` converges.
    """
    check_positive(epsilon, "epsilon")
    check_positive_int(steps, "steps")
    check_positive(delta1, "delta1")
    if delta1 >= 1.0:
        raise ValueError(f"delta1 must be < 1, got {delta1}")

    log_term = math.sqrt(2.0 * steps * math.log(1.0 / delta1))

    def consumed(e1: float) -> float:
        return steps * e1 * (math.expm1(e1)) + log_term * e1

    hi = 1.0
    while consumed(hi) < epsilon:
        hi *= 2.0
        if hi > 1e6:  # pragma: no cover - defensive
            raise RuntimeError("failed to bracket the composition solution")
    lo = 0.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if consumed(mid) < epsilon:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def per_iteration_sensitivity(lipschitz: float, batch_size: int) -> float:
    """The per-iteration sensitivity factor iota of Algorithm 4, line 11.

    The paper's annotation: "iota = 1 for logistic regression, and in
    general is the L2-sensitivity localized to an iteration". For a
    mini-batch mean gradient that localized sensitivity is ``2L/b`` —
    which reproduces the paper's iota = 1 at its stated setting
    (L = 1, b = 1 gives 2, within the factor-2 slack of their norm-bound
    localization; ``iota_override=1.0`` restores the exact paper value).

    Following the algorithm literally, iota multiplies the *variance*:
    ``z ~ N(0, sigma^2 * iota * I_d)``, and the step-size bound G of line
    12 uses the raw ``sigma``.
    """
    check_positive(lipschitz, "lipschitz")
    check_positive_int(batch_size, "batch_size")
    return 2.0 * lipschitz / batch_size


def bst14_noise_sigma(
    epsilon: float,
    delta: float,
    m: int,
    passes: int,
    batch_size: int = 1,
    noise_steps: Optional[int] = None,
) -> tuple[float, int]:
    """Calibrate BST14's per-iteration Gaussian sigma.

    Returns ``(sigma, T)`` where T is the number of SGD iterations
    (``ceil(k m / b)``). ``noise_steps`` overrides the T used for *noise
    calibration only* (the naive-m-passes ablation passes ``m * m``).
    """
    check_positive_int(m, "m")
    check_positive_int(passes, "passes")
    check_positive_int(batch_size, "batch_size")
    steps = int(math.ceil(passes * m / batch_size))
    calibration_steps = noise_steps if noise_steps is not None else steps
    check_positive_int(calibration_steps, "noise_steps")
    delta1 = delta / calibration_steps
    eps1 = solve_composition_epsilon(epsilon, calibration_steps, delta1)
    eps2 = min(1.0, m * eps1 / 2.0)
    sigma_squared = 2.0 * math.log(1.25 / delta1) / eps2**2
    return math.sqrt(sigma_squared), steps


def bst14_train(
    X: np.ndarray,
    y: np.ndarray,
    loss: Loss,
    epsilon: float,
    delta: float,
    *,
    passes: int = 1,
    batch_size: int = 1,
    radius: float = 1.0,
    strongly_convex: Optional[bool] = None,
    iota_override: Optional[float] = None,
    naive_noise_for_m_passes: bool = False,
    random_state: RandomState = None,
) -> BaselineResult:
    """Train with the constant-epoch BST14 (Algorithm 4 or 5).

    ``strongly_convex`` picks Algorithm 5 (``1/(gamma t)`` steps); ``None``
    auto-detects from the loss properties. ``radius`` is the constraint-set
    radius R (BST14 is inherently constrained; its convex step size depends
    on R).
    """
    X, y = check_matrix_labels(X, y)
    check_unit_ball(X)
    check_positive(epsilon, "epsilon")
    check_positive_int(passes, "passes")
    check_positive_int(batch_size, "batch_size")
    check_positive(radius, "radius")
    if delta <= 0.0:
        raise ValueError(
            "BST14 provides (eps, delta)-DP only (advanced composition "
            "requires delta > 0); use SCS13 or the bolt-on algorithms for "
            "pure eps-DP"
        )
    privacy = PrivacyParameters(epsilon, delta)
    m, d = X.shape

    properties = loss.properties(radius=radius)
    if strongly_convex is None:
        strongly_convex = properties.is_strongly_convex
    if strongly_convex and not properties.is_strongly_convex:
        raise ValueError("Algorithm 5 requires a strongly convex loss")
    lipschitz = properties.lipschitz

    noise_steps = None
    if naive_noise_for_m_passes:
        # Original BST14 runs m^2 iterations; calibrating for that many
        # while executing km is the "naive stop" ablation of Section 4.1.
        noise_steps = m * m
    sigma, steps = bst14_noise_sigma(
        epsilon, delta, m, passes, batch_size, noise_steps
    )
    iota = (
        iota_override
        if iota_override is not None
        else per_iteration_sensitivity(lipschitz, batch_size)
    )
    # Line 11: z ~ N(0, sigma^2 * iota * I_d) — iota scales the variance.
    effective_sigma = sigma * math.sqrt(iota)

    if strongly_convex:
        schedule = InverseTSchedule(properties.strong_convexity)
    else:
        # Line 12, literally: G = sqrt(d sigma^2 + b^2 L^2) with the raw
        # sigma. This pessimistic bound is what throttles BST14's step
        # size in the paper's convex experiments.
        gradient_bound = math.sqrt(d * sigma**2 + batch_size**2 * lipschitz**2)
        schedule = BST14Schedule(radius=radius, gradient_bound=gradient_bound)

    sgd_rng, noise_rng = spawn_generators(random_state, 2)

    # Noise draws come from the dedicated ``noise_rng`` stream (spawned
    # above), not the engine's generator: the engine stream interleaves the
    # per-update index sampling, and only an independent noise stream lets
    # an epoch's Gaussian draws be blocked into one ``(n, d)`` RNG call
    # (stream-identical to per-step draws from that same stream — the
    # sample_batch contract). Each update still pays one logical draw.
    buffer = EpochNoiseBuffer(
        lambda n, block_rng: block_rng.normal(0.0, effective_sigma, size=(n, d)),
        steps_per_epoch=-(-m // batch_size),
    )

    def gradient_noise(t: int, dimension: int, rng: np.random.Generator) -> np.ndarray:
        return buffer.next(noise_rng)

    def example_sampler(t: int, size: int, rng: np.random.Generator) -> np.ndarray:
        # BST14 samples uniformly with replacement (line 10 of Algorithm 4).
        return rng.integers(0, size, size=batch_size)

    config = PSGDConfig(
        schedule=schedule,
        passes=passes,
        batch_size=batch_size,
        projection=L2BallProjection(radius),
    )
    engine = PSGD(
        loss, config, gradient_noise=gradient_noise, example_sampler=example_sampler
    )
    result = engine.run(X, y, random_state=sgd_rng)
    return BaselineResult(
        model=result.model,
        privacy=privacy,
        algorithm="BST14",
        psgd=result,
        loss=loss,
        per_step_noise_scale=effective_sigma,
        noise_draws=buffer.rows_served,
    )
