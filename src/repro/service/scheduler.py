"""The shared-scan scheduler: many tenants' jobs, one table scan.

PR 2 taught the engine to train K models in one scan
(:class:`~repro.rdbms.uda.MultiSGDUDA`); this module turns that
*intra-request* speedup into *cross-tenant* batching: queued jobs that
target the same table and agree on the scan-lockstep knobs
(:meth:`TrainingJob.fusion_key` — batch size and passes) are dispatched
as ONE fused aggregate query, so a 32-job window costs one job's page
requests instead of 32. Jobs nothing else matches fall back to the
classic sequential dispatch; either way a job's weights are bitwise the
same (the fused UDA runs in ``gradient_mode="exact"`` over the session's
per-table shared scan, and each job's noise comes from its own
seed-spawned stream).

Admission control is budget-first: a job's (ε, δ) is **reserved** in the
ledger at submission, *before* it can ever reach a scan. Denied jobs are
rejected having charged zero pages and zero budget; failed jobs refund
their reservation; only a successfully released model commits it.
"""

from __future__ import annotations

import threading
import zlib
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.mechanisms import mechanism_for
from repro.core.sensitivity import SensitivityBound, sensitivity_for_schedule
from repro.rdbms.bismarck import BismarckSession
from repro.rdbms.uda import MultiSGDUDA, SGDUDA
from repro.service.jobs import JobQueue, JobStatus, TrainingJob
from repro.service.ledger import (
    BudgetDenied,
    BudgetReservation,
    PrivacyBudgetLedger,
)
from repro.service.registry import JobRecord, ModelRegistry
from repro.utils.validation import check_positive_int


class SharedScanScheduler:
    """Groups compatible queued jobs and dispatches each group as one scan.

    Parameters
    ----------
    session / ledger / registry:
        The service's engine connection, budget ledger, and results store.
    batching_window:
        How many queued jobs one scheduling round considers (the fusion
        opportunity window). Dispatch order is by (priority desc, arrival)
        — deterministic, and by the bitwise-determinism contract it only
        affects *when* a job completes, never what it computes.
    chunk_size:
        Executor block size for every dispatched scan (fused and
        sequential must agree: chunking decides segment boundaries, and
        bitwise equality needs identical segments).
    fuse:
        ``False`` forces the sequential fallback for every job — the
        reference dispatch the benchmarks and equivalence tests compare
        against.
    scan_seed:
        Seed of the per-table shared permutations. Each table's scan
        order is drawn once from ``(scan_seed, table name)`` and replayed
        by every job that ever trains on it, which is what makes a job's
        result independent of scheduling.
    """

    def __init__(
        self,
        session: BismarckSession,
        ledger: PrivacyBudgetLedger,
        registry: ModelRegistry,
        *,
        batching_window: int = 32,
        chunk_size: int = 256,
        fuse: bool = True,
        scan_seed: int = 0,
    ) -> None:
        self.session = session
        self.ledger = ledger
        self.registry = registry
        self.batching_window = check_positive_int(batching_window, "batching_window")
        self.chunk_size = check_positive_int(chunk_size, "chunk_size")
        self.fuse = bool(fuse)
        self.scan_seed = int(scan_seed)
        self.queue = JobQueue()
        self._reservations: Dict[str, BudgetReservation] = {}
        self._clock = 0
        # Guards the admission path (clock, queue, reservation map) so
        # concurrent submitters compose with the ledger's own lock;
        # dispatch (run_pending) stays a single-threaded loop by design.
        self._admission_lock = threading.Lock()
        #: Dispatch telemetry: (key, job_ids, pages) per executed group.
        self.dispatch_log: List[Tuple[tuple, List[str], int]] = []

    # -- admission ---------------------------------------------------------------

    def submit(self, job: TrainingJob) -> JobRecord:
        """Admit (reserve budget + enqueue) or reject a stamped job.

        Zero-cost rejection is the point: the ledger says no *here*, at
        submission, so an over-budget job never appears in any scan group
        and never causes a page request.
        """
        if not job.job_id or job.arrival < 0:
            raise ValueError("submit needs a stamped job (job_id + arrival)")
        # Fail fast on programming errors — unknown table, or an option
        # the in-RDBMS dispatch cannot honor — so they raise instead of
        # producing a REJECTED record (and before any budget moves).
        self.session.catalog.get(job.table)
        if job.candidate.average is not None:
            raise ValueError(
                "the service's in-RDBMS dispatch (SGDUDA/MultiSGDUDA) does "
                "not support iterate averaging; submit with average=None or "
                "train via repro.core.train_bolt_on directly"
            )
        with self._admission_lock:
            self._clock += 1
            record = JobRecord(
                job=job, status=JobStatus.QUEUED, submitted_at=self._clock
            )
            try:
                reservation = self.ledger.reserve(
                    job.principal, job.table, job.privacy, job_id=job.job_id
                )
            except BudgetDenied as denial:
                record.status = JobStatus.REJECTED
                record.error = str(denial)
                record.finished_at = self._clock
                return self.registry.add(record)
            try:
                self.registry.add(record)
            except Exception:
                # Never leak a hold: if the record cannot be registered
                # (e.g. a duplicate job id), the reservation comes back.
                self.ledger.refund(reservation)
                raise
            self._reservations[job.job_id] = reservation
            self.queue.push(job)
            return record

    # -- dispatch ----------------------------------------------------------------

    def run_pending(self) -> List[JobRecord]:
        """Drain the queue: group each window by fusion key and dispatch.

        Returns the records of every job that reached a terminal state
        this call (completed + failed), in dispatch order.
        """
        finished: List[JobRecord] = []
        while len(self.queue):
            window = self.queue.pop_window(self.batching_window)
            groups: Dict[tuple, List[TrainingJob]] = {}
            for job in window:
                groups.setdefault(job.fusion_key(), []).append(job)
            for key, jobs in groups.items():
                if self.fuse and len(jobs) > 1:
                    self._dispatch_fused(key, jobs, finished)
                else:
                    for job in jobs:
                        self._dispatch_sequential(key, job, finished)
        return finished

    # -- the two dispatch paths --------------------------------------------------

    def _dispatch_fused(
        self, key: tuple, jobs: List[TrainingJob], finished: List[JobRecord]
    ) -> None:
        """ONE fused scan for the whole group (pages charged once)."""
        table = self.session.catalog.get(jobs[0].table)
        prepared = []
        for job in jobs:
            resolved = self._prepare(job, table.num_tuples, finished)
            if resolved is not None:
                prepared.append((job,) + resolved)
        if not prepared:
            return
        uda = MultiSGDUDA(
            losses=[job.candidate.loss for job, *_ in prepared],
            schedules=[schedule for _, schedule, _, _ in prepared],
            batch_size=prepared[0][0].candidate.batch_size,
            projections=[projection for _, _, projection, _ in prepared],
            gradient_mode="exact",
        )
        for job, *_ in prepared:
            self.registry.get(job.job_id).status = JobStatus.RUNNING
        pages_before = self.session.pool.stats.page_reads
        try:
            report = self.session.run_sgd_multi(
                jobs[0].table,
                uda,
                epochs=prepared[0][0].candidate.passes,
                chunk_size=self.chunk_size,
                shuffle=self._shared_scan(jobs[0].table),
                algorithm_label="service-fused",
            )
        except Exception as error:  # engine failure: nobody pays
            for job, *_ in prepared:
                self._fail(job, error, finished)
            return
        pages = self.session.pool.stats.page_reads - pages_before
        self.dispatch_log.append((key, [job.job_id for job, *_ in prepared], pages))
        for position, (job, _, _, sensitivity) in enumerate(prepared):
            self._release(
                job,
                report.models[position],
                sensitivity,
                dispatch="fused",
                group_size=len(prepared),
                group_pages=pages,
                finished=finished,
            )

    def _dispatch_sequential(
        self, key: tuple, job: TrainingJob, finished: List[JobRecord]
    ) -> None:
        """The classic one-job-one-scan fallback (unfusable or fuse=False)."""
        table = self.session.catalog.get(job.table)
        resolved = self._prepare(job, table.num_tuples, finished)
        if resolved is None:
            return
        schedule, projection, sensitivity = resolved
        uda = SGDUDA(
            job.candidate.loss, schedule, job.candidate.batch_size, projection
        )
        self.registry.get(job.job_id).status = JobStatus.RUNNING
        pages_before = self.session.pool.stats.page_reads
        try:
            report = self.session.run_sgd(
                job.table,
                uda,
                epochs=job.candidate.passes,
                chunk_size=self.chunk_size,
                shuffle=self._shared_scan(job.table),
                algorithm_label="service-sequential",
            )
        except Exception as error:
            self._fail(job, error, finished)
            return
        pages = self.session.pool.stats.page_reads - pages_before
        self.dispatch_log.append((key, [job.job_id], pages))
        self._release(
            job,
            report.model,
            sensitivity,
            dispatch="sequential",
            group_size=1,
            group_pages=pages,
            finished=finished,
        )

    # -- shared steps ------------------------------------------------------------

    def _prepare(
        self, job: TrainingJob, m: int, finished: List[JobRecord]
    ) -> Optional[Tuple]:
        """Resolve schedule/projection and the sensitivity bound, or fail
        the job *before* it costs any I/O (non-releasable losses — e.g. a
        non-smooth hinge — die here with their budget refunded)."""
        try:
            schedule, projection, properties = job.candidate.resolve(m)
            sensitivity = sensitivity_for_schedule(
                properties,
                schedule,
                m,
                job.candidate.passes,
                job.candidate.batch_size,
            )
        except Exception as error:
            self._fail(job, error, finished)
            return None
        return schedule, projection, sensitivity

    def _release(
        self,
        job: TrainingJob,
        noiseless: np.ndarray,
        sensitivity: SensitivityBound,
        *,
        dispatch: str,
        group_size: int,
        group_pages: int,
        finished: List[JobRecord],
    ) -> None:
        """The bolt-on epilogue + budget commit for one trained job."""
        _, noise_rng = job.spawn_streams()
        mechanism = mechanism_for(job.privacy)
        noise = mechanism.sample(
            noiseless.shape[0], sensitivity.value, job.privacy, noise_rng
        )
        record = self.registry.get(job.job_id)
        try:
            receipt = self.ledger.commit(self._reservations.pop(job.job_id))
        except Exception as error:  # pragma: no cover - reserve guarantees room
            self._fail(job, error, finished)
            return
        self._clock += 1
        record.status = JobStatus.COMPLETED
        record.model = noiseless + noise
        record.receipt = receipt
        record.sensitivity = float(sensitivity.value)
        record.noise_norm = float(np.linalg.norm(noise))
        record.dispatch = dispatch
        record.group_size = group_size
        record.group_pages = group_pages
        record.epochs = job.candidate.passes
        record.finished_at = self._clock
        finished.append(record)

    def _fail(
        self, job: TrainingJob, error: Exception, finished: List[JobRecord]
    ) -> None:
        """Terminal failure: refund the reservation, record the reason."""
        reservation = self._reservations.pop(job.job_id, None)
        if reservation is not None:
            self.ledger.refund(reservation)
        self._clock += 1
        record = self.registry.get(job.job_id)
        record.status = JobStatus.FAILED
        record.error = f"{type(error).__name__}: {error}"
        record.finished_at = self._clock
        finished.append(record)

    def _shared_scan(self, table_name: str):
        """The table's service-wide permutation (seeded by table, not job)."""
        return self.session.shared_scan(
            table_name,
            random_state=np.random.SeedSequence(
                [self.scan_seed, zlib.crc32(table_name.encode("utf-8"))]
            ),
        )
