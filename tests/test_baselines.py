"""Tests for the SCS13 and BST14 baselines."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.bst14 import (
    bst14_noise_sigma,
    bst14_train,
    per_iteration_sensitivity,
    solve_composition_epsilon,
)
from repro.baselines.scs13 import (
    scs13_gaussian_sigma,
    scs13_noise_scale,
    scs13_train,
)
from repro.optim.losses import LogisticLoss
from tests.conftest import make_binary_data


class TestSCS13NoiseCalibration:
    def test_scale_formula(self):
        # (2L/b) / eps_pass
        assert scs13_noise_scale(1.0, 0.5, 1) == pytest.approx(4.0)
        assert scs13_noise_scale(1.0, 0.5, 10) == pytest.approx(0.4)

    def test_gaussian_sigma_formula(self):
        sens = 2.0 / 5
        expected = sens * math.sqrt(2 * math.log(1.25 / 1e-6)) / 0.5
        assert scs13_gaussian_sigma(1.0, 0.5, 1e-6, 5) == pytest.approx(expected)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            scs13_noise_scale(0.0, 1.0, 1)
        with pytest.raises(ValueError):
            scs13_gaussian_sigma(1.0, 1.0, 0.0, 1)


class TestSCS13Training:
    def test_runs_pure_dp(self, medium_data):
        X, y = medium_data
        result = scs13_train(X, y, LogisticLoss(), epsilon=1.0, passes=2,
                             batch_size=10, random_state=0)
        assert result.algorithm == "SCS13"
        assert result.privacy.is_pure
        assert result.noise_draws == 2 * 60  # 2 passes * 600/10 batches

    def test_runs_approximate_dp(self, medium_data):
        X, y = medium_data
        result = scs13_train(X, y, LogisticLoss(), epsilon=1.0, delta=1e-6,
                             passes=1, batch_size=10, random_state=0)
        assert not result.privacy.is_pure
        assert result.per_step_noise_scale == pytest.approx(
            scs13_gaussian_sigma(1.0, 1.0, 1e-6, 10)
        )

    def test_noise_per_update_not_at_end(self, medium_data):
        # The defining property versus the bolt-on algorithms.
        X, y = medium_data
        result = scs13_train(X, y, LogisticLoss(), epsilon=1.0, passes=1,
                             batch_size=1, random_state=0)
        assert result.noise_draws == 600

    def test_radius_constrains_model(self, medium_data):
        X, y = medium_data
        result = scs13_train(X, y, LogisticLoss(regularization=0.1), epsilon=1.0,
                             passes=1, batch_size=10, radius=0.5, random_state=0)
        assert np.linalg.norm(result.model) <= 0.5 + 1e-9

    def test_multipass_splits_budget(self, medium_data):
        # More passes -> smaller per-pass budget -> more noise per update.
        X, y = medium_data
        one = scs13_train(X, y, LogisticLoss(), epsilon=1.0, passes=1,
                          batch_size=10, random_state=0)
        five = scs13_train(X, y, LogisticLoss(), epsilon=1.0, passes=5,
                           batch_size=10, random_state=0)
        assert five.per_step_noise_scale == pytest.approx(
            5 * one.per_step_noise_scale
        )

    def test_deterministic(self, medium_data):
        X, y = medium_data
        a = scs13_train(X, y, LogisticLoss(), epsilon=1.0, random_state=3)
        b = scs13_train(X, y, LogisticLoss(), epsilon=1.0, random_state=3)
        np.testing.assert_array_equal(a.model, b.model)

    def test_rejects_unnormalized(self):
        X = np.full((10, 3), 9.0)
        with pytest.raises(ValueError, match="unit L2 ball"):
            scs13_train(X, np.ones(10), LogisticLoss(), epsilon=1.0)


class TestBST14Composition:
    def test_solution_satisfies_equation(self):
        epsilon, steps, delta1 = 1.0, 10_000, 1e-8
        e1 = solve_composition_epsilon(epsilon, steps, delta1)
        consumed = steps * e1 * math.expm1(e1) + math.sqrt(
            2 * steps * math.log(1 / delta1)
        ) * e1
        assert consumed == pytest.approx(epsilon, rel=1e-6)

    def test_monotone_in_epsilon(self):
        lo = solve_composition_epsilon(0.5, 1000, 1e-8)
        hi = solve_composition_epsilon(2.0, 1000, 1e-8)
        assert hi > lo

    def test_monotone_in_steps(self):
        few = solve_composition_epsilon(1.0, 100, 1e-8)
        many = solve_composition_epsilon(1.0, 100_000, 1e-8)
        assert many < few

    def test_per_iteration_sensitivity(self):
        assert per_iteration_sensitivity(1.0, 1) == 2.0
        assert per_iteration_sensitivity(2.0, 4) == 1.0


class TestBST14NoiseSigma:
    def test_returns_sigma_and_steps(self):
        sigma, steps = bst14_noise_sigma(1.0, 1e-6, m=1000, passes=2)
        assert steps == 2000
        assert sigma > 0

    def test_naive_m_passes_noisier(self):
        # Calibrating for m^2 iterations while running km must give much
        # larger noise — the ablation of Section 4.1.
        m = 1000
        extended, _ = bst14_noise_sigma(1.0, 1e-6, m, passes=2)
        naive, _ = bst14_noise_sigma(1.0, 1e-6, m, passes=2, noise_steps=m * m)
        assert naive > 3 * extended

    def test_batch_reduces_steps(self):
        _, steps_b1 = bst14_noise_sigma(1.0, 1e-6, 1000, 1, batch_size=1)
        _, steps_b10 = bst14_noise_sigma(1.0, 1e-6, 1000, 1, batch_size=10)
        assert steps_b10 == steps_b1 // 10


class TestBST14Training:
    def test_requires_delta(self, medium_data):
        X, y = medium_data
        with pytest.raises(ValueError, match="delta"):
            bst14_train(X, y, LogisticLoss(), epsilon=1.0, delta=0.0)

    def test_convex_run(self, medium_data):
        X, y = medium_data
        result = bst14_train(X, y, LogisticLoss(), epsilon=1.0, delta=1e-6,
                             passes=2, batch_size=10, radius=5.0, random_state=0)
        assert result.algorithm == "BST14"
        assert np.linalg.norm(result.model) <= 5.0 + 1e-9
        assert result.noise_draws == 2 * 60

    def test_strongly_convex_run(self, medium_data):
        X, y = medium_data
        result = bst14_train(
            X, y, LogisticLoss(regularization=0.1), epsilon=1.0, delta=1e-6,
            passes=2, batch_size=10, radius=10.0, random_state=0,
        )
        assert np.all(np.isfinite(result.model))

    def test_strongly_convex_flag_validated(self, medium_data):
        X, y = medium_data
        with pytest.raises(ValueError, match="strongly convex"):
            bst14_train(X, y, LogisticLoss(), epsilon=1.0, delta=1e-6,
                        strongly_convex=True, random_state=0)

    def test_naive_variant_worse_noise(self, medium_data):
        X, y = medium_data
        extended = bst14_train(X, y, LogisticLoss(), epsilon=1.0, delta=1e-6,
                               passes=1, batch_size=10, radius=5.0, random_state=0)
        naive = bst14_train(X, y, LogisticLoss(), epsilon=1.0, delta=1e-6,
                            passes=1, batch_size=10, radius=5.0, random_state=0,
                            naive_noise_for_m_passes=True)
        assert naive.per_step_noise_scale > extended.per_step_noise_scale

    def test_deterministic(self, medium_data):
        X, y = medium_data
        a = bst14_train(X, y, LogisticLoss(), epsilon=1.0, delta=1e-6,
                        radius=2.0, random_state=3)
        b = bst14_train(X, y, LogisticLoss(), epsilon=1.0, delta=1e-6,
                        radius=2.0, random_state=3)
        np.testing.assert_array_equal(a.model, b.model)

    def test_iota_override(self, medium_data):
        X, y = medium_data
        result = bst14_train(X, y, LogisticLoss(), epsilon=1.0, delta=1e-6,
                             radius=2.0, iota_override=1.0, random_state=0)
        sigma, _ = bst14_noise_sigma(1.0, 1e-6, X.shape[0], 1)
        assert result.per_step_noise_scale == pytest.approx(sigma)


class TestHeadToHead:
    """The headline evaluation claim: ours beats both baselines."""

    def test_bolton_beats_baselines_on_average(self):
        from repro.core.bolton import private_strongly_convex_psgd

        X, y = make_binary_data(4000, 8, seed=7)
        Xt, yt = make_binary_data(1000, 8, seed=8)
        lam, eps, delta = 0.01, 0.5, 1e-6
        loss = LogisticLoss(regularization=lam)

        ours, scs, bst = [], [], []
        for seed in range(3):
            ours.append(
                private_strongly_convex_psgd(
                    X, y, loss, eps, delta=delta, passes=5, batch_size=50,
                    random_state=seed,
                ).accuracy(Xt, yt)
            )
            scs.append(
                scs13_train(X, y, loss, eps, delta=delta, passes=5, batch_size=50,
                            radius=1 / lam, random_state=seed).accuracy(Xt, yt)
            )
            bst.append(
                bst14_train(X, y, loss, eps, delta, passes=5, batch_size=50,
                            radius=1 / lam, random_state=seed).accuracy(Xt, yt)
            )
        assert np.mean(ours) >= np.mean(scs)
        assert np.mean(ours) >= np.mean(bst)


class TestEpochNoiseBatching:
    """The per-epoch blocked noise draws reproduce the per-step sequence."""

    def test_buffer_serves_per_step_sequence(self):
        from repro.baselines.common import EpochNoiseBuffer

        def draw_block(n, rng):
            return rng.normal(0.0, 1.3, size=(n, 5))

        buffered = EpochNoiseBuffer(draw_block, steps_per_epoch=8)
        rng = np.random.default_rng(3)
        served = np.stack([buffered.next(rng) for _ in range(20)])  # 2.5 epochs
        reference = np.random.default_rng(3).normal(0.0, 1.3, size=(24, 5))[:20]
        np.testing.assert_array_equal(served, reference)
        assert buffered.rows_served == 20

    def test_scs13_batched_draws_match_per_step_reference(self, medium_data):
        """scs13_train's epoch-blocked noise releases the same model as an
        explicitly per-step PSGD run on the same seed — pure and (eps,
        delta) variants (one Laplace-style draw or one Gaussian vector per
        update, drawn step by step from the identical stream)."""
        from repro.core.mechanisms import (
            GaussianMechanism,
            PrivacyParameters,
            SphericalLaplaceMechanism,
        )
        from repro.optim.projection import IdentityProjection
        from repro.optim.psgd import PSGD, PSGDConfig
        from repro.optim.schedules import InverseSqrtTSchedule

        X, y = medium_data
        for delta in (0.0, 1e-6):
            passes, batch_size = 2, 25
            result = scs13_train(
                X, y, LogisticLoss(), epsilon=1.0, delta=delta,
                passes=passes, batch_size=batch_size, random_state=17,
            )
            mech = SphericalLaplaceMechanism() if delta == 0.0 else GaussianMechanism()
            privacy = PrivacyParameters(1.0 / passes, delta / passes if delta else 0.0)

            def per_step_noise(t, dimension, rng):
                return mech.sample(dimension, 2.0 / batch_size, privacy, rng)

            config = PSGDConfig(
                schedule=InverseSqrtTSchedule(1.0), passes=passes,
                batch_size=batch_size, projection=IdentityProjection(),
            )
            reference = PSGD(
                LogisticLoss(), config, gradient_noise=per_step_noise
            ).run(X, y, random_state=np.random.default_rng(17))
            np.testing.assert_array_equal(result.model, reference.model)

    def test_bst14_noise_stream_is_independent_and_deterministic(self, medium_data):
        """BST14 noise rides its own spawned stream: the same seed always
        gives the same model, and the blocked draws serve exactly the
        sequence the dedicated stream would produce per step."""
        X, y = medium_data
        a = bst14_train(X, y, LogisticLoss(), epsilon=1.0, delta=1e-6,
                        passes=2, batch_size=20, random_state=31)
        b = bst14_train(X, y, LogisticLoss(), epsilon=1.0, delta=1e-6,
                        passes=2, batch_size=20, random_state=31)
        np.testing.assert_array_equal(a.model, b.model)
        assert a.noise_draws == b.noise_draws == 60  # 2 passes * ceil(600/20)
