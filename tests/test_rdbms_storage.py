"""Tests for the storage layer: pages, heap files, buffer pool.

The per-table engine-domain contract carries the service's cross-table
parallelism: every heap owns its LRU shard, its counters, and its lock,
so concurrent scans on *disjoint* tables must produce exactly the
hit/miss/eviction counters (and resident sets) a serialized execution
would — locked here by a threaded stress test over hypothesis-drawn
scan orders.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdbms.storage import (
    PAGE_SIZE_BYTES,
    BufferPool,
    FaultyHeapFile,
    LatencyHeapFile,
    MaterializedHeapFile,
    PageFaultError,
    TransientPageFault,
    VirtualHeapFile,
    tuple_width_bytes,
    tuples_per_page,
)


class TestTupleLayout:
    def test_width(self):
        # d floats + 1 label, 8 bytes each
        assert tuple_width_bytes(50) == 51 * 8

    def test_per_page(self):
        per = tuples_per_page(50)
        assert per == (PAGE_SIZE_BYTES - 16) // (51 * 8)
        assert per >= 1

    def test_too_wide_rejected(self):
        with pytest.raises(ValueError, match="too wide"):
            tuples_per_page(5000)


class TestMaterializedHeapFile:
    def make(self, m=100, d=10, seed=0):
        rng = np.random.default_rng(seed)
        return MaterializedHeapFile(
            rng.normal(size=(m, d)), np.where(rng.random(m) > 0.5, 1.0, -1.0)
        )

    def test_counts(self):
        heap = self.make(m=100, d=10)
        assert heap.num_tuples == 100
        assert heap.dimension == 10
        per = tuples_per_page(10)
        assert heap.num_pages == -(-100 // per)

    def test_pages_partition_rows(self):
        heap = self.make(m=250, d=30)
        seen = 0
        for page_id in range(heap.num_pages):
            page = heap.read_page(page_id)
            seen += page.tuple_count
        assert seen == 250

    def test_roundtrip_content(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(40, 6))
        y = np.ones(40)
        heap = MaterializedHeapFile(X, y)
        per = tuples_per_page(6)
        page = heap.read_page(0)
        np.testing.assert_array_equal(page.features, X[:per])

    def test_out_of_range_page(self):
        heap = self.make()
        with pytest.raises(IndexError):
            heap.read_page(heap.num_pages)
        with pytest.raises(IndexError):
            heap.read_page(-1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MaterializedHeapFile(np.zeros((0, 3)), np.zeros(0))

    def test_mismatched_rejected(self):
        with pytest.raises(ValueError):
            MaterializedHeapFile(np.zeros((5, 3)), np.zeros(4))

    def test_size_bytes(self):
        heap = self.make(m=1000, d=50)
        assert heap.size_bytes == heap.num_pages * PAGE_SIZE_BYTES


class TestVirtualHeapFile:
    def make(self, m=1000, d=10):
        def generate(page_id, count, dim):
            rng = np.random.default_rng(page_id)
            return rng.normal(size=(count, dim)), np.ones(count)

        return VirtualHeapFile(m, d, generate)

    def test_deterministic_pages(self):
        heap = self.make()
        a = heap.read_page(3)
        b = heap.read_page(3)
        np.testing.assert_array_equal(a.features, b.features)

    def test_tail_page_short(self):
        heap = self.make(m=1000, d=10)
        per = tuples_per_page(10)
        last = heap.read_page(heap.num_pages - 1)
        assert last.tuple_count == 1000 - per * (heap.num_pages - 1)

    def test_bad_generator_shapes_detected(self):
        def bad(page_id, count, dim):
            return np.zeros((count + 1, dim)), np.zeros(count)

        heap = VirtualHeapFile(100, 5, bad)
        with pytest.raises(ValueError, match="wrong shapes"):
            heap.read_page(0)

    def test_large_virtual_table_is_cheap(self):
        # A "447 GB" table should not allocate anything until read.
        heap = self.make(m=1_200_000_000, d=50)
        assert heap.size_bytes > 4e11
        page = heap.read_page(heap.num_pages // 2)
        assert page.tuple_count == tuples_per_page(50)


class TestBufferPool:
    def make_heap(self, m=500, d=10):
        rng = np.random.default_rng(2)
        return MaterializedHeapFile(rng.normal(size=(m, d)), np.ones(m))

    def test_cold_scan_all_misses(self):
        heap = self.make_heap()
        pool = BufferPool(capacity_pages=100)
        list(pool.scan(heap))
        assert pool.stats.cache_misses == heap.num_pages
        assert pool.stats.cache_hits == 0

    def test_warm_scan_all_hits(self):
        heap = self.make_heap()
        pool = BufferPool(capacity_pages=100)
        list(pool.scan(heap))
        pool.stats.reset()
        list(pool.scan(heap))
        assert pool.stats.cache_hits == heap.num_pages
        assert pool.stats.cache_misses == 0

    def test_undersized_pool_thrashes_on_repeat_scans(self):
        # The disk-based regime of Figure 2(b): table larger than memory,
        # every sequential scan misses every page.
        heap = self.make_heap(m=2000)
        assert heap.num_pages > 3
        pool = BufferPool(capacity_pages=2)
        list(pool.scan(heap))
        pool.stats.reset()
        list(pool.scan(heap))
        assert pool.stats.cache_misses == heap.num_pages

    def test_lru_eviction_order(self):
        heap = self.make_heap(m=2000)
        pool = BufferPool(capacity_pages=2)
        pool.get_page(heap, 0)
        pool.get_page(heap, 1)
        pool.get_page(heap, 0)  # touch 0 -> 1 becomes LRU
        pool.get_page(heap, 2)  # evicts 1
        pool.stats.reset()
        pool.get_page(heap, 0)
        assert pool.stats.cache_hits == 1
        pool.get_page(heap, 1)
        assert pool.stats.cache_misses == 1

    def test_eviction_counter(self):
        heap = self.make_heap(m=2000)
        pool = BufferPool(capacity_pages=1)
        list(pool.scan(heap))
        assert pool.stats.evictions == heap.num_pages - 1

    def test_hit_rate(self):
        heap = self.make_heap()
        pool = BufferPool(capacity_pages=100)
        list(pool.scan(heap))
        list(pool.scan(heap))
        assert pool.stats.hit_rate == pytest.approx(0.5)

    def test_clear(self):
        heap = self.make_heap()
        pool = BufferPool(capacity_pages=100)
        list(pool.scan(heap))
        pool.clear()
        assert pool.resident_pages == 0

    def test_distinct_heaps_do_not_collide(self):
        heap_a = self.make_heap(m=100)
        heap_b = self.make_heap(m=100)
        pool = BufferPool(capacity_pages=10)
        page_a = pool.get_page(heap_a, 0)
        page_b = pool.get_page(heap_b, 0)
        assert pool.stats.cache_misses == 2
        assert page_a is not page_b


class TestLatencyHeapFile:
    def make_inner(self, m=200, d=10):
        rng = np.random.default_rng(3)
        return MaterializedHeapFile(rng.normal(size=(m, d)), np.ones(m))

    def test_delegates_shape_and_content(self):
        inner = self.make_inner()
        heap = LatencyHeapFile(inner, 0.0)
        assert heap.dimension == inner.dimension
        assert heap.num_pages == inner.num_pages
        assert heap.num_tuples == inner.num_tuples
        np.testing.assert_array_equal(
            heap.read_page(1).features, inner.read_page(1).features
        )

    def test_sleeps_once_per_read(self):
        sleeps = []
        heap = LatencyHeapFile(self.make_inner(), 0.25, sleeper=sleeps.append)
        heap.read_page(0)
        heap.read_page(0)
        heap.read_page(2)
        assert sleeps == [0.25, 0.25, 0.25]
        assert heap.reads == 3

    def test_zero_latency_never_calls_the_sleeper(self):
        sleeps = []
        heap = LatencyHeapFile(self.make_inner(), 0.0, sleeper=sleeps.append)
        heap.read_page(0)
        assert sleeps == []
        assert heap.reads == 1

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            LatencyHeapFile(self.make_inner(), -0.1)

    def test_pool_pays_latency_on_misses_only(self):
        sleeps = []
        heap = LatencyHeapFile(self.make_inner(), 0.5, sleeper=sleeps.append)
        pool = BufferPool(capacity_pages=100)
        list(pool.scan(heap))
        assert len(sleeps) == heap.num_pages  # cold: one fetch per page
        list(pool.scan(heap))
        assert len(sleeps) == heap.num_pages  # warm: all hits, no I/O


def scan_counters(pool, heap):
    stats = pool.stats_for(heap)
    return (stats.page_reads, stats.cache_hits, stats.cache_misses, stats.evictions)


class TestPerTableDomains:
    def make_heap(self, m=500, d=10, seed=2):
        rng = np.random.default_rng(seed)
        return MaterializedHeapFile(rng.normal(size=(m, d)), np.ones(m))

    def test_stats_for_is_isolated_per_heap(self):
        heap_a, heap_b = self.make_heap(seed=0), self.make_heap(seed=1)
        pool = BufferPool(capacity_pages=100)
        list(pool.scan(heap_a))
        assert scan_counters(pool, heap_a) == (
            heap_a.num_pages, 0, heap_a.num_pages, 0
        )
        assert scan_counters(pool, heap_b) == (0, 0, 0, 0)
        list(pool.scan(heap_b))
        # b's traffic never moved a's counters.
        assert scan_counters(pool, heap_a) == (
            heap_a.num_pages, 0, heap_a.num_pages, 0
        )

    def test_pool_stats_is_the_sum_over_domains(self):
        heap_a, heap_b = self.make_heap(seed=0), self.make_heap(seed=1)
        pool = BufferPool(capacity_pages=100)
        list(pool.scan(heap_a))
        list(pool.scan(heap_b))
        list(pool.scan(heap_b))
        assert pool.stats.page_reads == 3 * heap_a.num_pages
        assert pool.stats.cache_hits == heap_b.num_pages
        assert pool.stats.cache_misses == 2 * heap_a.num_pages

    def test_view_reset_does_not_touch_domain_counters(self):
        heap_a, heap_b = self.make_heap(seed=0), self.make_heap(seed=1)
        pool = BufferPool(capacity_pages=100)
        list(pool.scan(heap_a))
        pool.stats.reset()
        assert pool.stats.page_reads == 0
        # The per-table truth is monotonic — a whole-pool view reset (a
        # benchmarking convenience) must never skew dispatch accounting.
        assert scan_counters(pool, heap_a)[0] == heap_a.num_pages
        list(pool.scan(heap_b))
        assert pool.stats.page_reads == heap_b.num_pages

    def test_dropped_heap_frees_its_cache_but_keeps_pool_history(self):
        import gc

        pool = BufferPool(capacity_pages=100)
        heap = self.make_heap(seed=0)
        pages = heap.num_pages
        list(pool.scan(heap))
        assert pool.resident_pages == pages
        del heap
        gc.collect()
        # The domain (and its cached Pages) died with the heap...
        assert pool.resident_pages == 0
        # ...but the whole-pool counters stay monotonic (retired tally).
        assert pool.stats.page_reads == pages
        assert pool.stats.cache_misses == pages
        # A new heap — even one reusing the dead heap's address — can
        # never inherit the old cache: it starts cold.
        fresh = self.make_heap(seed=0)
        list(pool.scan(fresh))
        assert pool.stats.cache_misses == 2 * pages
        assert pool.stats.cache_hits == 0

    def test_capacity_is_per_domain(self):
        # Two tables that each fit: neither evicts the other (the domain
        # is the unit of memory accounting, like the unit of locking).
        heap_a, heap_b = self.make_heap(seed=0), self.make_heap(seed=1)
        pool = BufferPool(capacity_pages=heap_a.num_pages)
        list(pool.scan(heap_a))
        list(pool.scan(heap_b))
        assert pool.resident_pages == heap_a.num_pages + heap_b.num_pages
        list(pool.scan(heap_a))
        list(pool.scan(heap_b))
        assert pool.stats.evictions == 0
        assert pool.stats.cache_hits == heap_a.num_pages + heap_b.num_pages


class TestConcurrentDomainCounters:
    """Satellite lock-in: concurrent scans on disjoint tables leave every
    per-table counter exactly as the serialized execution would."""

    HEAPS, ROUNDS = 3, 3

    def _orders(self, heaps, seed):
        rng = np.random.default_rng(seed)
        return [
            [list(rng.permutation(heap.num_pages)) for _ in range(self.ROUNDS)]
            for heap in heaps
        ]

    def _run_serialized(self, heaps, orders, capacity):
        pool = BufferPool(capacity_pages=capacity)
        for heap, heap_orders in zip(heaps, orders):
            for order in heap_orders:
                list(pool.scan(heap, page_order=order))
        return pool

    def _run_concurrent(self, heaps, orders, capacity):
        pool = BufferPool(capacity_pages=capacity)
        barrier = threading.Barrier(len(heaps))
        errors = []

        def scan_all(heap, heap_orders):
            try:
                barrier.wait()
                for order in heap_orders:
                    list(pool.scan(heap, page_order=order))
            except Exception as error:  # pragma: no cover - fail loud
                errors.append(error)

        threads = [
            threading.Thread(target=scan_all, args=(heap, heap_orders))
            for heap, heap_orders in zip(heaps, orders)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        return pool

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_concurrent_counters_equal_serialized(self, seed):
        heaps = [
            MaterializedHeapFile(
                np.random.default_rng(i).normal(size=(400 + 80 * i, 8)),
                np.ones(400 + 80 * i),
            )
            for i in range(self.HEAPS)
        ]
        # capacity=2 < num_pages: the thrash regime, where hit/miss/evict
        # and LRU recency are all order-sensitive — the hard case.
        orders = self._orders(heaps, seed)
        serial = self._run_serialized(heaps, orders, capacity=2)
        racing = self._run_concurrent(heaps, orders, capacity=2)
        for heap in heaps:
            assert scan_counters(racing, heap) == scan_counters(serial, heap)
        assert racing.resident_pages == serial.resident_pages
        assert racing.stats.page_reads == serial.stats.page_reads
        assert racing.stats.evictions == serial.stats.evictions


class TestFaultyHeapFile:
    def make(self, m=100, d=10, seed=0, **kwargs):
        rng = np.random.default_rng(seed)
        inner = MaterializedHeapFile(
            rng.normal(size=(m, d)), np.where(rng.random(m) > 0.5, 1.0, -1.0)
        )
        return FaultyHeapFile(inner, **kwargs), inner

    def test_delegates_metadata_and_clean_reads(self):
        faulty, inner = self.make()
        assert faulty.dimension == inner.dimension
        assert faulty.num_pages == inner.num_pages
        assert faulty.num_tuples == inner.num_tuples
        page = faulty.read_page(0)
        assert np.array_equal(page.features, inner.read_page(0).features)
        assert faulty.reads == 1
        assert faulty.faults_injected == 0

    def test_fail_pages_fault_deterministically(self):
        faulty, _ = self.make(fail_pages=(1,))
        faulty.read_page(0)
        with pytest.raises(TransientPageFault, match="page 1"):
            faulty.read_page(1)
        with pytest.raises(TransientPageFault):
            faulty.read_page(1)  # unlimited budget: faults every time
        assert faulty.faults_injected == 2

    def test_fail_times_caps_the_fault_budget(self):
        faulty, inner = self.make(fail_pages=(0,), fail_times=2)
        for _ in range(2):
            with pytest.raises(TransientPageFault):
                faulty.read_page(0)
        # Budget exhausted: the same page now reads clean.
        page = faulty.read_page(0)
        assert np.array_equal(page.features, inner.read_page(0).features)
        assert faulty.faults_injected == 2

    def test_permanent_faults_are_not_transient(self):
        faulty, _ = self.make(fail_pages=(0,), transient=False)
        with pytest.raises(PageFaultError) as excinfo:
            faulty.read_page(0)
        assert not isinstance(excinfo.value, TransientPageFault)
        # The hierarchy still lets callers catch all injected faults.
        assert isinstance(excinfo.value, IOError)

    def test_probability_faults_are_seed_reproducible(self):
        first, _ = self.make(probability=0.5, seed=7)
        second, _ = self.make(probability=0.5, seed=7)

        def fault_pattern(heap, n=40):
            pattern = []
            for i in range(n):
                try:
                    heap.read_page(i % heap.num_pages)
                    pattern.append(False)
                except TransientPageFault:
                    pattern.append(True)
            return pattern

        pattern = fault_pattern(first)
        assert any(pattern) and not all(pattern)
        assert fault_pattern(second) == pattern

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            self.make(probability=1.5)
        with pytest.raises(ValueError, match="fail_times"):
            self.make(fail_times=-1)

    def test_faulted_page_is_never_cached(self):
        """The interplay the service's retry relies on: a fault is raised
        before the pool caches the page, so a retried scan re-reads it
        (and fail_times=1 makes exactly the first attempt fail)."""
        faulty, _ = self.make(fail_pages=(0,), fail_times=1)
        pool = BufferPool(capacity_pages=8)
        with pytest.raises(TransientPageFault):
            pool.get_page(faulty, 0)
        page = pool.get_page(faulty, 0)  # the retry reaches the heap
        assert page is not None
        assert faulty.reads == 2
        stats = pool.stats
        assert stats.cache_hits == 0  # the faulted read cached nothing
