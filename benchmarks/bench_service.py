"""Service-level benchmark: fused vs sequential dispatch at 32 jobs.

The shared-scan scheduler's win is I/O amortization: a window of K
compatible jobs costs one job's page requests instead of K. This bench
measures that on the standard service shape — **32 concurrent jobs on
one table** — plus wall-clock jobs/sec for both dispatch modes, and it
gates CI on the structural claim:

* ``python benchmarks/bench_service.py --gate`` **exits 1 unless the
  fused dispatch makes at least 3x fewer page requests** than the
  sequential dispatch for the same 32-job workload (the measured ratio
  is 32x: one shared scan vs 32 scans), and unless every fused job's
  weights are bitwise-identical to its sequential twin's.

Timings and page counts append to ``BENCH_hotloops.json`` under the
``"service"`` key, extending the machine-readable perf trajectory
(scalar → vectorized → fused → shared-scan service).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

# Direct script execution (`python benchmarks/bench_service.py`) puts only
# benchmarks/ on sys.path; make the package, tests.conftest, and the
# sibling bench module importable the same way conftest.py does.
_here = pathlib.Path(__file__).resolve().parent
for _path in (str(_here.parent / "src"), str(_here.parent), str(_here)):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import numpy as np

from bench_hotloops import _write_results
from repro.optim.losses import LogisticLoss
from repro.service import JobStatus, TrainingService
from tests.conftest import make_binary_data

#: The standard service shape: 32 concurrent jobs on one m x d table.
JOBS, M, D = 32, 5000, 50
PASSES, BATCH = 2, 50
EPS = 0.05

#: --gate fails below this sequential-over-fused page-request ratio.
PAGE_RATIO_FLOOR = 3.0


def _build_service(fuse: bool) -> TrainingService:
    X, y = make_binary_data(M, D, seed=77)
    service = TrainingService(fuse=fuse, scan_seed=11, batching_window=JOBS)
    service.register_table("bench", X, y)
    service.open_budget("bench-tenant", "bench", JOBS * EPS + 1e-9)
    return service


def _submit_workload(service: TrainingService) -> list:
    lambdas = np.logspace(-4, -1, 8)
    return [
        service.submit(
            "bench-tenant",
            "bench",
            LogisticLoss(regularization=float(lambdas[j % len(lambdas)])),
            epsilon=EPS,
            passes=PASSES,
            batch_size=BATCH,
            seed=7000 + j,
        )
        for j in range(JOBS)
    ]


def _run(fuse: bool) -> dict:
    service = _build_service(fuse)
    records = _submit_workload(service)
    pages_before = service.page_reads
    start = time.perf_counter()
    service.drain()
    elapsed = time.perf_counter() - start
    pages = service.page_reads - pages_before
    assert all(record.status is JobStatus.COMPLETED for record in records)
    return {
        "mode": "fused" if fuse else "sequential",
        "jobs": JOBS,
        "seconds": elapsed,
        "jobs_per_second": JOBS / elapsed,
        "pages": pages,
        "pages_per_job": pages / JOBS,
        "models": np.stack([record.model for record in records]),
    }


def bench_service(gate: bool) -> int:
    print(f"service shape: {JOBS} jobs, m={M}, d={D}, b={BATCH}, k={PASSES}")
    fused = _run(fuse=True)
    sequential = _run(fuse=False)

    bitwise = all(
        np.array_equal(fused["models"][j], sequential["models"][j])
        for j in range(JOBS)
    )
    ratio = sequential["pages"] / fused["pages"]
    single_job_pages = PASSES * M

    for row in (fused, sequential):
        print(
            f"{row['mode']:>10}: {row['seconds'] * 1e3:8.1f} ms"
            f"   {row['jobs_per_second']:7.1f} jobs/s"
            f"   {row['pages']:>7} pages ({row['pages_per_job']:.0f}/job)"
        )
    print(f"page ratio:   {ratio:6.1f}x fewer requests fused"
          f"  (gate: >= {PAGE_RATIO_FLOOR}x)")
    print(f"one job alone: {single_job_pages} pages "
          f"-> fused window costs {fused['pages'] / single_job_pages:.2f}x that")
    print(f"bitwise fused == sequential per job: {bitwise}")

    _write_results(
        service={
            "jobs": JOBS,
            "fused_s": fused["seconds"],
            "sequential_s": sequential["seconds"],
            "fused_jobs_per_s": fused["jobs_per_second"],
            "sequential_jobs_per_s": sequential["jobs_per_second"],
            "fused_pages": fused["pages"],
            "sequential_pages": sequential["pages"],
            "page_ratio": ratio,
            "single_job_pages": single_job_pages,
            "bitwise_equal": bitwise,
        }
    )

    if gate and (ratio < PAGE_RATIO_FLOOR or not bitwise):
        if ratio < PAGE_RATIO_FLOOR:
            print(f"FAIL: fused dispatch below {PAGE_RATIO_FLOOR}x fewer pages")
        if not bitwise:
            print("FAIL: fused weights diverged from sequential twins")
        return 1
    print("PASS")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit 1 unless fused dispatch makes >= "
        f"{PAGE_RATIO_FLOOR}x fewer page requests (and stays bitwise-equal)",
    )
    args = parser.parse_args(argv)
    return bench_service(args.gate)


if __name__ == "__main__":
    sys.exit(main())
