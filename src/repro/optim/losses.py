"""Loss functions with the analytic constants the sensitivity theory needs.

The paper's analysis (Section 2) is parameterized by three constants of the
per-example loss ``l(w, (x, y))`` over the hypothesis space ``W``:

* ``L`` — Lipschitz constant, a tight upper bound on ``||grad l||``;
* ``beta`` — smoothness, a tight upper bound on ``||Hessian l||``;
* ``gamma`` — strong convexity, the largest value with ``H - gamma*I >= 0``.

Each loss subclass documents and implements its own derivation, matching
the worked examples in the paper (L2-regularized logistic regression in
Section 2, Huber SVM in Appendix B). All losses assume the standard
preprocessing ``||x|| <= 1`` and, when regularized, a hypothesis bound
``||w|| <= R``.

Labels follow the paper's convention ``y in {-1, +1}``.

Two execution paths
-------------------

Every loss exposes the same contract twice over:

* the **scalar path** — ``value(w, x, y)`` / ``gradient(w, x, y)`` on one
  example at a time, the reference semantics the privacy proof reasons
  about;
* the **batch path** — ``batch_value(w, X, y)`` / ``batch_gradient(w, X, y)``
  on an ``(n, d)`` block, the form the vectorized PSGD engine and the
  chunked RDBMS executor consume.

:class:`Loss` is the minimal base: subclasses only have to provide the
scalar pair, and the defaulted batch methods fall back to a row loop so a
third-party loss keeps working on the fast engines (just without the
matrix speedup). :class:`MarginLoss` is the margin-form specialization all
built-in losses use — ``l(w,(x,y)) = phi(y <w,x>) + (lam/2)||w||^2`` — and
overrides the batch pair with true NumPy matrix arithmetic. The two paths
agree to floating-point rounding (a mean of per-row gradients versus one
``X.T @ coef`` contraction), which the vectorized-equivalence test suite
pins down at ``atol=1e-12``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class LossProperties:
    """The (L, beta, gamma) triple of Definition 1 for a concrete loss.

    ``lipschitz`` or ``smoothness`` may be ``inf`` when no finite bound
    exists under the stated assumptions (callers that need a finite value
    raise a clear error instead of silently under-reporting sensitivity).
    """

    lipschitz: float
    smoothness: float
    strong_convexity: float

    @property
    def is_strongly_convex(self) -> bool:
        return self.strong_convexity > 0.0


class Loss(abc.ABC):
    """A convex per-example loss ``l(w, (x, y))`` — the scalar contract.

    Subclasses must provide the per-example :meth:`value` and
    :meth:`gradient`. The batch methods default to a row loop over the
    scalar pair, so a loss that only defines the scalar methods still runs
    on the vectorized PSGD engine and the chunked RDBMS executor; losses
    that can express themselves in matrix form should subclass
    :class:`MarginLoss` (or override the batch pair directly) to get the
    actual speedup.
    """

    #: L2 regularization coefficient (lambda in the paper); 0 when absent.
    regularization: float

    def __init__(self, regularization: float = 0.0):
        self.regularization = check_non_negative(regularization, "regularization")

    # -- scalar contract -------------------------------------------------------

    @abc.abstractmethod
    def value(self, w: np.ndarray, x: np.ndarray, y: float) -> float:
        """Per-example loss ``l(w, (x, y))`` (including any regularizer)."""

    @abc.abstractmethod
    def gradient(self, w: np.ndarray, x: np.ndarray, y: float) -> np.ndarray:
        """Per-example gradient ``grad_w l(w, (x, y))``."""

    # -- batch contract (scalar fallback) --------------------------------------

    def batch_value(self, w: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        """Mean loss over a batch (the empirical risk ``L_S(w)`` when the
        batch is the whole training set).

        Default: a row loop over :meth:`value`. Matrix-form losses override
        this with one vectorized expression.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        total = 0.0
        for row in range(X.shape[0]):
            total += self.value(w, X[row], float(y[row]))
        return total / X.shape[0]

    def batch_gradient(self, w: np.ndarray, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Mean gradient over a batch — the update direction of mini-batch
        SGD (Section 3.2.3).

        Default: accumulate :meth:`gradient` row by row and divide by the
        batch size, exactly the semantics the scalar reference engine uses.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        total = np.zeros_like(np.asarray(w, dtype=np.float64))
        for row in range(X.shape[0]):
            total += self.gradient(w, X[row], float(y[row]))
        return total / X.shape[0]

    # -- analytic constants ---------------------------------------------------

    def properties(self, radius: float | None = None) -> LossProperties:
        """Derive the ``(L, beta, gamma)`` triple of Definition 1.

        Only losses that know their analytic constants (notably
        :class:`MarginLoss` subclasses) can answer; a scalar-only loss is
        trainable but not privately releasable, and says so loudly instead
        of under-reporting sensitivity.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not expose the (L, beta, gamma) "
            "constants the sensitivity calculation needs; implement "
            "properties() (or subclass MarginLoss) before using this loss "
            "with the private training APIs"
        )

    # -- prediction ------------------------------------------------------------

    def predict(self, w: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Sign predictions in {-1, +1} (zero margin counts as +1)."""
        scores = np.asarray(X, dtype=np.float64) @ np.asarray(w, dtype=np.float64)
        return np.where(scores >= 0.0, 1.0, -1.0)

    def with_regularization(self, regularization: float) -> "Loss":
        """Return a copy of this loss with a different lambda."""
        clone = type(self).__new__(type(self))
        clone.__dict__.update(self.__dict__)
        Loss.__init__(clone, regularization)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(regularization={self.regularization!r})"


class MarginLoss(Loss):
    """A loss in the paper's *margin form*.

    Every loss the paper analyses can be written
    ``l(w, (x, y)) = phi(y <w, x>) + (lam/2) ||w||^2``, which is also the
    form required by Shamir's convergence theorems (Section 3.2.4). The
    gradient is then ``y phi'(z) x + lam w`` with ``z = y <w, x>``, and a
    whole mini-batch collapses to one matrix contraction
    ``X.T @ (phi'(z) * y) / n + lam w`` — the vectorized batch path.
    """

    # -- scalar margin form -------------------------------------------------

    @abc.abstractmethod
    def margin_loss(self, z: np.ndarray) -> np.ndarray:
        """``phi(z)`` evaluated element-wise at margins ``z = y <w, x>``."""

    @abc.abstractmethod
    def margin_derivative(self, z: np.ndarray) -> np.ndarray:
        """``phi'(z)`` evaluated element-wise."""

    @abc.abstractmethod
    def margin_lipschitz(self) -> float:
        """Tight bound on ``|phi'|`` (the un-regularized Lipschitz constant)."""

    @abc.abstractmethod
    def margin_smoothness(self) -> float:
        """Tight bound on ``|phi''|`` (the un-regularized smoothness)."""

    # -- scalar contract ------------------------------------------------------

    def value(self, w: np.ndarray, x: np.ndarray, y: float) -> float:
        """Per-example loss ``phi(y <w, x>) + (lam/2)||w||^2``."""
        z = float(y) * float(np.dot(w, x))
        reg = 0.5 * self.regularization * float(np.dot(w, w))
        return float(self.margin_loss(np.asarray(z))) + reg

    def gradient(self, w: np.ndarray, x: np.ndarray, y: float) -> np.ndarray:
        """Per-example gradient ``y phi'(z) x + lam w``."""
        z = float(y) * float(np.dot(w, x))
        coef = float(self.margin_derivative(np.asarray(z))) * float(y)
        return coef * np.asarray(x, dtype=np.float64) + self.regularization * w

    # -- vectorized batch contract --------------------------------------------

    def batch_value(self, w: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        z = y * (X @ w)
        reg = 0.5 * self.regularization * float(np.dot(w, w))
        return float(np.mean(self.margin_loss(z))) + reg

    def batch_gradient(self, w: np.ndarray, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        z = y * (X @ w)
        coef = self.margin_derivative(z) * y
        return (X.T @ coef) / X.shape[0] + self.regularization * w

    # -- analytic constants ---------------------------------------------------

    def properties(self, radius: float | None = None) -> LossProperties:
        """Derive ``(L, beta, gamma)`` under ``||x|| <= 1`` and, when the
        loss is regularized, ``||w|| <= radius``.

        Mirrors the paper's Section 2 derivation: with regularization
        ``lam > 0`` and ``||w|| <= R`` we get ``L = L_phi + lam R``,
        ``beta = beta_phi + lam``, ``gamma = lam``; without regularization
        ``L = L_phi``, ``beta = beta_phi``, ``gamma = 0``.
        """
        l_phi = self.margin_lipschitz()
        b_phi = self.margin_smoothness()
        if self.regularization == 0.0:
            return LossProperties(lipschitz=l_phi, smoothness=b_phi, strong_convexity=0.0)
        if radius is None:
            raise ValueError(
                "a hypothesis-space radius is required to bound the Lipschitz "
                "constant of a regularized loss (the paper rescales so that "
                "||w|| <= R; pass radius=R, conventionally R = 1/lambda)"
            )
        check_positive(radius, "radius")
        return LossProperties(
            lipschitz=l_phi + self.regularization * radius,
            smoothness=b_phi + self.regularization,
            strong_convexity=self.regularization,
        )


class LogisticLoss(MarginLoss):
    """Logistic loss ``ln(1 + exp(-y <w, x>))`` with optional L2 term.

    Equation (1) of the paper. ``|phi'(z)| = 1/(1+e^z) <= 1`` and
    ``|phi''(z)| = sigma(z)(1-sigma(z)) <= 1/4``; the paper uses the looser
    ``beta_phi = 1`` in its Section 2 example, but the tight ``1/4`` bound
    is valid and yields slightly larger admissible step sizes. We keep the
    paper's constant by default so sensitivity values match the text, and
    expose the tight constant via ``tight_smoothness``.
    """

    def __init__(self, regularization: float = 0.0, tight_smoothness: bool = False):
        super().__init__(regularization)
        self.tight_smoothness = bool(tight_smoothness)

    def margin_loss(self, z: np.ndarray) -> np.ndarray:
        # log(1 + e^{-z}) computed stably via logaddexp(0, -z).
        return np.logaddexp(0.0, -np.asarray(z, dtype=np.float64))

    def margin_derivative(self, z: np.ndarray) -> np.ndarray:
        # phi'(z) = -1 / (1 + e^{z}), computed stably with expit-style clip.
        z = np.asarray(z, dtype=np.float64)
        out = np.empty_like(z)
        pos = z >= 0
        out[pos] = -np.exp(-z[pos]) / (1.0 + np.exp(-z[pos]))
        out[~pos] = -1.0 / (1.0 + np.exp(z[~pos]))
        return out

    def margin_lipschitz(self) -> float:
        return 1.0

    def margin_smoothness(self) -> float:
        return 0.25 if self.tight_smoothness else 1.0


class HuberSVMLoss(MarginLoss):
    """Huber-smoothed hinge loss (Appendix B of the paper).

    With ``z = y <w, x>`` and smoothing width ``h``::

        phi(z) = 0                       if z > 1 + h
               = (1 + h - z)^2 / (4h)    if |1 - z| <= h
               = 1 - z                   if z < 1 - h

    ``|phi'| <= 1`` so ``L_phi = 1``; ``phi''`` is ``1/(2h)`` on the
    quadratic segment and 0 elsewhere, so ``beta_phi = 1/(2h)``.
    """

    def __init__(self, smoothing: float = 0.1, regularization: float = 0.0):
        super().__init__(regularization)
        self.smoothing = check_positive(smoothing, "smoothing")

    def margin_loss(self, z: np.ndarray) -> np.ndarray:
        z = np.asarray(z, dtype=np.float64)
        h = self.smoothing
        quad = (1.0 + h - z) ** 2 / (4.0 * h)
        return np.where(z > 1.0 + h, 0.0, np.where(z < 1.0 - h, 1.0 - z, quad))

    def margin_derivative(self, z: np.ndarray) -> np.ndarray:
        z = np.asarray(z, dtype=np.float64)
        h = self.smoothing
        quad = -(1.0 + h - z) / (2.0 * h)
        return np.where(z > 1.0 + h, 0.0, np.where(z < 1.0 - h, -1.0, quad))

    def margin_lipschitz(self) -> float:
        return 1.0

    def margin_smoothness(self) -> float:
        return 1.0 / (2.0 * self.smoothing)


class LeastSquaresLoss(MarginLoss):
    """Squared loss ``(1 - y <w, x>)^2 / 2`` in margin form.

    For binary labels in {-1, +1}, ``(y - <w,x>)^2/2 = (1 - z)^2/2`` with
    ``z = y <w, x>``. Over a bounded hypothesis space ``||w|| <= R`` (and
    ``||x|| <= 1``) the margin derivative ``z - 1`` is bounded by
    ``R + 1``, giving ``L_phi = R + 1`` — finite only once a radius is
    known, so this loss requires constrained optimization for privacy.
    """

    def __init__(self, regularization: float = 0.0, margin_bound: float | None = None):
        super().__init__(regularization)
        if margin_bound is not None:
            check_positive(margin_bound, "margin_bound")
        #: bound on |z| used for the Lipschitz constant; defaults to 1 + R
        #: resolved at ``properties()`` time when a radius is supplied.
        self.margin_bound = margin_bound

    def margin_loss(self, z: np.ndarray) -> np.ndarray:
        z = np.asarray(z, dtype=np.float64)
        return 0.5 * (1.0 - z) ** 2

    def margin_derivative(self, z: np.ndarray) -> np.ndarray:
        return np.asarray(z, dtype=np.float64) - 1.0

    def margin_lipschitz(self) -> float:
        if self.margin_bound is None:
            return float("inf")
        return self.margin_bound + 1.0

    def margin_smoothness(self) -> float:
        return 1.0

    def properties(self, radius: float | None = None) -> LossProperties:
        if self.margin_bound is None and radius is not None:
            resolved = LeastSquaresLoss(self.regularization, margin_bound=radius)
            return resolved.properties(radius)
        return super().properties(radius)


class HingeLoss(MarginLoss):
    """The (non-smooth) hinge loss, provided for reference only.

    The paper's analysis requires smoothness, which the hinge loss lacks
    (``beta = inf``); private training should use :class:`HuberSVMLoss`
    instead. Keeping the hinge loss lets the test-suite verify that the
    library *refuses* to compute a sensitivity for it.
    """

    def margin_loss(self, z: np.ndarray) -> np.ndarray:
        return np.maximum(0.0, 1.0 - np.asarray(z, dtype=np.float64))

    def margin_derivative(self, z: np.ndarray) -> np.ndarray:
        return np.where(np.asarray(z, dtype=np.float64) < 1.0, -1.0, 0.0)

    def margin_lipschitz(self) -> float:
        return 1.0

    def margin_smoothness(self) -> float:
        return float("inf")
