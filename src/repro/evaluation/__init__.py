"""Experiment harness regenerating every table and figure of the paper."""

from repro.evaluation.harness import (
    BINARY_EPSILONS,
    MNIST_EPSILONS,
    SweepResult,
    accuracy_sweep,
    algorithms_for,
    private_tuning_sweep,
    public_tuning_sweep,
)
from repro.evaluation.metrics import (
    classification_accuracy,
    empirical_risk,
    excess_empirical_risk,
    reference_minimum_risk,
    zero_one_errors,
)
from repro.evaluation.reporting import format_series, format_table, series_summary
from repro.evaluation.scenarios import (
    ALGORITHMS,
    Scenario,
    TrainSettings,
    make_loss,
    paper_delta,
    train,
)
from repro.evaluation.figures import (
    accuracy_figure_row,
    epsilons_for,
    figure1_integration,
    figure2_scalability,
    figure4_batch_size,
    figure4_passes,
    figure5_runtime_vs_batch,
    figure5_runtime_vs_epochs,
    figure10_minibatch,
    load_experiment_dataset,
)
from repro.evaluation.tables import table2_rows, table3, table4_rows

__all__ = [
    "Scenario",
    "TrainSettings",
    "ALGORITHMS",
    "train",
    "make_loss",
    "paper_delta",
    "SweepResult",
    "accuracy_sweep",
    "private_tuning_sweep",
    "public_tuning_sweep",
    "algorithms_for",
    "MNIST_EPSILONS",
    "BINARY_EPSILONS",
    "classification_accuracy",
    "zero_one_errors",
    "empirical_risk",
    "excess_empirical_risk",
    "reference_minimum_risk",
    "format_table",
    "format_series",
    "series_summary",
    "figure1_integration",
    "figure2_scalability",
    "figure4_passes",
    "figure4_batch_size",
    "figure5_runtime_vs_epochs",
    "figure5_runtime_vs_batch",
    "figure10_minibatch",
    "accuracy_figure_row",
    "load_experiment_dataset",
    "epsilons_for",
    "table2_rows",
    "table3",
    "table4_rows",
]
