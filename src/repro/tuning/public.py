"""Tuning using public data (Section 4.1, first variant).

When a public dataset drawn from the same distribution is available, no
privacy needs to be spent on tuning: train each candidate on the public
training split, score on the public validation split, and use the best
parameters when training the *private* model on the private data. This is
the setting behind Figure 3 (and Figure 8).

All candidates read the same public training split, which makes this the
textbook fused workload: with a structural factory (one exposing
``candidate(theta)``, e.g. :class:`repro.core.bolton.BoltOnTrainerFactory`)
the whole grid trains in **one data scan** through
:func:`repro.core.bolton.private_psgd_fleet` — the default whenever the
factory supports it. Opaque trainer callables keep the sequential
reference path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.tuning.grid import ParameterGrid
from repro.tuning.private import TrainerFactory, resolve_fused
from repro.utils.rng import RandomState, spawn_generators
from repro.utils.validation import check_matrix_labels


@dataclass
class PublicTuningOutcome:
    """Best parameters found on public data, with the full score table."""

    best_parameters: Dict
    best_accuracy: float
    scores: List[tuple[Dict, float]]


def tune_on_public_data(
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_val: np.ndarray,
    y_val: np.ndarray,
    trainer_factory: TrainerFactory,
    grid: ParameterGrid,
    epsilon: float,
    *,
    delta: float = 0.0,
    random_state: RandomState = None,
    fused: Optional[bool] = None,
) -> PublicTuningOutcome:
    """Exhaustive grid search on public data.

    Candidates are trained *with the same privacy parameters* the private
    run will use so the selected hyper-parameters account for the noise
    level they will face (matching the paper's methodology of evaluating
    each algorithm at each ε).

    ``fused=None`` (the default) trains the whole grid in one fused data
    scan whenever ``trainer_factory`` exposes ``candidate(theta)`` (the
    structural contract of :class:`repro.core.bolton.BoltOnTrainerFactory`)
    and falls back to per-candidate sequential training otherwise;
    ``fused=False`` forces the sequential reference path.
    """
    X_train, y_train = check_matrix_labels(X_train, y_train)
    X_val, y_val = check_matrix_labels(X_val, y_val)
    candidates = grid.candidates()
    fused = resolve_fused(trainer_factory, fused)
    if fused:
        from repro.core.bolton import private_psgd_fleet

        rngs = spawn_generators(random_state, len(candidates) + 1)
        results = private_psgd_fleet(
            X_train,
            y_train,
            [trainer_factory.candidate(theta) for theta in candidates],
            epsilon,
            delta=delta,
            random_states=rngs[:-1],
            scan_random_state=rngs[-1],
        )
    else:
        rngs = spawn_generators(random_state, len(candidates))
        results = [
            trainer_factory(theta)(
                X_train, y_train, epsilon=epsilon, delta=delta, random_state=rng
            )
            for theta, rng in zip(candidates, rngs)
        ]

    scores: List[tuple[Dict, float]] = []
    best_parameters: Dict = {}
    best_accuracy = -1.0
    for theta, result in zip(candidates, results):
        accuracy = float(np.mean(result.predict(X_val) == y_val))
        scores.append((theta, accuracy))
        if accuracy > best_accuracy:
            best_accuracy = accuracy
            best_parameters = theta
    return PublicTuningOutcome(
        best_parameters=best_parameters,
        best_accuracy=best_accuracy,
        scores=scores,
    )
