"""Helpers shared by the bench modules (kept out of conftest so the module
name cannot collide with tests/conftest.py when both suites run in one
pytest session)."""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_report(name: str, text: str) -> None:
    """Persist one rendered panel under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, func, *args, **kwargs):
    """Time ``func`` exactly once (experiments are too slow to repeat) and
    return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
