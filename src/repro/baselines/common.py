"""Shared result type for the white-box baseline algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.mechanisms import PrivacyParameters
from repro.optim.losses import Loss
from repro.optim.psgd import PSGDResult
from repro.utils.validation import check_matrix_labels


@dataclass
class BaselineResult:
    """Outcome of one SCS13 / BST14 training run.

    Unlike the bolt-on algorithms there is no single released noise vector:
    noise enters every gradient update, so the model itself is the private
    object and there is no meaningful noiseless twin.
    """

    model: np.ndarray
    privacy: PrivacyParameters
    algorithm: str
    psgd: PSGDResult = field(repr=False)
    loss: Loss = field(repr=False)
    #: Per-update noise standard deviation (Gaussian) or scale (Laplace),
    #: recorded for the runtime/overhead accounting.
    per_step_noise_scale: Optional[float] = None
    #: Number of noise samples drawn (== number of gradient updates).
    noise_draws: int = 0

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.loss.predict(self.model, X)

    def accuracy(self, X: np.ndarray, y: np.ndarray) -> float:
        X, y = check_matrix_labels(X, y)
        return float(np.mean(self.predict(X) == y))
