"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "--epsilon", "0.5"])
        assert args.dataset == "protein"
        assert args.epsilon == 0.5
        assert args.delta == "0"

    def test_reproduce_choices(self):
        args = build_parser().parse_args(["reproduce", "table3"])
        assert args.artefact == "table3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestTrainCommand:
    def test_trains_binary_dataset(self, capsys):
        code = main([
            "train", "--dataset", "protein", "--epsilon", "0.5",
            "--scale", "0.01", "--passes", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "privacy" in out
        assert "0.5-DP" in out
        assert "test accuracy" in out

    def test_auto_delta(self, capsys):
        code = main([
            "train", "--dataset", "protein", "--epsilon", "0.5",
            "--delta", "auto", "--scale", "0.01", "--passes", "2",
        ])
        assert code == 0
        assert "(0.5," in capsys.readouterr().out

    def test_convex_route_with_zero_regularization(self, capsys):
        code = main([
            "train", "--dataset", "protein", "--epsilon", "0.5",
            "--regularization", "0", "--scale", "0.01", "--passes", "2",
        ])
        assert code == 0
        assert "convex-constant" in capsys.readouterr().out

    def test_multiclass_rejected(self, capsys):
        code = main([
            "train", "--dataset", "mnist", "--epsilon", "4.0",
            "--scale", "0.005", "--passes", "1",
        ])
        assert code == 2
        assert "multiclass" in capsys.readouterr().err

    def test_huber_loss(self, capsys):
        code = main([
            "train", "--dataset", "protein", "--epsilon", "0.5",
            "--loss", "huber", "--scale", "0.01", "--passes", "2",
        ])
        assert code == 0


class TestReproduceCommand:
    @pytest.mark.parametrize("artefact", ["table2", "table3", "table4", "fig1"])
    def test_cheap_artefacts(self, artefact, capsys):
        assert main(["reproduce", artefact]) == 0
        assert capsys.readouterr().out.strip()

    def test_fig2(self, capsys):
        assert main(["reproduce", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2(a)" in out
        assert "scs13" in out


class TestServiceCommands:
    def test_submit_completes_and_prints_receipt(self, capsys):
        code = main([
            "submit", "--dataset", "protein", "--epsilon", "0.3",
            "--scale", "0.01", "--passes", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "status          : completed" in out
        assert "receipt" in out
        assert "pages charged" in out
        assert "budget" in out

    def test_submit_over_budget_is_rejected_exit_1(self, capsys):
        code = main([
            "submit", "--dataset", "protein", "--epsilon", "0.3",
            "--budget", "0.1", "--scale", "0.01",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "status          : rejected" in out
        assert "overflow" in out

    def test_serve_reports_fusion_and_budgets(self, capsys):
        code = main([
            "serve", "--jobs", "6", "--tenants", "2", "--rows", "200",
            "--dim", "6", "--passes", "1", "--tables", "1", "--workers", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "dispatch mode   : fused" in out
        assert "scan groups     : 1" in out
        assert "tenant-0" in out and "tenant-1" in out

    def test_serve_no_fuse_is_sequential(self, capsys):
        code = main([
            "serve", "--jobs", "4", "--tenants", "1", "--rows", "150",
            "--dim", "5", "--passes", "1", "--no-fuse", "--tables", "1",
            "--workers", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "sequential (forced)" in out

    def test_serve_multi_table_reports_overlap(self, capsys):
        code = main([
            "serve", "--jobs", "8", "--tenants", "2", "--rows", "200",
            "--dim", "6", "--passes", "1", "--workers", "2", "--tables", "2",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "scan overlap    : peak" in captured.out
        assert "scans per table : shared_0=" in captured.out
        assert "shared_1=" in captured.out
        # 2 workers over 2 tables with work: the fleet fits, no warning.
        assert "warning" not in captured.err

    def test_serve_warns_when_workers_exceed_tables_with_work(self, capsys):
        code = main([
            "serve", "--jobs", "4", "--tenants", "2", "--rows", "150",
            "--dim", "5", "--passes", "1", "--workers", "4", "--tables", "1",
        ])
        captured = capsys.readouterr()
        assert code == 0  # warned, not failed — and not silently serialized
        assert "warning: --workers 4 exceeds the 1 table(s)" in captured.err
        assert "scan overlap    : peak 1 of 1 possible" in captured.out


class TestServeTelemetry:
    def test_serve_exports_metrics_file(self, capsys, tmp_path):
        metrics_path = tmp_path / "metrics.prom"
        code = main([
            "serve", "--jobs", "4", "--tenants", "2", "--rows", "150",
            "--dim", "5", "--passes", "1", "--tables", "1", "--workers", "1",
            "--metrics-file", str(metrics_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        # The workload under-budgets the last tenant on purpose: one of
        # its jobs trips admission control.
        assert "job statuses    : completed=3, rejected=1" in out
        text = metrics_path.read_text()
        assert "# TYPE repro_scan_duration_seconds histogram" in text
        assert "repro_scan_pages_total" in text

    def test_serve_json_metrics_dump(self, tmp_path):
        import json

        metrics_path = tmp_path / "metrics.json"
        code = main([
            "serve", "--jobs", "3", "--tenants", "1", "--rows", "150",
            "--dim", "5", "--passes", "1", "--tables", "1", "--workers", "1",
            "--metrics-file", str(metrics_path),
        ])
        assert code == 0
        dump = json.loads(metrics_path.read_text())
        assert dump["format"] == "repro-metrics/v1"
        names = {metric["name"] for metric in dump["metrics"]}
        assert "repro_registry_jobs" in names


class TestTraceCommand:
    def run_serve(self, tmp_path):
        # 3 jobs over 2 tenants: every account's budget fits its share,
        # so all three jobs complete (and are durable for `repro trace`).
        return main([
            "serve", "--jobs", "3", "--tenants", "2", "--rows", "150",
            "--dim", "5", "--passes", "1", "--tables", "1", "--workers", "1",
            "--state-dir", str(tmp_path / "state"),
        ])

    def test_trace_prints_the_span_table(self, capsys, tmp_path):
        assert self.run_serve(tmp_path) == 0
        capsys.readouterr()
        code = main([
            "trace", "job-00001", "--state-dir", str(tmp_path / "state"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "job             : job-00001" in out
        assert "status          : completed" in out
        for span in ("admit", "queued", "claim", "scan", "epilogue", "commit"):
            assert f"\n  {span}" in out

    def test_trace_json_payload(self, capsys, tmp_path):
        import json

        assert self.run_serve(tmp_path) == 0
        capsys.readouterr()
        code = main([
            "trace", "job-00002", "--state-dir", str(tmp_path / "state"),
            "--json",
        ])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["job_id"] == "job-00002"
        assert [s["name"] for s in payload["trace"]["spans"]][:2] == [
            "admit", "queued",
        ]

    def test_trace_unknown_job_exits_2(self, capsys, tmp_path):
        assert self.run_serve(tmp_path) == 0
        capsys.readouterr()
        code = main([
            "trace", "job-99999", "--state-dir", str(tmp_path / "state"),
        ])
        captured = capsys.readouterr()
        assert code == 2
        assert "no job 'job-99999'" in captured.err

    def test_trace_missing_state_dir_exits_2(self, capsys, tmp_path):
        code = main([
            "trace", "job-00001", "--state-dir", str(tmp_path / "void"),
        ])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err
