"""The four test scenarios of Section 4.3 and the algorithm dispatch.

"We consider four main scenarios to evaluate the algorithms: (1) Convex,
ε-differential privacy, (2) Convex, (ε,δ)-differential privacy, (3)
Strongly Convex, ε-differential privacy, and (4) Strongly Convex, (ε,δ)-
differential privacy. Note that BST14 only supports (ε,δ)-differential
privacy."

A scenario couples a loss family (plain vs L2-regularized), a privacy
flavour (δ = 0 vs δ = 1/m²), the step-size table (Table 4) and the
constraint convention (R = 1/λ for strongly convex). ``train`` dispatches
one (algorithm, scenario) cell to the right trainer with the right
parameters — the single choke point both the harness and the tuning
factories go through.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.bst14 import bst14_train
from repro.baselines.scs13 import scs13_train
from repro.core.bolton import (
    noiseless_psgd,
    private_convex_psgd,
    private_strongly_convex_psgd,
)
from repro.optim.losses import HuberSVMLoss, LogisticLoss, Loss
from repro.optim.projection import L2BallProjection
from repro.optim.schedules import ConstantSchedule, InverseTSchedule
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive


class Scenario(enum.Enum):
    """Test 1–4 of the paper."""

    CONVEX_PURE = "Test 1: Convex, eps-DP"
    CONVEX_APPROX = "Test 2: Convex, (eps,delta)-DP"
    STRONGLY_CONVEX_PURE = "Test 3: Strongly Convex, eps-DP"
    STRONGLY_CONVEX_APPROX = "Test 4: Strongly Convex, (eps,delta)-DP"

    @property
    def is_strongly_convex(self) -> bool:
        return self in (
            Scenario.STRONGLY_CONVEX_PURE,
            Scenario.STRONGLY_CONVEX_APPROX,
        )

    @property
    def is_approximate_dp(self) -> bool:
        return self in (Scenario.CONVEX_APPROX, Scenario.STRONGLY_CONVEX_APPROX)

    @property
    def supports_bst14(self) -> bool:
        """BST14 needs delta > 0."""
        return self.is_approximate_dp


ALGORITHMS = ("noiseless", "ours", "scs13", "bst14")


def paper_delta(m: int) -> float:
    """The paper's setting ``delta = 1/m^2`` (Section 4.3)."""
    if m <= 1:
        raise ValueError(f"m must be > 1, got {m}")
    return 1.0 / (m * m)


def make_loss(
    scenario: Scenario,
    regularization: float = 1e-4,
    model: str = "logistic",
    huber_smoothing: float = 0.1,
) -> Loss:
    """The scenario's loss: plain for convex tests, L2-regularized for
    strongly convex tests; logistic regression by default, Huber SVM for
    the Appendix B experiments."""
    lam = regularization if scenario.is_strongly_convex else 0.0
    if model == "logistic":
        return LogisticLoss(regularization=lam)
    if model == "huber":
        return HuberSVMLoss(smoothing=huber_smoothing, regularization=lam)
    raise ValueError(f"unknown model {model!r}; expected 'logistic' or 'huber'")


@dataclass
class TrainSettings:
    """Everything one (algorithm, scenario) training call needs."""

    scenario: Scenario
    epsilon: float
    passes: int = 10
    batch_size: int = 50
    regularization: float = 1e-4
    model: str = "logistic"
    huber_smoothing: float = 0.1
    delta: Optional[float] = None  # None -> paper default (0 or 1/m^2)
    #: Radius for algorithms that need a constraint set in convex mode
    #: (BST14's step size depends on R even when unregularized).
    convex_radius: float = 10.0

    def resolve_delta(self, m: int) -> float:
        if self.delta is not None:
            return self.delta
        return paper_delta(m) if self.scenario.is_approximate_dp else 0.0

    @property
    def radius(self) -> float:
        """R = 1/lambda in the strongly convex scenarios (Section 4.3)."""
        if self.scenario.is_strongly_convex:
            return 1.0 / self.regularization
        return self.convex_radius


def train(
    algorithm: str,
    X: np.ndarray,
    y: np.ndarray,
    settings: TrainSettings,
    random_state: RandomState = None,
):
    """Train one algorithm under one scenario; returns an object exposing
    ``model`` and ``predict``.

    Step sizes follow Table 4: noiseless and ours use ``1/sqrt(m)``
    (convex) or the (capped) ``1/(gamma t)`` (strongly convex); SCS13 uses
    ``1/sqrt(t)``; BST14 uses its own Algorithm 4/5 schedules internally.
    """
    algorithm = algorithm.lower()
    check_positive(settings.epsilon, "epsilon")
    m = np.asarray(X).shape[0]
    delta = settings.resolve_delta(m)
    loss = make_loss(
        settings.scenario,
        settings.regularization,
        settings.model,
        settings.huber_smoothing,
    )

    if algorithm == "noiseless":
        return _train_noiseless(X, y, loss, settings, random_state)
    if algorithm == "ours":
        if settings.scenario.is_strongly_convex:
            return private_strongly_convex_psgd(
                X,
                y,
                loss,
                settings.epsilon,
                delta=delta,
                passes=settings.passes,
                batch_size=settings.batch_size,
                radius=settings.radius,
                random_state=random_state,
            )
        return private_convex_psgd(
            X,
            y,
            loss,
            settings.epsilon,
            delta=delta,
            passes=settings.passes,
            batch_size=settings.batch_size,
            random_state=random_state,
        )
    if algorithm == "scs13":
        return scs13_train(
            X,
            y,
            loss,
            settings.epsilon,
            delta=delta,
            passes=settings.passes,
            batch_size=settings.batch_size,
            radius=settings.radius if settings.scenario.is_strongly_convex else None,
            random_state=random_state,
        )
    if algorithm == "bst14":
        if not settings.scenario.supports_bst14:
            raise ValueError(
                f"BST14 supports (eps,delta)-DP only; scenario "
                f"{settings.scenario.name} has delta = 0"
            )
        return bst14_train(
            X,
            y,
            loss,
            settings.epsilon,
            delta,
            passes=settings.passes,
            batch_size=settings.batch_size,
            radius=settings.radius,
            random_state=random_state,
        )
    raise ValueError(f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}")


class _NoiselessResult:
    """Adapter giving the noiseless baseline the common result surface."""

    def __init__(self, model: np.ndarray, loss: Loss):
        self.model = model
        self.loss = loss

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.loss.predict(self.model, X)

    def accuracy(self, X: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == np.asarray(y, dtype=np.float64)))


def _train_noiseless(
    X: np.ndarray,
    y: np.ndarray,
    loss: Loss,
    settings: TrainSettings,
    random_state: RandomState,
) -> _NoiselessResult:
    m = np.asarray(X).shape[0]
    if settings.scenario.is_strongly_convex:
        properties = loss.properties(radius=settings.radius)
        schedule = InverseTSchedule(properties.strong_convexity)
        projection = L2BallProjection(settings.radius)
    else:
        schedule = ConstantSchedule(1.0 / np.sqrt(m))
        projection = None
    result = noiseless_psgd(
        X,
        y,
        loss,
        schedule,
        passes=settings.passes,
        batch_size=settings.batch_size,
        projection=projection,
        random_state=random_state,
    )
    return _NoiselessResult(result.model, loss)
