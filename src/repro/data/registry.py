"""Dataset registry — the machine-readable version of the paper's Table 3.

Each :class:`DatasetSpec` records the *paper's* dataset facts (name, task,
split sizes, dimensionality, the MNIST projection note) alongside the
generator that produces our synthetic stand-in and the default scale the
benches use. ``bench_table3_datasets`` renders the registry back into the
table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.data.dataset import TrainTestPair
from repro.data.synthetic import (
    covertype_like,
    higgs_like,
    kddcup_like,
    mnist_like,
    protein_like,
)
from repro.utils.rng import RandomState


@dataclass(frozen=True)
class DatasetSpec:
    """Paper-facing metadata plus the loader for our stand-in."""

    name: str
    task: str
    paper_train_size: int
    paper_test_size: int
    paper_dimension: int
    num_classes: int
    loader: Callable[..., TrainTestPair]
    default_scale: float
    #: Table 3's footnote: MNIST is randomly projected from 784 to 50 dims.
    projected_dimension: Optional[int] = None
    #: Which figure/table the dataset appears in.
    appears_in: str = ""

    def load(self, scale: Optional[float] = None, seed: RandomState = 0) -> TrainTestPair:
        """Generate the stand-in at ``scale`` (default: laptop-friendly)."""
        effective = self.default_scale if scale is None else scale
        return self.loader(scale=effective, seed=seed)

    @property
    def training_dimension(self) -> int:
        """The dimension models are actually trained at."""
        return self.projected_dimension or self.paper_dimension


REGISTRY: Dict[str, DatasetSpec] = {
    "mnist": DatasetSpec(
        name="MNIST",
        task="10 classes",
        paper_train_size=60000,
        paper_test_size=10000,
        paper_dimension=784,
        num_classes=10,
        loader=mnist_like,
        default_scale=0.1,
        projected_dimension=50,
        appears_in="Table 3; Figures 3-7, 10",
    ),
    "protein": DatasetSpec(
        name="Protein",
        task="Binary",
        paper_train_size=72876,
        paper_test_size=72875,
        paper_dimension=74,
        num_classes=2,
        loader=protein_like,
        default_scale=0.1,
        appears_in="Table 3; Figures 3, 5-7",
    ),
    "covertype": DatasetSpec(
        name="Forest",
        task="Binary",
        paper_train_size=498010,
        paper_test_size=83002,
        paper_dimension=54,
        num_classes=2,
        loader=covertype_like,
        default_scale=0.02,
        appears_in="Table 3; Figures 3, 5-7",
    ),
    "higgs": DatasetSpec(
        name="HIGGS",
        task="Binary",
        paper_train_size=10_500_000,
        paper_test_size=500_000,
        paper_dimension=28,
        num_classes=2,
        loader=higgs_like,
        default_scale=0.01,
        appears_in="Appendix C; Figures 8-9",
    ),
    "kddcup": DatasetSpec(
        name="KDDCup-99",
        task="Binary",
        paper_train_size=4_898_431,
        paper_test_size=311_029,
        paper_dimension=41,
        num_classes=2,
        loader=kddcup_like,
        default_scale=0.02,
        appears_in="Appendix C; Figures 8-9",
    ),
}


def get_spec(name: str) -> DatasetSpec:
    """Look up a dataset by registry key (case-insensitive)."""
    key = name.lower()
    if key not in REGISTRY:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(REGISTRY)}"
        )
    return REGISTRY[key]


def load(name: str, scale: Optional[float] = None, seed: RandomState = 0) -> TrainTestPair:
    """Shorthand for ``get_spec(name).load(scale, seed)``."""
    return get_spec(name).load(scale=scale, seed=seed)


def table3_rows() -> list[dict]:
    """The rows of Table 3, one dict per dataset, paper values verbatim."""
    rows = []
    for key in ("mnist", "protein", "covertype"):
        spec = REGISTRY[key]
        dims = str(spec.paper_dimension)
        if spec.projected_dimension:
            dims = f"{spec.paper_dimension} ({spec.projected_dimension})"
        rows.append(
            {
                "dataset": spec.name,
                "task": spec.task,
                "train_size": spec.paper_train_size,
                "test_size": spec.paper_test_size,
                "dimensions": dims,
            }
        )
    return rows
