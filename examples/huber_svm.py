#!/usr/bin/env python
"""Private Huber SVM (Appendix B) via the estimator API.

The hinge loss is not smooth, so the sensitivity analysis cannot cover the
plain SVM; the paper substitutes the Huber-smoothed hinge (smoothing width
h). This example shows:

1. the library *refusing* to calibrate privacy noise for the raw hinge
   loss (a wrong sensitivity would be a silent privacy violation);
2. training the Huber SVM privately through the estimator API;
3. how the smoothing width h trades smoothness (β = 1/(2h), hence the
   admissible step size) against hinge fidelity.

Run:  python examples/huber_svm.py
"""

from __future__ import annotations

from repro import PrivateHuberSVM
from repro.core.sensitivity import convex_constant_step
from repro.data import covertype_like
from repro.optim import HingeLoss, HuberSVMLoss


def main() -> None:
    train, test = covertype_like(scale=0.05, seed=0)
    print(f"dataset: {train.name}  m={train.size}  d={train.dimension}\n")

    # 1. The raw hinge loss has no finite smoothness constant.
    try:
        convex_constant_step(HingeLoss().properties(), eta=0.01, passes=1)
    except ValueError as error:
        print(f"hinge loss rejected, as it must be:\n  {error}\n")

    # 2. Private Huber SVM at the paper's h = 0.1.
    epsilon, delta = 0.2, 1.0 / train.size**2
    clf = PrivateHuberSVM(
        epsilon=epsilon, delta=delta, regularization=1e-3,
        huber_smoothing=0.1, passes=10, batch_size=50,
    ).fit(train.features, train.labels, random_state=0)
    print(f"privacy       : {clf.privacy_}")
    print(f"sensitivity   : {clf.sensitivity_:.3e}")
    print(f"test accuracy : {clf.score(test.features, test.labels):.4f}\n")

    # 3. The smoothing width controls beta = 1/(2h).
    print(f"{'h':>6} {'beta':>8} {'accuracy':>9}")
    for h in (0.05, 0.1, 0.5):
        props = HuberSVMLoss(smoothing=h).properties()
        model = PrivateHuberSVM(
            epsilon=epsilon, delta=delta, regularization=1e-3,
            huber_smoothing=h, passes=10, batch_size=50,
        ).fit(train.features, train.labels, random_state=0)
        accuracy = model.score(test.features, test.labels)
        print(f"{h:>6} {props.smoothness:>8.1f} {accuracy:>9.4f}")


if __name__ == "__main__":
    main()
