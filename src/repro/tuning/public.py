"""Tuning using public data (Section 4.1, first variant).

When a public dataset drawn from the same distribution is available, no
privacy needs to be spent on tuning: train each candidate on the public
training split, score on the public validation split, and use the best
parameters when training the *private* model on the private data. This is
the setting behind Figure 3 (and Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.tuning.grid import ParameterGrid
from repro.tuning.private import TrainerFactory
from repro.utils.rng import RandomState, spawn_generators
from repro.utils.validation import check_matrix_labels


@dataclass
class PublicTuningOutcome:
    """Best parameters found on public data, with the full score table."""

    best_parameters: Dict
    best_accuracy: float
    scores: List[tuple[Dict, float]]


def tune_on_public_data(
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_val: np.ndarray,
    y_val: np.ndarray,
    trainer_factory: TrainerFactory,
    grid: ParameterGrid,
    epsilon: float,
    *,
    delta: float = 0.0,
    random_state: RandomState = None,
) -> PublicTuningOutcome:
    """Exhaustive grid search on public data.

    Candidates are trained *with the same privacy parameters* the private
    run will use so the selected hyper-parameters account for the noise
    level they will face (matching the paper's methodology of evaluating
    each algorithm at each ε).
    """
    X_train, y_train = check_matrix_labels(X_train, y_train)
    X_val, y_val = check_matrix_labels(X_val, y_val)
    candidates = grid.candidates()
    rngs = spawn_generators(random_state, len(candidates))

    scores: List[tuple[Dict, float]] = []
    best_parameters: Dict = {}
    best_accuracy = -1.0
    for theta, rng in zip(candidates, rngs):
        trainer = trainer_factory(theta)
        result = trainer(
            X_train, y_train, epsilon=epsilon, delta=delta, random_state=rng
        )
        accuracy = float(np.mean(result.predict(X_val) == y_val))
        scores.append((theta, accuracy))
        if accuracy > best_accuracy:
            best_accuracy = accuracy
            best_parameters = theta
    return PublicTuningOutcome(
        best_parameters=best_parameters,
        best_accuracy=best_accuracy,
        scores=scores,
    )
