"""Micro-benchmarks of the library's hot loops (real wall-clock).

The figure benches report *simulated* engine seconds; these benchmark the
actual Python implementation with repeated timed rounds so regressions in
the optimizer or the mechanisms show up directly:

* one PSGD epoch (the per-epoch unit every experiment multiplies),
* one mini-batch gradient,
* one spherical-Laplace draw vs one epoch's worth of per-batch Gaussian
  draws — the bolt-on-vs-white-box runtime story at its smallest scale.
"""

from __future__ import annotations

import numpy as np

from repro.core.mechanisms import (
    GaussianMechanism,
    PrivacyParameters,
    SphericalLaplaceMechanism,
)
from repro.optim.losses import LogisticLoss
from repro.optim.psgd import run_psgd
from repro.optim.schedules import ConstantSchedule
from tests.conftest import make_binary_data

M, D, BATCH = 5000, 50, 50
X, Y = make_binary_data(M, D, seed=77)
LOSS = LogisticLoss()


def bench_psgd_epoch(benchmark):
    result = benchmark(
        lambda: run_psgd(
            LOSS, X, Y, ConstantSchedule(0.01), passes=1, batch_size=BATCH,
            random_state=0,
        )
    )
    assert result.updates == M // BATCH


def bench_minibatch_gradient(benchmark):
    w = np.zeros(D)
    gradient = benchmark(lambda: LOSS.batch_gradient(w, X[:BATCH], Y[:BATCH]))
    assert gradient.shape == (D,)


def bench_bolton_noise_total(benchmark):
    """Everything the bolt-on approach adds at runtime: ONE draw."""
    mechanism = SphericalLaplaceMechanism()
    privacy = PrivacyParameters(0.1)
    rng = np.random.default_rng(0)
    noise = benchmark(lambda: mechanism.sample(D, 1e-3, privacy, rng))
    assert noise.shape == (D,)


def bench_whitebox_noise_total(benchmark):
    """What SCS13/BST14 add per epoch: one Gaussian draw per mini-batch."""
    mechanism = GaussianMechanism()
    privacy = PrivacyParameters(0.1, 1e-8)
    rng = np.random.default_rng(0)
    draws_per_epoch = M // BATCH

    def per_epoch():
        return [
            mechanism.sample(D, 1e-3, privacy, rng)
            for _ in range(draws_per_epoch)
        ]

    draws = benchmark(per_epoch)
    assert len(draws) == draws_per_epoch
