"""Hyper-parameter tuning: public-data grid search and the private
exponential-mechanism procedure (Algorithm 3)."""

from repro.tuning.grid import ParameterGrid, paper_grid
from repro.tuning.private import (
    TrainerFactory,
    TuningOutcome,
    exponential_mechanism_probabilities,
    partition_dataset,
    privately_tuned_sgd,
)
from repro.tuning.public import PublicTuningOutcome, tune_on_public_data

__all__ = [
    "ParameterGrid",
    "paper_grid",
    "TrainerFactory",
    "TuningOutcome",
    "privately_tuned_sgd",
    "exponential_mechanism_probabilities",
    "partition_dataset",
    "PublicTuningOutcome",
    "tune_on_public_data",
]
