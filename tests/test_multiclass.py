"""Tests for one-vs-rest multiclass training with budget splitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accountant import PrivacyAccountant, PrivacyBudgetExceeded
from repro.core.bolton import private_convex_psgd
from repro.core.mechanisms import PrivacyParameters
from repro.data.synthetic import gaussian_clusters_multiclass
from repro.multiclass.ovr import OneVsRestResult, train_one_vs_rest
from repro.optim.losses import LogisticLoss


def trainer(X, y, epsilon, delta, random_state):
    return private_convex_psgd(
        X, y, LogisticLoss(), epsilon=epsilon, delta=delta, passes=3,
        batch_size=20, random_state=random_state,
    )


@pytest.fixture(scope="module")
def multiclass_pair():
    return gaussian_clusters_multiclass(
        "mc", 1500, 500, 12, num_classes=4, cluster_spread=1.0, random_state=0
    )


class TestOneVsRest:
    def test_one_model_per_class(self, multiclass_pair):
        pair = multiclass_pair
        result = train_one_vs_rest(
            pair.train.features, pair.train.labels, trainer, epsilon=8.0,
            random_state=0,
        )
        assert len(result.models) == 4
        assert result.classes == [0, 1, 2, 3]

    def test_budget_split_evenly(self, multiclass_pair):
        pair = multiclass_pair
        result = train_one_vs_rest(
            pair.train.features, pair.train.labels, trainer, epsilon=8.0,
            delta=4e-4, random_state=0,
        )
        assert result.per_model_privacy.epsilon == pytest.approx(2.0)
        assert result.per_model_privacy.delta == pytest.approx(1e-4)
        assert result.privacy.epsilon == 8.0

    def test_sub_results_have_split_epsilon(self, multiclass_pair):
        pair = multiclass_pair
        result = train_one_vs_rest(
            pair.train.features, pair.train.labels, trainer, epsilon=8.0,
            random_state=0,
        )
        for sub in result.sub_results:
            assert sub.privacy.epsilon == pytest.approx(2.0)

    def test_predict_shape_and_range(self, multiclass_pair):
        pair = multiclass_pair
        result = train_one_vs_rest(
            pair.train.features, pair.train.labels, trainer, epsilon=40.0,
            random_state=0,
        )
        predictions = result.predict(pair.test.features)
        assert predictions.shape == (500,)
        assert set(np.unique(predictions)) <= {0.0, 1.0, 2.0, 3.0}

    def test_learns_at_large_epsilon(self, multiclass_pair):
        pair = multiclass_pair
        result = train_one_vs_rest(
            pair.train.features, pair.train.labels, trainer, epsilon=400.0,
            random_state=0,
        )
        accuracy = result.accuracy(pair.test.features, pair.test.labels)
        assert accuracy > 0.6  # well above the 0.25 chance level

    def test_accountant_integration(self, multiclass_pair):
        pair = multiclass_pair
        acct = PrivacyAccountant(budget=PrivacyParameters(8.0))
        train_one_vs_rest(
            pair.train.features, pair.train.labels, trainer, epsilon=8.0,
            random_state=0, accountant=acct,
        )
        eps, _ = acct.total()
        assert eps == pytest.approx(8.0)
        with pytest.raises(PrivacyBudgetExceeded):
            acct.spend(PrivacyParameters(0.1))

    def test_explicit_classes(self, multiclass_pair):
        pair = multiclass_pair
        result = train_one_vs_rest(
            pair.train.features, pair.train.labels, trainer, epsilon=8.0,
            classes=[0, 2], random_state=0,
        )
        assert result.classes == [0, 2]
        predictions = result.predict(pair.test.features)
        assert set(np.unique(predictions)) <= {0.0, 2.0}

    def test_deterministic(self, multiclass_pair):
        pair = multiclass_pair
        a = train_one_vs_rest(
            pair.train.features, pair.train.labels, trainer, epsilon=8.0,
            random_state=5,
        )
        b = train_one_vs_rest(
            pair.train.features, pair.train.labels, trainer, epsilon=8.0,
            random_state=5,
        )
        for wa, wb in zip(a.models, b.models):
            np.testing.assert_array_equal(wa, wb)

    def test_single_class_rejected(self, multiclass_pair):
        pair = multiclass_pair
        with pytest.raises(ValueError, match="two classes"):
            train_one_vs_rest(
                pair.train.features, pair.train.labels, trainer, epsilon=1.0,
                classes=[1], random_state=0,
            )


class TestBatchedDecisionScores:
    def test_matches_per_class_loop(self):
        rng = np.random.default_rng(4)
        models = [rng.normal(size=7) for _ in range(5)]
        result = OneVsRestResult(
            models=models, classes=list(range(5)),
            privacy=PrivacyParameters(1.0),
            per_model_privacy=PrivacyParameters(0.2),
        )
        X = rng.normal(size=(40, 7))
        scores = result.decision_scores(X)
        assert scores.shape == (40, 5)
        reference = np.column_stack([X @ w for w in models])
        np.testing.assert_allclose(scores, reference, rtol=0, atol=1e-12)
        assert result.weight_matrix.shape == (5, 7)
        # The cached matrix serves repeated calls.
        np.testing.assert_array_equal(result.decision_scores(X), scores)
