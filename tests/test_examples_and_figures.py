"""Smoke tests for the examples and the remaining figure drivers."""

from __future__ import annotations

import pathlib
import py_compile

import pytest

from repro.data.synthetic import linearly_separable_binary
from repro.data.dataset import TrainTestPair
from repro.evaluation.figures import (
    figure4_batch_size,
    figure4_passes,
    figure5_runtime_vs_batch,
    figure5_runtime_vs_epochs,
    figure10_minibatch,
)
from repro.evaluation.scenarios import Scenario

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


class TestExamples:
    def test_six_examples_exist(self):
        scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
        assert "quickstart.py" in scripts
        assert len(scripts) >= 6

    @pytest.mark.parametrize(
        "script",
        sorted(p.name for p in EXAMPLES_DIR.glob("*.py")),
    )
    def test_example_compiles_and_has_main(self, script):
        path = EXAMPLES_DIR / script
        py_compile.compile(str(path), doraise=True)
        source = path.read_text()
        assert "def main" in source
        assert '__main__' in source
        assert source.startswith("#!/usr/bin/env python")
        assert '"""' in source  # documented


@pytest.fixture(scope="module")
def tiny_pair() -> TrainTestPair:
    return linearly_separable_binary(
        "tiny", 400, 200, 6, margin_noise=0.2, flip_fraction=0.02, random_state=0
    )


class TestFigureDrivers:
    def test_figure4_passes_driver(self, tiny_pair):
        fig = figure4_passes(
            tiny_pair, Scenario.CONVEX_PURE, epsilons=[1.0],
            passes_grid=(1, 2), batch_size=5,
        )
        assert set(fig["series"]) == {"1 pass", "2 passes"}
        assert fig["meta"]["scenario"] == "CONVEX_PURE"

    def test_figure4_batch_driver(self, tiny_pair):
        fig = figure4_batch_size(
            tiny_pair, epsilons=[1.0], batch_grid=(1, 5), passes=2,
        )
        assert set(fig["series"]) == {"mini-batch = 1", "mini-batch = 5"}

    def test_figure5_epochs_driver(self, tiny_pair):
        fig = figure5_runtime_vs_epochs(
            tiny_pair.train, epoch_grid=(1, 2), batch_size=5,
        )
        for name in ("noiseless", "ours", "scs13", "bst14"):
            assert len(fig["series"][name]) == 2
            assert all(v > 0 for v in fig["series"][name])

    def test_figure5_batch_driver(self, tiny_pair):
        fig = figure5_runtime_vs_batch(
            tiny_pair.train, batch_grid=(1, 50), epochs=1,
        )
        # white-box overhead shrinks with batch size even at tiny scale
        ratio_1 = fig["series"]["scs13"][0] / fig["series"]["ours"][0]
        ratio_50 = fig["series"]["scs13"][1] / fig["series"]["ours"][1]
        assert ratio_1 > ratio_50

    def test_figure5_batch_capped_at_dataset_size(self, tiny_pair):
        fig = figure5_runtime_vs_batch(
            tiny_pair.train, batch_grid=(10**6,), epochs=1,
        )
        assert len(fig["series"]["ours"]) == 1

    def test_figure10_driver(self, tiny_pair):
        results = figure10_minibatch(
            tiny_pair, epsilons=[1.0], batch_grid=(5, 10), passes=2,
        )
        assert len(results) == 2
        for sweep in results:
            assert sweep.scenario is Scenario.STRONGLY_CONVEX_APPROX
            assert set(sweep.series) == {"noiseless", "ours", "scs13", "bst14"}


class TestSeriesSanity:
    def test_all_accuracies_are_probabilities(self, tiny_pair):
        fig = figure4_passes(
            tiny_pair, Scenario.STRONGLY_CONVEX_PURE, epsilons=[0.5, 2.0],
            passes_grid=(1,), batch_size=5,
        )
        for values in fig["series"].values():
            assert all(0.0 <= v <= 1.0 for v in values)

    def test_runtime_positive_and_increasing_in_epochs(self, tiny_pair):
        fig = figure5_runtime_vs_epochs(
            tiny_pair.train, epoch_grid=(1, 4), batch_size=5,
        )
        for values in fig["series"].values():
            assert values[1] > values[0] > 0
