#!/usr/bin/env python
"""Multiclass private learning: the MNIST pipeline of Section 4.3.

Reproduces the paper's MNIST setup on the synthetic stand-in:

1. generate 10-class, 784-dimensional data;
2. Gaussian-random-project to 50 dimensions (privacy noise scales with d);
3. train ten one-vs-rest private logistic models, splitting the ε budget
   evenly across them (basic composition);
4. report multiclass test accuracy against the noiseless reference.

The ten binary models all read the same projected feature rows, so the
trainer is passed as a structural ``BoltOnCandidate`` and one-vs-rest
runs on the **fused path by default**: one data scan trains all ten
classes, with the per-class ±1 relabeling expressed as a (10, m) label
matrix and each class keeping its own ε/10 budget share and noise stream
(``fused=False`` replays the classic per-class loop).

Run:  python examples/mnist_multiclass.py
"""

from __future__ import annotations

import numpy as np

from repro import BoltOnCandidate, LogisticLoss
from repro.data import mnist_like, project_dataset
from repro.multiclass import train_one_vs_rest


def main() -> None:
    pair = mnist_like(scale=0.1, seed=0)
    print(f"raw data: m={pair.train.size}, d={pair.train.dimension}, 10 classes")

    # Random projection 784 -> 50 (Section 2 / Table 3 footnote). The same
    # matrix must transform the test set.
    train, projection = project_dataset(pair.train, 50, random_state=0)
    test, _ = project_dataset(pair.test, 50, projection=projection)
    print(f"after projection: d={train.dimension}")

    epsilon = 4.0  # the top of the paper's MNIST grid

    # Structural trainer description: Algorithm 1 (convex logistic loss),
    # k = 10 passes, b = 50 — fused across all ten classes in one scan.
    trainer = BoltOnCandidate(LogisticLoss(), passes=10, batch_size=50)

    result = train_one_vs_rest(
        train.features, train.labels, trainer, epsilon=epsilon, random_state=0,
    )
    print(f"per-model budget: {result.per_model_privacy} "
          f"(total {result.privacy}, split across {len(result.models)} models)")

    private_accuracy = result.accuracy(test.features, test.labels)
    print(f"private one-vs-rest accuracy: {private_accuracy:.4f}")

    # The noiseless reference (what Figure 3's top line shows).
    noiseless_models = [
        sub.unreleased_noiseless_model for sub in result.sub_results
    ]
    scores = np.column_stack([test.features @ w for w in noiseless_models])
    noiseless_accuracy = float(
        np.mean(np.array(result.classes)[np.argmax(scores, axis=1)] == test.labels)
    )
    print(f"noiseless reference accuracy: {noiseless_accuracy:.4f}")
    print(f"chance level: {1 / 10:.2f}")


if __name__ == "__main__":
    main()
