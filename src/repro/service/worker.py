"""The dispatch loop: background workers that keep the engine saturated.

PR 3's ``TrainingService.drain()`` trained every queued job on the
caller's thread — correct, but a server for "heavy traffic from millions
of users" cannot make tenant number 1000 wait inside ``submit()`` while
tenant number 1's scan finishes. :class:`DispatchLoop` owns one or more
worker threads that pull batching windows off the scheduler's queue
(:meth:`SharedScanScheduler.claim_window` — quick, admission-lock only)
and dispatch them (:meth:`SharedScanScheduler.dispatch_window`), so:

* ``submit()`` returns a live :class:`~repro.service.registry.JobRecord`
  immediately — tenants block on ``record.wait()``, never on a scan;
* compatible jobs that arrive while a scan is running pile up in the
  queue and fuse into the *next* window (the loop batches exactly like
  the synchronous drain did, it just does so continuously) — or, with
  the scheduler in elevator mode, board the *running* scan: submission
  routes them onto the open flight and the driving worker admits them
  at the next chunk boundary, so boarders ride instead of polling;
* scans acquire their *table's* engine domain, not a global lock: two
  workers run two scans on two distinct tables concurrently (windows
  are single-table by construction — ``claim_window`` picks a table
  whose domain is free), while scans of the same table still serialize;
  worker concurrency additionally overlaps admission, parameter
  resolution, the bolt-on noise epilogue, and ledger commits with any
  running scan.

Every window that finishes fires the optional ``autosave`` hook — the
training service points it at its state snapshot, which is what makes a
long-lived server restartable (:meth:`TrainingService.save_state` /
``load_state``).

By the bitwise-determinism contract (scheduler module docstring), none
of this concurrency can change any job's released weights — the
interleaving tests lock worker dispatch to the synchronous reference at
``atol=0``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, List, Optional

from repro.obs import metrics as obs_metrics
from repro.service.registry import JobRecord
from repro.service.scheduler import SharedScanScheduler
from repro.utils.validation import check_positive_int

#: How long an idle worker sleeps between queue polls when nobody wakes
#: it explicitly (direct scheduler.submit calls don't notify the loop).
_IDLE_POLL_SECONDS = 0.02

#: Most recent dispatch errors kept in memory. A long-lived server's
#: error *log* must be bounded (the old append-only list grew forever);
#: the total count lives in the metrics registry instead.
_DISPATCH_ERROR_WINDOW = 256


class DispatchLoop:
    """Background worker threads draining a :class:`SharedScanScheduler`.

    Parameters
    ----------
    scheduler:
        The scheduler whose queue the workers pull from.
    workers:
        Worker thread count. Up to min(workers, distinct tables with
        queued work) scans run concurrently (per-table engine domains);
        workers beyond that buy overlap of the non-scan work (noise
        epilogues, ledger commits, autosaves) with running scans — and
        guarantee the queue is re-checked the moment a scan ends.
    autosave:
        Optional zero-argument callable fired after each dispatched
        window (and once at :meth:`stop`); exceptions are captured on
        :attr:`autosave_errors` rather than killing the worker.
    crash_hook:
        Fault-injection surface for the crash-consistency tests: called
        with a crash-point name (``"before_dispatch"`` — between the
        claim and the scan; ``"after_dispatch"`` — between the scan and
        the autosave) on every worker iteration. A hook that raises
        simulates a crash between the scheduler's atomic steps — the
        worker must contain it (jobs FAILED + refunded, engine domain
        released, loop continues); a hook that SIGKILLs the process is
        the real thing.
    """

    def __init__(
        self,
        scheduler: SharedScanScheduler,
        *,
        workers: int = 1,
        autosave: Optional[Callable[[], None]] = None,
        crash_hook: Optional[Callable[[str], None]] = None,
        metrics: Optional[obs_metrics.MetricsRegistry] = None,
    ) -> None:
        self.scheduler = scheduler
        self.workers = check_positive_int(workers, "workers")
        self.autosave = autosave
        self.crash_hook = crash_hook
        self.metrics = metrics if metrics is not None else obs_metrics.disabled()
        self._dispatch_errors_total = self.metrics.counter(
            "repro_worker_dispatch_errors_total",
            "Dispatch-loop errors across the loop's life (the in-memory "
            "log keeps only the most recent window).",
        )
        self.autosave_errors: List[str] = []
        #: Last-resort log: dispatch_window fails jobs rather than raise,
        #: so anything landing here (cleanup itself failed) is a bug —
        #: but the worker survives it and the window's jobs are forced
        #: terminal, because a silently dead worker strands every queued
        #: tenant behind it. Bounded: only the most recent
        #: ``_DISPATCH_ERROR_WINDOW`` entries stay resident (a long-lived
        #: server must not grow an error log without bound); the
        #: lifetime total is ``repro_worker_dispatch_errors_total``.
        self.dispatch_errors: Deque[str] = deque(maxlen=_DISPATCH_ERROR_WINDOW)
        #: Terminal records in completion order, across the loop's life.
        self.finished: List[JobRecord] = []
        self.windows_dispatched = 0
        self._threads: List[threading.Thread] = []
        self._state = threading.Condition()
        self._stopping = False
        self._inflight = 0

    def _log_dispatch_error(self, message: str) -> None:
        self.dispatch_errors.append(message)
        self._dispatch_errors_total.inc()

    # -- lifecycle ---------------------------------------------------------------

    @property
    def running(self) -> bool:
        return bool(self._threads)

    @property
    def stopping(self) -> bool:
        """A stop() is in progress (workers draining their last window)."""
        return self._stopping

    def start(self) -> "DispatchLoop":
        """Launch the worker threads (idempotent while running)."""
        with self._state:
            if self._threads:
                return self
            self._stopping = False
            self._threads = [
                threading.Thread(
                    target=self._worker,
                    name=f"repro-dispatch-{index}",
                    daemon=True,
                )
                for index in range(self.workers)
            ]
        for thread in self._threads:
            thread.start()
        return self

    def stop(self) -> None:
        """Stop the workers (in-flight windows finish; queued jobs stay
        queued for the next start/drain)."""
        with self._state:
            if not self._threads:
                return
            self._stopping = True
            self._state.notify_all()
        for thread in self._threads:
            thread.join()
        self._threads = []
        self._run_autosave()

    def wake(self) -> None:
        """Nudge idle workers (the service calls this after each submit)."""
        with self._state:
            self._state.notify_all()

    # -- quiescence --------------------------------------------------------------

    def quiescent(self) -> bool:
        """No queued jobs and no window being dispatched right now."""
        with self._state:
            return self._inflight == 0 and not len(self.scheduler.queue)

    def wait_quiescent(self, timeout: Optional[float] = None) -> bool:
        """Block until the queue is empty and nothing is in flight.

        Requires the loop to be running (otherwise a non-empty queue
        would wait forever by construction). Returns ``False`` on
        timeout — and also if the loop is stopped out from under the
        wait while work remains (``stop()`` wakes waiters rather than
        stranding them behind a queue no worker will ever empty).
        """
        if not self.running and not self.quiescent():
            raise RuntimeError(
                "wait_quiescent on a stopped DispatchLoop with queued jobs "
                "would never return; start() the loop first"
            )
        with self._state:
            self._state.wait_for(
                lambda: self._stopping
                or (self._inflight == 0 and not len(self.scheduler.queue)),
                timeout=timeout,
            )
            return self._inflight == 0 and not len(self.scheduler.queue)

    # -- the worker body ---------------------------------------------------------

    def _worker(self) -> None:
        while True:
            window: List = []
            claim_errors: List[BaseException] = []

            def claimed() -> bool:
                # The claim IS the wait predicate: runs under self._state,
                # so the moment a notify arrives — a dispatch freeing its
                # engine domain, a submit's wake() — the woken worker
                # claims in the same lock hold instead of falling into a
                # timed back-off first. The side effect is safe because
                # the condition lock serializes predicate evaluations.
                if self._stopping:
                    return True
                try:
                    window.extend(self.scheduler.claim_window())
                except Exception as error:
                    # A claim that raises must not kill the thread: a
                    # silently dead worker strands every queued tenant
                    # behind it. Surface the error and keep polling.
                    claim_errors.append(error)
                    return True
                return bool(window)

            with self._state:
                while not claimed():
                    # Timed fallback only: work submitted straight through
                    # the scheduler (no wake()) is still picked up within
                    # a poll interval.
                    self._state.wait(timeout=_IDLE_POLL_SECONDS)
                if self._stopping and not window:
                    return
                self._inflight += 1
            if claim_errors:
                error = claim_errors[0]
                self._log_dispatch_error(
                    f"claim_window: {type(error).__name__}: {error}"
                )
                with self._state:
                    self._inflight -= 1
                    self._state.notify_all()
                    # Back off before re-polling: if the claim keeps
                    # raising, a hot spin would starve everything else.
                    self._state.wait(timeout=_IDLE_POLL_SECONDS)
                continue
            finished = []
            try:
                try:
                    self._crash_point("before_dispatch")
                    finished = self.scheduler.dispatch_window(window)
                except Exception as error:  # cleanup-of-cleanup failed
                    self._log_dispatch_error(f"{type(error).__name__}: {error}")
                    try:
                        finished = self.scheduler.fail_jobs(window, error)
                    except Exception as cleanup_error:
                        self._log_dispatch_error(
                            f"fail_jobs: {type(cleanup_error).__name__}: "
                            f"{cleanup_error}"
                        )
                else:
                    try:
                        # After a successful dispatch the window's records
                        # are final — a crash here must neither undo them
                        # nor kill the worker.
                        self._crash_point("after_dispatch")
                    except Exception as error:
                        self._log_dispatch_error(
                            f"crash_hook(after_dispatch): "
                            f"{type(error).__name__}: {error}"
                        )
            finally:
                # Containment invariant: whatever escaped above, the
                # claimed engine domain comes free (idempotent — the
                # dispatch's own finally usually already did this), the
                # in-flight count balances, and the loop continues. A
                # worker survives anything short of the process dying.
                try:
                    self.scheduler.release_window(window)
                except Exception as release_error:  # pragma: no cover
                    self._log_dispatch_error(
                        f"release_window: {type(release_error).__name__}: "
                        f"{release_error}"
                    )
                with self._state:
                    self.finished.extend(finished)
                    self.windows_dispatched += 1
                    self._inflight -= 1
                    self._state.notify_all()
            self._run_autosave()
            if self.autosave is not None:
                # The window's records are terminal (traces closed at
                # release); the time between then and the autosave's
                # sync is how long their durability took — a trailing,
                # live-only span (the journal event already carried the
                # admit→commit trace).
                for record in finished:
                    record.trace.append("wal_sync")

    def _crash_point(self, name: str) -> None:
        """Fire the fault-injection hook (no-op without one)."""
        if self.crash_hook is not None:
            self.crash_hook(name)

    def _run_autosave(self) -> None:
        if self.autosave is None:
            return
        try:
            self.autosave()
        except Exception as error:  # never kill a worker over a snapshot
            self.autosave_errors.append(f"{type(error).__name__}: {error}")
