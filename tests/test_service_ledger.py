"""Tests for the privacy-budget ledger: atomicity, interleavings, zero-cost
rejection.

The load-bearing invariant: for every account and under EVERY interleaving
of reserve/commit/refund — adversarial sequences from hypothesis, real
thread races, failure paths — cumulative committed epsilon never exceeds
the cap, and ``spent + reserved`` never exceeds it either. Plus the
service-level guarantee the invariant buys: a denied job costs zero pages
and leaves no ledger drift.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accountant import would_overflow
from repro.core.mechanisms import PrivacyParameters
from repro.optim.losses import LogisticLoss
from repro.service import (
    BudgetDenied,
    JobStatus,
    PrivacyBudgetLedger,
    TrainingService,
)

CAP = 1.0


def make_ledger(epsilon: float = CAP, delta: float = 0.0) -> PrivacyBudgetLedger:
    ledger = PrivacyBudgetLedger()
    ledger.open_account("alice", "t", epsilon, delta)
    return ledger


class TestAccounts:
    def test_duplicate_account_rejected(self):
        ledger = make_ledger()
        with pytest.raises(ValueError, match="already exists"):
            ledger.open_account("alice", "t", 2.0)

    def test_unknown_account_denied(self):
        ledger = make_ledger()
        with pytest.raises(BudgetDenied, match="no budget account"):
            ledger.reserve("mallory", "t", PrivacyParameters(0.1))

    def test_statement_snapshot(self):
        ledger = make_ledger(1.0, 1e-6)
        reservation = ledger.reserve("alice", "t", PrivacyParameters(0.25, 1e-7))
        statement = ledger.statement("alice", "t")
        assert statement.cap == PrivacyParameters(1.0, 1e-6)
        assert statement.reserved == (0.25, 1e-7)
        assert statement.spent == (0, 0)
        assert statement.available_epsilon == pytest.approx(0.75)
        ledger.commit(reservation)
        statement = ledger.statement("alice", "t")
        assert statement.spent == (0.25, 1e-7)
        assert statement.reserved == (0.0, 0.0)


class TestTwoPhaseSpend:
    def test_commit_records_receipt_and_spend(self):
        ledger = make_ledger()
        reservation = ledger.reserve("alice", "t", PrivacyParameters(0.4), job_id="j1")
        receipt = ledger.commit(reservation)
        assert receipt.job_id == "j1"
        assert receipt.sequence == 1
        assert ledger.statement("alice", "t").spent[0] == pytest.approx(0.4)

    def test_refund_restores_headroom(self):
        ledger = make_ledger()
        reservation = ledger.reserve("alice", "t", PrivacyParameters(0.9))
        with pytest.raises(BudgetDenied):
            ledger.reserve("alice", "t", PrivacyParameters(0.2))
        ledger.refund(reservation)
        # The refunded hold frees the full cap again.
        ledger.commit(ledger.reserve("alice", "t", PrivacyParameters(1.0)))

    def test_reservation_consumed_once(self):
        ledger = make_ledger()
        reservation = ledger.reserve("alice", "t", PrivacyParameters(0.1))
        ledger.commit(reservation)
        with pytest.raises(ValueError, match="already committed"):
            ledger.commit(reservation)
        with pytest.raises(ValueError, match="already committed"):
            ledger.refund(reservation)

    def test_denied_reservation_changes_nothing(self):
        ledger = make_ledger()
        ledger.commit(ledger.reserve("alice", "t", PrivacyParameters(0.7)))
        before = ledger.statement("alice", "t")
        with pytest.raises(BudgetDenied, match="overflow"):
            ledger.reserve("alice", "t", PrivacyParameters(0.5))
        after = ledger.statement("alice", "t")
        assert before == after

    def test_reserved_blocks_admission_but_not_spend(self):
        # spent + reserved is the admission figure: two 0.5 holds fill a
        # 1.0 cap even though nothing is spent yet.
        ledger = make_ledger()
        ledger.reserve("alice", "t", PrivacyParameters(0.5))
        ledger.reserve("alice", "t", PrivacyParameters(0.5))
        with pytest.raises(BudgetDenied):
            ledger.reserve("alice", "t", PrivacyParameters(1e-6))


@st.composite
def operation_sequences(draw):
    """Interleaved reserve/commit/refund programs against one account.

    Reserve amounts intentionally overshoot the cap sometimes so denial
    paths are exercised; commit/refund targets are drawn by index so the
    same program always replays the same interleaving.
    """
    n = draw(st.integers(min_value=1, max_value=30))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["reserve", "commit", "refund"]))
        if kind == "reserve":
            amount = draw(
                st.floats(min_value=1e-3, max_value=0.6, allow_nan=False)
            )
            ops.append(("reserve", amount))
        else:
            ops.append((kind, draw(st.integers(min_value=0, max_value=40))))
    return ops


class TestInterleavingProperty:
    @settings(max_examples=120, deadline=None)
    @given(operation_sequences())
    def test_no_interleaving_overspends(self, ops):
        """spent <= cap and spent + reserved <= cap after EVERY step."""
        ledger = make_ledger(CAP)
        open_reservations = []
        for op, argument in ops:
            if op == "reserve":
                try:
                    open_reservations.append(
                        ledger.reserve("alice", "t", PrivacyParameters(argument))
                    )
                except BudgetDenied:
                    pass
            elif open_reservations:
                reservation = open_reservations.pop(
                    argument % len(open_reservations)
                )
                if op == "commit":
                    ledger.commit(reservation)
                else:
                    ledger.refund(reservation)
            statement = ledger.statement("alice", "t")
            budget = statement.cap
            # The accountant's own tolerance rule is the yardstick; using
            # it here means "never overspends" is exactly the cap rule the
            # single-budget accountant enforces.
            assert not would_overflow(budget, statement.spent[0], statement.spent[1])
            assert not would_overflow(
                budget,
                statement.spent[0] + statement.reserved[0],
                statement.spent[1] + statement.reserved[1],
            )

    @settings(max_examples=60, deadline=None)
    @given(operation_sequences())
    def test_commits_match_accountant_total(self, ops):
        """The wrapped accountant sees exactly the committed reservations."""
        ledger = make_ledger(CAP)
        open_reservations, committed = [], 0.0
        for op, argument in ops:
            if op == "reserve":
                try:
                    open_reservations.append(
                        ledger.reserve("alice", "t", PrivacyParameters(argument))
                    )
                except BudgetDenied:
                    continue
            elif open_reservations:
                reservation = open_reservations.pop(
                    argument % len(open_reservations)
                )
                if op == "commit":
                    ledger.commit(reservation)
                    committed += reservation.parameters.epsilon
                else:
                    ledger.refund(reservation)
        assert ledger.statement("alice", "t").spent[0] == pytest.approx(committed)


class TestThreadedInterleaving:
    def test_racing_tenants_cannot_overspend(self):
        """8 threads hammering reserve->commit/refund stay under the cap."""
        ledger = make_ledger(CAP)
        committed_amounts = []
        lock = threading.Lock()

        def worker(worker_id: int) -> None:
            for round_index in range(25):
                try:
                    reservation = ledger.reserve(
                        "alice", "t", PrivacyParameters(0.03),
                        job_id=f"w{worker_id}-{round_index}",
                    )
                except BudgetDenied:
                    continue
                if (worker_id + round_index) % 3 == 0:
                    ledger.refund(reservation)
                else:
                    ledger.commit(reservation)
                    with lock:
                        committed_amounts.append(0.03)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        statement = ledger.statement("alice", "t")
        assert statement.reserved == (0.0, 0.0)
        assert statement.spent[0] == pytest.approx(sum(committed_amounts))
        assert statement.spent[0] <= CAP * (1 + 1e-12)


class TestRejectionBeforeScan:
    """The service-level consequence: denied jobs never touch data."""

    def _service(self) -> TrainingService:
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 6))
        X /= np.maximum(np.linalg.norm(X, axis=1, keepdims=True), 1.0)
        y = np.where(rng.random(200) > 0.5, 1.0, -1.0)
        service = TrainingService()
        service.register_table("t", X, y)
        service.open_budget("alice", "t", 0.1)
        return service

    def test_denied_job_charges_zero_pages_and_no_drift(self):
        service = self._service()
        before = service.budgets()[0]
        record = service.submit(
            "alice", "t", LogisticLoss(1e-3), epsilon=0.5, passes=2, seed=1
        )
        service.drain()
        assert record.status is JobStatus.REJECTED
        assert "overflow" in record.error
        assert service.page_reads == 0
        assert service.budgets()[0] == before

    def test_no_account_is_a_zero_cost_rejection(self):
        service = self._service()
        record = service.submit(
            "mallory", "t", LogisticLoss(1e-3), epsilon=0.01, passes=1, seed=1
        )
        assert record.status is JobStatus.REJECTED
        assert service.page_reads == 0

    def test_rejection_after_spending_tail(self):
        """Jobs are admitted until the cap, then rejected with the earlier
        spends intact — no retroactive drift."""
        service = self._service()
        records = [
            service.submit(
                "alice", "t", LogisticLoss(1e-3), epsilon=0.04,
                passes=1, batch_size=20, seed=i,
            )
            for i in range(4)
        ]
        service.drain()
        assert [record.status for record in records] == [
            JobStatus.COMPLETED,
            JobStatus.COMPLETED,
            JobStatus.REJECTED,
            JobStatus.REJECTED,
        ]
        statement = service.budgets()[0]
        assert statement.spent[0] == pytest.approx(0.08)
        assert statement.reserved == (0.0, 0.0)

    def test_failed_job_refunds_and_over_cap_job_still_fits_later(self):
        from repro.optim.losses import HingeLoss

        service = self._service()
        failed = service.submit(
            "alice", "t", HingeLoss(), epsilon=0.08, passes=1, seed=1
        )
        service.drain()
        assert service.status(failed.job_id) is JobStatus.FAILED
        assert service.page_reads == 0  # died at sensitivity resolution
        # The refunded 0.08 is available again: a follow-up job fits.
        retry = service.submit(
            "alice", "t", LogisticLoss(1e-3), epsilon=0.08, passes=1, seed=2
        )
        service.drain()
        assert service.status(retry.job_id) is JobStatus.COMPLETED
