"""The model registry and results store — now durable and async-aware.

Every job the service has ever seen lives here as a :class:`JobRecord`:
its status, the released weights (for completed jobs), the budget
receipt that paid for them, and the execution metadata operators ask
about (which dispatch ran it, with how many scan-mates, how many page
requests its group charged). The registry is the *only* interface for
reading results — the scheduler never hands weights back directly — so
whatever queries later PRs need (per-tenant dashboards, model GC,
lineage) have one place to grow.

Two serving-layer concerns live here too:

* **Completion events** — with the dispatch loop running in background
  worker threads, ``submit()`` returns before training does, so every
  record carries a ``threading.Event`` exposed as
  :meth:`JobRecord.wait` / :attr:`JobRecord.done`.
* **Durability** — :meth:`ModelRegistry.snapshot` /
  :meth:`ModelRegistry.load` round-trip the whole store through JSON.
  Weights survive *bitwise*: Python's ``json`` emits the shortest
  round-tripping ``repr`` for every float64, so a reloaded model is
  ``np.array_equal`` to the one that was saved. Jobs that were still
  QUEUED/RUNNING at snapshot time are not durable work — a loaded
  registry marks them FAILED (interrupted) so their tenants see an
  honest terminal state and, because such records carry no receipt,
  budget reconciliation never charges for them.
"""

from __future__ import annotations

import json
import pathlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.core.bolton import BoltOnCandidate
from repro.core.mechanisms import PrivacyParameters
from repro.obs.trace import JobTrace
from repro.optim.losses import Loss
from repro.service.errors import UnknownJob
from repro.service.jobs import JobStatus, TrainingJob
from repro.service.ledger import BudgetReceipt

#: Format tag written into every snapshot (reject foreign files early).
SNAPSHOT_FORMAT = "repro-registry/v1"

#: The statuses a snapshot preserves verbatim; anything else was
#: in-flight work and reloads as FAILED (interrupted by restart).
_TERMINAL = (
    JobStatus.COMPLETED,
    JobStatus.FAILED,
    JobStatus.REJECTED,
    JobStatus.CANCELLED,
)

#: The terminal statuses as payload values — what the WAL replay's merge
#: rule checks a snapshot entry against (a WAL "record" event may
#: overwrite a snapshot payload only while the snapshot saw the job
#: in flight; see ``TrainingService.load_state``).
TERMINAL_STATUS_VALUES = frozenset(status.value for status in _TERMINAL)


@dataclass
class JobRecord:
    """Everything the service knows about one job."""

    job: TrainingJob
    status: JobStatus
    #: The differentially private release (None unless COMPLETED).
    model: Optional[np.ndarray] = None
    #: Proof of the committed spend (None unless COMPLETED; also None for
    #: cache hits — a hit re-spends nothing, see ``cache_source``).
    receipt: Optional[BudgetReceipt] = None
    #: L2-sensitivity the noise was calibrated to.
    sensitivity: Optional[float] = None
    #: Norm of the drawn noise vector (diagnostic).
    noise_norm: Optional[float] = None
    #: "fused" | "sequential" | "cached" for executed jobs, "" otherwise.
    dispatch: str = ""
    #: How many jobs shared the scan (1 for sequential dispatch, 0 cached).
    group_size: int = 0
    #: Page requests the job's scan group made, total (shared, not split:
    #: a 32-job fused group lists the same ~1-scan figure on every record,
    #: because that IS what the group cost). Always 0 for cache hits.
    group_pages: int = 0
    #: Epochs the scan ran (the job's candidate.passes).
    epochs: int = 0
    #: Boarding provenance (elevator dispatch): the permutation offset —
    #: a position on the shared cursor's canonical chunk grid — at which
    #: the job boarded the running scan, and the full cursor loops it
    #: rode before exiting back at that offset. ``0`` for jobs that
    #: opened their flight (or any non-elevator dispatch), which is also
    #: the only boarding offset the result cache will serve or prime —
    #: an offset release is arrival-timing-specific by construction.
    boarding_offset: int = 0
    epochs_ridden: int = 0
    #: Job id whose committed release this record was served from
    #: (cache hits only; "" for records that paid for their own scan).
    cache_source: str = ""
    #: Provenance of the release: the content fingerprint of the table
    #: and the scan seed its permutation was drawn from. These — not the
    #: current table state — key cache re-arming after a snapshot load,
    #: so weights trained on since-changed data can never be served.
    table_fingerprint: str = ""
    scan_seed: Optional[int] = None
    #: Human-readable failure/rejection reason.
    error: str = ""
    #: Logical service ticks (submission order / completion order).
    submitted_at: int = -1
    finished_at: int = -1
    #: True once registry retention dropped this record's weights (the
    #: receipt/trace metadata stay; see ``ModelRegistry`` retention).
    weights_evicted: bool = False
    #: Lifecycle trace: monotonic-clock spans from admission to release,
    #: written by whoever holds the job at each phase boundary.
    trace: JobTrace = field(
        default_factory=JobTrace, repr=False, compare=False
    )
    #: Set the moment the record reaches a terminal status — the handle
    #: async submitters block on.
    _done: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )
    #: Journal callback the registry installs at :meth:`ModelRegistry.add`
    #: — fired once, from :meth:`mark_done`, so the record's terminal
    #: payload lands in the write-ahead log the moment it is final.
    _journal: Optional[Callable[["JobRecord"], None]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def job_id(self) -> str:
        return self.job.job_id

    # -- the async job handle ----------------------------------------------------

    @property
    def done(self) -> bool:
        """Has the job reached a terminal status (completed/failed/rejected)?"""
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job is terminal (or ``timeout`` seconds pass).

        Returns :attr:`done` — ``False`` means the wait timed out, not
        that the job failed; check :attr:`status` for the outcome.
        """
        return self._done.wait(timeout)

    def mark_done(self) -> None:
        """Publish terminality. Called exactly once, by whoever moved the
        record to a terminal status, *after* every result field is set —
        a waiter woken by the event must never observe a half-written
        record. (That same every-field-landed guarantee is why the
        journal hook fires here: the payload it logs is final.)"""
        self._done.set()
        journal = self._journal
        if journal is not None:
            journal(self)


@dataclass(frozen=True)
class CachedResult:
    """One committed release, keyed for cross-drain reuse.

    Everything a cache hit copies onto the fresh record: the weights plus
    the release metadata tenants can audit (what sensitivity the noise
    was calibrated to, which job originally paid).
    """

    weights: np.ndarray
    sensitivity: Optional[float]
    noise_norm: Optional[float]
    epochs: int
    source_job_id: str


class ResultCache:
    """The cross-drain result cache: identical job → identical release.

    Keys are built by the scheduler from the bitwise-determinism
    invariant — (table name + table content fingerprint + scan
    permutation seed, candidate identity, privacy parameters, job seed) —
    so a hit is *provably* the same computation, and returning the stored
    weights costs 0 page requests and 0 ε (releasing the same output
    twice reveals nothing new; the ledger is never touched on a hit).

    ``max_entries`` bounds the store (a long-lived server would otherwise
    hold every release it ever made): LRU on *last hit* — serving an
    entry refreshes it, inserting past the cap evicts the entry unhit for
    longest. Eviction is purely an economy: a future resubmission of an
    evicted job simply trains (and pays) again, bit-identically.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be a positive integer or None, got {max_entries}"
            )
        self._entries: "OrderedDict[tuple, CachedResult]" = OrderedDict()
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Optional[tuple]) -> Optional[CachedResult]:
        if key is None:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
                self._entries.move_to_end(key)
            return entry

    def put(self, key: Optional[tuple], result: CachedResult) -> None:
        if key is None:
            return
        with self._lock:
            # First writer wins: by the determinism invariant any later
            # entry under the same key holds the same bits. (Recency is
            # deliberately NOT refreshed for a losing re-put — only real
            # hits keep an entry warm.)
            self._entries.setdefault(key, result)
            while self.max_entries is not None and len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1


class ModelRegistry:
    """Thread-safe store of job records, queryable by tenant/table/status.

    ``max_terminal_records`` bounds how many *terminal* records keep
    their released weights resident: once more than that many completed
    jobs hold models, the least-recently-finished one has its weights
    dropped (``record.model = None``, ``record.weights_evicted = True``)
    while the receipt, trace, and execution metadata stay — a long-lived
    server's registry is then O(active + retained), not O(every job
    ever). Reading an evicted model raises ``KeyError`` with a retention
    hint; the result cache (its own LRU) may still serve the release.
    ``None`` (the default) retains everything.
    """

    def __init__(self, max_terminal_records: Optional[int] = None) -> None:
        if max_terminal_records is not None and max_terminal_records < 1:
            raise ValueError(
                "max_terminal_records must be a positive integer or None, "
                f"got {max_terminal_records}"
            )
        self.max_terminal_records = max_terminal_records
        #: Terminal records currently holding weights, oldest-finished
        #: first — the retention queue.
        self._weights_order: "OrderedDict[str, None]" = OrderedDict()
        #: Running count of weight evictions (sampled into the metrics
        #: registry by the service's collector).
        self.weights_evicted_total = 0
        self._records: Dict[str, JobRecord] = {}
        self._order: List[str] = []
        # Snapshot memo: a record's JSON payload is immutable once the
        # record is terminal, so the per-window autosave only serializes
        # records that finished since the last snapshot instead of
        # re-walking every weight vector in the store's history.
        self._payload_memo: Dict[str, dict] = {}
        self._lock = threading.RLock()
        #: Event sink for the write-ahead log (the service wires it to
        #: the WAL's append). When set, admission of a QUEUED record
        #: emits an ``admit`` event and every record reaching a terminal
        #: status emits a ``record`` event carrying its final payload.
        #: ``None`` (the default) emits nothing — a registry used
        #: without a durable service does no event bookkeeping at all.
        self.journal: Optional[Callable[[dict], None]] = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._records

    def add(self, record: JobRecord) -> JobRecord:
        with self._lock:
            job_id = record.job.job_id
            if not job_id:
                raise ValueError("records need a job with an assigned job_id")
            if job_id in self._records:
                raise ValueError(f"job {job_id!r} is already registered")
            self._records[job_id] = record
            self._order.append(job_id)
            # Wire the terminal-event hook regardless of whether a sink
            # is attached yet (the hook re-checks). Records loaded from a
            # snapshot/WAL were marked done before this add, so neither
            # hook fires for them — a restore never re-logs its input.
            record._journal = self._journal_terminal
            if record.done:
                # Loaded from a snapshot/WAL: already terminal, so the
                # mark_done hook never fires — enroll in retention here.
                self._note_terminal(record)
            sink = self.journal
            if sink is not None and record.status is JobStatus.QUEUED:
                sink({"event": "admit", "record": _record_payload(record)})
            return record

    def _journal_terminal(self, record: JobRecord) -> None:
        """The per-record ``mark_done`` hook: log the final payload and
        enroll the record in weight retention."""
        sink = self.journal
        if sink is not None:
            sink({"event": "record", "record": _record_payload(record)})
        self._note_terminal(record)

    def _note_terminal(self, record: JobRecord) -> None:
        """Retention bookkeeping for a newly-terminal record: records
        holding weights queue up oldest-finished-first, and past the cap
        the oldest loses its model (metadata kept, memo patched so the
        next snapshot doesn't resurrect the weights)."""
        if self.max_terminal_records is None or record.model is None:
            return
        with self._lock:
            self._weights_order[record.job_id] = None
            while len(self._weights_order) > self.max_terminal_records:
                evicted_id, _ = self._weights_order.popitem(last=False)
                evicted = self._records[evicted_id]
                evicted.model = None
                evicted.weights_evicted = True
                self.weights_evicted_total += 1
                memo = self._payload_memo.get(evicted_id)
                if memo is not None:
                    memo["model"] = None
                    memo["weights_evicted"] = True

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise UnknownJob(f"unknown job {job_id!r}")
            return record

    def status(self, job_id: str) -> JobStatus:
        return self.get(job_id).status

    def model(self, job_id: str) -> np.ndarray:
        """The released weights; raises unless the job completed and the
        weights are still retained."""
        record = self.get(job_id)
        if record.weights_evicted:
            raise KeyError(
                f"job {job_id!r}: released weights were dropped by registry "
                f"retention (max_terminal_records="
                f"{self.max_terminal_records}); the receipt and trace "
                "metadata are retained — resubmit the job to retrain "
                "bit-identically"
            )
        if record.status is not JobStatus.COMPLETED or record.model is None:
            raise ValueError(
                f"job {job_id!r} has no released model (status: {record.status})"
            )
        return record.model

    def jobs(
        self,
        principal: Optional[str] = None,
        table: Optional[str] = None,
        status: Optional[JobStatus] = None,
    ) -> List[JobRecord]:
        """Records in submission order, filtered by any of the three axes."""
        with self._lock:
            records = [self._records[job_id] for job_id in self._order]
        return [
            record
            for record in records
            if (principal is None or record.job.principal == principal)
            and (table is None or record.job.table == table)
            and (status is None or record.status is status)
        ]

    def counts(self) -> Dict[str, int]:
        """Status histogram (keys are the status values, e.g. "completed")."""
        histogram: Dict[str, int] = {status.value: 0 for status in JobStatus}
        with self._lock:
            for record in self._records.values():
                histogram[record.status.value] += 1
        return histogram

    def max_stamp(self) -> int:
        """The largest submission/arrival stamp seen (0 when empty) — the
        restart point for the service's job-id/arrival counter."""
        with self._lock:
            stamps = [0]
            for record in self._records.values():
                stamps.append(record.job.arrival)
                stamps.append(record.submitted_at)
                stamps.append(record.finished_at)
            return max(stamps)

    # -- durability --------------------------------------------------------------

    def snapshot(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the whole store to ``path`` as JSON (atomic rename).

        Safe to call from the dispatch loop's autosave hook while workers
        are releasing jobs: records are serialized under the registry
        lock, and a record that is not yet terminal is snapshotted as
        in-flight (its loader will mark it FAILED/interrupted).
        """
        path = pathlib.Path(path)
        with self._lock:
            entries = []
            for job_id in self._order:
                entry = self._payload_memo.get(job_id)
                if entry is None:
                    record = self._records[job_id]
                    # Capture doneness BEFORE building: a record can flip
                    # terminal mid-serialization (workers write fields
                    # without this lock), and memoizing a payload built
                    # during that window would freeze the in-flight view
                    # forever. done is set only after every field landed,
                    # so frozen-before-build means the payload is final.
                    frozen = record.done and record.status in _TERMINAL
                    entry = _record_payload(record)
                    if frozen:
                        self._payload_memo[job_id] = entry
                entries.append(entry)
            payload = {"format": SNAPSHOT_FORMAT, "records": entries}
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        tmp.replace(path)
        return path

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "ModelRegistry":
        """Rebuild a registry from a :meth:`snapshot` file."""
        registry = cls()
        for entry in snapshot_payloads(path):
            registry.add(record_from_payload(entry))
        return registry


# -- (de)serialization helpers ---------------------------------------------------


def snapshot_payloads(path: Union[str, pathlib.Path]) -> List[dict]:
    """The raw record payloads of a :meth:`ModelRegistry.snapshot` file,
    in store order — the base the service's WAL replay merges log events
    into (``TrainingService.load_state``)."""
    payload = json.loads(pathlib.Path(path).read_text())
    if payload.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(
            f"{path} is not a registry snapshot "
            f"(format: {payload.get('format')!r})"
        )
    return payload["records"]


def _loss_payload(loss: Loss) -> dict:
    """A loss as (class name, constructor-free state). Every built-in loss
    is a plain bag of floats/bools, so ``vars()`` round-trips exactly."""
    state = {}
    for name, value in vars(loss).items():
        if isinstance(value, (bool, int, float, str)) or value is None:
            state[name] = value
        else:
            raise TypeError(
                f"{type(loss).__name__}.{name} ({type(value).__name__}) is "
                "not snapshot-serializable; give the loss a plain-scalar "
                "state or train it via the non-durable API"
            )
    return {"type": type(loss).__name__, "state": state}


def _loss_from_payload(payload: dict) -> Loss:
    from repro.optim import losses as losses_module

    cls = getattr(losses_module, payload["type"], None)
    if cls is None or not isinstance(cls, type) or not issubclass(cls, Loss):
        raise ValueError(f"snapshot names unknown loss {payload['type']!r}")
    loss = cls.__new__(cls)
    loss.__dict__.update(payload["state"])
    return loss


def _model_payload(model: Optional[np.ndarray]) -> Optional[list]:
    if model is None:
        return None
    return [float(value) for value in np.asarray(model, dtype=np.float64)]


def _record_payload(record: JobRecord) -> dict:
    job = record.job
    candidate = job.candidate
    terminal = record.status in _TERMINAL
    status = record.status if terminal else JobStatus.RUNNING
    # In-flight records serialize WITHOUT model/receipt even if a racing
    # worker has already written those fields (release order sets status
    # last): a snapshot must never pair "interrupted -> FAILED on load"
    # with a receipt that reconciliation would then charge the tenant
    # for. The commit becomes durable with the next (post-release)
    # autosave, which sees status COMPLETED.
    receipt = record.receipt if terminal else None
    return {
        "job": {
            "principal": job.principal,
            "table": job.table,
            "epsilon": job.epsilon,
            "delta": job.delta,
            "priority": job.priority,
            "seed": job.seed,
            "job_id": job.job_id,
            "arrival": job.arrival,
            "candidate": {
                "loss": _loss_payload(candidate.loss),
                "passes": candidate.passes,
                "batch_size": candidate.batch_size,
                "eta": candidate.eta,
                "radius": candidate.radius,
                "average": candidate.average,
            },
        },
        "status": status.value,
        "model": _model_payload(record.model) if terminal else None,
        "receipt": None
        if receipt is None
        else {
            "principal": receipt.principal,
            "table": receipt.table,
            "job_id": receipt.job_id,
            "epsilon": receipt.parameters.epsilon,
            "delta": receipt.parameters.delta,
            "sequence": receipt.sequence,
        },
        "sensitivity": record.sensitivity,
        "noise_norm": record.noise_norm,
        "dispatch": record.dispatch,
        "group_size": record.group_size,
        "group_pages": record.group_pages,
        "epochs": record.epochs,
        "boarding_offset": record.boarding_offset,
        "epochs_ridden": record.epochs_ridden,
        "cache_source": record.cache_source,
        "table_fingerprint": record.table_fingerprint,
        "scan_seed": record.scan_seed,
        "error": record.error,
        "submitted_at": record.submitted_at,
        "finished_at": record.finished_at,
        "weights_evicted": record.weights_evicted,
        # Closed spans only (an open span has no end yet); floats emit
        # their shortest repr, so the trace round-trips bitwise.
        "trace": record.trace.payload(),
    }


def record_from_payload(payload: dict) -> JobRecord:
    """Rebuild one :class:`JobRecord` from its serialized payload.

    Public because the WAL replay path deserializes payloads carried by
    log events, not just snapshot entries. The returned record is always
    terminal (an in-flight payload — a WAL ``admit`` event, or a record
    the snapshot saw mid-scan — loads as FAILED/interrupted) and already
    marked done.
    """
    return _record_from_payload(payload)


def _record_from_payload(payload: dict) -> JobRecord:
    job_data = payload["job"]
    candidate_data = job_data["candidate"]
    candidate = BoltOnCandidate(
        loss=_loss_from_payload(candidate_data["loss"]),
        passes=candidate_data["passes"],
        batch_size=candidate_data["batch_size"],
        eta=candidate_data["eta"],
        radius=candidate_data["radius"],
        average=candidate_data["average"],
    )
    job = TrainingJob(
        principal=job_data["principal"],
        table=job_data["table"],
        candidate=candidate,
        epsilon=job_data["epsilon"],
        delta=job_data["delta"],
        priority=job_data["priority"],
        seed=job_data["seed"],
        job_id=job_data["job_id"],
        arrival=job_data["arrival"],
    )
    status = JobStatus(payload["status"])
    error = payload["error"]
    if status not in _TERMINAL:
        # In-flight work is not durable: its reservation died with the
        # old process (never committed — no receipt), so the honest
        # restart semantics are "failed, resubmit if you still want it".
        status = JobStatus.FAILED
        error = error or "interrupted: job was in flight when the snapshot was taken"
    receipt_data = payload["receipt"]
    receipt = (
        None
        if receipt_data is None
        else BudgetReceipt(
            principal=receipt_data["principal"],
            table=receipt_data["table"],
            job_id=receipt_data["job_id"],
            parameters=PrivacyParameters(
                receipt_data["epsilon"], receipt_data["delta"]
            ),
            sequence=receipt_data["sequence"],
        )
    )
    model = payload["model"]
    record = JobRecord(
        job=job,
        status=status,
        model=None if model is None else np.asarray(model, dtype=np.float64),
        receipt=receipt,
        sensitivity=payload["sensitivity"],
        noise_norm=payload["noise_norm"],
        dispatch=payload["dispatch"],
        group_size=payload["group_size"],
        group_pages=payload["group_pages"],
        epochs=payload["epochs"],
        # Lenient: snapshots written before the elevator carried no
        # boarding provenance — those records all boarded at offset 0.
        boarding_offset=payload.get("boarding_offset", 0),
        epochs_ridden=payload.get("epochs_ridden", 0),
        cache_source=payload["cache_source"],
        table_fingerprint=payload["table_fingerprint"],
        scan_seed=payload["scan_seed"],
        error=error,
        submitted_at=payload["submitted_at"],
        finished_at=payload["finished_at"],
        # Lenient: payloads written before the telemetry layer carry no
        # trace (loads as empty) and no retention flag.
        weights_evicted=payload.get("weights_evicted", False),
        trace=JobTrace.from_payload(payload.get("trace", {})),
    )
    record.mark_done()
    return record
