"""Slotted-page storage with a buffer pool — the engine's bottom layer.

The paper's experiments run inside PostgreSQL, where the dataset is "stored
as a table" and scalability to larger-than-memory data "comes for free"
through the buffer manager (Section 4.4, Figure 2). This module recreates
the parts of that stack the experiments exercise:

* fixed-width tuples (d float64 features + 1 float64 label) packed into
  8 KiB pages;
* a :class:`HeapFile` of pages — either *materialized* (backed by real
  arrays) or *virtual* (pages synthesized deterministically on first read,
  so multi-gigabyte scalability tables never occupy RAM, mirroring the
  paper's 149–447 GB disk-based datasets);
* a :class:`BufferPool` with LRU eviction and hit/miss counters, which is
  what distinguishes the in-memory regime (all pages resident, CPU-bound)
  from the disk regime (misses dominate, I/O-bound) in Figure 2.

Page reads/writes are *counted*, not physically performed; the cost model
(:mod:`repro.rdbms.cost_model`) converts the counters into simulated
seconds. Real wall-clock time of the Python hot loops is measured
separately by the pytest benchmarks.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

import numpy as np

from repro.utils.validation import check_positive_int

#: PostgreSQL's default page size.
PAGE_SIZE_BYTES = 8192
#: Per-page header we account for (page id + tuple count).
PAGE_HEADER_BYTES = 16


def tuple_width_bytes(dimension: int) -> int:
    """On-page width of one example: d features + 1 label, all float64."""
    check_positive_int(dimension, "dimension")
    return (dimension + 1) * 8


def tuples_per_page(dimension: int) -> int:
    """How many examples fit in one 8 KiB page."""
    width = tuple_width_bytes(dimension)
    capacity = (PAGE_SIZE_BYTES - PAGE_HEADER_BYTES) // width
    if capacity < 1:
        raise ValueError(
            f"dimension {dimension} is too wide for a {PAGE_SIZE_BYTES}-byte "
            "page; wide tuples would need TOAST-style storage, which the "
            "experiments do not exercise"
        )
    return capacity


@dataclass
class Page:
    """One page of examples: a features block and a labels block."""

    page_id: int
    features: np.ndarray
    labels: np.ndarray

    @property
    def tuple_count(self) -> int:
        return int(self.features.shape[0])


class HeapFile(abc.ABC):
    """A sequence of pages holding one table's tuples."""

    @property
    @abc.abstractmethod
    def dimension(self) -> int:
        """Feature dimension d."""

    @property
    @abc.abstractmethod
    def num_pages(self) -> int:
        """Page count."""

    @property
    @abc.abstractmethod
    def num_tuples(self) -> int:
        """Row count m."""

    @abc.abstractmethod
    def read_page(self, page_id: int) -> Page:
        """Materialize page ``page_id`` (0-based)."""

    @property
    def size_bytes(self) -> int:
        """On-disk footprint (pages x page size)."""
        return self.num_pages * PAGE_SIZE_BYTES


class MaterializedHeapFile(HeapFile):
    """A heap file backed by in-process arrays (small/medium tables)."""

    def __init__(self, features: np.ndarray, labels: np.ndarray):
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if features.ndim != 2 or labels.ndim != 1:
            raise ValueError("features must be 2-D and labels 1-D")
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features/labels row counts disagree")
        if features.shape[0] == 0:
            raise ValueError("heap file must contain at least one tuple")
        self._features = features
        self._labels = labels
        self._per_page = tuples_per_page(features.shape[1])

    @property
    def dimension(self) -> int:
        return int(self._features.shape[1])

    @property
    def num_tuples(self) -> int:
        return int(self._features.shape[0])

    @property
    def num_pages(self) -> int:
        return -(-self.num_tuples // self._per_page)

    def read_page(self, page_id: int) -> Page:
        if not 0 <= page_id < self.num_pages:
            raise IndexError(f"page {page_id} out of range [0, {self.num_pages})")
        start = page_id * self._per_page
        stop = min(start + self._per_page, self.num_tuples)
        return Page(
            page_id=page_id,
            features=self._features[start:stop],
            labels=self._labels[start:stop],
        )


class VirtualHeapFile(HeapFile):
    """A heap file whose pages are generated deterministically on read.

    Used by the scalability experiments: a 447 GB table exists as a page
    *generator* ``(page_id) -> (features, labels)`` seeded by the page id,
    so scanning it produces stable data with bounded memory — exactly the
    role the Bismarck data synthesizer plays in the paper's Figure 2 study.
    """

    def __init__(
        self,
        num_tuples: int,
        dimension: int,
        page_generator: Callable[[int, int, int], tuple[np.ndarray, np.ndarray]],
    ):
        self._num_tuples = check_positive_int(num_tuples, "num_tuples")
        self._dimension = check_positive_int(dimension, "dimension")
        self._per_page = tuples_per_page(dimension)
        self._generator = page_generator

    @property
    def dimension(self) -> int:
        return self._dimension

    @property
    def num_tuples(self) -> int:
        return self._num_tuples

    @property
    def num_pages(self) -> int:
        return -(-self._num_tuples // self._per_page)

    def read_page(self, page_id: int) -> Page:
        if not 0 <= page_id < self.num_pages:
            raise IndexError(f"page {page_id} out of range [0, {self.num_pages})")
        start = page_id * self._per_page
        count = min(self._per_page, self._num_tuples - start)
        features, labels = self._generator(page_id, count, self._dimension)
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if features.shape != (count, self._dimension) or labels.shape != (count,):
            raise ValueError(
                "page generator returned wrong shapes: "
                f"{features.shape}, {labels.shape}; expected "
                f"({count}, {self._dimension}) and ({count},)"
            )
        return Page(page_id=page_id, features=features, labels=labels)


@dataclass
class BufferPoolStats:
    """Counters the cost model consumes."""

    page_reads: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    evictions: int = 0

    def reset(self) -> None:
        self.page_reads = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.evictions = 0

    @property
    def hit_rate(self) -> float:
        if self.page_reads == 0:
            return 0.0
        return self.cache_hits / self.page_reads


class BufferPool:
    """LRU page cache in front of a heap file.

    ``capacity_pages`` models the machine's memory: when every table page
    fits, repeated epochs are all cache hits (the paper's warm-cache
    in-memory runs); when the table exceeds it, each sequential scan incurs
    one miss per page (the disk-based regime of Figure 2(b)).
    """

    def __init__(self, capacity_pages: int):
        self.capacity = check_positive_int(capacity_pages, "capacity_pages")
        self._cache: "OrderedDict[tuple[int, int], Page]" = OrderedDict()
        self.stats = BufferPoolStats()

    def get_page(
        self,
        heap: HeapFile,
        page_id: int,
        reader: Optional[Callable[[int], Page]] = None,
    ) -> Page:
        """Fetch a page through the cache, updating LRU order and stats.

        ``reader`` optionally replaces ``heap.read_page`` as the miss
        handler. Accounting is identical either way — the request, the
        hit/miss classification, the LRU update, and any eviction happen
        exactly as without it — only the *materialization* of a missed
        page is delegated. Scan operators use this to memoize synthesized
        pages (``VirtualHeapFile`` generators are deterministic, so a page
        materialized moments ago in the same chunk is the same page).
        """
        key = (id(heap), page_id)
        self.stats.page_reads += 1
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            self._cache.move_to_end(key)
            return cached
        self.stats.cache_misses += 1
        page = heap.read_page(page_id) if reader is None else reader(page_id)
        self._cache[key] = page
        if len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
            self.stats.evictions += 1
        return page

    def scan(self, heap: HeapFile, page_order: Optional[List[int]] = None) -> Iterator[Page]:
        """Iterate pages (sequentially by default) through the cache."""
        order = page_order if page_order is not None else range(heap.num_pages)
        for page_id in order:
            yield self.get_page(heap, page_id)

    def clear(self) -> None:
        self._cache.clear()

    @property
    def resident_pages(self) -> int:
        return len(self._cache)
