"""Figures 8 and 9 — HIGGS-like and KDDCup-99-like datasets (Appendix C).

The appendix's point: "for large datasets differential privacy comes for
free with our algorithms" — at HIGGS scale the bolt-on noise is negligible
and ours matches the noiseless line even at ε = 0.01, while SCS13/BST14
remain notably worse at small ε.

Figure 8 uses fixed (public) parameters; Figure 9 uses private tuning.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.figures import accuracy_figure_row
from repro.evaluation.reporting import format_series
from repro.evaluation.scenarios import Scenario

from bench_util import run_once, write_report

EPS = (0.01, 0.05, 0.2, 0.4)
#: All four panels are asserted for HIGGS; both tuning styles are run.
SCENARIOS = tuple(Scenario)


def _row(dataset, scale, tuning, epsilons=EPS, scenarios=SCENARIOS):
    return accuracy_figure_row(
        dataset,
        tuning=tuning,
        scale=scale,
        scenarios=scenarios,
        epsilons=epsilons,
        passes=5,
        batch_size=50,
        regularization=1e-3,
        seed=0,
    )


def _write(name, title, results):
    blocks = [
        format_series(
            f"{title} {sweep.scenario.value}", "epsilon",
            sweep.epsilons, sweep.series,
        )
        for sweep in results
    ]
    write_report(name, "\n\n".join(blocks))


def bench_fig8_higgs(benchmark):
    results = run_once(benchmark, _row, "higgs", 0.01, "fixed")
    _write("fig8_higgs", "Figure 8 [higgs-like]", results)
    for sweep in results:
        ours = sweep.series["ours"]
        noiseless = sweep.series["noiseless"]
        # privacy for free: ours within 2 points of noiseless from the
        # second grid point on. (At eps = 0.01 the paper's full 10.5M-row
        # HIGGS also gets it for free; our stand-in is 100x smaller, so
        # the free regime starts one grid point later — allow 5 points.)
        for i in range(len(ours)):
            slack = 0.05 if i == 0 else 0.02
            assert ours[i] >= noiseless[i] - slack, (
                f"{sweep.scenario.name} @ eps={sweep.epsilons[i]}: "
                f"{ours[i]} vs {noiseless[i]}"
            )
        # the white-box baselines do not get it for free at small eps
        assert np.mean(sweep.series["scs13"]) < np.mean(ours) + 1e-9


def bench_fig8_kddcup(benchmark):
    results = run_once(benchmark, _row, "kddcup", 0.01, "fixed")
    _write("fig8_kddcup", "Figure 8 [kddcup-like]", results)
    for sweep in results:
        assert np.mean(sweep.series["ours"]) >= np.mean(sweep.series["scs13"]) - 0.02


def bench_fig9_higgs_private_tuning(benchmark):
    results = run_once(
        benchmark, _row, "higgs", 0.005, "private", (0.05, 0.4),
        (Scenario.STRONGLY_CONVEX_PURE, Scenario.STRONGLY_CONVEX_APPROX),
    )
    _write("fig9_higgs", "Figure 9 [higgs-like]", results)
    for sweep in results:
        assert np.mean(sweep.series["ours"]) >= np.mean(sweep.series["scs13"]) - 0.05


def bench_fig9_kddcup_private_tuning(benchmark):
    results = run_once(
        benchmark, _row, "kddcup", 0.01, "private", (0.05, 0.4),
        (Scenario.STRONGLY_CONVEX_PURE, Scenario.STRONGLY_CONVEX_APPROX),
    )
    _write("fig9_kddcup", "Figure 9 [kddcup-like]", results)
    for sweep in results:
        assert np.mean(sweep.series["ours"]) >= np.mean(sweep.series["scs13"]) - 0.05
