"""Fault-injection tests for the serving layer.

The service's containment contract: a failure anywhere in a worker's
iteration — a page fault mid-scan, an exception between the scheduler's
atomic steps, an unwritable state directory — ends with the affected
jobs FAILED and refunded, the engine domain released, and the worker
thread alive and serving the next tenant. Transient page faults retry
with backoff and, by the determinism contract, a retried scan releases
weights bitwise-identical to an undisturbed one.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.optim.losses import LogisticLoss
from repro.rdbms.storage import FaultyHeapFile, MaterializedHeapFile
from repro.service import JobStatus, TrainingService
from tests.conftest import make_binary_data

M, D = 300, 8
EPS = 0.05
X, Y = make_binary_data(M, D, seed=21)


def make_service(workers: int = 1, cap: float = 10.0, **kwargs) -> TrainingService:
    service = TrainingService(scan_seed=5, workers=workers, **kwargs)
    service.register_table("t", X, Y)
    service.open_budget("alice", "t", cap)
    return service


def faulty_service(heap_kwargs: dict, **service_kwargs) -> TrainingService:
    """A service whose table "f" injects page faults per ``heap_kwargs``."""
    service = TrainingService(scan_seed=5, workers=1, **service_kwargs)
    service.register_table("f", heap=FaultyHeapFile(
        MaterializedHeapFile(X, Y), **heap_kwargs
    ))
    service.open_budget("alice", "f", 10.0)
    service.scheduler.retry_backoff_seconds = 0.0  # keep the tests fast
    return service


def submit_one(service, table="f", seed=300):
    return service.submit("alice", table, LogisticLoss(1e-3), epsilon=EPS,
                          passes=1, batch_size=25, seed=seed)


class TestTransientFaultRetry:
    def test_single_transient_fault_retries_to_the_same_bits(self):
        """fail_times=1: the first scan attempt faults, the retry reads
        clean — and releases exactly the weights an undisturbed scan
        would (the model is rebuilt from scratch per attempt)."""
        clean = TrainingService(scan_seed=5, workers=1)
        clean.register_table("f", heap=MaterializedHeapFile(X, Y))
        clean.open_budget("alice", "f", 10.0)
        reference = submit_one(clean)
        clean.drain()
        assert reference.status is JobStatus.COMPLETED

        service = faulty_service(dict(fail_pages=(0,), fail_times=1))
        record = submit_one(service)
        service.drain()
        assert record.status is JobStatus.COMPLETED, record.error
        assert service.scheduler.scan_retries_used == 1
        assert np.array_equal(record.model, reference.model)
        # The receipt committed once — no double charge across attempts.
        statement = service.budgets()[0]
        assert statement.spent[0] == pytest.approx(EPS)
        assert statement.reserved == (0.0, 0.0)

    def test_retries_exhausted_fails_the_job_with_refund(self):
        """A page that faults on every attempt burns through the retry
        budget and fails the window — reservation refunded, worker
        alive."""
        service = faulty_service(dict(fail_pages=(0,)), scan_retries=2)
        record = submit_one(service)
        finished = service.drain()
        assert [r.job_id for r in finished] == [record.job_id]
        assert record.status is JobStatus.FAILED
        assert "injected transient fault" in record.error
        assert service.scheduler.scan_retries_used == 2
        statement = service.budgets()[0]
        assert statement.spent == (0, 0)
        assert statement.reserved == (0.0, 0.0)

    def test_permanent_fault_fails_without_retrying(self):
        service = faulty_service(dict(fail_pages=(1,), transient=False))
        record = submit_one(service)
        service.drain()
        assert record.status is JobStatus.FAILED
        assert "injected fault reading page 1" in record.error
        assert service.scheduler.scan_retries_used == 0

    def test_worker_survives_faults_and_serves_the_next_tenant(self):
        """The containment payoff: after a fatal fault the same worker
        thread picks up and completes fresh work on the same table."""
        service = faulty_service(dict(fail_pages=(0,), fail_times=2),
                                 scan_retries=0)
        doomed = submit_one(service)
        service.drain()
        assert doomed.status is JobStatus.FAILED
        # fail_times budget: one fault spent, one left -> retry path.
        service.scheduler.scan_retries = 2
        survivor = submit_one(service, seed=301)
        service.drain()
        assert survivor.status is JobStatus.COMPLETED, survivor.error
        assert list(service.loop.dispatch_errors) == []  # engine faults are
        # handled by dispatch_window's own fail path, not the last resort


class TestWorkerCrashContainment:
    def test_crash_before_dispatch_fails_refunds_and_releases(self):
        """Regression for the containment bug: an exception between the
        claim and the dispatch must FAIL the window's jobs, refund their
        reservations, release the table's engine domain, and leave the
        worker serving — the next job on the SAME table completes."""
        crashes = []

        def hook(point):
            if point == "before_dispatch" and not crashes:
                crashes.append(point)
                raise RuntimeError("injected crash between claim and scan")

        service = make_service()
        service.loop.crash_hook = hook
        doomed = submit_one(service, table="t", seed=310)
        service.drain()
        assert doomed.status is JobStatus.FAILED
        assert "injected crash" in doomed.error
        assert doomed.receipt is None
        statement = service.budgets()[0]
        assert statement.spent == (0, 0)
        assert statement.reserved == (0.0, 0.0)
        assert any("injected crash" in entry
                   for entry in service.loop.dispatch_errors)
        # The busy flag came free: same table, same worker, clean run.
        survivor = submit_one(service, table="t", seed=311)
        service.drain()
        assert survivor.status is JobStatus.COMPLETED, survivor.error

    def test_crash_after_dispatch_preserves_the_finished_window(self):
        """Post-dispatch the records are final: a crash there is logged,
        never undone — the drain still reports the completed jobs and
        their receipts stand."""
        def hook(point):
            if point == "after_dispatch":
                raise RuntimeError("injected crash after the scan")

        service = make_service()
        service.loop.crash_hook = hook
        record = submit_one(service, table="t", seed=312)
        finished = service.drain()
        assert [r.job_id for r in finished] == [record.job_id]
        assert record.status is JobStatus.COMPLETED
        assert record.receipt is not None
        assert any("after_dispatch" in entry
                   for entry in service.loop.dispatch_errors)

    def test_claim_error_backs_off_and_recovers(self):
        """A raising claim_window must not kill the worker: the error is
        surfaced, the loop backs off, and once the claim heals the
        queued job still trains."""
        service = make_service()
        original = service.scheduler.claim_window
        failures = []

        def flaky_claim():
            if len(failures) < 2:
                failures.append(1)
                raise RuntimeError("injected claim failure")
            return original()

        service.scheduler.claim_window = flaky_claim
        record = submit_one(service, table="t", seed=313)
        service.drain()
        assert record.status is JobStatus.COMPLETED
        claim_entries = [entry for entry in service.loop.dispatch_errors
                         if "claim_window" in entry]
        assert len(claim_entries) == 2


class TestDegradedDurability:
    def test_unwritable_state_dir_degrades_to_in_memory(self, tmp_path):
        """A state_dir that cannot be created (here: nested under a
        regular file) must not kill the dispatch loop — the service
        warns once, flips to degraded, and keeps completing jobs."""
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory must go")
        service = TrainingService(
            scan_seed=5, workers=1, state_dir=blocker / "state"
        )
        service.register_table("t", X, Y)
        service.open_budget("alice", "t", 10.0)
        record = submit_one(service, table="t", seed=320)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            service.drain()
        assert record.status is JobStatus.COMPLETED
        degraded = [w for w in caught
                    if issubclass(w.category, RuntimeWarning)
                    and "not writable" in str(w.message)]
        assert degraded, "no degradation warning was raised"
        assert service.durability["mode"] == "degraded"
        assert "error" in service.durability
        # Degraded is sticky and silent: later windows neither warn
        # again nor try the disk again.
        later = submit_one(service, table="t", seed=321)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            service.drain()
        assert later.status is JobStatus.COMPLETED
        assert not [w for w in caught
                    if issubclass(w.category, RuntimeWarning)]
        assert not (blocker / "state").exists()

    def test_healthy_state_dir_reports_wal_mode(self, tmp_path):
        service = make_service(state_dir=tmp_path)
        assert service.durability["mode"] == "wal"
        submit_one(service, table="t", seed=322)
        service.drain()
        status = service.durability
        assert status["mode"] == "wal"
        assert status["wal_appends"] > 0
        assert status["wal_syncs"] > 0

    def test_no_state_dir_reports_in_memory(self):
        assert make_service().durability == {"mode": "in-memory"}
