"""The training service façade — the paper's engine as a multi-tenant server.

:class:`TrainingService` wires five service components around one
:class:`~repro.rdbms.bismarck.BismarckSession`:

* a **job model + queue** (:mod:`repro.service.jobs`),
* the **privacy-budget ledger** (:mod:`repro.service.ledger`),
* the **shared-scan scheduler** + cross-drain **result cache**
  (:mod:`repro.service.scheduler`),
* the **model registry / results store** (:mod:`repro.service.registry`),
* the **background dispatch loop** (:mod:`repro.service.worker`),

and exposes the tenant-facing verbs: register a table, grant a budget,
submit jobs, await results, query records. It is deliberately an
in-process server (no sockets): the contribution is the scheduling and
accounting discipline, and an RPC front-end can wrap these verbs without
touching them.

Async by default
----------------

``submit()`` returns immediately with a live
:class:`~repro.service.registry.JobRecord`; with the dispatch loop
running (:meth:`start`, or any CLI ``serve --workers N``), background
workers train the queue continuously and tenants block on
``record.wait()``. :meth:`drain` remains as the synchronous
compatibility wrapper — it starts the loop if needed, blocks until the
service is quiescent, stops what it started, and returns the records
that finished.

Workers overlap scans on *different* tables (per-table engine domains;
``parallel_scans=False`` restores the single global engine lock), so a
multi-table server parallelizes I/O, not just epilogues —
:attr:`peak_scan_overlap` reports how much overlap a workload actually
achieved. Scans of the same table still serialize, keeping every
dispatch's page accounting exact.

Durability
----------

Construct with ``state_dir=`` and the service keeps a crash-safe
**append-only write-ahead log** (:mod:`repro.service.wal`) there: every
admission, terminal record, and budget grant is logged, and the
per-window autosave merely fsyncs the log's tail — O(events this
window), never O(history). Every ``wal_compact_records`` log records,
the autosave **compacts**: it writes the full base snapshot
(``registry.json`` + ``accounts.json``, both atomic renames) and starts
a fresh log. A restarted service calls :meth:`load_state` (implicit in
``__init__`` when the files exist is deliberately avoided — tables must
be registered first) to resume by *snapshot + log replay*: prior
records, budgets reconciled by replaying committed receipts, the result
cache re-armed so resubmitted jobs cost 0 pages and 0 ε. A torn final
log record (the kill -9 signature) is truncated away; corruption
anywhere earlier refuses to load
(:class:`~repro.service.wal.WalCorruption`, fail-closed). If the state
directory turns out not to be writable, the service warns once and
degrades to in-memory serving instead of killing the dispatch loop.

>>> service = TrainingService(workers=4)
>>> service.register_table("ratings", X, y)
>>> service.open_budget("alice", "ratings", epsilon=1.0)
>>> service.start()
>>> record = service.submit("alice", "ratings", LogisticLoss(1e-3),
...                         epsilon=0.1, passes=5, batch_size=50, seed=7)
>>> record.wait()          # never blocks other submitters
>>> service.model(record.job_id)  # the differentially private release
>>> service.stop()
"""

from __future__ import annotations

import json
import pathlib
import threading
import warnings
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.bolton import BoltOnCandidate
from repro.obs import metrics as obs_metrics
from repro.obs.trace import JobTrace
from repro.optim.losses import Loss
from repro.rdbms.bismarck import BismarckSession
from repro.rdbms.catalog import TableInfo
from repro.rdbms.cost_model import CostModel
from repro.rdbms.storage import SQLiteHeapFile
from repro.service.jobs import JobStatus, TrainingJob
from repro.service.ledger import AccountStatement, PrivacyBudgetLedger
from repro.service.registry import (
    TERMINAL_STATUS_VALUES,
    JobRecord,
    ModelRegistry,
    record_from_payload,
    snapshot_payloads,
)
from repro.service.scheduler import SharedScanScheduler
from repro.service.wal import WalCorruption, WriteAheadLog
from repro.service.worker import DispatchLoop

#: File names inside ``state_dir``.
REGISTRY_STATE = "registry.json"
ACCOUNTS_STATE = "accounts.json"
WAL_STATE = "receipts.wal"


class TrainingService:
    """An in-process, multi-tenant private-SGD training service."""

    def __init__(
        self,
        *,
        buffer_pool_pages: int = 65536,
        batching_window: int = 32,
        chunk_size: int = 256,
        fuse: bool = True,
        scan_seed: int = 0,
        workers: int = 1,
        parallel_scans: bool = True,
        elevator: bool = False,
        cache_size: Optional[int] = None,
        state_dir: Optional[Union[str, pathlib.Path]] = None,
        wal_compact_records: int = 256,
        scan_retries: int = 2,
        cost_model: Optional[CostModel] = None,
        session: Optional[BismarckSession] = None,
        metrics: Optional[obs_metrics.MetricsRegistry] = None,
        metrics_file: Optional[Union[str, pathlib.Path]] = None,
        max_terminal_records: Optional[int] = None,
    ) -> None:
        self.session = (
            session
            if session is not None
            else BismarckSession(buffer_pool_pages, cost_model)
        )
        #: The service's telemetry registry. Always on by default (the
        #: instrumentation budget is <=5% of drain wall-clock, gated in
        #: CI); pass ``obs.disabled()`` for the zero-cost twin.
        self.metrics_registry = (
            metrics if metrics is not None else obs_metrics.MetricsRegistry()
        )
        self.metrics_file = (
            None if metrics_file is None else pathlib.Path(metrics_file)
        )
        self._metrics_dump_failed = False
        self._metrics_dump_lock = threading.Lock()
        self.ledger = PrivacyBudgetLedger()
        self.registry = ModelRegistry(max_terminal_records=max_terminal_records)
        self.scheduler = SharedScanScheduler(
            self.session,
            self.ledger,
            self.registry,
            batching_window=batching_window,
            chunk_size=chunk_size,
            fuse=fuse,
            scan_seed=scan_seed,
            parallel_scans=parallel_scans,
            elevator=elevator,
            cache_size=cache_size,
            scan_retries=scan_retries,
            metrics=self.metrics_registry,
        )
        self.state_dir = None if state_dir is None else pathlib.Path(state_dir)
        if wal_compact_records < 1:
            raise ValueError(
                f"wal_compact_records must be positive, got {wal_compact_records}"
            )
        self.wal_compact_records = int(wal_compact_records)
        #: The append-only receipt log (None without a state_dir). Event
        #: hooks are wired immediately — appends only buffer in memory —
        #: but the log touches disk no earlier than the first autosave.
        self.wal: Optional[WriteAheadLog] = None
        self._wal_ready = False
        self._state_loaded = False
        self._durability_degraded = False
        self._durability_error = ""
        self._wal_sync_seconds = self.metrics_registry.histogram(
            "repro_wal_sync_seconds",
            "Write-ahead log sync (drain + fsync) latency.",
        )
        self._wal_compaction_seconds = self.metrics_registry.histogram(
            "repro_wal_compaction_seconds",
            "Write-ahead log compaction (fresh-generation reset) latency.",
        )
        if self.state_dir is not None:
            self.wal = WriteAheadLog(self.state_dir / WAL_STATE)
            self.wal.observer = self._observe_wal
            self.registry.journal = self.wal.append
            self.ledger.on_grant = self._journal_grant
        self.metrics_registry.add_collector(self._sample_metrics)
        self.loop = DispatchLoop(
            self.scheduler,
            workers=workers,
            autosave=(
                self._autosave_window
                if self.state_dir is not None or self.metrics_file is not None
                else None
            ),
            metrics=self.metrics_registry,
        )
        self._submissions = 0
        self._stamp_lock = threading.Lock()
        self._save_lock = threading.Lock()
        # Serializes whole drain() calls: concurrent drains would race
        # each other's loop start/stop (the first finisher stopping the
        # loop could strand the second in wait_quiescent forever).
        self._drain_lock = threading.Lock()
        self._drain_offset = 0

    # -- data & budget administration -------------------------------------------

    def register_table(
        self,
        name: str,
        features: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
        *,
        backend: str = "memory",
        path=None,
        heap=None,
    ) -> TableInfo:
        """CREATE TABLE + COPY a dataset tenants may train against.

        ``backend="memory"`` (the default) materializes the arrays into
        an in-process heap. ``backend="sqlite"`` puts real storage under
        the engine: with arrays, they are bulk-loaded into a fresh
        SQLite-WAL heap at ``path``; without arrays, an existing heap
        database at ``path`` is opened as-is. ``heap=`` registers an
        already-built heap file object (e.g. a synthesized virtual one)
        as-is, instead of arrays or a backend. Either way the table
        rides the same buffer pool, fused scans, and result cache —
        releases are bitwise-identical across backends, and the cache
        key (a content fingerprint) is backend-invariant, so a job
        cached from the in-memory copy is served to a resubmission
        against the SQLite copy of the same data.
        """
        if heap is not None:
            if features is not None or labels is not None or path is not None:
                raise ValueError(
                    "heap= registers the given heap object as-is; do not "
                    "also pass features/labels or path"
                )
            info = self.session.register_table(name, heap)
        elif backend == "memory":
            if features is None or labels is None:
                raise ValueError("backend='memory' requires features and labels")
            info = self.session.load_table(name, features, labels)
        elif backend == "sqlite":
            if path is None:
                raise ValueError("backend='sqlite' requires path=")
            if features is not None or labels is not None:
                if features is None or labels is None:
                    raise ValueError("provide both features and labels, or neither")
                heap = SQLiteHeapFile.bulk_load(path, features, labels)
            else:
                heap = SQLiteHeapFile(path)
            info = self.session.register_table(name, heap)
        else:
            raise ValueError(f"unknown table backend {backend!r}")
        self._arm_cache(name)
        return info

    def register_heap(self, name: str, heap) -> TableInfo:
        """Deprecated alias for :meth:`register_table` with ``heap=``."""
        warnings.warn(
            "TrainingService.register_heap is deprecated; use "
            "register_table(name, heap=heap)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.register_table(name, heap=heap)

    def open_budget(
        self, principal: str, table: str, epsilon: float, delta: float = 0.0
    ) -> None:
        """Grant ``principal`` an (ε, δ) cap on ``table``."""
        self.ledger.open_account(principal, table, epsilon, delta)

    def budgets(self) -> List[AccountStatement]:
        """Every account's cap/spent/reserved snapshot."""
        return self.ledger.statements()

    def invalidate_fingerprint(self, table_name: str) -> None:
        """Tell the service a registered heap's *contents* changed.

        The scheduler memoizes each table's content fingerprint (the
        "same data" half of every result-cache key). Re-registration
        invalidates automatically, and drop-and-recreate is caught by
        the memo's heap-identity check — but a caller mutating a
        registered heap's arrays **in place** must call this, or cached
        weights trained on the old contents could be served for the new
        ones. The next submit/release re-hashes the table.
        """
        self.scheduler.invalidate_fingerprint(table_name)

    # -- the tenant verbs --------------------------------------------------------

    def submit(
        self,
        principal: str,
        table: str,
        loss: Loss,
        *,
        epsilon: float,
        delta: float = 0.0,
        passes: int = 1,
        batch_size: int = 50,
        eta: Optional[float] = None,
        radius: Optional[float] = None,
        priority: int = 0,
        seed: int = 0,
    ) -> JobRecord:
        """Build, stamp, and admit one job; returns its (live) record.

        The returned record already reflects admission: status QUEUED
        with the budget reserved, COMPLETED instantly when the result
        cache recognizes the job (dispatch ``"cached"``, 0 pages, 0 ε),
        or REJECTED (over budget / no account) with nothing charged and
        no data touched. Never blocks on a scan — await training with
        ``record.wait()`` or :meth:`drain`. (Iterate averaging is not
        offered: the in-RDBMS dispatch releases the final iterate, and
        the scheduler refuses candidates that ask otherwise.)
        """
        candidate = BoltOnCandidate(
            loss=loss,
            passes=passes,
            batch_size=batch_size,
            eta=eta,
            radius=radius,
        )
        return self.submit_job(
            TrainingJob(
                principal=principal,
                table=table,
                candidate=candidate,
                epsilon=epsilon,
                delta=delta,
                priority=priority,
                seed=seed,
            )
        )

    def submit_job(self, job: TrainingJob) -> JobRecord:
        """Stamp (job id + arrival tick) and admit a prebuilt job."""
        with self._stamp_lock:
            self._submissions += 1
            job.job_id = job.job_id or f"job-{self._submissions:05d}"
            job.arrival = self._submissions
        record = self.scheduler.submit(job)
        if self.loop.running:
            self.loop.wake()
        return record

    def start(self) -> "TrainingService":
        """Start the background dispatch loop (the long-lived server mode)."""
        self.loop.start()
        return self

    def stop(self) -> None:
        """Stop the dispatch loop. Queued jobs stay queued for the next
        start/drain within this process; they are NOT durable across a
        restart (a loaded snapshot marks them FAILED/interrupted)."""
        self.loop.stop()

    def drain(self, timeout: Optional[float] = None) -> List[JobRecord]:
        """Run every queued job to a terminal state; returns them.

        Compatibility wrapper over the dispatch loop: starts it if it is
        not already running, blocks until the service is quiescent (no
        queued jobs, no window in flight), stops what it started, and
        returns the records that reached a terminal state since the
        previous drain — the same contract the synchronous PR 3 drain
        had, now backed by worker threads.

        ``timeout`` bounds the *quiescence wait* only: on expiry a
        TimeoutError is raised, but if this call started the loop, the
        stop in its cleanup still joins the workers — i.e. an in-flight
        scan runs to completion before the error reaches the caller
        (scans are not cancellable mid-epoch).
        """
        with self._drain_lock:
            started_here = not self.loop.running
            if started_here:
                self.loop.start()
            self.loop.wake()
            try:
                if not self.loop.wait_quiescent(timeout):
                    if self.loop.stopping or not self.loop.running:
                        raise RuntimeError(
                            "drain interrupted: the dispatch loop was "
                            "stopped while jobs were still pending"
                        )
                    raise TimeoutError(f"drain did not quiesce within {timeout}s")
            finally:
                if started_here:
                    self.loop.stop()
            finished = self.loop.finished[self._drain_offset:]
            # Advance by what was actually returned — a worker may append
            # between the slice and this line (continuous mode), and those
            # records belong to the NEXT drain, not the void.
            self._drain_offset += len(finished)
        return list(finished)

    def cancel(self, job_id: str) -> bool:
        """Cancel a job that is still QUEUED (or aboard a not-yet-admitted
        elevator flight): its reservation is refunded in full and the
        record goes terminal CANCELLED with zero pages and zero ε spent.
        Returns ``False`` once a worker has claimed the job — a running
        scan is not cancellable mid-epoch (the page reads and the budget
        commit happen atomically at window end; killing it halfway would
        forfeit determinism for no refund). Raises ``KeyError`` for an
        unknown job id."""
        return self.scheduler.cancel(job_id)

    # -- observability -----------------------------------------------------------

    def health(self) -> Dict[str, object]:
        """The liveness/readiness snapshot ``GET /v1/healthz`` renders:
        durability mode (plus WAL counters), queue depth (total and
        per-table), the dispatch loop's worker count and running flag,
        and the registry's status histogram. Cheap by design — counters
        and dict walks only, no scans, no disk."""
        depths = self.scheduler.queue_depths()
        return {
            "status": "ok",
            "durability": self.durability,
            "queue_depth": sum(depths.values()),
            "queue_depths": depths,
            "workers": self.loop.workers,
            "dispatch_running": self.loop.running,
            "jobs": self.registry.counts(),
        }

    def trace(self, job_id: str) -> JobTrace:
        """The lifecycle trace of one job: monotonic-clock spans from
        admission through commit (``admit``, ``queued``, ``claim``,
        ``scan``, ``epilogue``, ``commit``), plus a live-only trailing
        ``wal_sync`` span once the window's autosave made the record
        durable. Raises ``KeyError`` for an unknown job id."""
        return self.registry.get(job_id).trace

    def metrics(self, format: str = "prometheus") -> Union[str, dict]:
        """Render the service's metrics: the Prometheus text exposition
        (``format="prometheus"``) or a JSON-native dump
        (``format="json"``). Rendering runs the sampling collectors, so
        pool/ledger/registry gauges reflect this instant."""
        if format == "prometheus":
            return self.metrics_registry.render_prometheus()
        if format == "json":
            return self.metrics_registry.render_json()
        raise ValueError(
            f"unknown metrics format {format!r}: use 'prometheus' or 'json'"
        )

    def _observe_wal(self, kind: str, seconds: float) -> None:
        """The write-ahead log's latency observer (fires outside its lock)."""
        if kind == "sync":
            self._wal_sync_seconds.observe(seconds)
        else:
            self._wal_compaction_seconds.observe(seconds)

    def _sample_metrics(self) -> None:
        """The render-time collector: fold ground truth the service does
        not event-instrument — registry counts, queue depths, per-heap
        pool counters, ledger statements, cache and WAL totals — into
        gauges/counters. Runs only when someone renders the metrics, so
        none of this costs the hot path anything."""
        reg = self.metrics_registry
        jobs = reg.gauge(
            "repro_registry_jobs", "Jobs in the registry by status.", ("status",)
        )
        for status, count in self.registry.counts().items():
            jobs.set(count, status=status)
        reg.gauge(
            "repro_scan_overlap_peak",
            "Most scans on distinct tables ever in flight at once.",
        ).set(self.scheduler.peak_overlap)
        table_scans = reg.counter(
            "repro_table_scans_total",
            "Scans dispatched per table (one fused group = one scan).",
            ("table",),
        )
        for name, count in self.scheduler.table_scans.items():
            table_scans.set_total(count, table=name)
        reg.counter(
            "repro_scan_groups_total",
            "Dispatched scan groups (fused windows, elevator flights, "
            "or single sequential jobs).",
        ).set_total(len(self.scheduler.dispatch_log))
        depth = reg.gauge(
            "repro_queue_depth", "Queued jobs per table right now.", ("table",)
        )
        depth.clear()  # tables drained since the last sample must read 0
        for name, queued in self.scheduler.queue_depths().items():
            depth.set(queued, table=name)
        cache = self.scheduler.cache
        reg.counter(
            "repro_cache_hits_total", "Result-cache hits (0 pages, 0 eps each)."
        ).set_total(cache.hits)
        reg.counter(
            "repro_cache_misses_total", "Result-cache misses."
        ).set_total(cache.misses)
        reg.counter(
            "repro_cache_evictions_total", "Result-cache LRU evictions."
        ).set_total(cache.evictions)
        reg.counter(
            "repro_registry_weights_evicted_total",
            "Terminal records whose weights the retention cap dropped.",
        ).set_total(self.registry.weights_evicted_total)
        pool_reads = reg.gauge(
            "repro_pool_page_reads", "Buffer-pool page requests.", ("table",)
        )
        pool_hits = reg.gauge(
            "repro_pool_cache_hits", "Buffer-pool cache hits.", ("table",)
        )
        pool_misses = reg.gauge(
            "repro_pool_cache_misses", "Buffer-pool cache misses.", ("table",)
        )
        pool_evictions = reg.gauge(
            "repro_pool_evictions", "Buffer-pool page evictions.", ("table",)
        )
        for name, stats in self.session.table_stats().items():
            pool_reads.set(stats.page_reads, table=name)
            pool_hits.set(stats.cache_hits, table=name)
            pool_misses.set(stats.cache_misses, table=name)
            pool_evictions.set(stats.evictions, table=name)
        account_labels = ("principal", "table")
        eps_cap = reg.gauge(
            "repro_ledger_epsilon_cap", "Granted epsilon cap.", account_labels
        )
        eps_spent = reg.gauge(
            "repro_ledger_epsilon_spent", "Committed epsilon.", account_labels
        )
        eps_reserved = reg.gauge(
            "repro_ledger_epsilon_reserved",
            "Epsilon held by in-flight reservations.",
            account_labels,
        )
        delta_cap = reg.gauge(
            "repro_ledger_delta_cap", "Granted delta cap.", account_labels
        )
        delta_spent = reg.gauge(
            "repro_ledger_delta_spent", "Committed delta.", account_labels
        )
        for statement in self.ledger.statements():
            labels = {
                "principal": statement.principal,
                "table": statement.table,
            }
            eps_cap.set(statement.cap.epsilon, **labels)
            eps_spent.set(statement.spent[0], **labels)
            eps_reserved.set(statement.reserved[0], **labels)
            delta_cap.set(statement.cap.delta, **labels)
            delta_spent.set(statement.spent[1], **labels)
        reg.counter(
            "repro_ledger_reserve_grants_total", "Reservations granted."
        ).set_total(self.ledger.reserve_grants)
        reg.counter(
            "repro_ledger_reserve_denials_total",
            "Reservations denied at admission (over cap or no account).",
        ).set_total(self.ledger.reserve_denials)
        reg.counter(
            "repro_ledger_commits_total", "Reservations committed."
        ).set_total(self.ledger.commit_count)
        reg.counter(
            "repro_ledger_refunds_total", "Reservations refunded in full."
        ).set_total(self.ledger.refund_count)
        reg.counter(
            "repro_wal_syncs_total", "Write-ahead log sync calls."
        ).set_total(self.wal.syncs if self.wal is not None else 0)
        reg.counter(
            "repro_wal_compactions_total",
            "Write-ahead log compactions (fresh generations).",
        ).set_total(self.wal.resets if self.wal is not None else 0)

    def _dump_metrics(self) -> None:
        """Refresh the on-disk metrics dump (atomic tmp + rename). The
        file's suffix picks the format: ``.json`` dumps the JSON
        document, anything else the Prometheus text exposition. Dumps
        serialize on their own lock — concurrent worker autosaves must
        not race each other's tmp file. A write
        failure warns once and stops dumping — telemetry export must
        never take the dispatch loop down."""
        if self.metrics_file is None or self._metrics_dump_failed:
            return
        try:
            if self.metrics_file.suffix == ".json":
                text = (
                    json.dumps(
                        self.metrics(format="json"), indent=1, sort_keys=True
                    )
                    + "\n"
                )
            else:
                text = self.metrics(format="prometheus")
            tmp = self.metrics_file.with_name(self.metrics_file.name + ".tmp")
            with self._metrics_dump_lock:
                if self._metrics_dump_failed:
                    return
                self.metrics_file.parent.mkdir(parents=True, exist_ok=True)
                tmp.write_text(text)
                tmp.replace(self.metrics_file)
        except OSError as error:
            self._metrics_dump_failed = True
            warnings.warn(
                f"metrics file {self.metrics_file} is not writable "
                f"({error}); the service stops exporting dumps but keeps "
                "serving (metrics stay queryable in-process)",
                RuntimeWarning,
                stacklevel=2,
            )

    # -- durability --------------------------------------------------------------

    def save_state(
        self, directory: Optional[Union[str, pathlib.Path]] = None
    ) -> pathlib.Path:
        """Write a full base snapshot of registry + account caps into
        ``directory`` (defaults to the service's ``state_dir``). When the
        target is the service's own state directory, the write-ahead log
        is reset to a fresh generation in the same breath — the snapshot
        *is* the compaction of everything logged so far. The per-window
        autosave calls this only at compaction points; between them it
        appends to the log (O(1) per window)."""
        directory = pathlib.Path(directory) if directory else self.state_dir
        if directory is None:
            raise ValueError("no state directory: pass one or set state_dir=")
        with self._save_lock:
            self._write_snapshot(directory)
            if (
                self.wal is not None
                and not self._durability_degraded
                and directory == self.state_dir
            ):
                self.wal.reset()
                self._wal_ready = True
        return directory

    def _write_snapshot(self, directory: pathlib.Path) -> None:
        """The base snapshot files (caller holds ``_save_lock``)."""
        directory.mkdir(parents=True, exist_ok=True)
        # Accounts first: each file replaces atomically, but a crash
        # *between* the two must leave a loadable pair. New caps with
        # an older registry is harmless (grants without receipts); a
        # new registry whose receipts name accounts the caps file has
        # not heard of would make reconcile refuse the whole restore.
        accounts_path = directory / ACCOUNTS_STATE
        tmp = accounts_path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(self.ledger.caps_payload(), indent=1, sort_keys=True)
            + "\n"
        )
        tmp.replace(accounts_path)
        self.registry.snapshot(directory / REGISTRY_STATE)

    def _autosave_window(self) -> None:
        """The dispatch loop's per-window durability hook.

        Steady state is an O(1) log sync: flush + fsync the events the
        window appended. Every ``wal_compact_records`` records the log
        is folded into the base snapshot and restarted. The very first
        disk contact decides the mode: a directory this service
        ``load_state``-ed from appends to its existing log; any other
        pre-existing state is *replaced* (snapshot + fresh log — the
        overwrite semantics ``save_state`` always had, so a foreign
        log's history is never merged into this service's). A write
        failure degrades to in-memory serving instead of killing the
        loop. With ``metrics_file=`` set, each window also refreshes the
        on-disk metrics dump (independently of durability — an
        in-memory-only service can still export telemetry).
        """
        if (
            self.state_dir is not None
            and self.wal is not None
            and not self._durability_degraded
        ):
            try:
                with self._save_lock:
                    if not self._wal_ready:
                        self.state_dir.mkdir(parents=True, exist_ok=True)
                        if self._state_loaded:
                            self.wal.open()
                        else:
                            self._write_snapshot(self.state_dir)
                            self.wal.reset()
                        self._wal_ready = True
                    elif self.wal.records_since_reset >= self.wal_compact_records:
                        self._write_snapshot(self.state_dir)
                        self.wal.reset()
                    else:
                        self.wal.sync()
            except OSError as error:
                self._degrade_durability(error)
        self._dump_metrics()

    def _journal_grant(
        self, principal: str, table: str, epsilon: float, delta: float
    ) -> None:
        """The ledger's grant observer → one WAL event per new account."""
        if self.wal is not None:
            self.wal.append(
                {
                    "event": "grant",
                    "principal": principal,
                    "table": table,
                    "epsilon": epsilon,
                    "delta": delta,
                }
            )

    def _degrade_durability(self, error: OSError) -> None:
        """State_dir is not writable: warn once, detach the event hooks,
        and keep serving from memory — a durability failure must never
        take the dispatch loop down with it."""
        self._durability_degraded = True
        self._durability_error = f"{type(error).__name__}: {error}"
        self.registry.journal = None
        self.ledger.on_grant = None
        if self.wal is not None:
            try:
                self.wal.close()
            except Exception:
                pass
        warnings.warn(
            f"state_dir {self.state_dir} is not writable ({error}); the "
            "service continues in-memory only — results and budgets will "
            "NOT survive a restart",
            RuntimeWarning,
            stacklevel=2,
        )

    @property
    def durability(self) -> Dict[str, object]:
        """Operator-facing durability status: the serving mode plus the
        write-ahead log's append/sync/compaction counters."""
        if self.state_dir is None:
            return {"mode": "in-memory"}
        status: Dict[str, object] = {
            "mode": "degraded" if self._durability_degraded else "wal",
            "state_dir": str(self.state_dir),
            "wal_records": self.wal.records_since_reset if self.wal else 0,
            "wal_appends": self.wal.appends if self.wal else 0,
            "wal_syncs": self.wal.syncs if self.wal else 0,
            "compactions": self.wal.resets if self.wal else 0,
        }
        if self._durability_degraded:
            status["error"] = self._durability_error
        return status

    def load_state(
        self, directory: Optional[Union[str, pathlib.Path]] = None
    ) -> int:
        """Resume from a snapshot + write-ahead log replay: prior
        records, reconciled budgets, armed result cache. Returns the
        number of records loaded.

        The base snapshot (when one exists — a service killed before its
        first compaction leaves only the log) is merged with the log's
        events: an ``admit`` event introduces a job the snapshot never
        saw (it loads FAILED/interrupted — in-flight work is not durable
        and is never charged), a ``record`` event carries a job's final
        payload and *overrides* a snapshot entry that still shows the job
        in flight (the completion landed after the snapshot was cut), and
        ``grant`` events re-open accounts the caps file missed. Committed
        receipts then replay through the accountant's own validation
        (idempotently — an event logged both before and after a
        compaction applies once), so the restored service enforces
        ``spent + reserved <= cap`` exactly where the original would
        have. A torn final log record is truncated; mid-log corruption
        or an unknown event kind refuses to load (fail-closed).

        Table registration and ``load_state()`` may happen in either
        order: cache entries are keyed by each record's stored data
        fingerprint, so they only ever match a table whose registered
        contents are the ones the weights were trained on.
        """
        directory = pathlib.Path(directory) if directory else self.state_dir
        if directory is None:
            raise ValueError("no state directory: pass one or set state_dir=")
        registry_path = directory / REGISTRY_STATE
        wal_path = directory / WAL_STATE
        base_payloads = (
            snapshot_payloads(registry_path) if registry_path.exists() else []
        )
        events = WriteAheadLog.replay(wal_path)
        accounts_path = directory / ACCOUNTS_STATE
        caps = (
            json.loads(accounts_path.read_text()) if accounts_path.exists() else []
        )
        payloads: Dict[str, dict] = {}
        order: List[str] = []
        for payload in base_payloads:
            job_id = payload["job"]["job_id"]
            payloads[job_id] = payload
            order.append(job_id)
        grant_caps: List[dict] = []
        for event in events:
            kind = event.get("event")
            if kind in ("admit", "record"):
                payload = event["record"]
                job_id = payload["job"]["job_id"]
                existing = payloads.get(job_id)
                if existing is None:
                    payloads[job_id] = payload
                    order.append(job_id)
                elif (
                    kind == "record"
                    and existing["status"] not in TERMINAL_STATUS_VALUES
                ):
                    # The snapshot caught the job mid-flight; its logged
                    # terminal payload is the truth. (A terminal snapshot
                    # entry is never overridden — stale tail events from
                    # a crash between snapshot and log reset replay as
                    # no-ops.)
                    payloads[job_id] = payload
            elif kind == "grant":
                grant_caps.append(
                    {
                        "principal": event["principal"],
                        "table": event["table"],
                        "epsilon": event["epsilon"],
                        "delta": event["delta"],
                    }
                )
            else:
                raise WalCorruption(
                    f"{wal_path} carries an event of unknown kind {kind!r}; "
                    "refusing to load a log this service version cannot replay"
                )
        if not payloads and not caps and not grant_caps:
            return 0
        records = [record_from_payload(payloads[job_id]) for job_id in order]
        # Validate before mutating anything: loading a snapshot over a
        # registry that already holds any of its jobs must fail whole,
        # not halfway through with the ledger already replayed.
        duplicates = [
            record.job_id for record in records if record.job_id in self.registry
        ]
        if duplicates:
            raise ValueError(
                f"cannot load {registry_path}: jobs already live in this "
                f"service's registry (first: {duplicates[0]!r}); load "
                "snapshots into a fresh service"
            )
        if caps:
            self.ledger.restore_caps(caps)
        if grant_caps:
            self.ledger.restore_caps(grant_caps)
        self.ledger.reconcile(
            [record.receipt for record in records if record.receipt is not None]
        )
        for record in records:
            self.registry.add(record)
        with self._stamp_lock:
            self._submissions = max(self._submissions, self.registry.max_stamp())
        # Re-arm the cache. Keys come from each record's stored
        # provenance (table fingerprint + scan seed), so this needs no
        # table registration and can never serve since-changed data:
        # an entry only matches once a table with the same fingerprint
        # is registered and submitted against.
        for record in records:
            self.scheduler.prime_cache(record)
        if directory == self.state_dir:
            self._state_loaded = True
        return len(records)

    def _arm_cache(self, table_name: str) -> None:
        """Pay the one-off table fingerprint scan here, at registration —
        never inside a tenant's ``submit()`` — and prime the result cache
        from any completed records on ``table_name`` (a no-op unless a
        snapshot was loaded before the table existed). Registration is a
        content-mutation surface (the name may have carried different
        data before), so the fingerprint memo is invalidated first."""
        self.scheduler.invalidate_fingerprint(table_name)
        self.scheduler.fingerprint_table(table_name)
        for record in self.registry.jobs(
            table=table_name, status=JobStatus.COMPLETED
        ):
            self.scheduler.prime_cache(record)

    # -- queries -----------------------------------------------------------------

    def status(self, job_id: str) -> JobStatus:
        """One job's current :class:`JobStatus` (raises on unknown ids)."""
        return self.registry.status(job_id)

    def result(self, job_id: str) -> JobRecord:
        """One job's full :class:`JobRecord` — status, released weights,
        receipt, dispatch provenance, and lifecycle trace."""
        return self.registry.get(job_id)

    def model(self, job_id: str) -> np.ndarray:
        """The differentially private weights of a completed job."""
        return self.registry.model(job_id)

    def jobs(self, **filters) -> List[JobRecord]:
        """Registry query passthrough (principal= / table= / status=)."""
        return self.registry.jobs(**filters)

    @property
    def page_reads(self) -> int:
        """Total page requests the service has made (all scans)."""
        return self.session.pool.stats.page_reads

    @property
    def peak_scan_overlap(self) -> int:
        """The most scans on *distinct* tables ever in flight at once
        (1 = fully serialized; capped by min(workers, tables))."""
        return self.scheduler.peak_overlap

    def table_scan_counts(self) -> dict:
        """Scans dispatched per table (one fused group = one scan)."""
        return dict(self.scheduler.table_scans)
