"""Drivers for the paper's tables (2, 3 and 4)."""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.core.convergence import (
    table2_rate_bst14_convex,
    table2_rate_bst14_strongly_convex,
    table2_rate_ours_convex,
    table2_rate_ours_strongly_convex,
)
from repro.data.registry import table3_rows
from repro.optim.losses import LossProperties


def table2_rows(
    sizes: Sequence[int] = (1_000, 10_000, 100_000, 1_000_000),
    dimension: int = 50,
) -> List[dict]:
    """Table 2 rendered numerically: the (ε,δ)-DP rates at concrete m, d.

    The paper states the asymptotic forms; evaluating them shows the
    advantage factors (log^{3/2} m convex, sqrt(d) log m strongly convex)
    explicitly.
    """
    rows = []
    for m in sizes:
        rows.append(
            {
                "m": m,
                "d": dimension,
                "ours_convex": table2_rate_ours_convex(m, dimension),
                "bst14_convex": table2_rate_bst14_convex(m, dimension),
                "convex_advantage": table2_rate_bst14_convex(m, dimension)
                / table2_rate_ours_convex(m, dimension),
                "ours_sc": table2_rate_ours_strongly_convex(m, dimension),
                "bst14_sc": table2_rate_bst14_strongly_convex(m, dimension),
                "sc_advantage": table2_rate_bst14_strongly_convex(m, dimension)
                / table2_rate_ours_strongly_convex(m, dimension),
                "expected_convex_advantage": math.log(m) ** 1.5,
                "expected_sc_advantage": math.sqrt(dimension) * math.log(m),
            }
        )
    return rows


def table3() -> List[dict]:
    """Table 3 verbatim from the registry."""
    return table3_rows()


def table4_rows(m: int, properties: LossProperties) -> List[dict]:
    """Table 4: the step-size formula each (algorithm, scenario) cell uses,
    with the concrete values resolved for a given dataset size and loss."""
    beta = properties.smoothness
    gamma = properties.strong_convexity
    rows = [
        {
            "scenario": "Convex + eps-DP",
            "noiseless": f"1/sqrt(m) = {1.0 / math.sqrt(m):.3g}",
            "ours": f"1/sqrt(m) = {1.0 / math.sqrt(m):.3g}",
            "scs13": "1/sqrt(t)",
            "bst14": "x (unsupported)",
        },
        {
            "scenario": "Convex + (eps,delta)-DP",
            "noiseless": f"1/sqrt(m) = {1.0 / math.sqrt(m):.3g}",
            "ours": f"1/sqrt(m) = {1.0 / math.sqrt(m):.3g}",
            "scs13": "1/sqrt(t)",
            "bst14": "Alg. 4: 2R/(G sqrt(t))",
        },
    ]
    if gamma > 0:
        rows.extend(
            [
                {
                    "scenario": "Strongly Convex + eps-DP",
                    "noiseless": f"1/(gamma t), gamma = {gamma:.3g}",
                    "ours": f"min(1/beta, 1/(gamma t)), beta = {beta:.3g}",
                    "scs13": "1/sqrt(t)",
                    "bst14": "x (unsupported)",
                },
                {
                    "scenario": "Strongly Convex + (eps,delta)-DP",
                    "noiseless": f"1/(gamma t), gamma = {gamma:.3g}",
                    "ours": f"min(1/beta, 1/(gamma t)), beta = {beta:.3g}",
                    "scs13": "1/sqrt(t)",
                    "bst14": "Alg. 5: 1/(gamma t)",
                },
            ]
        )
    return rows
