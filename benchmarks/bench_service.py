"""Service-level benchmark: fused vs sequential dispatch, sync vs async.

The shared-scan scheduler's win is I/O amortization: a window of K
compatible jobs costs one job's page requests instead of K. This bench
measures that on the standard service shape — **32 concurrent jobs on
one table** — plus wall-clock jobs/sec for both dispatch modes, and it
gates CI on the structural claim:

* ``python benchmarks/bench_service.py --gate`` **exits 1 unless the
  fused dispatch makes at least 3x fewer page requests** than the
  sequential dispatch for the same 32-job workload (the measured ratio
  is 32x: one shared scan vs 32 scans), and unless every fused job's
  weights are bitwise-identical to its sequential twin's.

* ``--async`` benchmarks the background dispatch loop: submit latency
  (admission only — never blocks on a scan) vs drain throughput with
  4 workers, plus the cross-drain result cache (resubmitting the whole
  workload must cost 0 pages and return bitwise-identical weights).

* ``--parallel`` benchmarks **per-table engine domains**: the same
  2-table workload on 2 workers, with each table's heap wrapped in a
  :class:`~repro.rdbms.storage.LatencyHeapFile` (page fetches cost real,
  GIL-releasing wall-clock — the disk regime) and an undersized buffer
  pool so every scan pays I/O. The gate **exits 1 unless the per-table
  configuration is >= 1.5x faster wall-clock than the global-engine-lock
  configuration** (``parallel_scans=False``), unless every job's weights
  are bitwise-identical to the synchronous 1-worker drain, and unless
  every job's recorded page count equals its solo run's — cross-table
  concurrency must be invisible to everything but the clock.

* ``--cursor`` benchmarks **elevator (shared-cursor) boarding** against
  window-boundary batching on a sustained-arrival workload: late jobs
  with mixed batch sizes arrive while the opener's scan is mid-flight
  (held there by a gated loss, so the scenario is deterministic). The
  gate **exits 1 unless boarding is >= 1.5x cheaper on page requests**,
  unless every late job really boarded (``boarding_offset > 0``), and
  unless every boarded release is bitwise-identical to its solo
  ``run_sgd(start_offset=...)`` reference.

* ``--observability`` benchmarks the telemetry layer's cost: the same
  fused drain with the live metrics registry + traces vs
  ``obs.disabled()`` (the no-op twin), best-of-3 alternating runs. The
  gate **exits 1 unless the instrumented drain is within 5% wall-clock
  of the disabled one** and its weights are bitwise-identical —
  telemetry reads clocks and counters only, never the training path.
  With ``--report`` it also writes ``metrics-dump.prom`` /
  ``metrics-dump.json`` next to the report (the CI artifact).

* ``--disk`` re-proves the shared-scan claims on **real storage**: the
  bench table bulk-loaded into a SQLite-WAL heap file, so every pool
  miss is an actual database read. The gate **exits 1 unless fused
  dispatch still makes >= 3x fewer page requests than sequential on
  real I/O**, unless fused == sequential bitwise on the SQLite backend,
  and unless the SQLite-backed release is bitwise-identical (atol=0) to
  the in-memory release — storage must be invisible to the weights. A
  warm-pool vs cold-pool full-table sweep is printed as a note.

* ``--queue`` prints the submit-latency note at 10^4 queued jobs (p50 /
  p99 / max) — informational, recording the insert-sorted queue's
  admission-lock cost; it never gates.

* ``--http`` benchmarks the ``repro-api/v1`` front-end against the
  in-process verbs on twin services: per-submit latency through a live
  socket (stdlib ``ThreadingHTTPServer`` + ``urllib`` client) and
  end-to-end jobs/sec with workers draining behind both transports.
  The gate **exits 1 unless HTTP submit p99 <= 50 ms**, unless
  HTTP-side sustained throughput is **>= 0.5x the in-process twin's**,
  and unless every HTTP-submitted release is bitwise-identical to its
  in-process twin. The full shape adds the 10^4-queued-jobs HTTP
  submit-latency note (informational, mirrors ``--queue``).

* ``--durability`` prints the per-window autosave scaling note: one
  window's append-only log events (append + fsync) vs a full registry
  snapshot, at growing history sizes — the WAL rewrite's O(1)-per-window
  claim, made measurable. Informational, never gates.

* ``--smoke`` shrinks the workload for CI (12 jobs, m=600) while
  keeping every gate assert — page ratio >= 3x, bitwise equality, and
  the >= 1.5x scan-overlap speedup are structural, not scale-dependent.

* ``--report PATH`` merges per-gate summaries (value/floor/passed) into
  a JSON file at any shape — what CI uploads as an artifact and renders
  into the step summary.

Timings and page counts append to ``BENCH_hotloops.json`` under the
``"service"``, ``"service_async"``, ``"service_parallel"``,
``"service_wal"``, ``"service_disk"``, and ``"service_http"`` keys
(full shape only),
extending the machine-readable
perf trajectory (scalar → vectorized → fused → shared-scan service →
async service → cross-table parallel service → crash-safe WAL service).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import threading
import time
import zlib

# Direct script execution (`python benchmarks/bench_service.py`) puts only
# benchmarks/ on sys.path; make the package, tests.conftest, and the
# sibling bench module importable the same way conftest.py does.
_here = pathlib.Path(__file__).resolve().parent
for _path in (str(_here.parent / "src"), str(_here.parent), str(_here)):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import numpy as np

from bench_hotloops import _write_results, write_report
from repro import obs
from repro.core.mechanisms import mechanism_for
from repro.core.sensitivity import sensitivity_for_schedule
from repro.optim.losses import LogisticLoss
from repro.rdbms.bismarck import BismarckSession
from repro.rdbms.storage import LatencyHeapFile, MaterializedHeapFile
from repro.rdbms.uda import SGDUDA
from repro.service import JobStatus, TrainingService
from tests.conftest import make_binary_data

#: The standard service shape: 32 concurrent jobs on one m x d table.
JOBS, M, D = 32, 5000, 50
PASSES, BATCH = 2, 50
EPS = 0.05
WORKERS = 4

#: --smoke shrinks to this (the page-ratio and bitwise gates are
#: structural, so they hold at any shape that still fuses a window).
SMOKE_JOBS, SMOKE_M, SMOKE_D = 12, 600, 20

#: --gate fails below this sequential-over-fused page-request ratio.
PAGE_RATIO_FLOOR = 3.0

#: The --parallel shape: 2 workers x 2 tables, each table latency-backed
#: (simulated disk; the sleep releases the GIL, so overlapped scans
#: really overlap) behind a 1-page buffer-pool domain (thrash regime —
#: every scan pays I/O, like the paper's larger-than-memory runs).
PAR_TABLES, PAR_WORKERS, PAR_JOBS_PER_TABLE = 2, 2, 8
PAR_M, PAR_D = 1500, 20
PAR_PAGE_LATENCY = 0.0005
SMOKE_PAR_M, SMOKE_PAR_LATENCY = 600, 0.001

#: --gate --parallel fails below this per-table-over-global-lock
#: wall-clock speedup at 2 workers x 2 tables.
PARALLEL_SPEEDUP_FLOOR = 1.5


def _set_shape(jobs: int, m: int, d: int) -> None:
    global JOBS, M, D
    JOBS, M, D = jobs, m, d


def _set_parallel_shape(m: int, latency: float) -> None:
    global PAR_M, PAR_PAGE_LATENCY
    PAR_M, PAR_PAGE_LATENCY = m, latency


def _build_service(fuse: bool, workers: int = 1, metrics=None) -> TrainingService:
    X, y = make_binary_data(M, D, seed=77)
    service = TrainingService(
        fuse=fuse, scan_seed=11, batching_window=JOBS, workers=workers,
        metrics=metrics,
    )
    service.register_table("bench", X, y)
    # Room for the workload twice over: the async bench resubmits it to
    # measure cache hits (which must spend nothing — the slack proves it).
    service.open_budget("bench-tenant", "bench", 2 * JOBS * EPS + 1e-9)
    return service


def _submit_workload_one(service: TrainingService, j: int):
    lambdas = np.logspace(-4, -1, 8)
    return service.submit(
        "bench-tenant",
        "bench",
        LogisticLoss(regularization=float(lambdas[j % len(lambdas)])),
        epsilon=EPS,
        passes=PASSES,
        batch_size=BATCH,
        seed=7000 + j,
    )


def _submit_workload(service: TrainingService) -> list:
    return [_submit_workload_one(service, j) for j in range(JOBS)]


def _run(fuse: bool) -> dict:
    service = _build_service(fuse)
    records = _submit_workload(service)
    pages_before = service.page_reads
    start = time.perf_counter()
    service.drain()
    elapsed = time.perf_counter() - start
    pages = service.page_reads - pages_before
    assert all(record.status is JobStatus.COMPLETED for record in records)
    return {
        "mode": "fused" if fuse else "sequential",
        "jobs": JOBS,
        "seconds": elapsed,
        "jobs_per_second": JOBS / elapsed,
        "pages": pages,
        "pages_per_job": pages / JOBS,
        "models": np.stack([record.model for record in records]),
    }


def bench_service(gate: bool, write: bool = True, report=None) -> int:
    print(f"service shape: {JOBS} jobs, m={M}, d={D}, b={BATCH}, k={PASSES}")
    fused = _run(fuse=True)
    sequential = _run(fuse=False)

    bitwise = all(
        np.array_equal(fused["models"][j], sequential["models"][j])
        for j in range(JOBS)
    )
    ratio = sequential["pages"] / fused["pages"]
    single_job_pages = PASSES * M

    for row in (fused, sequential):
        print(
            f"{row['mode']:>10}: {row['seconds'] * 1e3:8.1f} ms"
            f"   {row['jobs_per_second']:7.1f} jobs/s"
            f"   {row['pages']:>7} pages ({row['pages_per_job']:.0f}/job)"
        )
    print(f"page ratio:   {ratio:6.1f}x fewer requests fused"
          f"  (gate: >= {PAGE_RATIO_FLOOR}x)")
    print(f"one job alone: {single_job_pages} pages "
          f"-> fused window costs {fused['pages'] / single_job_pages:.2f}x that")
    print(f"bitwise fused == sequential per job: {bitwise}")

    if write:
        _write_results(
            service={
                "jobs": JOBS,
                "fused_s": fused["seconds"],
                "sequential_s": sequential["seconds"],
                "fused_jobs_per_s": fused["jobs_per_second"],
                "sequential_jobs_per_s": sequential["jobs_per_second"],
                "fused_pages": fused["pages"],
                "sequential_pages": sequential["pages"],
                "page_ratio": ratio,
                "single_job_pages": single_job_pages,
                "bitwise_equal": bitwise,
            }
        )

    if report is not None:
        write_report(
            report,
            shared_scan_pages={
                "metric": f"page-request ratio, sequential over fused "
                f"({JOBS} jobs, one table)",
                "value": ratio,
                "floor": PAGE_RATIO_FLOOR,
                "passed": bool(ratio >= PAGE_RATIO_FLOOR and bitwise),
                "bitwise_equal": bitwise,
                "shape": {"m": M, "d": D, "jobs": JOBS},
            },
        )

    if gate and (ratio < PAGE_RATIO_FLOOR or not bitwise):
        if ratio < PAGE_RATIO_FLOOR:
            print(f"FAIL: fused dispatch below {PAGE_RATIO_FLOOR}x fewer pages")
        if not bitwise:
            print("FAIL: fused weights diverged from sequential twins")
        return 1
    print("PASS")
    return 0


def bench_async(gate: bool, write: bool = True, report=None) -> int:
    """Submit-latency vs drain-throughput with the background loop, plus
    the zero-cost cache-hit replay. Asserted invariants double as the
    gate: async weights bitwise-equal to the synchronous drain, cache
    replay charges 0 pages."""
    print(f"\nasync service: {JOBS} jobs, {WORKERS} workers")
    reference = _run(fuse=True)  # the synchronous fused drain

    service = _build_service(fuse=True, workers=WORKERS)
    service.start()
    submit_seconds = []
    start = time.perf_counter()
    records = []
    for j in range(JOBS):
        t0 = time.perf_counter()
        records.append(_submit_workload_one(service, j))
        submit_seconds.append(time.perf_counter() - t0)
    service.drain()
    drain_elapsed = time.perf_counter() - start
    bitwise = all(
        np.array_equal(records[j].model, reference["models"][j])
        for j in range(JOBS)
    )

    # The cross-drain cache: the same workload again is free.
    pages_before = service.page_reads
    t0 = time.perf_counter()
    replays = _submit_workload(service)
    cache_elapsed = time.perf_counter() - t0
    cache_pages = service.page_reads - pages_before
    cached = all(record.dispatch == "cached" for record in replays)
    service.stop()

    print(f"submit latency : max {max(submit_seconds) * 1e3:8.3f} ms, "
          f"mean {np.mean(submit_seconds) * 1e3:.3f} ms (admission only)")
    print(f"drain          : {drain_elapsed * 1e3:8.1f} ms submit->quiescent "
          f"({JOBS / drain_elapsed:.1f} jobs/s, "
          f"sync was {reference['jobs_per_second']:.1f})")
    print(f"cache replay   : {JOBS} jobs in {cache_elapsed * 1e3:8.2f} ms, "
          f"{cache_pages} pages ({'all cached' if cached else 'MISSES'})")
    print(f"bitwise async == sync per job: {bitwise}")

    if write:
        _write_results(
            service_async={
                "jobs": JOBS,
                "workers": WORKERS,
                "submit_latency_max_s": max(submit_seconds),
                "submit_latency_mean_s": float(np.mean(submit_seconds)),
                "drain_s": drain_elapsed,
                "jobs_per_s": JOBS / drain_elapsed,
                "sync_jobs_per_s": reference["jobs_per_second"],
                "cache_replay_s": cache_elapsed,
                "cache_replay_pages": cache_pages,
                "bitwise_equal_to_sync": bitwise,
            }
        )

    if report is not None:
        write_report(
            report,
            async_and_cache={
                "metric": "async bitwise == sync AND cache replay pages == 0",
                "value": float(cache_pages),
                "floor": 0.0,
                "passed": bool(bitwise and cached and cache_pages == 0),
                "bitwise_equal": bitwise,
                "all_cached": cached,
                "shape": {"m": M, "d": D, "jobs": JOBS, "workers": WORKERS},
            },
        )

    if gate and not (bitwise and cached and cache_pages == 0):
        if not bitwise:
            print("FAIL: async weights diverged from the synchronous drain")
        if not cached or cache_pages != 0:
            print("FAIL: cache replay was not free (pages or misses)")
        return 1
    print("PASS")
    return 0


# -- the per-table parallel-dispatch gate --------------------------------------


def _build_parallel_service(workers: int, parallel_scans: bool) -> TrainingService:
    service = TrainingService(
        fuse=True,
        scan_seed=11,
        batching_window=PAR_JOBS_PER_TABLE,
        workers=workers,
        parallel_scans=parallel_scans,
        buffer_pool_pages=1,
    )
    for t in range(PAR_TABLES):
        X, y = make_binary_data(PAR_M, PAR_D, seed=50 + t)
        heap = LatencyHeapFile(MaterializedHeapFile(X, y), PAR_PAGE_LATENCY)
        service.register_table(f"par{t}", heap=heap)
        service.open_budget(
            "bench-tenant", f"par{t}", PAR_JOBS_PER_TABLE * EPS + 1e-9
        )
    return service


def _submit_parallel_workload(service: TrainingService) -> list:
    lambdas = np.logspace(-4, -1, PAR_JOBS_PER_TABLE)
    records = []
    for j in range(PAR_JOBS_PER_TABLE):
        for t in range(PAR_TABLES):
            records.append(
                service.submit(
                    "bench-tenant",
                    f"par{t}",
                    LogisticLoss(regularization=float(lambdas[j])),
                    epsilon=EPS,
                    passes=PASSES,
                    batch_size=BATCH,
                    seed=8000 + 100 * t + j,
                )
            )
    return records


def _run_parallel(parallel_scans: bool, workers: int = PAR_WORKERS) -> dict:
    service = _build_parallel_service(workers, parallel_scans)
    start = time.perf_counter()
    records = _submit_parallel_workload(service)
    service.drain()
    elapsed = time.perf_counter() - start
    assert all(record.status is JobStatus.COMPLETED for record in records)
    return {
        "seconds": elapsed,
        "records": records,
        "overlap": service.peak_scan_overlap,
        "weights": {
            (record.job.table, record.job.seed): record.model for record in records
        },
    }


def _solo_pages() -> int:
    """Page requests one job alone records (the attribution reference)."""
    service = _build_parallel_service(workers=1, parallel_scans=True)
    record = service.submit(
        "bench-tenant", "par0", LogisticLoss(regularization=1e-3),
        epsilon=EPS, passes=PASSES, batch_size=BATCH, seed=1,
    )
    service.drain()
    assert record.status is JobStatus.COMPLETED
    return record.group_pages


def bench_parallel(gate: bool, write: bool = True, report=None) -> int:
    """Per-table engine domains vs one global engine lock, wall-clock.

    Same jobs, same tables, same workers — the only difference is the
    unit the scans serialize on. The gate requires the overlap to be
    *visible* (>= 1.5x faster) and *invisible* everywhere else: weights
    bitwise-equal to the synchronous 1-worker drain, and every job's
    recorded page count exactly its solo run's (per-table attribution —
    a concurrent scan on the other table must never leak into it).
    """
    total_jobs = PAR_TABLES * PAR_JOBS_PER_TABLE
    print(
        f"\nparallel dispatch: {PAR_WORKERS} workers x {PAR_TABLES} tables, "
        f"{total_jobs} jobs, m={PAR_M}, d={PAR_D}, "
        f"page latency {PAR_PAGE_LATENCY * 1e3:.1f} ms"
    )
    reference = _run_parallel(parallel_scans=True, workers=1)
    serialized = _run_parallel(parallel_scans=False)
    parallel = _run_parallel(parallel_scans=True)
    speedup = serialized["seconds"] / parallel["seconds"]
    solo = _solo_pages()

    bitwise = all(
        np.array_equal(
            record.model, reference["weights"][(record.job.table, record.job.seed)]
        )
        for record in parallel["records"] + serialized["records"]
    )
    pages_exact = all(
        record.group_pages == solo
        for record in parallel["records"] + serialized["records"]
    )

    print(f"global lock    : {serialized['seconds'] * 1e3:8.1f} ms "
          f"(peak overlap {serialized['overlap']})")
    print(f"per-table locks: {parallel['seconds'] * 1e3:8.1f} ms "
          f"(peak overlap {parallel['overlap']})")
    print(f"speedup        : {speedup:6.2f}x  "
          f"(gate: >= {PARALLEL_SPEEDUP_FLOOR}x)")
    print(f"pages per job  : solo {solo}; all jobs identical: {pages_exact}")
    print(f"bitwise parallel == sync per job: {bitwise}")

    if write:
        _write_results(
            service_parallel={
                "tables": PAR_TABLES,
                "workers": PAR_WORKERS,
                "jobs": total_jobs,
                "page_latency_s": PAR_PAGE_LATENCY,
                "global_lock_s": serialized["seconds"],
                "per_table_s": parallel["seconds"],
                "speedup": speedup,
                "peak_overlap": parallel["overlap"],
                "solo_pages": solo,
                "pages_exact": pages_exact,
                "bitwise_equal_to_sync": bitwise,
            }
        )
    if report is not None:
        write_report(
            report,
            parallel_dispatch={
                "metric": "wall-clock speedup, per-table engine domains over "
                f"global lock ({PAR_WORKERS} workers x {PAR_TABLES} tables)",
                "value": speedup,
                "floor": PARALLEL_SPEEDUP_FLOOR,
                "passed": bool(
                    speedup >= PARALLEL_SPEEDUP_FLOOR and bitwise and pages_exact
                ),
                "bitwise_equal": bitwise,
                "pages_exact": pages_exact,
                "peak_overlap": parallel["overlap"],
                "shape": {"m": PAR_M, "d": PAR_D, "jobs": total_jobs},
            },
        )

    if gate and not (speedup >= PARALLEL_SPEEDUP_FLOOR and bitwise and pages_exact):
        if speedup < PARALLEL_SPEEDUP_FLOOR:
            print(f"FAIL: cross-table overlap below {PARALLEL_SPEEDUP_FLOOR}x")
        if not bitwise:
            print("FAIL: parallel weights diverged from the synchronous drain")
        if not pages_exact:
            print("FAIL: per-table page attribution drifted from the solo run")
        return 1
    print("PASS")
    return 0


# -- the elevator (shared-cursor) gate -----------------------------------------

#: Late arrivals during the opener's scan, cycling batch sizes with zero
#: fusion compatibility between them — window batching must pay one fused
#: scan per distinct batch size, the elevator one shared cursor stream.
CUR_LATE_JOBS = 6
CUR_LATE_BATCHES = (10, 50, 100)

#: --gate --cursor fails below this windowed-over-elevator page ratio on
#: the sustained-arrival workload. The measured ratio is ~4x: windowed
#: pays (1 + len(CUR_LATE_BATCHES)) scans of 2m pages, the elevator one
#: cursor stream of 2m + chunk_size.
ELEVATOR_PAGE_FLOOR = 1.5


class _GatedLoss(LogisticLoss):
    """Blocks gradients until released: guarantees the late jobs arrive
    while the opener's scan is genuinely mid-flight, making the boarding
    scenario (and its page counts) deterministic rather than a race."""

    def __init__(self, regularization):
        super().__init__(regularization)
        self.started = threading.Event()
        self.release = threading.Event()

    def batch_gradient(self, w, X_batch, y_batch):
        self.started.set()
        self.release.wait(timeout=60.0)
        return super().batch_gradient(w, X_batch, y_batch)


def _run_cursor(elevator: bool) -> dict:
    """The sustained-arrival script, identical in both modes: one opener
    starts a scan, CUR_LATE_JOBS compatible-on-the-table jobs arrive while
    it runs. Elevator mode boards them on the live cursor; windowed mode
    parks them for the next batching window."""
    X, y = make_binary_data(M, D, seed=77)
    service = TrainingService(
        elevator=elevator, fuse=True, scan_seed=11,
        batching_window=JOBS, workers=1,
    )
    service.register_table("bench", X, y)
    service.open_budget("bench-tenant", "bench", (1 + CUR_LATE_JOBS) * EPS + 1e-9)
    gate_loss = _GatedLoss(1e-3)
    lambdas = np.logspace(-4, -1, CUR_LATE_JOBS)
    start = time.perf_counter()
    opener = service.submit(
        "bench-tenant", "bench", gate_loss,
        epsilon=EPS, passes=PASSES, batch_size=BATCH, seed=7100,
    )
    service.start()
    assert gate_loss.started.wait(timeout=30.0), "opener scan never started"
    lates = [
        service.submit(
            "bench-tenant", "bench",
            LogisticLoss(regularization=float(lambdas[j])),
            epsilon=EPS, passes=PASSES,
            batch_size=CUR_LATE_BATCHES[j % len(CUR_LATE_BATCHES)],
            seed=7200 + j,
        )
        for j in range(CUR_LATE_JOBS)
    ]
    gate_loss.release.set()
    assert service.loop.wait_quiescent(timeout=300.0)
    elapsed = time.perf_counter() - start
    service.stop()
    records = [opener] + lates
    assert all(record.status is JobStatus.COMPLETED for record in records)
    return {
        "mode": "elevator" if elevator else "windowed",
        "seconds": elapsed,
        "pages": service.page_reads,
        "scans": service.scheduler.table_scans["bench"],
        "boarded": sum(1 for record in lates if record.boarding_offset > 0),
        "records": records,
        "data": (X, y),
    }


def _cursor_reference(record, X, y) -> np.ndarray:
    """Rebuild ``record``'s release solo from its provenance: a fresh
    engine, the service permutation, run_sgd at the recorded boarding
    offset, the job's own noise stream."""
    job = record.job
    session = BismarckSession()
    session.load_table(job.table, X, y)
    shuffle = session.shared_scan(
        job.table,
        random_state=np.random.SeedSequence(
            [11, zlib.crc32(job.table.encode("utf-8"))]
        ),
    )
    schedule, projection, properties = job.candidate.resolve(M)
    sensitivity = sensitivity_for_schedule(
        properties, schedule, M, job.candidate.passes, job.candidate.batch_size
    )
    uda = SGDUDA(job.candidate.loss, schedule, job.candidate.batch_size, projection)
    report = session.run_sgd(
        job.table, uda, epochs=job.candidate.passes, chunk_size=256,
        shuffle=shuffle, start_offset=record.boarding_offset,
    )
    _, noise_rng = job.spawn_streams()
    noise = mechanism_for(job.privacy).sample(
        report.model.shape[0], sensitivity.value, job.privacy, noise_rng
    )
    return report.model + noise


def bench_cursor(gate: bool, write: bool = True, report=None) -> int:
    """Elevator boarding vs window-boundary batching under sustained
    arrivals. The gate requires the elevator to be >= 1.5x cheaper on
    pages, every late job to have actually boarded mid-flight
    (boarding_offset > 0), and every boarded release to be bitwise-equal
    to its solo ``run_sgd(start_offset=...)`` reference."""
    total = 1 + CUR_LATE_JOBS
    print(
        f"\nelevator dispatch: 1 opener + {CUR_LATE_JOBS} late arrivals "
        f"(batch sizes {CUR_LATE_BATCHES}), m={M}, d={D}"
    )
    elevator = _run_cursor(elevator=True)
    windowed = _run_cursor(elevator=False)
    ratio = windowed["pages"] / elevator["pages"]
    X, y = elevator["data"]
    bitwise = all(
        np.array_equal(record.model, _cursor_reference(record, X, y))
        for record in elevator["records"]
    )
    all_boarded = elevator["boarded"] == CUR_LATE_JOBS

    for row in (windowed, elevator):
        print(
            f"{row['mode']:>10}: {row['seconds'] * 1e3:8.1f} ms"
            f"   {row['pages']:>7} pages   {row['scans']} scan(s)"
        )
    print(f"page ratio:   {ratio:6.1f}x fewer requests boarding "
          f"(gate: >= {ELEVATOR_PAGE_FLOOR}x)")
    print(f"late jobs boarded mid-flight: {elevator['boarded']}/{CUR_LATE_JOBS}")
    print(f"bitwise boarded == solo(start_offset): {bitwise}")

    if write:
        _write_results(
            service_elevator={
                "jobs": total,
                "late_jobs": CUR_LATE_JOBS,
                "windowed_pages": windowed["pages"],
                "elevator_pages": elevator["pages"],
                "page_ratio": ratio,
                "windowed_s": windowed["seconds"],
                "elevator_s": elevator["seconds"],
                "boarded": elevator["boarded"],
                "bitwise_equal": bitwise,
            }
        )
    if report is not None:
        write_report(
            report,
            elevator_boarding={
                "metric": "page-request ratio, window batching over elevator "
                f"boarding ({total} jobs, sustained arrivals)",
                "value": ratio,
                "floor": ELEVATOR_PAGE_FLOOR,
                "passed": bool(
                    ratio >= ELEVATOR_PAGE_FLOOR and bitwise and all_boarded
                ),
                "bitwise_equal": bitwise,
                "boarded": elevator["boarded"],
                "shape": {"m": M, "d": D, "jobs": total},
            },
        )

    if gate and not (ratio >= ELEVATOR_PAGE_FLOOR and bitwise and all_boarded):
        if ratio < ELEVATOR_PAGE_FLOOR:
            print(f"FAIL: boarding below {ELEVATOR_PAGE_FLOOR}x fewer pages")
        if not all_boarded:
            print("FAIL: late jobs did not board the running scan")
        if not bitwise:
            print("FAIL: boarded weights diverged from solo offset runs")
        return 1
    print("PASS")
    return 0


# -- the durability (WAL vs snapshot) note -------------------------------------

#: History sizes the durability note samples: the snapshot path rewrites
#: all N records per window, the log path appends one window's events.
WAL_HISTORY_SIZES = (100, 400, 1600)
WAL_WINDOW_EVENTS = 16


def _synthetic_record(j: int, d: int = 8):
    """A terminal record with a realistic payload shape — cheap to mint
    by the thousand, so the note can scale history without training
    thousands of real jobs."""
    from repro.core.bolton import BoltOnCandidate
    from repro.service import JobRecord, TrainingJob

    job = TrainingJob(
        principal="bench-tenant",
        table="bench",
        candidate=BoltOnCandidate(
            loss=LogisticLoss(regularization=1e-3), passes=1, batch_size=50
        ),
        epsilon=EPS,
        job_id=f"wal-{j:06d}",
        arrival=j,
    )
    return JobRecord(
        job=job, status=JobStatus.COMPLETED, model=np.zeros(d),
        sensitivity=1.0, noise_norm=0.1, dispatch="fused",
        group_size=1, group_pages=10, epochs=1, submitted_at=j,
    )


def bench_durability(write: bool = True) -> int:
    """Per-window autosave cost: append-only log vs full snapshot.

    The WAL rewrite's claim is O(1) durability per dispatched window —
    the autosave appends and fsyncs the window's events instead of
    re-serializing the whole registry. This times both strategies on the
    same synthetic history at growing sizes and prints the scaling note;
    informational, never a gate (absolute fsync latency flakes on shared
    CI runners).
    """
    import tempfile

    from repro.service.registry import _record_payload

    print(f"\ndurability     : {WAL_WINDOW_EVENTS}-event window autosave, "
          f"log append+fsync vs full snapshot")
    rows = []
    for size in WAL_HISTORY_SIZES:
        with tempfile.TemporaryDirectory() as tmp:
            service = TrainingService(workers=1, state_dir=tmp)
            for j in range(size):
                service.registry.add(_synthetic_record(j))
            t0 = time.perf_counter()
            service.save_state()
            snapshot_s = time.perf_counter() - t0
            events = [
                {"event": "record", "record": _record_payload(_synthetic_record(j))}
                for j in range(size, size + WAL_WINDOW_EVENTS)
            ]
            t0 = time.perf_counter()
            for event in events:
                service.wal.append(event)
            service.wal.sync()
            wal_s = time.perf_counter() - t0
            rows.append((size, snapshot_s, wal_s))
            print(f"  history {size:>5}: snapshot {snapshot_s * 1e3:8.2f} ms, "
                  f"log window {wal_s * 1e3:8.2f} ms "
                  f"({snapshot_s / wal_s:6.1f}x)")
    # The headline: snapshot cost grows with history, the log's does not.
    snapshot_growth = rows[-1][1] / rows[0][1]
    wal_growth = rows[-1][2] / rows[0][2]
    print(f"  {WAL_HISTORY_SIZES[0]} -> {WAL_HISTORY_SIZES[-1]} records: "
          f"snapshot cost x{snapshot_growth:.1f}, log window cost "
          f"x{wal_growth:.1f}")
    if write:
        _write_results(
            service_wal={
                "history_sizes": list(WAL_HISTORY_SIZES),
                "window_events": WAL_WINDOW_EVENTS,
                "snapshot_s": [row[1] for row in rows],
                "wal_window_s": [row[2] for row in rows],
                "snapshot_growth": snapshot_growth,
                "wal_window_growth": wal_growth,
            }
        )
    return 0


# -- the queue-scaling note ----------------------------------------------------

QUEUE_JOBS = 10_000


def bench_queue(write: bool = True) -> int:
    """Submit latency with 10^4 jobs piling up in the queue (no workers).

    The queue is kept sorted on insert (bisect), so each claim is one
    O(n) pass and each push O(log n) compares + one shift — the old
    sort-at-pop charged an O(n log n) re-sort to the admission lock that
    submit p99 waits on. This prints the note the ROADMAP records; it is
    informational, not a gate (absolute latency gates flake on shared CI
    runners).
    """
    X, y = make_binary_data(SMOKE_M, SMOKE_D, seed=77)
    service = TrainingService(fuse=True, scan_seed=11, workers=1)
    service.register_table("bench", X, y)
    service.open_budget("bench-tenant", "bench", QUEUE_JOBS * EPS + 1e-9)
    lambdas = np.logspace(-4, -1, 8)
    seconds = np.empty(QUEUE_JOBS)
    for j in range(QUEUE_JOBS):
        t0 = time.perf_counter()
        service.submit(
            "bench-tenant", "bench",
            LogisticLoss(regularization=float(lambdas[j % len(lambdas)])),
            epsilon=EPS, passes=PASSES, batch_size=BATCH,
            priority=j % 4,  # mid-queue inserts, not append-only
            seed=9000 + j,
        )
        seconds[j] = time.perf_counter() - t0
    p50, p99 = np.percentile(seconds, [50, 99])
    print(f"\nqueue scaling  : {QUEUE_JOBS} submits, queue depth 0 -> {QUEUE_JOBS}")
    print(f"submit latency : p50 {p50 * 1e6:7.1f} us, p99 {p99 * 1e6:7.1f} us, "
          f"max {seconds.max() * 1e6:.1f} us (insert-sorted queue)")
    if write:
        _write_results(
            service_queue={
                "queued_jobs": QUEUE_JOBS,
                "submit_p50_s": float(p50),
                "submit_p99_s": float(p99),
                "submit_max_s": float(seconds.max()),
            }
        )
    return 0


# -- the observability-overhead gate -------------------------------------------

#: --gate --observability fails above this instrumented-over-disabled
#: drain wall-clock overhead. The telemetry design budget: every hot-path
#: record is O(1) and per scan/window, never per tuple.
OBS_OVERHEAD_CEILING_PCT = 5.0
OBS_TRIALS = 3


def _run_obs(metrics) -> dict:
    """One fused synchronous drain of the standard workload under the
    given metrics registry (live or the disabled twin)."""
    service = _build_service(fuse=True, metrics=metrics)
    records = _submit_workload(service)
    start = time.perf_counter()
    service.drain()
    elapsed = time.perf_counter() - start
    assert all(record.status is JobStatus.COMPLETED for record in records)
    return {
        "seconds": elapsed,
        "models": np.stack([record.model for record in records]),
        "service": service,
    }


def bench_observability(gate: bool, write: bool = True, report=None) -> int:
    """Instrumented vs obs.disabled() drain wall-clock.

    Same workload, same seeds — the only difference is whether the
    metrics registry and traces record anything. Best-of-N alternating
    runs (noise on shared CI runners is one-sided, so best-of is the
    fair estimator); the gate holds the overhead under
    ``OBS_OVERHEAD_CEILING_PCT`` and the weights bitwise-equal (telemetry
    must never touch the training path).
    """
    print(f"\nobservability  : {JOBS} jobs, instrumented vs disabled, "
          f"best of {OBS_TRIALS}")
    instrumented_s, disabled_s = [], []
    instrumented = disabled_run = None
    for _ in range(OBS_TRIALS):
        disabled_run = _run_obs(obs.disabled())
        disabled_s.append(disabled_run["seconds"])
        instrumented = _run_obs(None)  # the service default: a live registry
        instrumented_s.append(instrumented["seconds"])
    best_inst, best_base = min(instrumented_s), min(disabled_s)
    overhead_pct = max(0.0, (best_inst / best_base - 1.0) * 100.0)
    bitwise = bool(
        np.array_equal(instrumented["models"], disabled_run["models"])
    )
    service = instrumented["service"]
    traced = all(
        record.trace.names()[-1] == "commit"
        for record in service.loop.finished
    )

    print(f"disabled       : {best_base * 1e3:8.1f} ms (best of {OBS_TRIALS})")
    print(f"instrumented   : {best_inst * 1e3:8.1f} ms (best of {OBS_TRIALS})")
    print(f"overhead       : {overhead_pct:6.2f}%  "
          f"(gate: <= {OBS_OVERHEAD_CEILING_PCT}%)")
    print(f"bitwise instrumented == disabled per job: {bitwise}")
    print(f"all records fully traced (admit -> commit): {traced}")

    if write:
        _write_results(
            service_obs={
                "jobs": JOBS,
                "trials": OBS_TRIALS,
                "disabled_s": best_base,
                "instrumented_s": best_inst,
                "overhead_pct": overhead_pct,
                "bitwise_equal": bitwise,
            }
        )
    if report is not None:
        write_report(
            report,
            service_obs={
                "metric": "telemetry overhead, instrumented over disabled "
                f"drain wall-clock ({JOBS} jobs)",
                "value": overhead_pct,
                "floor": OBS_OVERHEAD_CEILING_PCT,
                "passed": bool(
                    overhead_pct <= OBS_OVERHEAD_CEILING_PCT
                    and bitwise
                    and traced
                ),
                "bitwise_equal": bitwise,
                "all_traced": traced,
                "shape": {"m": M, "d": D, "jobs": JOBS},
            },
        )
        # The exported artifact: both expositions of the instrumented run.
        report_dir = pathlib.Path(report).resolve().parent
        (report_dir / "metrics-dump.prom").write_text(service.metrics())
        (report_dir / "metrics-dump.json").write_text(
            json.dumps(service.metrics(format="json"), indent=1, sort_keys=True)
            + "\n"
        )

    failed = overhead_pct > OBS_OVERHEAD_CEILING_PCT or not bitwise or not traced
    if gate and failed:
        if overhead_pct > OBS_OVERHEAD_CEILING_PCT:
            print(f"FAIL: telemetry overhead above {OBS_OVERHEAD_CEILING_PCT}%")
        if not bitwise:
            print("FAIL: instrumentation changed the released weights")
        if not traced:
            print("FAIL: a terminal record is missing its commit span")
        return 1
    print("PASS")
    return 0


def _build_disk_service(fuse: bool, sqlite_path) -> TrainingService:
    """The standard bench service, but with the table on real storage:
    the dataset is bulk-loaded into a SQLite-WAL heap and every pool
    miss pays an actual database read."""
    X, y = make_binary_data(M, D, seed=77)
    service = TrainingService(
        fuse=fuse, scan_seed=11, batching_window=JOBS, workers=1
    )
    service.register_table(
        "bench", X, y, backend="sqlite", path=sqlite_path
    )
    service.open_budget("bench-tenant", "bench", 2 * JOBS * EPS + 1e-9)
    return service


def _run_disk(fuse: bool, sqlite_path) -> dict:
    service = _build_disk_service(fuse, sqlite_path)
    records = _submit_workload(service)
    pages_before = service.page_reads
    start = time.perf_counter()
    service.drain()
    elapsed = time.perf_counter() - start
    pages = service.page_reads - pages_before
    assert all(record.status is JobStatus.COMPLETED for record in records)
    return {
        "mode": "fused" if fuse else "sequential",
        "seconds": elapsed,
        "pages": pages,
        "models": np.stack([record.model for record in records]),
    }


def bench_disk(gate: bool, write: bool = True, report=None) -> int:
    """The shared-scan claims, re-proven on real I/O.

    Same workload as the base gate, but the table lives in a SQLite-WAL
    heap file: every buffer-pool miss is an actual database read, not an
    array slice or a simulated sleep. Gates (exit 1) on three claims:
    fused dispatch still >= PAGE_RATIO_FLOOR x fewer page requests than
    sequential on real storage; fused == sequential bitwise on the
    SQLite backend; and the SQLite-backed release is bitwise-identical
    (atol=0) to the in-memory release of the same jobs — storage is
    invisible to the trained weights. Also prints the warm-pool vs
    cold-pool sweep note (informational): the same full-table pool scan
    with every page faulting in from SQLite vs every page resident.
    """
    import tempfile

    from repro.rdbms.storage import BufferPool, SQLiteHeapFile, tuples_per_page

    print(f"\ndisk backend: {JOBS} jobs on a SQLite-WAL heap, m={M}, d={D}")
    with tempfile.TemporaryDirectory(prefix="repro-bench-disk-") as tmp:
        tmp = pathlib.Path(tmp)
        fused = _run_disk(fuse=True, sqlite_path=tmp / "fused.db")
        sequential = _run_disk(fuse=False, sqlite_path=tmp / "sequential.db")
        reference = _run(fuse=True)  # the in-memory twin

        ratio = sequential["pages"] / fused["pages"]
        bitwise_paths = all(
            np.array_equal(fused["models"][j], sequential["models"][j])
            for j in range(JOBS)
        )
        bitwise_backend = all(
            np.array_equal(fused["models"][j], reference["models"][j])
            for j in range(JOBS)
        )

        # Warm vs cold pool, off to the side (a private heap + pool so the
        # sweep never perturbs the gated runs' counters): one full-table
        # scan with every page faulting in from SQLite, then the same scan
        # with every page resident.
        X, y = make_binary_data(M, D, seed=77)
        heap = SQLiteHeapFile.bulk_load(tmp / "sweep.db", X, y)
        pool = BufferPool(capacity_pages=heap.num_pages)
        start = time.perf_counter()
        for _ in pool.scan(heap):
            pass
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        for _ in pool.scan(heap):
            pass
        warm_s = time.perf_counter() - start
        heap.close()

    for row in (fused, sequential):
        print(
            f"{row['mode']:>10}: {row['seconds'] * 1e3:8.1f} ms"
            f"   {row['pages']:>7} pages"
        )
    print(f"page ratio:   {ratio:6.1f}x fewer requests fused on real I/O"
          f"  (gate: >= {PAGE_RATIO_FLOOR}x)")
    print(f"bitwise fused == sequential (sqlite):  {bitwise_paths}")
    print(f"bitwise sqlite == in-memory (atol=0):  {bitwise_backend}")
    print(f"pool sweep:   cold {cold_s * 1e3:.1f} ms ({heap.num_pages} pages "
          f"from SQLite) vs warm {warm_s * 1e3:.1f} ms (all resident) — "
          f"{cold_s / max(warm_s, 1e-9):.1f}x (informational)")

    if write:
        _write_results(
            service_disk={
                "jobs": JOBS,
                "fused_s": fused["seconds"],
                "sequential_s": sequential["seconds"],
                "fused_pages": fused["pages"],
                "sequential_pages": sequential["pages"],
                "page_ratio": ratio,
                "bitwise_fused_vs_sequential": bitwise_paths,
                "bitwise_sqlite_vs_memory": bitwise_backend,
                "cold_sweep_s": cold_s,
                "warm_sweep_s": warm_s,
            }
        )

    if report is not None:
        write_report(
            report,
            disk_backend={
                "metric": f"page-request ratio, sequential over fused, "
                f"SQLite-WAL heap ({JOBS} jobs, one table)",
                "value": ratio,
                "floor": PAGE_RATIO_FLOOR,
                "passed": bool(
                    ratio >= PAGE_RATIO_FLOOR
                    and bitwise_paths
                    and bitwise_backend
                ),
                "bitwise_fused_vs_sequential": bitwise_paths,
                "bitwise_sqlite_vs_memory": bitwise_backend,
                "cold_sweep_s": cold_s,
                "warm_sweep_s": warm_s,
                "shape": {"m": M, "d": D, "jobs": JOBS},
            },
        )

    if gate and (ratio < PAGE_RATIO_FLOOR or not bitwise_paths or not bitwise_backend):
        if ratio < PAGE_RATIO_FLOOR:
            print(f"FAIL: fused dispatch below {PAGE_RATIO_FLOOR}x on real I/O")
        if not bitwise_paths:
            print("FAIL: fused weights diverged from sequential on sqlite")
        if not bitwise_backend:
            print("FAIL: sqlite-backed weights diverged from in-memory twins")
        return 1
    print("PASS")
    return 0


# -- the HTTP front-end gate ---------------------------------------------------

#: --gate --http fails above this per-submit p99 through the socket.
#: Loopback + JSON + admission is ~1-2 ms; 50 ms leaves room for noisy
#: shared CI runners without letting a per-request accept()/parse
#: regression hide.
HTTP_SUBMIT_P99_CEILING_S = 0.050

#: --gate --http fails below this HTTP-over-in-process sustained
#: throughput ratio. Submission rides the socket but training dominates
#: the drain, so the front-end must stay within 2x end to end.
HTTP_THROUGHPUT_FLOOR = 0.5

#: Fresh-twin trials per transport; the ratio gates on best-of-N.
HTTP_TRIALS = 3

#: Passes for the throughput phase's jobs. The ratio compares transports
#: on a workload where training dominates (the serving regime the
#: front-end exists for); at the smoke shape the standard 2-pass jobs
#: finish in ~1 ms each, which would gate on socket overhead alone.
HTTP_DRAIN_PASSES = 4 * PASSES


def _http_tokens() -> dict:
    return {"bench-token": "bench-tenant"}


def _drain_workload(service, submit_one, jobs: int, submitters: int = 1):
    """Submit ``jobs`` jobs via ``submit_one``, then drain with workers;
    returns (wall_seconds, [records in submission-index order]).

    ``submitters`` > 1 fans the submission stream over that many
    threads — the natural load shape for the HTTP transport (that is
    what ``ThreadingHTTPServer`` is for), and a no-op-cost choice for
    the ~20 us in-process verb.
    """
    submitted = [None] * jobs
    start = time.perf_counter()
    if submitters <= 1:
        for j in range(jobs):
            submitted[j] = submit_one(j)
    else:
        def run(indices):
            for j in indices:
                submitted[j] = submit_one(j)

        threads = [
            threading.Thread(target=run, args=(range(k, jobs, submitters),))
            for k in range(submitters)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    service.drain()
    elapsed = time.perf_counter() - start
    return elapsed, submitted


def bench_http(gate: bool, write: bool = True, report=None) -> int:
    from repro.api import ServiceApiServer, ServiceClient

    print(f"\nhttp api shape: {JOBS} jobs over repro-api/v1 "
          "(ThreadingHTTPServer + urllib client, loopback)")

    # -- submit latency: admission through the socket, no workers ------
    lat_service = _build_service(fuse=True)
    with ServiceApiServer(lat_service, _http_tokens()) as lat_server:
        lat_server.start()
        client = ServiceClient(lat_server.url, token="bench-token")
        lambdas = np.logspace(-4, -1, 8)
        seconds = np.empty(JOBS)
        for j in range(JOBS):
            t0 = time.perf_counter()
            client.submit(
                "bench-tenant", "bench",
                LogisticLoss(regularization=float(lambdas[j % len(lambdas)])),
                epsilon=EPS, passes=PASSES, batch_size=BATCH, seed=7000 + j,
            )
            seconds[j] = time.perf_counter() - t0
    p50, p99 = np.percentile(seconds, [50, 99])
    print(f"submit latency: p50 {p50 * 1e3:6.2f} ms, p99 {p99 * 1e3:6.2f} ms, "
          f"max {seconds.max() * 1e3:.2f} ms "
          f"(gate: p99 <= {HTTP_SUBMIT_P99_CEILING_S * 1e3:.0f} ms)")

    # -- end-to-end throughput: twin services, workers draining, best
    # of HTTP_TRIALS fresh-service runs per transport (single ~20 ms
    # drains are too noisy to gate on; the best case is the stable one).
    inproc_s = http_s = np.inf
    bitwise = True
    for _ in range(HTTP_TRIALS):
        inproc_service = _build_service(fuse=True, workers=WORKERS)
        trial_s, inproc_records = _drain_workload(
            inproc_service,
            lambda j: inproc_service.submit(
                "bench-tenant", "bench",
                LogisticLoss(
                    regularization=float(np.logspace(-4, -1, 8)[j % 8])
                ),
                epsilon=EPS, passes=HTTP_DRAIN_PASSES, batch_size=BATCH,
                seed=7000 + j,
            ),
            JOBS,
        )
        inproc_s = min(inproc_s, trial_s)

        http_service = _build_service(fuse=True, workers=WORKERS)
        with ServiceApiServer(http_service, _http_tokens()) as server:
            client = ServiceClient(server.url, token="bench-token")
            lambdas = np.logspace(-4, -1, 8)
            trial_s, http_views = _drain_workload(
                http_service,
                lambda j: client.submit(
                    "bench-tenant", "bench",
                    LogisticLoss(
                        regularization=float(lambdas[j % len(lambdas)])
                    ),
                    epsilon=EPS, passes=HTTP_DRAIN_PASSES,
                    batch_size=BATCH, seed=7000 + j,
                ),
                JOBS,
                submitters=WORKERS,
            )
            http_s = min(http_s, trial_s)
            # The conformance claim, re-proven at bench shape: the
            # socket is invisible to the released bits.
            bitwise = bitwise and all(
                np.array_equal(
                    client.model(view.job_id), inproc_records[j].model
                )
                for j, view in enumerate(http_views)
            )
    inproc_jps = JOBS / inproc_s
    http_jps = JOBS / http_s
    throughput_ratio = http_jps / inproc_jps
    print(f"   in-process: {inproc_s * 1e3:8.1f} ms   {inproc_jps:7.1f} jobs/s")
    print(f"         http: {http_s * 1e3:8.1f} ms   {http_jps:7.1f} jobs/s")
    print(f"throughput:   {throughput_ratio:6.2f}x in-process end to end "
          f"(gate: >= {HTTP_THROUGHPUT_FLOOR}x)")
    print(f"bitwise http == in-process per job: {bitwise}")

    # -- full shape only: the 10^4-queued-jobs note over the socket ----
    queue_note = None
    if write:
        q_X, q_y = make_binary_data(SMOKE_M, SMOKE_D, seed=77)
        q_service = TrainingService(fuse=True, scan_seed=11, workers=1)
        q_service.register_table("bench", q_X, q_y)
        q_service.open_budget("bench-tenant", "bench", QUEUE_JOBS * EPS + 1e-9)
        with ServiceApiServer(q_service, _http_tokens()) as q_server:
            q_server.start()
            q_client = ServiceClient(q_server.url, token="bench-token")
            q_seconds = np.empty(QUEUE_JOBS)
            for j in range(QUEUE_JOBS):
                t0 = time.perf_counter()
                q_client.submit(
                    "bench-tenant", "bench",
                    LogisticLoss(
                        regularization=float(lambdas[j % len(lambdas)])
                    ),
                    epsilon=EPS, passes=PASSES, batch_size=BATCH,
                    priority=j % 4, seed=9000 + j,
                )
                q_seconds[j] = time.perf_counter() - t0
        q_p50, q_p99 = np.percentile(q_seconds, [50, 99])
        queue_note = {
            "queued_jobs": QUEUE_JOBS,
            "submit_p50_s": float(q_p50),
            "submit_p99_s": float(q_p99),
            "submit_max_s": float(q_seconds.max()),
        }
        print(f"queue note:   {QUEUE_JOBS} http submits, "
              f"p50 {q_p50 * 1e3:.2f} ms, p99 {q_p99 * 1e3:.2f} ms, "
              f"max {q_seconds.max() * 1e3:.2f} ms (informational)")

    if write:
        _write_results(
            service_http={
                "jobs": JOBS,
                "submit_p50_s": float(p50),
                "submit_p99_s": float(p99),
                "inproc_jobs_per_s": inproc_jps,
                "http_jobs_per_s": http_jps,
                "throughput_ratio": throughput_ratio,
                "bitwise_equal": bitwise,
                "queued": queue_note,
            }
        )

    if report is not None:
        write_report(
            report,
            service_http={
                "metric": f"http submit p99 (s) and end-to-end throughput "
                f"ratio over in-process ({JOBS} jobs, {WORKERS} workers)",
                "value": throughput_ratio,
                "floor": HTTP_THROUGHPUT_FLOOR,
                "passed": bool(
                    p99 <= HTTP_SUBMIT_P99_CEILING_S
                    and throughput_ratio >= HTTP_THROUGHPUT_FLOOR
                    and bitwise
                ),
                "submit_p99_s": float(p99),
                "submit_p99_ceiling_s": HTTP_SUBMIT_P99_CEILING_S,
                "bitwise_equal": bitwise,
                "shape": {"m": M, "d": D, "jobs": JOBS},
            },
        )

    failed = []
    if p99 > HTTP_SUBMIT_P99_CEILING_S:
        failed.append(
            f"FAIL: http submit p99 {p99 * 1e3:.2f} ms above "
            f"{HTTP_SUBMIT_P99_CEILING_S * 1e3:.0f} ms"
        )
    if throughput_ratio < HTTP_THROUGHPUT_FLOOR:
        failed.append(
            f"FAIL: http throughput {throughput_ratio:.2f}x below "
            f"{HTTP_THROUGHPUT_FLOOR}x in-process"
        )
    if not bitwise:
        failed.append("FAIL: http-submitted weights diverged from in-process")
    if gate and failed:
        for line in failed:
            print(line)
        return 1
    print("PASS")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit 1 unless fused dispatch makes >= "
        f"{PAGE_RATIO_FLOOR}x fewer page requests (and stays bitwise-equal)",
    )
    parser.add_argument(
        "--async",
        dest="run_async",
        action="store_true",
        help="also benchmark background-worker dispatch (submit latency "
        "vs drain throughput) and the zero-cost cache replay",
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="also benchmark per-table engine domains on 2 latency-backed "
        f"tables x {PAR_WORKERS} workers and fail (exit 1) below "
        f"{PARALLEL_SPEEDUP_FLOOR}x over the global engine lock",
    )
    parser.add_argument(
        "--cursor",
        action="store_true",
        help="also benchmark elevator (shared-cursor) boarding against "
        "window-boundary batching under sustained arrivals and fail "
        f"(exit 1) below {ELEVATOR_PAGE_FLOOR}x fewer pages",
    )
    parser.add_argument(
        "--observability",
        action="store_true",
        help="also benchmark the telemetry layer's drain overhead against "
        f"obs.disabled() and fail (exit 1) above {OBS_OVERHEAD_CEILING_PCT}% "
        "or on any weight divergence",
    )
    parser.add_argument(
        "--disk",
        action="store_true",
        help="also re-prove the shared-scan claims on real storage: the "
        "table in a SQLite-WAL heap file, fused still >= "
        f"{PAGE_RATIO_FLOOR}x fewer pages, releases bitwise-equal to the "
        "in-memory backend (plus a warm-vs-cold pool sweep note)",
    )
    parser.add_argument(
        "--http",
        action="store_true",
        help="also benchmark the repro-api/v1 HTTP front-end vs the "
        f"in-process verbs and fail (exit 1) above a "
        f"{HTTP_SUBMIT_P99_CEILING_S * 1e3:.0f} ms submit p99, below "
        f"{HTTP_THROUGHPUT_FLOOR}x end-to-end throughput, or on any "
        "weight divergence",
    )
    parser.add_argument(
        "--queue",
        action="store_true",
        help=f"also print the submit-latency note at {QUEUE_JOBS} queued "
        "jobs (informational, never gates)",
    )
    parser.add_argument(
        "--durability",
        action="store_true",
        help="also print the per-window autosave note — append-only log "
        "vs full snapshot at growing history (informational, never gates)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI-sized run ({SMOKE_JOBS} jobs, m={SMOKE_M}): same gates, "
        "no BENCH_hotloops.json update",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="also merge per-gate summaries (value/floor/passed) into this "
        "JSON file — written at any shape, for CI artifacts + step summary",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        _set_shape(SMOKE_JOBS, SMOKE_M, SMOKE_D)
        _set_parallel_shape(SMOKE_PAR_M, SMOKE_PAR_LATENCY)
        print(f"SMOKE mode: {JOBS} jobs, m={M}, d={D} (gates unchanged)")
    status = bench_service(args.gate, write=not args.smoke, report=args.report)
    if status == 0 and args.run_async:
        status = bench_async(args.gate, write=not args.smoke, report=args.report)
    if status == 0 and args.parallel:
        status = bench_parallel(args.gate, write=not args.smoke, report=args.report)
    if status == 0 and args.cursor:
        status = bench_cursor(args.gate, write=not args.smoke, report=args.report)
    if status == 0 and args.observability:
        status = bench_observability(
            args.gate, write=not args.smoke, report=args.report
        )
    if status == 0 and args.disk:
        status = bench_disk(args.gate, write=not args.smoke, report=args.report)
    if status == 0 and args.http:
        status = bench_http(args.gate, write=not args.smoke, report=args.report)
    if status == 0 and args.queue:
        status = bench_queue(write=not args.smoke)
    if status == 0 and args.durability:
        status = bench_durability(write=not args.smoke)
    return status


if __name__ == "__main__":
    sys.exit(main())
