"""Permutation-based stochastic gradient descent (PSGD).

This is the black-box optimizer the paper's bolt-on algorithms wrap: the
standard ``PSGD(S)`` invoked at line 2 of Algorithms 1 and 2. It supports
every extension the analysis covers (Section 3.2.3):

* k passes over the data, cycling through a random permutation;
* mini-batching by partitioning the permuted data into chunks of size b;
* projected updates onto a convex constraint set (equation (7));
* model averaging (uniform, suffix, or custom coefficients — Lemma 10);
* a fresh permutation per pass (optional);
* convergence-tolerance early stopping (the "k is oblivious" strategy of
  Section 4.3 for the strongly convex case).

Two hooks exist specifically so that the *white-box* baselines (SCS13 and
BST14) can be expressed on top of the same engine:

* ``gradient_noise`` — called once per mini-batch update; returns a vector
  added to the gradient before the step (SCS13/BST14 per-iteration noise);
* ``example_sampler`` — replaces permutation order with i.i.d. sampling
  (BST14 samples ``i_t ~ [m]`` uniformly at each step).

The engine is deliberately *deterministic given its generator*: the paper's
privacy proof (Lemma 5) fixes the randomness sequence r and compares runs on
neighbouring datasets, and our sensitivity tests do exactly that by passing
an explicit permutation.

Two execution paths
-------------------

``PSGDConfig.execution`` selects how each mini-batch gradient is computed:

* ``"vectorized"`` (default) — the permuted dataset is materialized once
  per pass as contiguous ``(X[order], y[order])`` blocks; each update
  slices one mini-batch matrix out of it and takes a single
  ``Loss.batch_gradient`` step. This is the block-at-a-time discipline that
  makes an epoch run at NumPy speed instead of interpreter speed.
* ``"scalar"`` — the per-example reference semantics: every gradient is an
  individual ``Loss.gradient`` call, accumulated and averaged per batch.
  This path exists so the equivalence test suite can pin the fast path to
  the semantics the privacy proof reasons about.

**Determinism contract**: both paths consume the generator identically
(permutations first, then one optional ``example_sampler`` and one optional
``gradient_noise`` call per update, in update order), visit examples in the
same permutation order, and average each mini-batch before stepping. Given
the same randomness the two paths therefore produce the same iterate
sequence up to floating-point rounding of the batch sum, which
``tests/test_vectorized_equivalence.py`` bounds at ``atol=1e-12``. Run
``python benchmarks/bench_hotloops.py --compare-paths`` for the measured
speedup (and the regression gate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.optim.losses import Loss, fusion_groups
from repro.optim.projection import IdentityProjection, Projection, rows_projector
from repro.optim.schedules import StepSizeSchedule
from repro.utils.rng import RandomState, as_generator, spawn_generators
from repro.utils.validation import check_matrix_labels, check_positive_int

#: Signature of the per-update noise hook: (t, dimension, rng) -> noise vector.
GradientNoise = Callable[[int, int, np.random.Generator], np.ndarray]

#: Signature of the index sampler hook: (t, m, rng) -> array of row indices.
ExampleSampler = Callable[[int, int, np.random.Generator], np.ndarray]


@dataclass
class PSGDResult:
    """Everything a caller may want to know about one PSGD run."""

    #: Final iterate w_T (after projection), or the averaged model if
    #: averaging was requested.
    model: np.ndarray
    #: Final iterate w_T regardless of averaging.
    final_iterate: np.ndarray
    #: Number of gradient updates performed.
    updates: int
    #: Number of completed passes (may be < k under early stopping).
    passes_completed: int
    #: Training loss after each pass (empty unless track_loss).
    pass_losses: List[float] = field(default_factory=list)
    #: True when the convergence tolerance stopped the run early.
    converged_early: bool = False
    #: All iterates, recorded only when ``record_iterates`` was set.
    iterates: Optional[List[np.ndarray]] = None


@dataclass
class PSGDConfig:
    """Hyper-parameters of a PSGD run (Table 1 of the paper).

    ``passes`` is k, ``batch_size`` is b. ``average`` selects model
    averaging: ``None`` returns the last iterate, ``"uniform"`` returns
    ``(1/T) sum_t w_t``, ``"suffix"`` averages the last ``ceil(log2 T)``
    iterates (the paper's two examples in Lemma 10).
    """

    schedule: StepSizeSchedule
    passes: int = 1
    batch_size: int = 1
    projection: Projection = field(default_factory=IdentityProjection)
    average: Optional[str] = None
    fresh_permutation_each_pass: bool = False
    #: Early-stop when the relative decrease of the pass loss falls below
    #: this tolerance (None disables; implies track_loss).
    convergence_tolerance: Optional[float] = None
    track_loss: bool = False
    record_iterates: bool = False
    #: "vectorized" takes one matrix step per mini-batch; "scalar" replays
    #: the per-example reference semantics (see module docstring).
    execution: str = "vectorized"

    def __post_init__(self) -> None:
        check_positive_int(self.passes, "passes")
        check_positive_int(self.batch_size, "batch_size")
        if self.average not in (None, "uniform", "suffix"):
            raise ValueError(
                f"average must be None, 'uniform' or 'suffix', got {self.average!r}"
            )
        if self.execution not in ("vectorized", "scalar"):
            raise ValueError(
                f"execution must be 'vectorized' or 'scalar', got {self.execution!r}"
            )
        if self.convergence_tolerance is not None:
            if self.convergence_tolerance <= 0:
                raise ValueError("convergence_tolerance must be positive")


def minibatch_slices(m: int, batch_size: int) -> List[slice]:
    """Partition ``range(m)`` into consecutive chunks of size ``batch_size``.

    The final chunk may be smaller when b does not divide m; the paper
    assumes divisibility "for simplicity". Note a short tail batch weights
    each of its examples by ``1/(m mod b)`` — *more* than ``1/b`` — so the
    mini-batch sensitivity refinement must divide by the worst-case
    ``min(b, m mod b)``; :func:`repro.core.sensitivity.
    effective_minibatch_divisor` is the single source of truth for that
    divisor.
    """
    check_positive_int(m, "m")
    check_positive_int(batch_size, "batch_size")
    return [slice(start, min(start + batch_size, m)) for start in range(0, m, batch_size)]


class PSGD:
    """The permutation-based SGD engine.

    Parameters
    ----------
    loss:
        Per-example loss providing gradients.
    config:
        Run hyper-parameters.
    gradient_noise / example_sampler:
        Baseline hooks; see module docstring. Leaving both ``None`` gives
        the plain PSGD of the paper (the black box of Algorithms 1–2).
    """

    def __init__(
        self,
        loss: Loss,
        config: PSGDConfig,
        gradient_noise: Optional[GradientNoise] = None,
        example_sampler: Optional[ExampleSampler] = None,
    ):
        self.loss = loss
        self.config = config
        self.gradient_noise = gradient_noise
        self.example_sampler = example_sampler

    # -- public API -----------------------------------------------------------

    def run(
        self,
        X: np.ndarray,
        y: np.ndarray,
        initial: Optional[np.ndarray] = None,
        random_state: RandomState = None,
        permutation: Optional[Sequence[int]] = None,
    ) -> PSGDResult:
        """Run PSGD and return the resulting model.

        ``permutation`` overrides the internally sampled permutation — used
        by the sensitivity tests, which must replay identical randomness on
        neighbouring datasets. When ``fresh_permutation_each_pass`` is set
        and a fixed permutation is supplied, the same fixed permutation is
        used every pass (fixing randomness trumps refreshing it).
        """
        X, y = check_matrix_labels(X, y)
        m, d = X.shape
        rng = as_generator(random_state)
        cfg = self.config

        w = self._initial_hypothesis(initial, d)
        slices = minibatch_slices(m, cfg.batch_size)
        total_updates = cfg.passes * len(slices)
        # One vectorized schedule evaluation per run instead of a Python
        # rate(t) call per step; rates(n)[t-1] == rate(t) exactly (the
        # schedule property tests pin that), so this is a pure speedup.
        rates = cfg.schedule.rates(total_updates)

        averager = _ModelAverager(cfg.average, total_updates)
        iterates: Optional[List[np.ndarray]] = [] if cfg.record_iterates else None
        pass_losses: List[float] = []
        track_loss = cfg.track_loss or cfg.convergence_tolerance is not None

        t = 0
        converged_early = False
        passes_completed = 0
        order = self._resolve_permutation(permutation, m, rng)

        # The vectorized path gathers the permuted dataset into contiguous
        # blocks once per permutation, so every mini-batch below is a cheap
        # slice view instead of a fancy-indexed copy. (With an
        # example_sampler the batch rows are unknowable up front, so the
        # gather happens per update in _batch_arrays instead.)
        use_blocks = cfg.execution == "vectorized" and self.example_sampler is None
        Xp = X[order] if use_blocks else None
        yp = y[order] if use_blocks else None

        for pass_index in range(cfg.passes):
            if cfg.fresh_permutation_each_pass and permutation is None and pass_index > 0:
                order = rng.permutation(m)
                if use_blocks:
                    Xp, yp = X[order], y[order]
            for sl in slices:
                t += 1
                batch_X, batch_y = self._batch_arrays(X, y, Xp, yp, order, sl, t, rng)
                w = self._update(w, batch_X, batch_y, t, float(rates[t - 1]), rng)
                averager.observe(t, w)
                if iterates is not None:
                    iterates.append(w.copy())
            passes_completed += 1
            if track_loss:
                pass_losses.append(self.loss.batch_value(w, X, y))
                if self._should_stop(pass_losses, cfg.convergence_tolerance):
                    converged_early = True
                    break

        final = w
        model = averager.result() if cfg.average else final
        return PSGDResult(
            model=model,
            final_iterate=final,
            updates=t,
            passes_completed=passes_completed,
            pass_losses=pass_losses,
            converged_early=converged_early,
            iterates=iterates,
        )

    # -- internals --------------------------------------------------------------

    def _initial_hypothesis(self, initial: Optional[np.ndarray], d: int) -> np.ndarray:
        if initial is None:
            w = np.zeros(d, dtype=np.float64)
        else:
            w = np.array(initial, dtype=np.float64, copy=True)
            if w.shape != (d,):
                raise ValueError(
                    f"initial hypothesis has shape {w.shape}, expected ({d},)"
                )
        return self.config.projection(w)

    def _resolve_permutation(
        self, permutation: Optional[Sequence[int]], m: int, rng: np.random.Generator
    ) -> np.ndarray:
        if permutation is None:
            return rng.permutation(m)
        order = np.asarray(permutation, dtype=np.int64)
        if order.shape != (m,) or sorted(order.tolist()) != list(range(m)):
            raise ValueError("permutation must be a rearrangement of range(m)")
        return order

    def _batch_arrays(
        self,
        X: np.ndarray,
        y: np.ndarray,
        Xp: Optional[np.ndarray],
        yp: Optional[np.ndarray],
        order: np.ndarray,
        sl: slice,
        t: int,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Materialize the mini-batch for update ``t``.

        All three sources yield identical row values, so the execution paths
        see the same batch: the sampler hook (one rng call, both paths),
        contiguous slices of the pre-permuted blocks (vectorized), or a
        per-batch gather through the permutation (scalar reference).
        """
        if self.example_sampler is not None:
            batch_indices = np.atleast_1d(
                np.asarray(self.example_sampler(t, X.shape[0], rng), dtype=np.int64)
            )
            return X[batch_indices], y[batch_indices]
        if Xp is not None:
            assert yp is not None
            return Xp[sl], yp[sl]
        batch_indices = order[sl]
        return X[batch_indices], y[batch_indices]

    def _update(
        self,
        w: np.ndarray,
        batch_X: np.ndarray,
        batch_y: np.ndarray,
        t: int,
        eta: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        gradient = self._batch_gradient(w, batch_X, batch_y)
        if self.gradient_noise is not None:
            gradient = gradient + self.gradient_noise(t, w.shape[0], rng)
        return self.config.projection(w - eta * gradient)

    def _batch_gradient(
        self, w: np.ndarray, batch_X: np.ndarray, batch_y: np.ndarray
    ) -> np.ndarray:
        if self.config.execution == "vectorized":
            return self.loss.batch_gradient(w, batch_X, batch_y)
        # Scalar reference: the Loss base-class row loop (one gradient call
        # per example, accumulated then averaged — the semantics Lemma 5's
        # proof walks through), bypassing any vectorized override.
        return Loss.batch_gradient(self.loss, w, batch_X, batch_y)

    @staticmethod
    def _should_stop(pass_losses: List[float], tolerance: Optional[float]) -> bool:
        if tolerance is None or len(pass_losses) < 2:
            return False
        previous, current = pass_losses[-2], pass_losses[-1]
        scale = max(abs(previous), 1e-12)
        return (previous - current) / scale < tolerance


class _ModelAverager:
    """Streaming model averaging for the three supported modes."""

    def __init__(self, mode: Optional[str], total_updates: int):
        self.mode = mode
        self.total = total_updates
        self._sum: Optional[np.ndarray] = None
        self._count = 0
        # "suffix": average the last ceil(log2(T)) iterates (>= 1).
        self._suffix_start = (
            total_updates - max(1, int(np.ceil(np.log2(max(2, total_updates)))))
            if mode == "suffix"
            else 0
        )

    def observe(self, t: int, w: np.ndarray) -> None:
        if self.mode is None:
            return
        if self.mode == "suffix" and t <= self._suffix_start:
            return
        if self._sum is None:
            self._sum = w.astype(np.float64, copy=True)
        else:
            self._sum += w
        self._count += 1

    def result(self) -> np.ndarray:
        if self._sum is None or self._count == 0:
            raise RuntimeError("no iterates observed; cannot average")
        return self._sum / self._count

    def coefficients(self) -> np.ndarray:
        """The a_t sequence of Lemma 10 implied by this averaging mode."""
        coeffs = np.zeros(self.total, dtype=np.float64)
        if self.mode is None:
            coeffs[-1] = 1.0
        elif self.mode == "uniform":
            coeffs[:] = 1.0 / self.total
        else:
            length = self.total - self._suffix_start
            coeffs[self._suffix_start :] = 1.0 / length
        return coeffs


def scan_compatibility_key(
    batch_size: int,
    passes: int,
    fresh_permutation_each_pass: bool = False,
) -> tuple:
    """Hashable signature of the scan-lockstep knobs of a fused run.

    Two training requests can ride ONE fused :class:`MultiModelPSGD` /
    :class:`~repro.rdbms.uda.MultiSGDUDA` scan iff they agree on
    everything that defines the scan *itself*: the mini-batch boundaries
    (``batch_size``), the number of passes the scan makes, and whether the
    permutation refreshes each pass. Everything else — loss,
    regularization, schedule, projection, averaging, noise streams — is
    per-model state (:class:`ModelSpec`) and never blocks fusion. The
    training service's shared-scan scheduler groups queued jobs by this
    key (plus the target table); anything not sharing a key falls back to
    a sequential dispatch.
    """
    return (
        check_positive_int(batch_size, "batch_size"),
        check_positive_int(passes, "passes"),
        bool(fresh_permutation_each_pass),
    )


def elevator_compatibility_key(batch_size: int, passes: int) -> tuple:
    """What a shared-*cursor* (elevator) ride requires jobs to agree on:
    nothing beyond the table.

    The fused-window constraint above exists because lockstep fusion
    shares one mini-batch phase and one epoch phase across all models.
    An elevator ride shares only the *page stream*: each rider carries
    its own :class:`~repro.rdbms.uda.SGDUDA` state — its own batch
    phase, its own epoch counter anchored at its boarding offset — so
    heterogeneous batch sizes and pass counts board the same cursor
    loop. The arguments are validated (they still must be well-formed
    training requests) but do not appear in the key; the function exists
    so the relaxation is explicit, documented, and testable at the same
    layer that defines the fused-window constraint.
    """
    check_positive_int(batch_size, "batch_size")
    check_positive_int(passes, "passes")
    return ()


@dataclass
class ModelSpec:
    """One model of a fused multi-model run (its *per-model* knobs).

    The fused engine shares the scan (permutation order, mini-batch
    boundaries, pass count cap) across models; everything that may vary
    per model lives here. ``passes`` may undercut the engine's scan passes
    (a k-grid trains k=5 and k=10 candidates in one 10-pass scan: the k=5
    rows simply freeze after their fifth pass). ``gradient_noise`` is the
    same hook as on :class:`PSGD`, called once per update with the model's
    *own* generator so each model's noise stream is exactly what its
    standalone run would have consumed.
    """

    loss: Loss
    schedule: StepSizeSchedule
    projection: Projection = field(default_factory=IdentityProjection)
    passes: Optional[int] = None
    average: Optional[str] = None
    gradient_noise: Optional[GradientNoise] = None


@dataclass
class MultiModelResult:
    """Everything a caller may want to know about one fused run."""

    #: Released models, one row per spec (averaged where requested).
    models: np.ndarray
    #: Final iterates regardless of averaging; shape (K, d).
    final_iterates: np.ndarray
    #: Gradient updates each model performed (differs when passes do).
    updates_per_model: np.ndarray
    #: Scan-level update steps (the max over models).
    updates: int
    #: Scan passes completed.
    passes_completed: int

    def __len__(self) -> int:
        return self.models.shape[0]


class MultiModelPSGD:
    """Train K models in **one data scan** — the fused execution engine.

    The paper's workloads are inherently many-model (hyper-parameter
    grids, per-partition private tuning, one-vs-rest multiclass), yet each
    model classically pays for its own pass over the data. This engine
    carries a ``(K, d)`` weight matrix instead: one scan feeds every
    model, and each mini-batch becomes a single batched contraction
    (``Loss.batch_gradient_multi``) rather than K small per-model calls —
    K scans + K·(m/b) GEMVs turn into 1 scan + (m/b) GEMMs.

    Two data layouts are supported:

    * **shared** — ``X`` is ``(m, d)`` and every model reads the same rows
      (labels may still differ per model via a ``(K, m)`` matrix — the OvR
      relabeling). All models follow one shared permutation; the batched
      gradient is a true GEMM.
    * **stacked** — ``X`` is ``(K, m, d)``: per-model datasets of equal
      size (disjoint tuning partitions). Permutations are per-model, and
      the contraction is the ``kn,knd->kd`` einsum.

    **Determinism contract.** Models whose losses share a
    :meth:`~repro.optim.losses.Loss.fusion_key` are evaluated through one
    representative instance with a per-model regularization vector;
    everything else (schedules via exact ``rates`` vectors, projections,
    per-model noise generators consumed once per update in update order)
    reproduces K independent vectorized PSGD runs on the same
    permutation(s). ``tests/test_multimodel_equivalence.py`` pins fused ==
    sequential at ``rtol=0, atol=1e-12`` across losses × schedules ×
    noisy/noiseless × heterogeneous per-model hyper-parameters.

    Unsupported (use per-model :class:`PSGD`, the reference oracle):
    ``example_sampler``, convergence-tolerance early stopping, loss
    tracking, and per-model batch sizes (batch boundaries define the
    shared scan).
    """

    def __init__(
        self,
        specs: Sequence[ModelSpec],
        passes: Optional[int] = None,
        batch_size: int = 1,
        fresh_permutation_each_pass: bool = False,
    ):
        if len(specs) == 0:
            raise ValueError("at least one ModelSpec is required")
        self.specs = list(specs)
        declared = [spec.passes for spec in self.specs if spec.passes is not None]
        for value in declared:
            check_positive_int(value, "ModelSpec.passes")
        if passes is None:
            passes = max(declared) if declared else 1
        self.passes = check_positive_int(passes, "passes")
        if any(value > self.passes for value in declared):
            raise ValueError(
                "a ModelSpec.passes exceeds the engine's scan passes "
                f"({self.passes}); raise the engine passes"
            )
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.fresh_permutation_each_pass = bool(fresh_permutation_each_pass)
        for spec in self.specs:
            if spec.average not in (None, "uniform", "suffix"):
                raise ValueError(
                    f"average must be None, 'uniform' or 'suffix', got {spec.average!r}"
                )

    # -- public API -----------------------------------------------------------

    def run(
        self,
        X: np.ndarray,
        y: np.ndarray,
        initial: Optional[np.ndarray] = None,
        random_state: RandomState = None,
        permutation: Optional[np.ndarray] = None,
        noise_random_states: Optional[Sequence[RandomState]] = None,
    ) -> MultiModelResult:
        """Run the fused scan and return all K models.

        ``random_state`` drives the scan permutation(s). Per-model noise
        generators come from ``noise_random_states`` (one entry per spec);
        when omitted they are spawned from the master generator *before*
        any permutation is drawn. ``permutation`` fixes the scan order for
        replay: a single ``(m,)`` arrangement (required form for shared
        ``X``) or a ``(K, m)`` matrix of per-model arrangements for
        stacked ``X``.
        """
        X, Y, y_shared, stacked, m, d = self._canonicalize_data(X, y)
        K = len(self.specs)
        rng = as_generator(random_state)
        noise_rngs = self._resolve_noise_rngs(noise_random_states, rng)

        W = self._initial_matrix(initial, K, d)
        slices = minibatch_slices(m, self.batch_size)
        n_batches = len(slices)
        passes_per_model = np.array(
            [spec.passes if spec.passes is not None else self.passes for spec in self.specs],
            dtype=np.int64,
        )
        updates_per_model = passes_per_model * n_batches
        etas = np.zeros((K, self.passes * n_batches), dtype=np.float64)
        for k, spec in enumerate(self.specs):
            etas[k, : updates_per_model[k]] = spec.schedule.rates(int(updates_per_model[k]))

        averagers = [
            _ModelAverager(spec.average, int(updates_per_model[k]))
            for k, spec in enumerate(self.specs)
        ]
        # Only models that actually average need the per-step observe call;
        # the common average=None fleet skips the loop entirely.
        averaging_models = np.array(
            [k for k, spec in enumerate(self.specs) if spec.average is not None],
            dtype=np.int64,
        )

        orders = self._resolve_permutations(permutation, m, K, stacked, rng)
        Xp, Yp = self._gather(X, Y, y_shared, stacked, orders)

        t = 0
        passes_completed = 0
        groups: Optional[list] = None
        active_count = -1
        for pass_index in range(self.passes):
            if (
                self.fresh_permutation_each_pass
                and permutation is None
                and pass_index > 0
            ):
                orders = self._resolve_permutations(None, m, K, stacked, rng)
                Xp, Yp = self._gather(X, Y, y_shared, stacked, orders)
            active = np.flatnonzero(passes_per_model > pass_index)
            if active.size == 0:
                break
            if active.size != active_count:
                groups = self._build_groups(active)
                active_count = int(active.size)
            observing = [
                int(k) for k in np.intersect1d(averaging_models, active)
            ]
            for sl in slices:
                t += 1
                self._fused_step(
                    W, Xp, Yp, y_shared, stacked, sl, t, etas, groups, noise_rngs
                )
                for k in observing:
                    averagers[k].observe(t, W[k])
            passes_completed += 1

        final = W.copy()
        models = np.stack(
            [
                averagers[k].result() if spec.average else final[k]
                for k, spec in enumerate(self.specs)
            ]
        )
        return MultiModelResult(
            models=models,
            final_iterates=final,
            updates_per_model=updates_per_model,
            updates=t,
            passes_completed=passes_completed,
        )

    # -- internals ------------------------------------------------------------

    def _canonicalize_data(self, X, y):
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        K = len(self.specs)
        if X.ndim == 2:
            m, d = X.shape
            stacked = False
            if y.ndim == 1:
                if y.shape != (m,):
                    raise ValueError(f"labels must have shape ({m},), got {y.shape}")
                return X, y, True, stacked, m, d
            if y.shape != (K, m):
                raise ValueError(
                    f"per-model labels must have shape ({K}, {m}), got {y.shape}"
                )
            return X, y, False, stacked, m, d
        if X.ndim == 3:
            if X.shape[0] != K:
                raise ValueError(
                    f"stacked features must have shape ({K}, m, d), got {X.shape}"
                )
            m, d = X.shape[1], X.shape[2]
            if y.shape != (K, m):
                raise ValueError(
                    f"stacked labels must have shape ({K}, {m}), got {y.shape}"
                )
            return X, y, False, True, m, d
        raise ValueError(f"X must be (m, d) or (K, m, d), got shape {X.shape}")

    def _resolve_noise_rngs(
        self, noise_random_states: Optional[Sequence[RandomState]], rng: np.random.Generator
    ) -> list:
        K = len(self.specs)
        if not any(spec.gradient_noise is not None for spec in self.specs):
            return [None] * K
        if noise_random_states is None:
            return spawn_generators(rng, K)
        if len(noise_random_states) != K:
            raise ValueError(
                f"noise_random_states must have one entry per model ({K}), "
                f"got {len(noise_random_states)}"
            )
        return [as_generator(state) for state in noise_random_states]

    def _initial_matrix(self, initial: Optional[np.ndarray], K: int, d: int) -> np.ndarray:
        if initial is None:
            W = np.zeros((K, d), dtype=np.float64)
        else:
            W = np.array(initial, dtype=np.float64, copy=True)
            if W.shape != (K, d):
                raise ValueError(
                    f"initial hypotheses have shape {W.shape}, expected ({K}, {d})"
                )
        for k, spec in enumerate(self.specs):
            W[k] = spec.projection(W[k])
        return W

    def _resolve_permutations(
        self,
        permutation: Optional[np.ndarray],
        m: int,
        K: int,
        stacked: bool,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return the scan order: (m,) shared, or (K, m) when stacked."""
        if permutation is None:
            if stacked:
                return np.stack([rng.permutation(m) for _ in range(K)])
            return rng.permutation(m)
        order = np.asarray(permutation, dtype=np.int64)
        expected = list(range(m))
        if stacked and order.ndim == 2:
            if order.shape != (K, m):
                raise ValueError(f"permutation matrix must be ({K}, {m}), got {order.shape}")
            for row in order:
                if sorted(row.tolist()) != expected:
                    raise ValueError("each permutation row must rearrange range(m)")
            return order
        if order.shape != (m,) or sorted(order.tolist()) != expected:
            raise ValueError("permutation must be a rearrangement of range(m)")
        if stacked:
            return np.broadcast_to(order, (K, m))
        return order

    def _gather(self, X, Y, y_shared, stacked, orders):
        """Materialize permuted contiguous blocks, once per permutation."""
        if stacked:
            Xp = np.stack([X[k][orders[k]] for k in range(X.shape[0])])
            Yp = np.stack([Y[k][orders[k]] for k in range(X.shape[0])])
            return Xp, Yp
        Xp = X[orders]
        Yp = Y[orders] if y_shared else Y[:, orders]
        return Xp, Yp

    def _build_groups(self, active: np.ndarray) -> list:
        """Partition active model indices into fusable gradient groups.

        Delegates to :func:`repro.optim.losses.fusion_groups`: models whose
        losses share a fusion key are evaluated through one
        ``batch_gradient_multi`` call with a per-model lambda vector; a
        ``None`` key keeps a model in its own singleton group (still served
        by its own loss's multi method — the row-loop fallback for
        scalar-only losses). Each group also carries its compiled row
        projector.
        """
        groups = []
        for rep, relative, lams in fusion_groups([self.specs[k].loss for k in active]):
            idx = active[relative]
            projector = rows_projector([self.specs[k].projection for k in idx])
            groups.append((rep, idx, lams, projector))
        return groups

    def _fused_step(self, W, Xp, Yp, y_shared, stacked, sl, t, etas, groups, noise_rngs):
        """One mini-batch update of every active model (grouped GEMMs)."""
        if stacked:
            Xb = Xp[:, sl]
            Yb = Yp[:, sl]
        else:
            Xb = Xp[sl]
            Yb = Yp[sl] if y_shared else Yp[:, sl]
        d = W.shape[1]
        for rep, idx, lams, projector in groups:
            if stacked:
                Xg, Yg = Xb[idx], Yb[idx]
            elif y_shared:
                Xg, Yg = Xb, Yb
            else:
                Xg, Yg = Xb, Yb[idx]
            Wg = W[idx]
            Gg = rep.batch_gradient_multi(Wg, Xg, Yg, regularization=lams)
            for i, k in enumerate(idx.tolist()):
                noise_hook = self.specs[k].gradient_noise
                if noise_hook is not None:
                    Gg[i] = Gg[i] + noise_hook(t, d, noise_rngs[k])
            Wg = Wg - etas[idx, t - 1][:, None] * Gg
            if projector is not None:
                Wg = projector(Wg)
            W[idx] = Wg


def run_psgd(
    loss: Loss,
    X: np.ndarray,
    y: np.ndarray,
    schedule: StepSizeSchedule,
    passes: int = 1,
    batch_size: int = 1,
    projection: Optional[Projection] = None,
    average: Optional[str] = None,
    random_state: RandomState = None,
    permutation: Optional[Sequence[int]] = None,
    execution: str = "vectorized",
) -> PSGDResult:
    """Convenience function: one-call PSGD with the common options."""
    config = PSGDConfig(
        schedule=schedule,
        passes=passes,
        batch_size=batch_size,
        projection=projection if projection is not None else IdentityProjection(),
        average=average,
        execution=execution,
    )
    return PSGD(loss, config).run(
        X, y, random_state=random_state, permutation=permutation
    )
