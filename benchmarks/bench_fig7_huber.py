"""Figure 7 — Huber SVM with private tuning (Appendix B).

Same protocol as Figure 6 but with the Huber-smoothed hinge loss
(h = 0.1). The paper reports the same qualitative ordering as for
logistic regression, with ours up to 6× better than BST14 on MNIST.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.figures import accuracy_figure_row
from repro.evaluation.reporting import format_series
from repro.evaluation.scenarios import Scenario
from repro.tuning.grid import paper_grid

from bench_util import run_once, write_report

MNIST_EPS = (0.5, 2.0, 4.0)
BINARY_EPS = (0.05, 0.2, 0.4)
#: Reduced tuning grid (4 candidates -> 5 data slices) so each Algorithm-3
#: candidate trains on a usable share of the scaled-down stand-ins.
GRID = paper_grid(regularization=(0.001, 0.01))


def _row(dataset, scale, epsilons, tuning="private"):
    return accuracy_figure_row(
        dataset,
        tuning=tuning,
        scale=scale,
        scenarios=tuple(Scenario),
        epsilons=epsilons,
        model="huber",
        passes=10,
        batch_size=50,
        grid=GRID,
        seed=0,
    )


def _check_and_write(name, dataset, results):
    blocks = [
        format_series(
            f"Figure 7 [{dataset}] {sweep.scenario.value} (Huber SVM, h=0.1)",
            "epsilon", sweep.epsilons, sweep.series,
        )
        for sweep in results
    ]
    write_report(name, "\n\n".join(blocks))
    for sweep in results:
        ours = float(np.mean(sweep.series["ours"]))
        scs = float(np.mean(sweep.series["scs13"]))
        assert ours >= scs - 0.05, f"{sweep.scenario.name}: ours {ours} scs {scs}"
        if "bst14" in sweep.series:
            bst = float(np.mean(sweep.series["bst14"]))
            assert ours >= bst - 0.05, (
                f"{sweep.scenario.name}: ours {ours} bst14 {bst}"
            )


def bench_fig7_mnist_huber(benchmark):
    results = run_once(benchmark, _row, "mnist", 0.12, MNIST_EPS)
    _check_and_write("fig7_mnist_huber", "mnist-like", results)


def bench_fig7_protein_huber(benchmark):
    results = run_once(benchmark, _row, "protein", 0.1, BINARY_EPS)
    _check_and_write("fig7_protein_huber", "protein-like", results)


def bench_fig7_covertype_huber(benchmark):
    results = run_once(benchmark, _row, "covertype", 0.04, BINARY_EPS)
    _check_and_write("fig7_covertype_huber", "covertype-like", results)
