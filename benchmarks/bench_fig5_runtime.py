"""Figure 5 — runtime of the in-engine implementations.

Row 1: runtime vs number of epochs at b = 10.
Row 2: runtime vs mini-batch size for a single epoch.
Strongly convex (ε,δ)-DP setting, ε = 0.1, as in the paper's caption.

Runtimes are the cost model's simulated seconds of *executed* engine runs
(same counters a profiler would see); asserted shapes: ours ≈ noiseless,
SCS13/BST14 markedly slower at small b, gap vanishing at b = 500+.
"""

from __future__ import annotations


from repro.evaluation.figures import (
    figure5_runtime_vs_batch,
    figure5_runtime_vs_epochs,
    load_experiment_dataset,
)
from repro.evaluation.reporting import format_series

from bench_util import run_once, write_report

DATASETS = {"mnist": 0.02, "protein": 0.02, "covertype": 0.01}


def _train_ds(name, scale):
    return load_experiment_dataset(name, scale=scale, seed=0).train


def bench_fig5_row1_epochs(benchmark):
    def run_all():
        return {
            name: figure5_runtime_vs_epochs(
                _train_ds(name, scale), epoch_grid=(1, 5, 10, 20), batch_size=10
            )
            for name, scale in DATASETS.items()
        }

    figs = run_once(benchmark, run_all)
    blocks = []
    for name, fig in figs.items():
        blocks.append(
            format_series(
                f"Figure 5 row 1 [{name}]: simulated seconds vs epochs (b=10)",
                "epochs", fig["x"], fig["series"],
            )
        )
        series = fig["series"]
        # ours ~ noiseless at every epoch count; white-box slower.
        for i in range(len(fig["x"])):
            assert series["ours"][i] <= series["noiseless"][i] * 1.15
            assert series["scs13"][i] > series["ours"][i]
            assert series["bst14"][i] > series["ours"][i]
        # runtime grows with epochs for everyone.
        for values in series.values():
            assert values[-1] > values[0]
    write_report("fig5_row1_epochs", "\n\n".join(blocks))


def bench_fig5_row2_batch(benchmark):
    def run_all():
        return {
            name: figure5_runtime_vs_batch(
                _train_ds(name, scale), batch_grid=(1, 10, 100, 500), epochs=1
            )
            for name, scale in DATASETS.items()
        }

    figs = run_once(benchmark, run_all)
    blocks = []
    for name, fig in figs.items():
        blocks.append(
            format_series(
                f"Figure 5 row 2 [{name}]: simulated seconds vs batch size (1 epoch)",
                "batch", fig["x"], fig["series"],
            )
        )
        series = fig["series"]
        ratio_b1 = series["scs13"][0] / series["ours"][0]
        ratio_b500 = series["scs13"][-1] / series["ours"][-1]
        # Overhead large at b=1, practically gone at b=500 (the paper's
        # "runtime gap ... practically disappears").
        assert ratio_b1 > 1.5, f"{name}: ratio at b=1 {ratio_b1}"
        assert ratio_b500 < 1.15, f"{name}: ratio at b=500 {ratio_b500}"
        assert ratio_b1 > ratio_b500
    write_report("fig5_row2_batch", "\n\n".join(blocks))
