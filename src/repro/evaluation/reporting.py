"""Plain-text rendering of experiment output (the bench "figures")."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(rows: List[dict], columns: Sequence[str] | None = None) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {c: len(str(c)) for c in columns}
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for c in columns:
            value = row.get(c, "")
            text = f"{value:.4f}" if isinstance(value, float) else str(value)
            widths[c] = max(widths[c], len(text))
            cells.append(text)
        rendered.append(cells)
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    rule = "  ".join("-" * widths[c] for c in columns)
    body = "\n".join(
        "  ".join(cell.ljust(widths[c]) for cell, c in zip(cells, columns))
        for cells in rendered
    )
    return f"{header}\n{rule}\n{body}"


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
) -> str:
    """Render one figure panel: x on rows, one column per series."""
    rows = []
    for i, x in enumerate(x_values):
        row = {x_label: x}
        for name, values in series.items():
            row[name] = float(values[i])
        rows.append(row)
    return f"== {title} ==\n" + format_table(rows, [x_label, *series.keys()])


def series_summary(series: Dict[str, Sequence[float]]) -> Dict[str, float]:
    """Mean of each series — a compact shape check for assertions."""
    return {name: sum(values) / len(values) for name, values in series.items()}
