"""The growth recursion (Lemma 4) as an executable object.

Given the schedule of updates two neighbouring PSGD runs perform, this
module computes the *theoretical* upper bound on their divergence
``delta_T = ||w_T - w'_T||``. The sensitivity formulas of
:mod:`repro.core.sensitivity` are closed forms of exactly this recursion;
the test-suite cross-checks the two, and also checks both against the
*measured* divergence of real paired PSGD runs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.optim.losses import LossProperties
from repro.optim.operators import growth_recursion_step, operator_bounds
from repro.optim.schedules import StepSizeSchedule
from repro.utils.validation import check_positive_int


def divergence_bound(
    properties: LossProperties,
    schedule: StepSizeSchedule,
    m: int,
    passes: int,
    differing_position: int,
    batch_size: int = 1,
) -> float:
    """Upper bound on ``delta_T`` after k passes of PSGD over m examples.

    Parameters
    ----------
    properties:
        The (L, beta, gamma) triple of the loss.
    schedule:
        Step-size schedule; iterate ``t`` (1-based) uses ``schedule.rate(t)``.
    m:
        Training-set size.
    passes:
        Number of passes k over the data.
    differing_position:
        Position ``i* in {0, ..., ceil(m/b) - 1}`` of the *update step within
        a pass* that touches the differing example. With the paper's
        convention (a random permutation r with r(i) = i*), every pass hits
        the differing example at the same position.
    batch_size:
        Mini-batch size b; the differing example contributes ``2 sigma / b``
        instead of ``2 sigma`` (Section 3.2.3).

    Returns
    -------
    The Lemma 4 bound on ``||w_T - w'_T||``.
    """
    check_positive_int(m, "m")
    check_positive_int(passes, "passes")
    check_positive_int(batch_size, "batch_size")
    steps_per_pass = int(np.ceil(m / batch_size))
    if not 0 <= differing_position < steps_per_pass:
        raise ValueError(
            f"differing_position must be in [0, {steps_per_pass}), "
            f"got {differing_position}"
        )
    delta = 0.0
    t = 0
    for _ in range(passes):
        for position in range(steps_per_pass):
            t += 1
            bounds = operator_bounds(properties, schedule.rate(t))
            if position == differing_position:
                # Differing example seen once per pass: boundedness term,
                # shrunk by the *actual* size of this position's batch —
                # the tail batch (when b does not divide m) holds fewer
                # examples, so each is weighted more heavily, not less.
                actual_batch = min(batch_size, m - position * batch_size)
                scaled = type(bounds)(
                    expansiveness=bounds.expansiveness,
                    boundedness=bounds.boundedness / actual_batch,
                )
                delta = growth_recursion_step(delta, scaled, same_operator=False)
            else:
                delta = growth_recursion_step(delta, bounds, same_operator=True)
    return delta


def worst_case_divergence_bound(
    properties: LossProperties,
    schedule: StepSizeSchedule,
    m: int,
    passes: int,
    batch_size: int = 1,
) -> float:
    """``sup over differing positions`` of :func:`divergence_bound`.

    This is the quantity the output-perturbation mechanism must calibrate
    to (``sup_{S ~ S'} sup_r delta_T``). For constant steps any position is
    worst-case; for decreasing steps the earliest position dominates; we
    simply take the max over all positions, which is exact and still cheap
    (``O(k * m^2 / b^2)`` only in the worst case — callers with large m use
    the closed forms in :mod:`repro.core.sensitivity` instead).
    """
    steps_per_pass = int(np.ceil(m / batch_size))
    return max(
        divergence_bound(properties, schedule, m, passes, position, batch_size)
        for position in range(steps_per_pass)
    )


def averaged_divergence_bound(
    properties: LossProperties,
    schedule: StepSizeSchedule,
    m: int,
    passes: int,
    differing_position: int,
    coefficients: Sequence[float],
    batch_size: int = 1,
) -> float:
    """Lemma 10: divergence bound for an averaged model ``sum_t a_t w_t``.

    ``coefficients`` is the averaging sequence ``a_t`` (length T). The bound
    is ``sum_t a_t delta_t`` computed alongside the recursion.
    """
    check_positive_int(m, "m")
    check_positive_int(passes, "passes")
    check_positive_int(batch_size, "batch_size")
    steps_per_pass = int(np.ceil(m / batch_size))
    total = passes * steps_per_pass
    coeffs = np.asarray(coefficients, dtype=np.float64)
    if coeffs.shape != (total,):
        raise ValueError(
            f"coefficients must have length T = {total}, got {coeffs.shape}"
        )
    if np.any(coeffs < 0):
        raise ValueError("averaging coefficients must be non-negative")
    delta = 0.0
    weighted = 0.0
    t = 0
    for _ in range(passes):
        for position in range(steps_per_pass):
            t += 1
            bounds = operator_bounds(properties, schedule.rate(t))
            if position == differing_position:
                # Same tail-batch correction as divergence_bound above.
                actual_batch = min(batch_size, m - position * batch_size)
                scaled = type(bounds)(
                    expansiveness=bounds.expansiveness,
                    boundedness=bounds.boundedness / actual_batch,
                )
                delta = growth_recursion_step(delta, scaled, same_operator=False)
            else:
                delta = growth_recursion_step(delta, bounds, same_operator=True)
            weighted += coeffs[t - 1] * delta
    return weighted
