"""Variance-reduced SGD variants: SVRG and SAG.

Section 3.2 of the paper observes that the "randomness one at a time"
argument (Lemma 5) only needs *non-adaptivity* — the algorithm's random
choices must not depend on the data values — and notes that "more modern
SGD variants, such as Stochastic Variance Reduced Gradient (SVRG) and
Stochastic Average Gradient (SAG), are non-adaptive as well". This module
implements both so the substrate covers the paper's full claim:

* :class:`SVRG` (Johnson & Zhang 2013) — epochs anchored at a snapshot
  ``w~`` with full-gradient correction
  ``g_t = grad_i(w) - grad_i(w~) + full_grad(w~)``;
* :class:`SAG` (Le Roux, Schmidt & Bach 2012) — a running average of the
  most recent per-example gradients.

Both expose the same deterministic-randomness contract as PSGD (an
explicit index sequence can be injected), and the test-suite verifies the
non-adaptivity property directly: replaying the same randomness on
neighbouring datasets touches the differing example at identical steps.

These optimizers are provided as substrate; the paper proves sensitivity
bounds only for PSGD, so :mod:`repro.core.sensitivity` deliberately
refuses to calibrate noise for them (future work, Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.optim.losses import Loss
from repro.optim.projection import IdentityProjection, Projection
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_matrix_labels, check_positive, check_positive_int


@dataclass
class VarianceReducedResult:
    """Outcome of one SVRG/SAG run."""

    model: np.ndarray
    updates: int
    epochs_completed: int
    epoch_losses: List[float] = field(default_factory=list)


class SVRG:
    """Stochastic Variance Reduced Gradient.

    Each epoch: snapshot ``w~ = w``, compute the full gradient ``mu`` at
    the snapshot, then run ``updates_per_epoch`` corrected stochastic
    steps. The index stream is sampled up-front (non-adaptive) or injected
    by the caller.
    """

    def __init__(
        self,
        loss: Loss,
        eta: float,
        epochs: int = 5,
        updates_per_epoch: Optional[int] = None,
        projection: Optional[Projection] = None,
        track_loss: bool = False,
    ):
        self.loss = loss
        self.eta = check_positive(eta, "eta")
        self.epochs = check_positive_int(epochs, "epochs")
        self.updates_per_epoch = updates_per_epoch
        self.projection = projection if projection is not None else IdentityProjection()
        self.track_loss = track_loss

    def run(
        self,
        X: np.ndarray,
        y: np.ndarray,
        random_state: RandomState = None,
        indices: Optional[Sequence[int]] = None,
    ) -> VarianceReducedResult:
        """Optimize; ``indices`` (length epochs * updates_per_epoch)
        overrides the sampled index stream for replay tests."""
        X, y = check_matrix_labels(X, y)
        m, d = X.shape
        per_epoch = self.updates_per_epoch if self.updates_per_epoch else m
        rng = as_generator(random_state)
        if indices is None:
            stream = rng.integers(0, m, size=self.epochs * per_epoch)
        else:
            stream = np.asarray(indices, dtype=np.int64)
            if stream.shape != (self.epochs * per_epoch,):
                raise ValueError(
                    f"indices must have length {self.epochs * per_epoch}, "
                    f"got {stream.shape}"
                )
            if np.any(stream < 0) or np.any(stream >= m):
                raise ValueError("indices out of range")

        w = np.zeros(d)
        t = 0
        epoch_losses: List[float] = []
        for _ in range(self.epochs):
            snapshot = w.copy()
            mu = self.loss.batch_gradient(snapshot, X, y)
            for _ in range(per_epoch):
                i = int(stream[t])
                t += 1
                correction = (
                    self.loss.gradient(w, X[i], y[i])
                    - self.loss.gradient(snapshot, X[i], y[i])
                    + mu
                )
                w = self.projection(w - self.eta * correction)
            if self.track_loss:
                epoch_losses.append(self.loss.batch_value(w, X, y))
        return VarianceReducedResult(
            model=w, updates=t, epochs_completed=self.epochs,
            epoch_losses=epoch_losses,
        )


class SAG:
    """Stochastic Average Gradient.

    Maintains the last-seen gradient of every example and steps along
    their running average. Memory is ``O(m d)`` — fine for the in-memory
    analytics setting this substrate serves.
    """

    def __init__(
        self,
        loss: Loss,
        eta: float,
        epochs: int = 5,
        projection: Optional[Projection] = None,
        track_loss: bool = False,
    ):
        self.loss = loss
        self.eta = check_positive(eta, "eta")
        self.epochs = check_positive_int(epochs, "epochs")
        self.projection = projection if projection is not None else IdentityProjection()
        self.track_loss = track_loss

    def run(
        self,
        X: np.ndarray,
        y: np.ndarray,
        random_state: RandomState = None,
        indices: Optional[Sequence[int]] = None,
    ) -> VarianceReducedResult:
        X, y = check_matrix_labels(X, y)
        m, d = X.shape
        rng = as_generator(random_state)
        total = self.epochs * m
        if indices is None:
            stream = rng.integers(0, m, size=total)
        else:
            stream = np.asarray(indices, dtype=np.int64)
            if stream.shape != (total,):
                raise ValueError(f"indices must have length {total}, got {stream.shape}")
            if np.any(stream < 0) or np.any(stream >= m):
                raise ValueError("indices out of range")

        w = np.zeros(d)
        memory = np.zeros((m, d))
        seen = np.zeros(m, dtype=bool)
        gradient_sum = np.zeros(d)
        count_seen = 0
        epoch_losses: List[float] = []
        t = 0
        for _ in range(self.epochs):
            for _ in range(m):
                i = int(stream[t])
                t += 1
                fresh = self.loss.gradient(w, X[i], y[i])
                gradient_sum += fresh - memory[i]
                memory[i] = fresh
                if not seen[i]:
                    seen[i] = True
                    count_seen += 1
                w = self.projection(w - self.eta * gradient_sum / count_seen)
            if self.track_loss:
                epoch_losses.append(self.loss.batch_value(w, X, y))
        return VarianceReducedResult(
            model=w, updates=t, epochs_completed=self.epochs,
            epoch_losses=epoch_losses,
        )
