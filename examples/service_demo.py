#!/usr/bin/env python
"""The async training service: 50 mixed-tenant jobs, background workers,
shared scans, hard budgets, a result cache, and a durable registry.

The walkthrough the ROADMAP's service-layer section narrates:

1. two tables are registered with the service ("ratings" and "clicks");
2. four tenants get per-(principal, table) privacy budgets — mallory's
   is deliberately too small for her appetite;
3. 50 jobs are submitted to a *running* service (``start()`` launched
   background dispatch workers, so every ``submit()`` returns a job
   handle immediately): a mix of logistic/Huber losses, regularization
   strengths, priorities and seeds, plus one *unreleasable* job (a
   non-smooth hinge loss) and a tail of over-budget ones;
4. the workers train everything while the submitter is still free:
   compatible jobs fuse into shared scans (pages charged once per
   group), the unfusable stragglers run sequentially, the hinge job
   fails with its reservation refunded, and mallory's over-budget jobs
   are rejected having never touched a page;
5. resubmitting a completed job hits the cross-drain result cache — the
   same release comes back with 0 page requests and 0 ε re-spent;
6. the registry + budgets snapshot to disk, and a *restarted* service
   resumes: prior models served, budgets reconciled from committed
   receipts, the cache re-armed.

Every completed job's released weights are bitwise-identical to what the
job would have produced running alone — fusion, worker scheduling, the
cache, and even a process restart are invisible to tenants everywhere
except the page counters and the clock.

Run:  python examples/service_demo.py
"""

from __future__ import annotations

import tempfile
import time

from repro.data.synthetic import linearly_separable_binary
from repro.optim.losses import HingeLoss, HuberSVMLoss, LogisticLoss
from repro.service import JobStatus, TrainingService

EPS_PER_JOB = 0.05
PASSES, BATCH = 2, 25
WORKERS = 4


def build_service(state_dir=None) -> TrainingService:
    service = TrainingService(batching_window=32, chunk_size=128, scan_seed=7,
                              workers=WORKERS, state_dir=state_dir)
    ratings = linearly_separable_binary("ratings", 600, 10, 12, random_state=1).train
    clicks = linearly_separable_binary("clicks", 400, 10, 8, random_state=2).train
    service.register_table("ratings", ratings.features, ratings.labels)
    service.register_table("clicks", clicks.features, clicks.labels)

    # Budgets: alice and bob are comfortable, carol is tight, and mallory
    # gets 3 jobs' worth on ratings but will ask for far more.
    service.open_budget("alice", "ratings", 1.0)
    service.open_budget("alice", "clicks", 0.5)
    service.open_budget("bob", "ratings", 1.0)
    service.open_budget("bob", "clicks", 0.5)
    service.open_budget("carol", "ratings", 6 * EPS_PER_JOB)
    service.open_budget("mallory", "ratings", 3 * EPS_PER_JOB)
    return service


def submit_workload(service: TrainingService) -> list:
    records = []
    lambdas = [1e-4, 1e-3, 1e-2]
    # 1-20: alice & bob on ratings — all fusion-compatible (same
    # batch/passes), heterogeneous losses and regularization.
    for j in range(20):
        principal = "alice" if j % 2 == 0 else "bob"
        loss = (
            LogisticLoss(regularization=lambdas[j % 3])
            if j % 4 != 3
            else HuberSVMLoss(0.1, regularization=lambdas[j % 3])
        )
        records.append(service.submit(principal, "ratings", loss,
                                      epsilon=EPS_PER_JOB, passes=PASSES,
                                      batch_size=BATCH, seed=100 + j))
    # 21-32: the clicks table — a second fused group, higher priority.
    for j in range(12):
        principal = "alice" if j % 2 == 0 else "bob"
        records.append(service.submit(
            principal, "clicks", LogisticLoss(regularization=lambdas[j % 3]),
            epsilon=EPS_PER_JOB, passes=PASSES, batch_size=BATCH,
            priority=1, seed=200 + j))
    # 33-38: carol's ratings jobs with a *different* batch size — not
    # scan-compatible with the alice/bob group, so they fuse among
    # themselves (their own group).
    for j in range(6):
        records.append(service.submit(
            "carol", "ratings", LogisticLoss(regularization=lambdas[j % 3]),
            epsilon=EPS_PER_JOB, passes=PASSES, batch_size=40, seed=300 + j))
    # 39: a lone odd job — nothing shares its (passes=3) signature, so it
    # takes the sequential fallback.
    records.append(service.submit(
        "alice", "ratings", LogisticLoss(regularization=1e-3),
        epsilon=EPS_PER_JOB, passes=3, batch_size=BATCH, seed=400))
    # 40: bob asks for a non-smooth hinge loss — trainable, but not
    # privately releasable; the job FAILS before any scan and his
    # reservation is refunded.
    records.append(service.submit("bob", "ratings", HingeLoss(),
                                  epsilon=EPS_PER_JOB, passes=PASSES,
                                  batch_size=BATCH, seed=401))
    # 41-50: mallory hammers ratings; only her first 3 fit her budget,
    # the other 7 are REJECTED at admission — zero pages, zero epsilon.
    for j in range(10):
        records.append(service.submit(
            "mallory", "ratings", LogisticLoss(regularization=1e-3),
            epsilon=EPS_PER_JOB, passes=PASSES, batch_size=BATCH,
            seed=500 + j))
    return records


def main() -> None:
    import numpy as np

    state_dir = tempfile.mkdtemp(prefix="repro-service-")
    service = build_service(state_dir)

    # The server is live BEFORE any work arrives: background workers
    # watch the queue, so submissions below are pure admission.
    service.start()
    submit_times = []
    t0 = time.perf_counter()
    submit_workload(service)
    submit_times.append(time.perf_counter() - t0)
    assert len(service.registry) == 50

    pages_before = service.page_reads
    finished = service.drain()  # block until quiescent (workers did the work)
    pages = service.page_reads - pages_before

    counts = service.registry.counts()
    print("== 50 mixed-tenant jobs, 4 background workers ==")
    print(f"submit   : all 50 in {submit_times[0] * 1e3:.1f} ms "
          f"(admission only — workers scan concurrently)")
    print("statuses :", ", ".join(f"{k}={v}" for k, v in sorted(counts.items()) if v))
    print(f"groups   : {len(service.scheduler.dispatch_log)} scans for "
          f"{counts['completed']} completed jobs")
    for key, job_ids, group_pages in service.scheduler.dispatch_log:
        table, batch, passes, _ = key
        print(f"  scan on {table:>7} (b={batch:>2}, k={passes}): "
              f"{len(job_ids):>2} jobs, {group_pages} page requests")
    print(f"pages    : {pages} total — one job alone on ratings costs "
          f"{PASSES * 600}, on clicks {PASSES * 400}")

    print("\n== budgets after the drain ==")
    for statement in service.budgets():
        print(f"  {statement.principal:>8} on {statement.table:>7}: "
              f"spent ({statement.spent[0]:.2f}, {statement.spent[1]:g}) "
              f"of cap {statement.cap.epsilon:.2f}, "
              f"available eps {statement.available_epsilon:.2f}")

    failed = service.jobs(status=JobStatus.FAILED)
    rejected = service.jobs(status=JobStatus.REJECTED)
    print(f"\nfailed   : {[record.job_id for record in failed]} "
          f"(budget refunded — bob spent nothing on it)")
    print(f"rejected : {len(rejected)} of mallory's jobs "
          f"(admission control; they charged 0 pages)")

    # The cross-drain result cache: resubmitting job-00001 verbatim
    # returns the committed release instantly — 0 pages, 0 epsilon.
    pages_before = service.page_reads
    hit = service.submit("alice", "ratings", LogisticLoss(regularization=1e-4),
                         epsilon=EPS_PER_JOB, passes=PASSES,
                         batch_size=BATCH, seed=100)
    assert hit.done and hit.dispatch == "cached"
    assert service.page_reads == pages_before
    same = np.array_equal(hit.model, service.model("job-00001"))
    print(f"\ncache    : resubmitted job-00001 -> {hit.job_id} served from "
          f"cache, 0 pages, 0 eps, bitwise-equal: {same}")
    assert same
    service.stop()  # final autosave lands in state_dir

    # Durability: a NEW process would do exactly this — register tables,
    # load the snapshot, and keep serving with budgets reconciled from
    # the committed receipts.
    restarted = TrainingService(batching_window=32, chunk_size=128,
                                scan_seed=7, workers=WORKERS)
    ratings = linearly_separable_binary("ratings", 600, 10, 12, random_state=1).train
    clicks = linearly_separable_binary("clicks", 400, 10, 8, random_state=2).train
    restarted.register_table("ratings", ratings.features, ratings.labels)
    restarted.register_table("clicks", clicks.features, clicks.labels)
    loaded = restarted.load_state(state_dir)
    replay = restarted.submit("alice", "ratings",
                              LogisticLoss(regularization=1e-4),
                              epsilon=EPS_PER_JOB, passes=PASSES,
                              batch_size=BATCH, seed=100)
    mallory = restarted.submit("mallory", "ratings",
                               LogisticLoss(regularization=1e-3),
                               epsilon=EPS_PER_JOB, passes=PASSES,
                               batch_size=BATCH, seed=999)
    print(f"restart  : {loaded} records loaded; replay of job-00001 is "
          f"{replay.dispatch} (bitwise-equal: "
          f"{np.array_equal(replay.model, service.model('job-00001'))}); "
          f"mallory's reconciled account still rejects: "
          f"{mallory.status.value}")
    assert replay.dispatch == "cached"
    assert mallory.status is JobStatus.REJECTED
    assert len(finished) == counts["completed"] + counts["failed"]

    # Telemetry rode along the whole time: every job carries a span-level
    # lifecycle trace, and the always-on metrics registry exposes the
    # run in Prometheus text (or JSON via metrics(format="json")).
    trace = service.trace("job-00001")
    print("\n== telemetry (always on; see also `repro trace JOB`) ==")
    print("trace    : job-00001 -> "
          + " -> ".join(f"{span.name} {span.duration * 1e3:.2f}ms"
                        for span in trace.spans()))
    exposition = service.metrics()  # Prometheus text format
    wanted = ("repro_registry_jobs", "repro_scan_pages_total",
              "repro_ledger_epsilon_spent")
    shown = [line for line in exposition.splitlines()
             if line.startswith(wanted)][:8]
    print(f"metrics  : {len(exposition.splitlines())} exposition lines, e.g.")
    for line in shown:
        print(f"  {line}")


if __name__ == "__main__":
    main()
