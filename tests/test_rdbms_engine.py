"""Tests for catalog, executor, and UDA layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optim.losses import LogisticLoss
from repro.optim.schedules import ConstantSchedule
from repro.rdbms.catalog import Catalog
from repro.rdbms.executor import SeqScan, Shuffle, ShuffleOnce, run_aggregate
from repro.rdbms.storage import BufferPool, MaterializedHeapFile
from repro.rdbms.uda import AvgUDA, SGDUDA


def make_table(catalog, name="t", m=120, d=6, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(m, d))
    X /= np.maximum(np.linalg.norm(X, axis=1, keepdims=True), 1.0)
    y = np.where(rng.random(m) > 0.5, 1.0, -1.0)
    return catalog.create_table_from_arrays(name, X, y), X, y


class TestCatalog:
    def test_create_and_get(self):
        catalog = Catalog()
        info, X, y = make_table(catalog)
        assert catalog.get("t").num_tuples == 120
        assert "t" in catalog

    def test_duplicate_rejected(self):
        catalog = Catalog()
        make_table(catalog)
        with pytest.raises(ValueError, match="already exists"):
            catalog.create_table_from_arrays("t", np.zeros((1, 2)), np.zeros(1))

    def test_invalid_name(self):
        catalog = Catalog()
        with pytest.raises(ValueError, match="invalid"):
            catalog.create_table_from_arrays("bad name!", np.zeros((1, 2)), np.zeros(1))

    def test_drop(self):
        catalog = Catalog()
        make_table(catalog)
        catalog.drop_table("t")
        assert "t" not in catalog
        with pytest.raises(KeyError):
            catalog.drop_table("t")

    def test_missing_table(self):
        with pytest.raises(KeyError, match="no such table"):
            Catalog().get("ghost")

    def test_table_names_sorted(self):
        catalog = Catalog()
        make_table(catalog, "zeta")
        make_table(catalog, "alpha", seed=1)
        assert catalog.table_names() == ["alpha", "zeta"]


class TestSeqScan:
    def test_yields_all_tuples_in_order(self):
        catalog = Catalog()
        info, X, y = make_table(catalog)
        pool = BufferPool(100)
        rows = list(SeqScan(info, pool))
        assert len(rows) == 120
        np.testing.assert_array_equal(rows[0][0], X[0])
        assert rows[0][1] == y[0]
        np.testing.assert_array_equal(rows[-1][0], X[-1])


class TestShuffle:
    def test_yields_all_tuples_in_permuted_order(self):
        catalog = Catalog()
        info, X, y = make_table(catalog)
        pool = BufferPool(100)
        shuffle = Shuffle(info, pool, random_state=5)
        labels = [label for _, label in shuffle]
        assert len(labels) == 120
        assert sorted(labels) == sorted(y.tolist())

    def test_shuffle_once_replays_same_order(self):
        catalog = Catalog()
        info, X, y = make_table(catalog)
        pool = BufferPool(100)
        shuffle = ShuffleOnce(info, pool, random_state=5)
        first = [tuple(f) for f, _ in shuffle]
        second = [tuple(f) for f, _ in shuffle]
        assert first == second

    def test_reshuffle_changes_order(self):
        catalog = Catalog()
        info, X, y = make_table(catalog)
        pool = BufferPool(100)
        shuffle = ShuffleOnce(info, pool, random_state=5)
        first = [tuple(f) for f, _ in shuffle]
        shuffle.reshuffle()
        second = [tuple(f) for f, _ in shuffle]
        assert first != second
        assert sorted(first) == sorted(second)

    def test_permutation_covers_everything(self):
        catalog = Catalog()
        info, X, y = make_table(catalog)
        pool = BufferPool(100)
        shuffle = ShuffleOnce(info, pool, random_state=1)
        assert sorted(shuffle.permutation.tolist()) == list(range(120))


class TestAvgUDA:
    def test_avg_matches_numpy(self):
        catalog = Catalog()
        info, X, y = make_table(catalog)
        pool = BufferPool(100)
        result = run_aggregate(SeqScan(info, pool), AvgUDA())
        assert result == pytest.approx(float(np.mean(y)))

    def test_empty_aggregate_rejected(self):
        uda = AvgUDA()
        state = uda.initialize()
        with pytest.raises(ValueError, match="zero tuples"):
            uda.terminate(state)


class TestSGDUDA:
    def test_one_epoch_matches_library_psgd(self):
        """The UDA epoch must produce exactly the same model as the plain
        PSGD engine on the same permutation — the substrate and the
        library are the same algorithm."""
        from repro.optim.psgd import run_psgd

        catalog = Catalog()
        info, X, y = make_table(catalog, m=90, d=5, seed=3)
        pool = BufferPool(100)
        loss = LogisticLoss()
        schedule = ConstantSchedule(0.1)

        shuffle = ShuffleOnce(info, pool, random_state=7)
        uda = SGDUDA(loss, schedule, batch_size=10)
        model_uda = run_aggregate(shuffle, uda, dimension=5)

        reference = run_psgd(
            loss, X, y, schedule, passes=1, batch_size=10,
            permutation=shuffle.permutation, random_state=0,
        )
        np.testing.assert_allclose(model_uda, reference.model, atol=1e-12)

    def test_tail_batch_flushed(self):
        catalog = Catalog()
        info, X, y = make_table(catalog, m=95, d=5)
        pool = BufferPool(100)
        uda = SGDUDA(LogisticLoss(), ConstantSchedule(0.1), batch_size=10)
        run_aggregate(SeqScan(info, pool), uda, dimension=5)
        assert uda.updates_applied == 10  # ceil(95/10)

    def test_epoch_chaining_continues_schedule(self):
        catalog = Catalog()
        info, X, y = make_table(catalog, m=20, d=4)
        pool = BufferPool(100)
        from repro.optim.schedules import InverseTSchedule

        uda = SGDUDA(LogisticLoss(), InverseTSchedule(1.0), batch_size=5)
        state = uda.initialize(dimension=4, global_step_offset=4)
        assert state.next_step_index == 5

    def test_initialize_needs_model_or_dimension(self):
        uda = SGDUDA(LogisticLoss(), ConstantSchedule(0.1))
        with pytest.raises(ValueError, match="model or a dimension"):
            uda.initialize()

    def test_projection_applied(self):
        from repro.optim.projection import L2BallProjection

        catalog = Catalog()
        info, X, y = make_table(catalog, m=50, d=4)
        pool = BufferPool(100)
        uda = SGDUDA(
            LogisticLoss(), ConstantSchedule(2.0), batch_size=1,
            projection=L2BallProjection(0.1),
        )
        model = run_aggregate(SeqScan(info, pool), uda, dimension=4)
        assert np.linalg.norm(model) <= 0.1 + 1e-9
